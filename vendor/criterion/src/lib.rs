//! Offline stand-in for the subset of the [`criterion`] crate this
//! workspace uses.
//!
//! The build environment has no crates.io access, so the real
//! `criterion` cannot be fetched. This stub keeps the `benches/`
//! targets source-compatible and genuinely useful: each
//! `bench_function` runs a short warm-up, then a fixed number of timed
//! samples, and prints the median per-iteration wall time. There are no
//! statistical reports, plots, or baselines — for tracked perf numbers
//! use the `perf_snapshot` binary, which emits `BENCH_step_sim.json`.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting
/// benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Passed to the closure given to `bench_function`; drives the timing
/// loop.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Times `routine`, recording per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that takes
        // at least ~2ms per sample so Instant overhead is negligible.
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / iters as u32);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_count,
        };
        f(&mut b);
        b.samples.sort();
        let median = b
            .samples
            .get(b.samples.len() / 2)
            .copied()
            .unwrap_or_default();
        println!(
            "{}/{id}: median {median:?} ({} samples x {} iters)",
            self.name,
            b.samples.len(),
            b.iters_per_sample
        );
        self
    }

    /// Ends the group (upstream finalizes reports here; no-op).
    pub fn finish(self) {}
}

/// Benchmark manager handed to each `criterion_group!` target.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 10 }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let sample_count = self.sample_count;
        BenchmarkGroup {
            name: name.into(),
            sample_count,
            _parent: self,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        f: F,
    ) -> &mut Self {
        self.benchmark_group(id.to_string()).bench_function(id, f);
        self
    }

    /// Upstream configuration hook; retained for source compatibility.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(2);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_sum(c: &mut Criterion) {
        let mut g = c.benchmark_group("test");
        g.sample_size(3);
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, bench_sum);

    #[test]
    fn group_runs() {
        benches();
    }
}
