//! Offline stand-in for the subset of the [`rand`] crate this workspace
//! uses: a seedable deterministic generator ([`rngs::StdRng`]) with
//! uniform `gen`/`gen_range` sampling for the primitive numeric types.
//!
//! The build environment has no access to crates.io, so the real `rand`
//! cannot be fetched. This crate keeps the call sites source-compatible
//! (`use rand::rngs::StdRng; use rand::{Rng, SeedableRng};`). The
//! stream is xoshiro256++ seeded via SplitMix64 — deterministic across
//! platforms and runs, which is all the simulator requires (the exact
//! values differ from upstream `rand`, but every consumer only relies
//! on seeded determinism, not on specific draws).

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Uniform {
    /// Draws one value from `rng`.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

/// Types usable as [`Rng::gen_range`] bounds.
pub trait SampleRange {
    /// The produced value type.
    type Output;
    /// Draws one value in the range from `rng`.
    fn sample_from(self, rng: &mut dyn RngCore) -> Self::Output;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Draws a uniform value of type `T` (for floats: in `[0, 1)`).
    fn gen<T: Uniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Draws a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Uniform for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Uniform for f32 {
    fn sample(rng: &mut dyn RngCore) -> f32 {
        // 24 high bits → [0, 1).
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Uniform for u64 {
    fn sample(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Uniform for u32 {
    fn sample(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Uniform for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! float_range {
    ($t:ty, $uniform:expr) => {
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = $uniform(rng.next_u64());
                self.start + (self.end - self.start) * u
            }
        }
    };
}

float_range!(f64, unit_f64);
float_range!(f32, |b: u64| ((b >> 40) as f32) * (1.0 / (1u64 << 24) as f32));

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator (stand-in for the real
    /// `StdRng`; same API, different — but still fixed — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same engine here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i: i32 = r.gen_range(-5..5);
            assert!((-5..5).contains(&i));
            let u: usize = r.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: f64 = a.gen();
        let vb: f64 = b.gen();
        assert_ne!(va, vb);
    }
}
