//! Offline stand-in for the subset of the [`proptest`] crate this
//! workspace uses.
//!
//! The build environment has no crates.io access, so the real
//! `proptest` cannot be fetched. This crate keeps the property tests
//! source-compatible: the [`proptest!`] macro, numeric-range and tuple
//! strategies, `prop::collection::vec`, `prop::sample::Index`,
//! `any::<T>()` and the `prop_assert*` macros. Shrinking is greedy
//! rather than upstream's simplification tree: a failing case is
//! repeatedly replaced by its first still-failing
//! [`strategy::Strategy::shrink`] candidate (dimension halving toward
//! the range start, vector truncation toward the minimum length) until
//! none fails, and the panic payload reports the minimized inputs via
//! `Debug`. Each test runs a fixed number of deterministic,
//! seed-derived cases, so failures reproduce exactly across runs.

/// Runner plumbing used by the macro expansions.
pub mod test_runner {
    /// Deterministic generator used to produce test cases
    /// (xoshiro256++ seeded from a SplitMix64-mixed test name hash).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Creates a generator from a seed (typically a test-name hash).
        pub fn new(seed: u64) -> TestRng {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// A uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform index in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }
    }

    /// Failure raised by `prop_assert!`-family macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Number of generated cases per property test.
    pub const CASES: u32 = 48;

    /// FNV-1a hash of the test name, for per-test deterministic seeds.
    pub fn name_seed(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Driver behind the [`crate::proptest!`] macro: runs [`CASES`]
    /// seed-derived cases, and on the first failure greedily minimizes
    /// the inputs via [`crate::strategy::minimize`] before panicking
    /// with the minimal input tuple in the payload.
    ///
    /// # Panics
    /// Panics on the first (minimized) failing case.
    pub fn run_property<S, F>(seed: u64, strategy: S, run_case: F)
    where
        S: crate::strategy::Strategy,
        S::Value: std::fmt::Debug,
        F: Fn(&S::Value) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::new(seed);
        for case in 0..CASES {
            let vals = strategy.generate(&mut rng);
            if let Err(e) = run_case(&vals) {
                let (min_vals, steps) =
                    crate::strategy::minimize(&strategy, vals, |v| run_case(v).is_err());
                let min_err = match run_case(&min_vals) {
                    Err(me) => me,
                    Ok(()) => e,
                };
                panic!(
                    "property case {case} failed: {min_err}\n\
                     minimal input (after {steps} shrink steps): {min_vals:?}"
                );
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of an associated type from a [`TestRng`].
    pub trait Strategy {
        /// The generated value type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
        /// Strictly-simpler candidates for `value`, simplest first.
        /// The default is no candidates (no shrinking).
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let _ = value;
            Vec::new()
        }
    }

    /// Greedily minimizes a failing value: repeatedly replaces it with
    /// the first [`Strategy::shrink`] candidate for which `fails`
    /// still returns `true`, until no candidate fails. Returns the
    /// minimized value and the number of accepted shrink steps. The
    /// input itself is assumed to fail.
    pub fn minimize<S: Strategy>(
        strategy: &S,
        mut value: S::Value,
        mut fails: impl FnMut(&S::Value) -> bool,
    ) -> (S::Value, u32) {
        let mut steps = 0u32;
        // Candidates are strictly simpler, so this terminates; the
        // bound is a backstop against a misbehaving shrink impl.
        'outer: for _ in 0..10_000 {
            for cand in strategy.shrink(&value) {
                if fails(&cand) {
                    value = cand;
                    steps += 1;
                    continue 'outer;
                }
            }
            break;
        }
        (value, steps)
    }

    /// Shared by the `Range`/`RangeInclusive` int impls: candidates
    /// are the range start, the midpoint between start and `v`, and
    /// `v − 1` — deduplicated, in `[start, v)`.
    macro_rules! int_shrink {
        ($t:ty, $start:expr, $v:expr) => {{
            let (start, v) = ($start, $v);
            let mut out: Vec<$t> = Vec::new();
            if v > start {
                let mid = ((start as i128 + v as i128) / 2) as $t;
                for c in [start, mid, v - 1] {
                    if c >= start && c < v && !out.contains(&c) {
                        out.push(c);
                    }
                }
            }
            out
        }};
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_shrink!($t, self.start, *value)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_shrink!($t, *self.start(), *value)
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (self.end - self.start) * (rng.unit_f64() as $t)
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let v = *value;
                    let mut out = Vec::new();
                    for c in [self.start, (self.start + v) / 2.0] {
                        if c.is_finite() && c >= self.start && c < v && !out.contains(&c) {
                            out.push(c);
                        }
                    }
                    out
                }
            }
        )*};
    }

    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+)
            where
                $($s::Value: Clone),+
            {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$n.shrink(&value.$n) {
                            let mut v = value.clone();
                            v.$n = cand;
                            out.push(v);
                        }
                    )+
                    out
                }
            }
        )+};
    }

    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// Strategy produced by [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyStrategy<T>(pub core::marker::PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Wraps a constant value as a strategy (upstream `Just`).
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::AnyStrategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical uniform strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(core::marker::PhantomData)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A vector of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let min_len = self.len.start;
            if value.len() > min_len {
                // Halve the excess length, then try dropping just one.
                let target = min_len + (value.len() - min_len) / 2;
                out.push(value[..target].to_vec());
                if value.len() - 1 != target {
                    out.push(value[..value.len() - 1].to_vec());
                }
            }
            for (i, item) in value.iter().enumerate() {
                if let Some(cand) = self.element.shrink(item).into_iter().next() {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An opaque index usable with any slice length (`prop::sample::Index`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Maps the index onto `[0, len)`.
        ///
        /// # Panics
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty length");
            (self.0 % len as u64) as usize
        }

        /// Selects an element of `slice`.
        ///
        /// # Panics
        /// Panics if `slice` is empty.
        pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
            &slice[self.index(slice.len())]
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

/// The `prop` module path used by call sites (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a property test needs.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`crate::test_runner::CASES`]
/// deterministic cases. A failing case is greedily minimized via
/// [`strategy::minimize`] before the panic, which reports both the
/// (minimized) failure and the minimal input tuple.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$meta])*
        fn $name() {
            let seed = $crate::test_runner::name_seed(concat!(module_path!(), "::", stringify!($name)));
            let strategy = ($(($strat),)+);
            $crate::test_runner::run_property(seed, strategy, |vals| {
                let ($($arg,)+) = ::std::clone::Clone::clone(vals);
                $body
                #[allow(unreachable_code)]
                ::std::result::Result::Ok(())
            });
        }
    )+};
}

/// Asserts inside a property test, failing the case (not the process)
/// on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} == {} ({a:?} vs {b:?})",
                stringify!($a),
                stringify!($b),
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} != {} (both {a:?})",
                stringify!($a),
                stringify!($b),
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..9, f in 0.5f64..1.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u64..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for e in &v {
                prop_assert!(*e < 10);
            }
        }

        #[test]
        fn nested_tuples(ops in prop::collection::vec((0usize..6, 1u64..1000), 1..40)) {
            prop_assert!(!ops.is_empty());
            prop_assert!(ops.iter().all(|(a, b)| *a < 6 && *b >= 1 && *b < 1000));
        }

        #[test]
        fn index_selects(v in prop::collection::vec(1u32..100, 1..10), ix in any::<prop::sample::Index>()) {
            let chosen = *ix.get(&v);
            prop_assert!(v.contains(&chosen));
        }

        #[test]
        fn mut_bindings_work(mut v in prop::collection::vec(0i32..5, 1..4)) {
            v.push(7);
            prop_assert_eq!(*v.last().unwrap(), 7);
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "(10,)")]
        fn failing_case_shrinks_to_the_boundary(x in 0u32..1000) {
            // Fails for every x ≥ 10; the greedy shrinker must land
            // exactly on the smallest failing value, 10.
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn minimize_halves_toward_the_range_start() {
        use crate::strategy::minimize;
        let (min, steps) = minimize(&(0u32..1000), 700, |&x| x >= 10);
        assert_eq!(min, 10);
        // 700 → 350 → 175 → 87 → 43 → 21 → 10.
        assert_eq!(steps, 6);
    }

    #[test]
    fn minimize_respects_inclusive_range_starts() {
        use crate::strategy::minimize;
        let (min, _) = minimize(&(5u32..=100), 77, |&x| x >= 5);
        assert_eq!(min, 5, "nothing below the range start may be offered");
    }

    #[test]
    fn vectors_shrink_to_minimum_length_of_starts() {
        use crate::strategy::minimize;
        let strat = prop::collection::vec(0u32..10, 3..6);
        let (min, _) = minimize(&strat, vec![7, 3, 9, 4], |_| true);
        assert_eq!(min, vec![0, 0, 0]);
    }

    #[test]
    fn shrink_offers_nothing_at_the_minimum() {
        use crate::strategy::Strategy;
        assert!((0u32..100).shrink(&0).is_empty());
        assert!((0.0f64..1.0).shrink(&0.0).is_empty());
        assert!(prop::collection::vec(0u32..10, 2..4)
            .shrink(&vec![0, 0])
            .is_empty());
        // Tuples shrink component-wise.
        let cands = (0u32..10, 0u64..10).shrink(&(4, 0));
        assert!(!cands.is_empty());
        assert!(cands.iter().all(|&(_, b)| b == 0));
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::new(42);
        let mut b = crate::test_runner::TestRng::new(42);
        let s = 0u64..1_000_000;
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
