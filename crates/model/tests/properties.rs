//! Property tests for mask accounting and model arithmetic.

use llm_model::masks::MaskSpec;
use llm_model::TransformerConfig;
use proptest::prelude::*;

proptest! {
    /// `attended_pairs` equals a brute-force count of `allows` over the
    /// full query×key square, for every mask family.
    #[test]
    fn pairs_match_brute_force(lens in prop::collection::vec(1u64..12, 1..6)) {
        let seq: u64 = lens.iter().sum();
        for mask in [MaskSpec::Full, MaskSpec::Causal, MaskSpec::document(lens)] {
            let brute: u128 = (0..seq)
                .map(|q| (0..seq).filter(|&k| mask.allows(q, k)).count() as u128)
                .sum();
            prop_assert_eq!(mask.attended_pairs(seq), brute, "mask {:?}", mask);
        }
    }

    /// Range accounting is additive over any split point.
    #[test]
    fn ranges_are_additive(lens in prop::collection::vec(1u64..40, 1..10), cut_ix in any::<prop::sample::Index>()) {
        let seq: u64 = lens.iter().sum();
        let cut = cut_ix.index(seq as usize + 1) as u64;
        let mask = MaskSpec::document(lens);
        prop_assert_eq!(
            mask.attended_pairs_in(seq, 0, cut) + mask.attended_pairs_in(seq, cut, seq),
            mask.attended_pairs(seq)
        );
    }

    /// `kv_span_in` bounds: a range's span covers at least the widest
    /// per-query need and never exceeds the sequence.
    #[test]
    fn kv_span_bounds(lens in prop::collection::vec(1u64..40, 1..10)) {
        let seq: u64 = lens.iter().sum();
        let mask = MaskSpec::document(lens);
        let span = mask.kv_span_in(seq, 0, seq);
        prop_assert!(span <= seq);
        // The longest document dictates the widest span.
        let longest = *match &mask {
            MaskSpec::Document { doc_lens } => doc_lens.iter().max().unwrap(),
            _ => unreachable!(),
        };
        prop_assert_eq!(span, longest);
    }

    /// Parameter accounting scales linearly with layers and is always
    /// dominated by the body for big-enough models.
    #[test]
    fn params_linear_in_layers(layers in 1u64..60) {
        let base = TransformerConfig::llama3_8b().with_layers(layers);
        let more = TransformerConfig::llama3_8b().with_layers(layers + 1);
        prop_assert_eq!(
            more.total_params() - base.total_params(),
            base.layer_params()
        );
    }

    /// Density is within [0, 1] and causal density tends to 1/2.
    #[test]
    fn density_bounds(lens in prop::collection::vec(1u64..100, 1..10)) {
        let seq: u64 = lens.iter().sum();
        let doc = MaskSpec::document(lens);
        let d = doc.density(seq);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!(d <= MaskSpec::Causal.density(seq) + 1e-12);
        prop_assert!(MaskSpec::Full.density(seq) == 1.0);
    }
}
