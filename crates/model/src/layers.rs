//! Layer-level model layout.
//!
//! A [`ModelLayout`] is the ordered list of layers a network executes —
//! the unit the pipeline-parallel planner assigns to stages. Text
//! models are `[Embedding, SelfAttention × L, OutputHead]`; multimodal
//! models interleave cross-attention layers among frozen self-attention
//! layers (§3.2).

use crate::config::TransformerConfig;
use crate::flops;
use crate::masks::MaskSpec;
use crate::memory;
use crate::multimodal::CrossAttentionSpec;
use cluster_model::gpu::KernelCost;

/// One layer of a model, as seen by the pipeline planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Token embedding (first pipeline rank only).
    Embedding,
    /// A transformer self-attention layer. `frozen` marks layers that
    /// compute no weight gradients (§3.2 multimodal pre-training).
    SelfAttention {
        /// Whether the layer's weights are frozen.
        frozen: bool,
    },
    /// A cross-attention layer attending `image_tokens` image keys.
    CrossAttention {
        /// Image (KV) tokens visible per text token.
        image_tokens: u64,
    },
    /// Final norm + vocabulary projection + loss (last rank only).
    OutputHead,
}

impl LayerKind {
    /// `true` if the layer trains (computes weight gradients).
    pub fn trainable(self) -> bool {
        !matches!(self, LayerKind::SelfAttention { frozen: true })
    }

    /// Parameter count of this layer.
    pub fn params(self, cfg: &TransformerConfig) -> u64 {
        match self {
            LayerKind::Embedding => cfg.embedding_params(),
            LayerKind::SelfAttention { .. } => cfg.layer_params(),
            LayerKind::CrossAttention { image_tokens } => {
                CrossAttentionSpec { image_tokens }.layer_params(cfg)
            }
            LayerKind::OutputHead => cfg.output_head_params(),
        }
    }

    /// Forward cost for `tokens` query tokens of a sequence of length
    /// `seq` under `mask` (self-attention layers are mask-aware;
    /// other layers depend only on the token count).
    pub fn fwd_cost(
        self,
        cfg: &TransformerConfig,
        tokens: u64,
        seq: u64,
        mask: &MaskSpec,
    ) -> KernelCost {
        match self {
            LayerKind::Embedding => flops::embedding_fwd(cfg, tokens),
            LayerKind::SelfAttention { .. } => {
                // Price `tokens` worth of queries at the mask's mean
                // per-query density for a sequence of `seq`.
                let pairs = if tokens == seq {
                    mask.attended_pairs(seq)
                } else {
                    let scale = tokens as f64 / seq as f64;
                    (mask.attended_pairs(seq) as f64 * scale) as u128
                };
                flops::self_attention_layer_fwd(cfg, tokens, seq, pairs)
            }
            LayerKind::CrossAttention { image_tokens } => {
                CrossAttentionSpec { image_tokens }.layer_fwd(cfg, tokens)
            }
            LayerKind::OutputHead => flops::output_head_fwd(cfg, tokens),
        }
    }

    /// Backward cost corresponding to [`LayerKind::fwd_cost`].
    pub fn bwd_cost(
        self,
        cfg: &TransformerConfig,
        tokens: u64,
        seq: u64,
        mask: &MaskSpec,
    ) -> KernelCost {
        flops::backward(self.fwd_cost(cfg, tokens, seq, mask), !self.trainable())
    }

    /// Activation bytes per token this layer pins for its backward.
    pub fn activation_bytes_per_token(self, cfg: &TransformerConfig) -> u64 {
        match self {
            LayerKind::Embedding => memory::embedding_activation_bytes_per_token(cfg),
            LayerKind::SelfAttention { .. } | LayerKind::CrossAttention { .. } => {
                memory::activation_bytes_per_token(cfg)
            }
            LayerKind::OutputHead => memory::output_head_activation_bytes_per_token(cfg),
        }
    }
}

/// An ordered full-model layer list plus its base transformer config.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelLayout {
    /// Base transformer dimensions.
    pub cfg: TransformerConfig,
    /// Layers in execution order.
    pub layers: Vec<LayerKind>,
}

impl ModelLayout {
    /// Standard text model: embedding, `cfg.num_layers` self-attention
    /// layers, output head.
    pub fn text(cfg: TransformerConfig) -> ModelLayout {
        let mut layers = vec![LayerKind::Embedding];
        layers.extend(
            std::iter::repeat_n(LayerKind::SelfAttention { frozen: false }, cfg.num_layers as usize),
        );
        layers.push(LayerKind::OutputHead);
        ModelLayout { cfg, layers }
    }

    /// Multimodal text stack (§3.2): frozen self-attention layers with
    /// one trainable cross-attention layer inserted after every
    /// `self_per_cross` self-attention layers.
    ///
    /// # Panics
    /// Panics if `self_per_cross == 0`.
    pub fn multimodal_text(
        cfg: TransformerConfig,
        self_per_cross: u64,
        image_tokens: u64,
    ) -> ModelLayout {
        assert!(self_per_cross > 0, "need at least one self layer per cross layer");
        let mut layers = vec![LayerKind::Embedding];
        for i in 0..cfg.num_layers {
            layers.push(LayerKind::SelfAttention { frozen: true });
            if (i + 1) % self_per_cross == 0 {
                layers.push(LayerKind::CrossAttention { image_tokens });
            }
        }
        layers.push(LayerKind::OutputHead);
        ModelLayout { cfg, layers }
    }

    /// Total parameters across the layout.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.params(&self.cfg)).sum()
    }

    /// Number of layers of each interesting kind:
    /// `(self_attention, cross_attention)`.
    pub fn attention_layer_counts(&self) -> (usize, usize) {
        let sa = self
            .layers
            .iter()
            .filter(|l| matches!(l, LayerKind::SelfAttention { .. }))
            .count();
        let ca = self
            .layers
            .iter()
            .filter(|l| matches!(l, LayerKind::CrossAttention { .. }))
            .count();
        (sa, ca)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_layout_shape() {
        let m = ModelLayout::text(TransformerConfig::llama3_405b());
        assert_eq!(m.layers.len(), 128); // 1 + 126 + 1
        assert_eq!(m.layers[0], LayerKind::Embedding);
        assert_eq!(*m.layers.last().unwrap(), LayerKind::OutputHead);
        assert_eq!(m.total_params(), m.cfg.total_params());
    }

    #[test]
    fn multimodal_ratio_4_to_1() {
        // §3.2.2: 4 self-attention layers per cross-attention layer.
        let m = ModelLayout::multimodal_text(TransformerConfig::llama3_70b(), 4, 2304);
        let (sa, ca) = m.attention_layer_counts();
        assert_eq!(sa, 80);
        assert_eq!(ca, 20);
        // Frozen self-attention, trainable cross-attention.
        assert!(m
            .layers
            .iter()
            .filter(|l| matches!(l, LayerKind::SelfAttention { .. }))
            .all(|l| !l.trainable()));
        assert!(m
            .layers
            .iter()
            .filter(|l| matches!(l, LayerKind::CrossAttention { .. }))
            .all(|l| l.trainable()));
    }

    #[test]
    fn frozen_layer_backward_is_cheaper() {
        let cfg = TransformerConfig::llama3_70b();
        let mask = MaskSpec::Causal;
        let frozen = LayerKind::SelfAttention { frozen: true }.bwd_cost(&cfg, 200, 200, &mask);
        let live = LayerKind::SelfAttention { frozen: false }.bwd_cost(&cfg, 200, 200, &mask);
        assert!((live.flops / frozen.flops - 2.0).abs() < 1e-9);
    }

    #[test]
    fn head_activation_heavier_than_embedding_and_boundary() {
        let cfg = TransformerConfig::llama3_405b();
        let head = LayerKind::OutputHead.activation_bytes_per_token(&cfg);
        assert!(head > LayerKind::Embedding.activation_bytes_per_token(&cfg) * 7);
        assert!(head > memory::boundary_activation_bytes_per_token(&cfg) * 7);
    }

    #[test]
    fn fwd_cost_scales_with_mask() {
        let cfg = TransformerConfig::llama3_8b();
        let causal = LayerKind::SelfAttention { frozen: false }.fwd_cost(
            &cfg,
            8192,
            8192,
            &MaskSpec::Causal,
        );
        let doc = LayerKind::SelfAttention { frozen: false }.fwd_cost(
            &cfg,
            8192,
            8192,
            &MaskSpec::document(vec![1024; 8]),
        );
        assert!(causal.flops > doc.flops);
    }
}
