//! Multimodal (vision) model components.
//!
//! Mirrors the §3.2 architecture: a ViT image encoder whose output
//! tokens feed cross-attention blocks interleaved among the (frozen)
//! text-model self-attention layers. During multimodal pre-training the
//! encoder and cross-attention layers train while self-attention layers
//! stay frozen.

use crate::config::TransformerConfig;
use crate::flops;
use cluster_model::gpu::{Dtype, KernelCost};

/// ViT image-encoder configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VitConfig {
    /// Human-readable name.
    pub name: String,
    /// Input image resolution (square), pixels.
    pub image_size: u64,
    /// Patch size, pixels.
    pub patch_size: u64,
    /// Encoder hidden dimension.
    pub hidden_dim: u64,
    /// Number of attention heads.
    pub num_heads: u64,
    /// MLP intermediate dimension.
    pub ffn_dim: u64,
    /// Number of encoder layers.
    pub num_layers: u64,
}

impl VitConfig {
    /// The initial encoder: 448×448 input (≈ 1 K image tokens, §3.2.2).
    pub fn vit_448() -> VitConfig {
        VitConfig {
            name: "vit-h14-448".to_string(),
            image_size: 448,
            patch_size: 14,
            hidden_dim: 1280,
            num_heads: 16,
            ffn_dim: 5120,
            num_layers: 32,
        }
    }

    /// The upgraded encoder that triggered the Option 2 → Option 3
    /// resharding (§3.2.1): 672×672 input (≈ 3 K image tokens †) and a
    /// deeper stack.
    ///
    /// † (672/14)² = 2304 patch tokens; the paper quotes "3 K" including
    /// auxiliary tokens — we use the patch count plus a register pad.
    pub fn vit_672_deep() -> VitConfig {
        VitConfig {
            name: "vit-h14-672-deep".to_string(),
            image_size: 672,
            patch_size: 14,
            hidden_dim: 1280,
            num_heads: 16,
            ffn_dim: 5120,
            num_layers: 48,
        }
    }

    /// Image tokens produced per image.
    pub fn tokens_per_image(&self) -> u64 {
        let side = self.image_size / self.patch_size;
        side * side
    }

    /// Parameters of one encoder layer (full attention + MLP).
    pub fn layer_params(&self) -> u64 {
        let h = self.hidden_dim;
        4 * h * h + 2 * h * self.ffn_dim + 2 * h
    }

    /// Total encoder parameters (patch embed + layers).
    pub fn total_params(&self) -> u64 {
        let patch_embed = 3 * self.patch_size * self.patch_size * self.hidden_dim;
        patch_embed + self.num_layers * self.layer_params()
    }

    /// Forward cost of encoding `images` images (full bidirectional
    /// attention over the patch tokens of each image).
    pub fn encode_fwd(&self, images: u64) -> KernelCost {
        let t = self.tokens_per_image();
        let tokens = images * t;
        let h = self.hidden_dim;
        // Per layer: QKVO projections + full attention + MLP.
        let proj = KernelCost::gemm(tokens, 4 * h, h, Dtype::Bf16);
        let pairs = images as u128 * (t as u128 * t as u128);
        let attn = KernelCost {
            flops: flops::FLOPS_PER_PAIR_PER_HEADDIM
                * (h / self.num_heads) as f64
                * self.num_heads as f64
                * pairs as f64,
            bytes: 2.0 * 4.0 * tokens as f64 * h as f64,
            launches: 1,
        };
        let mlp = KernelCost::gemm(tokens, self.ffn_dim, h, Dtype::Bf16)
            .merge(KernelCost::gemm(tokens, h, self.ffn_dim, Dtype::Bf16));
        let per_layer = proj.merge(attn).merge(mlp);
        let mut total = KernelCost::ZERO;
        for _ in 0..self.num_layers {
            total = total.merge(per_layer);
        }
        total
    }
}

/// Cross-attention block: queries from the text stream, keys/values
/// from the image-encoder output.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CrossAttentionSpec {
    /// Image (KV) tokens visible to each text token.
    pub image_tokens: u64,
}

impl CrossAttentionSpec {
    /// Forward cost of one cross-attention layer over `text_tokens`
    /// query tokens, with the text model's dimensions.
    ///
    /// Every text token attends all `image_tokens` keys, so the pair
    /// count is `text_tokens × image_tokens` — this is why
    /// cross-attention forward FLOPs dwarf self-attention's when the
    /// image sequence (1.2 K–3 K) is much longer than the text sequence
    /// (< 200 tokens), §3.2.2.
    pub fn layer_fwd(&self, cfg: &TransformerConfig, text_tokens: u64) -> KernelCost {
        let pairs = text_tokens as u128 * self.image_tokens as u128;
        // Q from text, K/V projected from image tokens, plus FFN on text.
        let h = cfg.hidden_dim;
        let q_proj = KernelCost::gemm(text_tokens, cfg.q_dim() + h, h, Dtype::Bf16);
        let kv_proj = KernelCost::gemm(self.image_tokens, 2 * cfg.kv_dim(), h, Dtype::Bf16);
        let attn = flops::attention_kernel_fwd(cfg, text_tokens, self.image_tokens, pairs);
        let ffn = flops::ffn_fwd(cfg, text_tokens);
        q_proj.merge(kv_proj).merge(attn).merge(ffn)
    }

    /// Parameters of one cross-attention layer (Q/O on text width, K/V
    /// from image features, plus FFN and norms/gates).
    pub fn layer_params(&self, cfg: &TransformerConfig) -> u64 {
        cfg.layer_params() // same projective structure as a text layer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_counts_match_paper() {
        // §3.2.2: ~1.2K tokens at 448², ~3K at 672².
        assert_eq!(VitConfig::vit_448().tokens_per_image(), 1024);
        assert_eq!(VitConfig::vit_672_deep().tokens_per_image(), 2304);
    }

    #[test]
    fn deeper_encoder_costs_more() {
        let small = VitConfig::vit_448().encode_fwd(8);
        let big = VitConfig::vit_672_deep().encode_fwd(8);
        // ~2.25× tokens and 1.5× layers, plus superlinear attention: > 3×.
        assert!(big.flops > small.flops * 3.0, "{} vs {}", big.flops, small.flops);
    }

    #[test]
    fn cross_attention_dwarfs_self_attention_on_short_text() {
        // §3.2.2 challenge 2: text < 200 tokens, image KV 1.2K–3K.
        let cfg = TransformerConfig::llama3_70b();
        let text_tokens = 200;
        let cross = CrossAttentionSpec { image_tokens: 2304 };
        let cross_cost = cross.layer_fwd(&cfg, text_tokens);
        let self_pairs = crate::masks::MaskSpec::Causal.attended_pairs(text_tokens);
        let self_cost =
            flops::self_attention_layer_fwd(&cfg, text_tokens, text_tokens, self_pairs);
        assert!(cross_cost.flops > self_cost.flops);
    }

    #[test]
    fn vit_params_plausible() {
        // ViT-H/14-class encoder: several hundred M params.
        let p = VitConfig::vit_448().total_params();
        assert!((400e6..900e6).contains(&(p as f64)), "{p}");
    }

    #[test]
    fn encoder_cost_linear_in_images() {
        let v = VitConfig::vit_448();
        let one = v.encode_fwd(1);
        let four = v.encode_fwd(4);
        assert!((four.flops / one.flops - 4.0).abs() < 1e-9);
    }
}
