//! Attention masks and mask-aware work accounting.
//!
//! The Llama 3 document mask (§4) makes attention work input-dependent:
//! a token attends only to earlier tokens of its own document, so the
//! number of attended (query, key) pairs — which determines attention
//! FLOPs — varies with the packing of documents into the sequence. This
//! module counts attended pairs exactly for full, causal and document
//! masks, both globally and restricted to a contiguous query range (the
//! quantity needed to price one context-parallel chunk's share of the
//! work).


/// An attention mask over a packed sequence.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MaskSpec {
    /// Every query attends every key (bidirectional; used by the ViT
    /// image encoder).
    Full,
    /// Query `q` attends keys `0..=q` (standard causal LM mask).
    Causal,
    /// Block-causal document mask: the sequence is a concatenation of
    /// documents of the given lengths; query `q` attends only earlier
    /// tokens (inclusive of itself) *within its own document*.
    Document {
        /// Document lengths; they must sum to the sequence length in use.
        doc_lens: Vec<u64>,
    },
}

impl MaskSpec {
    /// Builds a document mask, validating that lengths are positive.
    ///
    /// # Panics
    /// Panics if any document length is zero or the list is empty.
    pub fn document(doc_lens: Vec<u64>) -> MaskSpec {
        assert!(!doc_lens.is_empty(), "document mask needs documents");
        assert!(doc_lens.iter().all(|&l| l > 0), "zero-length document");
        MaskSpec::Document { doc_lens }
    }

    /// Sequence length implied by a document mask; `None` for masks that
    /// work at any length.
    pub fn implied_seq(&self) -> Option<u64> {
        match self {
            MaskSpec::Document { doc_lens } => Some(doc_lens.iter().sum()),
            _ => None,
        }
    }

    /// Number of attended (query, key) pairs over queries `[0, seq)`.
    ///
    /// # Panics
    /// Panics if a document mask's lengths do not sum to `seq`.
    pub fn attended_pairs(&self, seq: u64) -> u128 {
        self.attended_pairs_in(seq, 0, seq)
    }

    /// Number of attended pairs restricted to queries in
    /// `[q_start, q_end)`, for a sequence of length `seq`.
    ///
    /// This is the attention workload assigned to a CP rank that owns
    /// that query range (after the all-gather it holds all keys).
    ///
    /// # Panics
    /// Panics if the range is invalid, exceeds `seq`, or a document
    /// mask's lengths do not sum to `seq`.
    pub fn attended_pairs_in(&self, seq: u64, q_start: u64, q_end: u64) -> u128 {
        assert!(q_start <= q_end && q_end <= seq, "bad query range");
        match self {
            MaskSpec::Full => (q_end - q_start) as u128 * seq as u128,
            MaskSpec::Causal => {
                // Σ_{q=q_start}^{q_end-1} (q+1)
                let a = q_start as u128;
                let b = q_end as u128;
                (b * (b + 1) - a * (a + 1)) / 2
            }
            MaskSpec::Document { doc_lens } => {
                let total: u64 = doc_lens.iter().sum();
                assert_eq!(total, seq, "document lengths must sum to seq");
                let mut pairs: u128 = 0;
                let mut doc_start = 0u64;
                for &len in doc_lens {
                    let doc_end = doc_start + len;
                    let lo = q_start.max(doc_start);
                    let hi = q_end.min(doc_end);
                    if lo < hi {
                        // Positions within the document are causal.
                        let a = (lo - doc_start) as u128;
                        let b = (hi - doc_start) as u128;
                        pairs += (b * (b + 1) - a * (a + 1)) / 2;
                    }
                    doc_start = doc_end;
                }
                pairs
            }
        }
    }

    /// The widest key span any query in `[q_start, q_end)` attends —
    /// i.e. how much of the gathered KV a CP rank actually reads.
    pub fn kv_span_in(&self, seq: u64, q_start: u64, q_end: u64) -> u64 {
        assert!(q_start <= q_end && q_end <= seq, "bad query range");
        if q_start == q_end {
            return 0;
        }
        match self {
            MaskSpec::Full => seq,
            MaskSpec::Causal => q_end,
            MaskSpec::Document { doc_lens } => {
                let total: u64 = doc_lens.iter().sum();
                assert_eq!(total, seq, "document lengths must sum to seq");
                let mut span = 0u64;
                let mut doc_start = 0u64;
                for &len in doc_lens {
                    let doc_end = doc_start + len;
                    let lo = q_start.max(doc_start);
                    let hi = q_end.min(doc_end);
                    if lo < hi {
                        // Queries in this doc attend back to doc_start.
                        span = span.max(hi - doc_start);
                    }
                    doc_start = doc_end;
                }
                span
            }
        }
    }

    /// Whether query position `q` may attend key position `k`.
    ///
    /// # Panics
    /// Panics if a document mask's lengths do not cover `q` or `k`.
    pub fn allows(&self, q: u64, k: u64) -> bool {
        match self {
            MaskSpec::Full => true,
            MaskSpec::Causal => k <= q,
            MaskSpec::Document { doc_lens } => {
                if k > q {
                    return false;
                }
                let mut start = 0u64;
                for &len in doc_lens {
                    let end = start + len;
                    if q < end {
                        return k >= start;
                    }
                    start = end;
                }
                panic!("query position {q} beyond document mask")
            }
        }
    }

    /// Mask density: attended pairs over the full `seq × seq` square.
    pub fn density(&self, seq: u64) -> f64 {
        if seq == 0 {
            return 0.0;
        }
        self.attended_pairs(seq) as f64 / (seq as f64 * seq as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn causal_pairs_closed_form() {
        let m = MaskSpec::Causal;
        assert_eq!(m.attended_pairs(1), 1);
        assert_eq!(m.attended_pairs(4), 1 + 2 + 3 + 4);
        assert_eq!(m.attended_pairs(1000), 1000 * 1001 / 2);
    }

    #[test]
    fn full_mask_pairs() {
        assert_eq!(MaskSpec::Full.attended_pairs(16), 256);
        assert_eq!(MaskSpec::Full.attended_pairs_in(16, 4, 8), 4 * 16);
    }

    #[test]
    fn causal_range_pairs() {
        let m = MaskSpec::Causal;
        // queries 2,3 attend 3 and 4 keys.
        assert_eq!(m.attended_pairs_in(8, 2, 4), 3 + 4);
        // Ranges partition the total.
        let total = m.attended_pairs(8);
        let split = m.attended_pairs_in(8, 0, 3) + m.attended_pairs_in(8, 3, 8);
        assert_eq!(total, split);
    }

    #[test]
    fn document_mask_paper_example() {
        // The §4 example: 16 tokens, documents [3, 3, 8, 2].
        let m = MaskSpec::document(vec![3, 3, 8, 2]);
        let expect: u128 = [3u128, 3, 8, 2].iter().map(|l| l * (l + 1) / 2).sum();
        assert_eq!(m.attended_pairs(16), expect);
        // Chunk 1 of 4 (tokens 4..8): tokens 4,5 are in doc 1 (positions
        // 1,2 -> 2,3 keys); tokens 6..8 are in doc 2 (positions 0,1 -> 1,2).
        assert_eq!(m.attended_pairs_in(16, 4, 8), 2 + 3 + 1 + 2);
    }

    #[test]
    fn document_mask_cheaper_than_causal() {
        let m = MaskSpec::document(vec![1024; 8]);
        let c = MaskSpec::Causal;
        let seq = 8 * 1024;
        assert!(m.attended_pairs(seq) < c.attended_pairs(seq));
        assert!(m.density(seq) < c.density(seq));
    }

    #[test]
    fn single_document_equals_causal() {
        let m = MaskSpec::document(vec![4096]);
        let c = MaskSpec::Causal;
        assert_eq!(m.attended_pairs(4096), c.attended_pairs(4096));
        assert_eq!(
            m.attended_pairs_in(4096, 1000, 2000),
            c.attended_pairs_in(4096, 1000, 2000)
        );
    }

    #[test]
    fn kv_span() {
        assert_eq!(MaskSpec::Causal.kv_span_in(16, 4, 8), 8);
        assert_eq!(MaskSpec::Full.kv_span_in(16, 4, 8), 16);
        // Doc [3,3,8,2]: queries 4..8 cross docs 1 and 2. Doc 1 spans
        // keys 3..6 (span from doc start: up to position 6−3=3... the
        // max over docs of (hi − doc_start)): doc1 hi=6, start=3 -> 3;
        // doc2 hi=8, start=6 -> 2. Widest span = 3.
        let m = MaskSpec::document(vec![3, 3, 8, 2]);
        assert_eq!(m.kv_span_in(16, 4, 8), 3);
        // A later chunk deep inside doc 2 spans from doc 2's start.
        assert_eq!(m.kv_span_in(16, 12, 14), 8);
    }

    #[test]
    fn ranges_partition_document_totals() {
        let m = MaskSpec::document(vec![5, 11, 2, 14]);
        let seq = 32;
        let total = m.attended_pairs(seq);
        let parts: u128 = (0..4)
            .map(|i| m.attended_pairs_in(seq, i * 8, (i + 1) * 8))
            .sum();
        assert_eq!(total, parts);
    }

    #[test]
    fn empty_range_is_zero() {
        assert_eq!(MaskSpec::Causal.attended_pairs_in(16, 5, 5), 0);
        assert_eq!(MaskSpec::Causal.kv_span_in(16, 5, 5), 0);
    }

    #[test]
    #[should_panic(expected = "sum to seq")]
    fn mismatched_doc_lens_panic() {
        MaskSpec::document(vec![3, 3]).attended_pairs(16);
    }
}
