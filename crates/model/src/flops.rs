//! FLOPs and byte accounting for transformer layers.
//!
//! Costs are expressed as [`KernelCost`] (flops, HBM bytes, kernel
//! launches) for a *full, unsharded* layer processing `tokens` tokens;
//! the parallelism layer scales them for TP/CP sharding. Attention work
//! is mask-aware: it is proportional to the number of attended
//! (query, key) pairs, so document masks (§4) reduce and *unbalance*
//! attention FLOPs exactly as in the paper.

use crate::config::TransformerConfig;
use crate::masks::MaskSpec;
use cluster_model::gpu::{Dtype, KernelCost};

/// FLOPs per attended (query, key) pair per head: 2 for `Q·Kᵀ` and 2 for
/// `P·V` per head-dim element.
pub const FLOPS_PER_PAIR_PER_HEADDIM: f64 = 4.0;

/// Forward cost of the four attention projections (Q, K, V, O) for
/// `tokens` tokens.
pub fn attention_projections_fwd(cfg: &TransformerConfig, tokens: u64) -> KernelCost {
    let h = cfg.hidden_dim;
    KernelCost::gemm(tokens, cfg.q_dim() + 2 * cfg.kv_dim(), h, Dtype::Bf16)
        .merge(KernelCost::gemm(tokens, h, cfg.q_dim(), Dtype::Bf16))
}

/// Forward cost of the fused attention kernel itself for a workload of
/// `pairs` attended (query, key) pairs across all of `cfg`'s heads.
///
/// Bytes model a FlashAttention-style kernel: Q/K/V read once, output
/// written once (the score matrix never hits HBM).
pub fn attention_kernel_fwd(cfg: &TransformerConfig, tokens: u64, kv_tokens: u64, pairs: u128) -> KernelCost {
    let e = Dtype::Bf16.bytes() as f64;
    KernelCost {
        flops: FLOPS_PER_PAIR_PER_HEADDIM * cfg.head_dim as f64 * cfg.num_heads as f64 * pairs as f64,
        bytes: e * (tokens as f64 * cfg.q_dim() as f64 * 2.0
            + kv_tokens as f64 * cfg.kv_dim() as f64 * 2.0),
        launches: 1,
    }
}

/// Forward cost of one SwiGLU FFN for `tokens` tokens (gate+up fused,
/// elementwise SiLU·mul, down projection).
pub fn ffn_fwd(cfg: &TransformerConfig, tokens: u64) -> KernelCost {
    let h = cfg.hidden_dim;
    let f = cfg.ffn_dim;
    let e = Dtype::Bf16.bytes() as f64;
    KernelCost::gemm(tokens, 2 * f, h, Dtype::Bf16)
        .merge(KernelCost::gemm(tokens, h, f, Dtype::Bf16))
        .merge(KernelCost {
            // SiLU(gate) ⊙ up: read 2f, write f per token.
            flops: 2.0 * tokens as f64 * f as f64,
            bytes: e * 3.0 * tokens as f64 * f as f64,
            launches: 1,
        })
}

/// Forward cost of the two RMSNorms and two residual adds of a layer.
pub fn norms_fwd(cfg: &TransformerConfig, tokens: u64) -> KernelCost {
    let e = Dtype::Bf16.bytes() as f64;
    let h = cfg.hidden_dim as f64;
    KernelCost {
        flops: 8.0 * tokens as f64 * h,
        bytes: e * 8.0 * tokens as f64 * h,
        launches: 4,
    }
}

/// Forward cost of one full self-attention transformer layer for
/// `tokens` query tokens attending `kv_tokens` keys with `pairs`
/// attended pairs.
pub fn self_attention_layer_fwd(
    cfg: &TransformerConfig,
    tokens: u64,
    kv_tokens: u64,
    pairs: u128,
) -> KernelCost {
    attention_projections_fwd(cfg, tokens)
        .merge(attention_kernel_fwd(cfg, tokens, kv_tokens, pairs))
        .merge(ffn_fwd(cfg, tokens))
        .merge(norms_fwd(cfg, tokens))
}

/// Convenience: one self-attention layer under `mask` at `seq`, for one
/// sequence (queries = keys = `seq`).
pub fn layer_fwd_with_mask(cfg: &TransformerConfig, seq: u64, mask: &MaskSpec) -> KernelCost {
    self_attention_layer_fwd(cfg, seq, seq, mask.attended_pairs(seq))
}

/// Forward cost of the input embedding (a gather: bytes only).
pub fn embedding_fwd(cfg: &TransformerConfig, tokens: u64) -> KernelCost {
    let e = Dtype::Bf16.bytes() as f64;
    KernelCost {
        flops: 0.0,
        bytes: e * tokens as f64 * cfg.hidden_dim as f64 * 2.0,
        launches: 1,
    }
}

/// Forward cost of the output head (final norm + logits GEMM +
/// softmax/cross-entropy pass over the vocabulary).
pub fn output_head_fwd(cfg: &TransformerConfig, tokens: u64) -> KernelCost {
    let e = Dtype::Bf16.bytes() as f64;
    KernelCost::gemm(tokens, cfg.vocab_size, cfg.hidden_dim, Dtype::Bf16).merge(KernelCost {
        flops: 5.0 * tokens as f64 * cfg.vocab_size as f64,
        bytes: e * 2.0 * tokens as f64 * cfg.vocab_size as f64,
        launches: 2,
    })
}

/// Backward cost from a forward cost.
///
/// A trainable region computes both input gradients and weight
/// gradients (≈ 2× forward flops); a frozen region (§3.2.2: the text
/// model's self-attention layers in multimodal training) computes input
/// gradients only (≈ 1× forward).
pub fn backward(fwd: KernelCost, frozen: bool) -> KernelCost {
    let factor = if frozen { 1.0 } else { 2.0 };
    KernelCost {
        flops: fwd.flops * factor,
        bytes: fwd.bytes * factor,
        launches: fwd.launches * if frozen { 1 } else { 2 },
    }
}

/// Total model FLOPs for one token's forward **and** backward pass —
/// the numerator of the paper's TFLOPs/GPU metric (§7.3). Attention
/// FLOPs use the causal mask at `seq`.
pub fn model_flops_per_token(cfg: &TransformerConfig, seq: u64) -> f64 {
    let mask = MaskSpec::Causal;
    let fwd_layer = layer_fwd_with_mask(cfg, seq, &mask);
    let fwd = fwd_layer.flops * cfg.num_layers as f64
        + output_head_fwd(cfg, seq).flops;
    // fwd + bwd(2×fwd) = 3× forward, normalized per token.
    3.0 * fwd / seq as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TransformerConfig {
        TransformerConfig::llama3_405b()
    }

    #[test]
    fn linear_flops_match_six_nd_rule() {
        // fwd+bwd linear flops per token ≈ 6 × params (ignoring
        // attention pairs and vocab softmax).
        let c = cfg();
        let seq = 8192;
        let per_token = model_flops_per_token(&c, seq);
        let six_nd = 6.0 * c.total_params() as f64;
        let ratio = per_token / six_nd;
        // Attention adds a noticeable but bounded overhead at 8K.
        assert!((1.0..1.35).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn attention_kernel_scales_with_pairs() {
        let c = cfg();
        let causal = MaskSpec::Causal.attended_pairs(8192);
        let doc = MaskSpec::document(vec![1024; 8]).attended_pairs(8192);
        let a = attention_kernel_fwd(&c, 8192, 8192, causal);
        let b = attention_kernel_fwd(&c, 8192, 8192, doc);
        assert!(a.flops > b.flops * 6.0, "causal ≫ doc-masked work");
        // Bytes are identical: same tensors move regardless of mask.
        assert_eq!(a.bytes, b.bytes);
    }

    #[test]
    fn backward_doubles_trainable_halves_frozen() {
        let c = cfg();
        let fwd = ffn_fwd(&c, 1024);
        let bw = backward(fwd, false);
        let bw_frozen = backward(fwd, true);
        assert_eq!(bw.flops, 2.0 * fwd.flops);
        assert_eq!(bw_frozen.flops, fwd.flops);
    }

    #[test]
    fn output_head_dominated_by_vocab_gemm() {
        let c = cfg();
        let head = output_head_fwd(&c, 8192);
        let expected_gemm = 2.0 * 8192.0 * c.vocab_size as f64 * c.hidden_dim as f64;
        assert!(head.flops >= expected_gemm);
        assert!(head.flops < expected_gemm * 1.1);
    }

    #[test]
    fn layer_flops_per_token_roughly_six_times_layer_params_over_three() {
        // One layer fwd ≈ 2 × layer_params flops per token (+ attention).
        let c = cfg();
        let fwd = layer_fwd_with_mask(&c, 8192, &MaskSpec::Causal);
        let per_token = fwd.flops / 8192.0;
        let two_p = 2.0 * c.layer_params() as f64;
        assert!(per_token > two_p);
        assert!(per_token < two_p * 1.5);
    }

    #[test]
    fn embedding_is_memory_only() {
        let e = embedding_fwd(&cfg(), 1000);
        assert_eq!(e.flops, 0.0);
        assert!(e.bytes > 0.0);
    }

    #[test]
    fn attention_projection_flops() {
        let c = cfg();
        let p = attention_projections_fwd(&c, 100);
        let expect = 2.0
            * 100.0
            * ((c.q_dim() + 2 * c.kv_dim()) as f64 * c.hidden_dim as f64
                + c.q_dim() as f64 * c.hidden_dim as f64);
        assert!((p.flops - expect).abs() / expect < 1e-12);
    }
}
