//! Memory accounting: parameters, gradients, optimizer state and
//! activations.
//!
//! Sizes are for *unsharded* quantities; the parallelism layer divides
//! them across FSDP shards, TP ranks and pipeline stages. The numbers
//! follow the paper's precision policy (§6.2): BF16 parameters for
//! compute and communication, FP32 gradient accumulators, and FP32
//! Adam optimizer state.

use crate::config::TransformerConfig;

/// Bytes used per parameter by each training-state component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecisionPolicy {
    /// Bytes per parameter for the compute copy of weights (BF16 = 2).
    pub param_bytes: u64,
    /// Bytes per parameter for the gradient buffer. The paper uses
    /// FP32 accumulation for DP reduce-scatter and PP micro-batch
    /// accumulation (§6.2) — 4 bytes.
    pub grad_bytes: u64,
    /// Bytes per parameter of optimizer state: FP32 master weight +
    /// two FP32 Adam moments = 12.
    pub optim_bytes: u64,
}

impl PrecisionPolicy {
    /// The Llama 3 policy: BF16 params, FP32 grads, FP32 Adam state.
    pub fn llama3() -> PrecisionPolicy {
        PrecisionPolicy {
            param_bytes: 2,
            grad_bytes: 4,
            optim_bytes: 12,
        }
    }

    /// A fully-BF16 policy (used as the "before" point when
    /// demonstrating why FP32 accumulation is needed).
    pub fn all_bf16() -> PrecisionPolicy {
        PrecisionPolicy {
            param_bytes: 2,
            grad_bytes: 2,
            optim_bytes: 12,
        }
    }

    /// Total training-state bytes per parameter.
    pub fn state_bytes_per_param(&self) -> u64 {
        self.param_bytes + self.grad_bytes + self.optim_bytes
    }
}

/// Activation bytes saved for backward, per token, for one transformer
/// layer, unsharded (TP/SP divides this by the TP degree).
///
/// Counts the tensors a FlashAttention-based layer keeps: both norm
/// outputs, Q/K/V, the attention output, the three FFN intermediates
/// and the two block outputs, all in BF16. The attention score matrix
/// never materializes.
pub fn activation_bytes_per_token(cfg: &TransformerConfig) -> u64 {
    let h = cfg.hidden_dim;
    let elems =
        // ln1 out + ln2 out + residual streams saved at block outputs.
        4 * h
        // q, k, v
        + cfg.q_dim() + 2 * cfg.kv_dim()
        // attention output (pre-O-projection)
        + cfg.q_dim()
        // gate, up, silu·mul
        + 3 * cfg.ffn_dim;
    2 * elems
}

/// Activation bytes per token held by the input-embedding stage (its
/// BF16 output only).
pub fn embedding_activation_bytes_per_token(cfg: &TransformerConfig) -> u64 {
    2 * cfg.hidden_dim
}

/// Activation bytes per token held by the output head: the final-norm
/// input/output plus BF16 logits over the vocabulary — the §7.1.2
/// "128 K vocabulary ⇒ large output module on the last PP rank" term.
pub fn output_head_activation_bytes_per_token(cfg: &TransformerConfig) -> u64 {
    2 * (2 * cfg.hidden_dim + cfg.vocab_size)
}

/// Bytes of the boundary activation passed between pipeline stages,
/// per token (one BF16 hidden vector).
pub fn boundary_activation_bytes_per_token(cfg: &TransformerConfig) -> u64 {
    2 * cfg.hidden_dim
}

/// KV-cache bytes per resident token for **one** transformer layer:
/// one BF16 key plus one BF16 value vector at the (GQA-reduced) KV
/// width. This is the quantity paged by the inference engine — a KV
/// block of `B` tokens costs `B ×` this on every layer it spans.
pub fn kv_cache_bytes_per_token_per_layer(cfg: &TransformerConfig) -> u64 {
    2 * 2 * cfg.kv_dim()
}

/// KV-cache bytes per resident token across the whole (unsharded)
/// model — the §8.1-style capacity figure: resident sequences × mean
/// context × this must fit in what HBM the weights leave free.
pub fn kv_cache_bytes_per_token(cfg: &TransformerConfig) -> u64 {
    cfg.num_layers * kv_cache_bytes_per_token_per_layer(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama3_policy_totals_18_bytes() {
        let p = PrecisionPolicy::llama3();
        assert_eq!(p.state_bytes_per_param(), 18);
    }

    #[test]
    fn activation_magnitude_for_405b() {
        // ≈ 0.5 MB per token per layer unsharded for the 405B shape,
        // matching the back-of-envelope in the design doc.
        let b = activation_bytes_per_token(&TransformerConfig::llama3_405b());
        assert!(
            (400_000..700_000).contains(&b),
            "got {b} bytes/token/layer"
        );
    }

    #[test]
    fn head_activation_dominated_by_logits() {
        let cfg = TransformerConfig::llama3_405b();
        let head = output_head_activation_bytes_per_token(&cfg);
        assert!(head > 2 * cfg.vocab_size);
        // Head activations dwarf a regular layer's boundary tensor.
        assert!(head > 7 * boundary_activation_bytes_per_token(&cfg));
    }

    #[test]
    fn state_bytes_scale_with_model() {
        let cfg = TransformerConfig::llama3_405b();
        let p = PrecisionPolicy::llama3();
        let total = cfg.total_params() * p.state_bytes_per_param();
        // 405B × 18 B ≈ 7.3 TB of training state before sharding —
        // the §5.1 argument for why the model cannot fit without
        // 3D/4D parallelism.
        assert!(total > 7_000_000_000_000);
    }

    #[test]
    fn kv_cache_reflects_gqa_compression() {
        // 405B: 128 q-heads but only 8 KV heads, so the cache is 16×
        // smaller than an MHA cache would be.
        let cfg = TransformerConfig::llama3_405b();
        let per_layer = kv_cache_bytes_per_token_per_layer(&cfg);
        assert_eq!(per_layer, 4 * cfg.kv_dim());
        assert_eq!(per_layer * 16, 4 * cfg.q_dim());
        assert_eq!(kv_cache_bytes_per_token(&cfg), cfg.num_layers * per_layer);
    }

    #[test]
    fn bf16_policy_smaller_than_llama3_policy() {
        assert!(
            PrecisionPolicy::all_bf16().state_bytes_per_param()
                < PrecisionPolicy::llama3().state_bytes_per_param()
        );
    }
}
