//! Transformer model configurations.
//!
//! Describes the dense Llama 3 architecture family: pre-norm
//! transformer blocks with grouped-query attention (GQA), SwiGLU feed
//! forward networks, untied input embedding and output head. The
//! scaled-down variants used in the paper's §7.1 pipeline experiments
//! (same dimensions as 405B, fewer layers) are provided too.


/// Dimensions of a dense GQA transformer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TransformerConfig {
    /// Human-readable name.
    pub name: String,
    /// Model (hidden) dimension.
    pub hidden_dim: u64,
    /// Number of query heads.
    pub num_heads: u64,
    /// Number of key/value heads (GQA: `num_kv_heads < num_heads`).
    pub num_kv_heads: u64,
    /// Per-head dimension.
    pub head_dim: u64,
    /// SwiGLU intermediate dimension.
    pub ffn_dim: u64,
    /// Vocabulary size (128 K for Llama 3, §7.1.2).
    pub vocab_size: u64,
    /// Number of transformer layers.
    pub num_layers: u64,
}

impl TransformerConfig {
    /// Llama 3 405B: 126 layers (reduced from 128 for pipeline balance,
    /// §3.1.2), hidden 16384, 128 query heads, 8 KV heads.
    pub fn llama3_405b() -> TransformerConfig {
        TransformerConfig {
            name: "llama3-405b".to_string(),
            hidden_dim: 16384,
            num_heads: 128,
            num_kv_heads: 8,
            head_dim: 128,
            ffn_dim: 53248,
            vocab_size: 128_256,
            num_layers: 126,
        }
    }

    /// Llama 3 70B.
    pub fn llama3_70b() -> TransformerConfig {
        TransformerConfig {
            name: "llama3-70b".to_string(),
            hidden_dim: 8192,
            num_heads: 64,
            num_kv_heads: 8,
            head_dim: 128,
            ffn_dim: 28672,
            vocab_size: 128_256,
            num_layers: 80,
        }
    }

    /// Llama 3 8B.
    pub fn llama3_8b() -> TransformerConfig {
        TransformerConfig {
            name: "llama3-8b".to_string(),
            hidden_dim: 4096,
            num_heads: 32,
            num_kv_heads: 8,
            head_dim: 128,
            ffn_dim: 14336,
            vocab_size: 128_256,
            num_layers: 32,
        }
    }

    /// The §7.1 scaled-down 405B: identical dimensions, `layers` layers
    /// (26 balanced / 28 unbalanced in the paper's experiments).
    pub fn llama3_405b_scaled(layers: u64) -> TransformerConfig {
        let mut cfg = TransformerConfig::llama3_405b();
        cfg.name = format!("llama3-405b-{layers}L");
        cfg.num_layers = layers;
        cfg
    }

    /// Returns a copy with a different layer count (model co-design
    /// experiments, §3.1.2).
    pub fn with_layers(mut self, layers: u64) -> TransformerConfig {
        self.num_layers = layers;
        self
    }

    /// KV projection width (`num_kv_heads × head_dim`).
    pub fn kv_dim(&self) -> u64 {
        self.num_kv_heads * self.head_dim
    }

    /// Query projection width (`num_heads × head_dim`).
    pub fn q_dim(&self) -> u64 {
        self.num_heads * self.head_dim
    }

    /// GQA group size: query heads per KV head.
    ///
    /// # Panics
    /// Panics if `num_kv_heads` does not divide `num_heads`.
    pub fn gqa_group(&self) -> u64 {
        assert!(
            self.num_kv_heads > 0 && self.num_heads.is_multiple_of(self.num_kv_heads),
            "kv heads must divide query heads"
        );
        self.num_heads / self.num_kv_heads
    }

    /// Parameter count of one transformer layer's attention block
    /// (Q, K, V, O projections; norms excluded).
    pub fn attention_params(&self) -> u64 {
        let h = self.hidden_dim;
        // Q: h×q_dim, O: q_dim×h, K and V: h×kv_dim each.
        2 * h * self.q_dim() + 2 * h * self.kv_dim()
    }

    /// Parameter count of one SwiGLU FFN (gate, up, down projections).
    pub fn ffn_params(&self) -> u64 {
        3 * self.hidden_dim * self.ffn_dim
    }

    /// Parameter count of one full transformer layer (attention + FFN +
    /// two RMSNorm weights).
    pub fn layer_params(&self) -> u64 {
        self.attention_params() + self.ffn_params() + 2 * self.hidden_dim
    }

    /// Input-embedding parameter count.
    pub fn embedding_params(&self) -> u64 {
        self.vocab_size * self.hidden_dim
    }

    /// Output-head parameter count (untied from the embedding, plus the
    /// final norm).
    pub fn output_head_params(&self) -> u64 {
        self.vocab_size * self.hidden_dim + self.hidden_dim
    }

    /// Total parameter count.
    pub fn total_params(&self) -> u64 {
        self.num_layers * self.layer_params()
            + self.embedding_params()
            + self.output_head_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama3_405b_parameter_count() {
        let cfg = TransformerConfig::llama3_405b();
        let total = cfg.total_params();
        // ~405B within a few percent (126-layer production configuration).
        assert!(
            (395e9..415e9).contains(&(total as f64)),
            "got {:.1}B",
            total as f64 / 1e9
        );
    }

    #[test]
    fn llama3_70b_parameter_count() {
        let total = TransformerConfig::llama3_70b().total_params();
        assert!(
            (68e9..73e9).contains(&(total as f64)),
            "got {:.1}B",
            total as f64 / 1e9
        );
    }

    #[test]
    fn llama3_8b_parameter_count() {
        let total = TransformerConfig::llama3_8b().total_params();
        assert!(
            (7.5e9..8.5e9).contains(&(total as f64)),
            "got {:.2}B",
            total as f64 / 1e9
        );
    }

    #[test]
    fn gqa_group_size() {
        assert_eq!(TransformerConfig::llama3_405b().gqa_group(), 16);
        assert_eq!(TransformerConfig::llama3_8b().gqa_group(), 4);
    }

    #[test]
    fn kv_smaller_than_q_under_gqa() {
        let cfg = TransformerConfig::llama3_405b();
        assert!(cfg.kv_dim() < cfg.q_dim());
        assert_eq!(cfg.q_dim(), cfg.hidden_dim);
    }

    #[test]
    fn scaled_model_keeps_dimensions() {
        let full = TransformerConfig::llama3_405b();
        let scaled = TransformerConfig::llama3_405b_scaled(26);
        assert_eq!(scaled.num_layers, 26);
        assert_eq!(scaled.hidden_dim, full.hidden_dim);
        assert_eq!(scaled.layer_params(), full.layer_params());
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn bad_gqa_panics() {
        let mut cfg = TransformerConfig::llama3_8b();
        cfg.num_kv_heads = 5;
        cfg.gqa_group();
    }
}
