//! # llm-model
//!
//! Model substrate: Llama 3 transformer configurations (8B/70B/405B and
//! the paper's scaled-down variants), mask-aware FLOPs accounting,
//! memory accounting under the paper's precision policy, and the
//! multimodal (ViT + cross-attention) architecture of §3.2.
//!
//! ```
//! use llm_model::{MaskSpec, TransformerConfig};
//!
//! let cfg = TransformerConfig::llama3_405b();
//! assert!(cfg.total_params() > 400_000_000_000);
//! // Document masks do strictly less attention work than causal.
//! let doc = MaskSpec::document(vec![4096, 4096]);
//! assert!(doc.attended_pairs(8192) < MaskSpec::Causal.attended_pairs(8192));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod flops;
pub mod layers;
pub mod masks;
pub mod memory;
pub mod multimodal;

pub use config::TransformerConfig;
pub use layers::{LayerKind, ModelLayout};
pub use masks::MaskSpec;
pub use memory::PrecisionPolicy;
pub use multimodal::{CrossAttentionSpec, VitConfig};
