//! Property tests for the simulation engine.

use proptest::prelude::*;
use sim_engine::fluid::{FluidNet, Transfer};
use sim_engine::graph::TaskGraph;
use sim_engine::memory::{MemoryTracker, PoolId};
use sim_engine::stats::Summary;
use sim_engine::time::{SimDuration, SimTime};

proptest! {
    /// Random chains-with-cross-deps always execute (backward deps on a
    /// fixed stream order cannot deadlock), the makespan is at least
    /// the longest stream's busy time, and execution is deterministic.
    #[test]
    fn random_graphs_execute_deterministically(
        streams in 1usize..6,
        ops in prop::collection::vec((0usize..6, 1u64..1000, prop::collection::vec(any::<prop::sample::Index>(), 0..3)), 1..40),
    ) {
        let build = || {
            let mut g: TaskGraph<usize> = TaskGraph::new();
            let sids = g.add_streams(streams);
            let sids_copy = sids.clone();
            let mut ids = Vec::new();
            for (i, (s, dur, deps)) in ops.iter().enumerate() {
                let dep_ids: Vec<_> = deps
                    .iter()
                    .filter(|_| !ids.is_empty())
                    .map(|ix| *ix.get(&ids))
                    .collect();
                let id = g.add_op(
                    i,
                    SimDuration::from_nanos(*dur),
                    [sids[s % streams]],
                    dep_ids,
                );
                ids.push(id);
            }
            (g.execute().expect("backward deps cannot deadlock"), sids_copy)
        };
        let (a, sids) = build();
        let (b, _) = build();
        prop_assert_eq!(a.makespan(), b.makespan());
        // Makespan ≥ busiest stream.
        for &sid in &sids {
            prop_assert!(a.stream_busy(sid) <= a.makespan());
        }
        // Makespan ≤ serial sum of all durations.
        let serial: u64 = ops.iter().map(|(_, d, _)| *d).sum();
        prop_assert!(a.makespan().as_nanos() <= serial);
    }

    /// Fluid transfers never finish before their contention-free lower
    /// bound, and total delivered bytes are conserved.
    #[test]
    fn fluid_lower_bound(
        cap in 1.0f64..1e6,
        flows in prop::collection::vec(1.0f64..1e6, 1..8),
    ) {
        let mut net = FluidNet::new();
        let link = net.add_link(cap);
        let transfers: Vec<Transfer> = flows
            .iter()
            .map(|&b| Transfer { route: vec![link], bytes: b, start: SimTime::ZERO })
            .collect();
        let out = net.run(transfers).unwrap();
        for (o, &b) in out.iter().zip(&flows) {
            prop_assert!(o.finish.as_secs_f64() + 1e-9 >= b / cap);
        }
        // The link is fully utilized until the last byte: the last
        // finisher cannot beat total/capacity.
        let total: f64 = flows.iter().sum();
        let last = out.iter().map(|o| o.finish.as_secs_f64()).fold(0.0, f64::max);
        prop_assert!(last + 1e-6 >= total / cap);
    }

    /// Memory tracker: the peak is at least the final usage and at
    /// least the baseline; the timeline never dips below zero.
    #[test]
    fn memory_tracker_invariants(
        baseline in 0u64..1000,
        allocs in prop::collection::vec((0u64..1_000_000, 1i64..1000), 0..30),
    ) {
        let mut m = MemoryTracker::new(1);
        let p = PoolId(0);
        m.set_baseline(p, baseline);
        let mut live = Vec::new();
        for (at, delta) in &allocs {
            m.record(p, SimTime::from_nanos(*at), *delta);
            live.push((*at, *delta));
        }
        let peak = m.peak(p);
        prop_assert!(peak >= baseline);
        prop_assert!(peak >= m.final_usage(p));
        let max_possible: i64 = baseline as i64 + allocs.iter().map(|(_, d)| d).sum::<i64>().max(0)
            + allocs.iter().map(|(_, d)| d.abs()).sum::<i64>();
        prop_assert!((peak as i64) <= max_possible);
    }

    /// Summary statistics are order-invariant and bounded by min/max.
    #[test]
    fn summary_invariants(mut values in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let s1 = Summary::of(&values).unwrap();
        values.reverse();
        let s2 = Summary::of(&values).unwrap();
        prop_assert_eq!(s1.min, s2.min);
        prop_assert_eq!(s1.max, s2.max);
        prop_assert!((s1.mean - s2.mean).abs() < 1e-6);
        prop_assert!(s1.min <= s1.p50 && s1.p50 <= s1.max);
        prop_assert!(s1.min <= s1.mean && s1.mean <= s1.max);
    }
}
