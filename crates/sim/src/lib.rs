//! # sim-engine
//!
//! Deterministic simulation substrate for the `llama3-parallelism`
//! workspace — the timing machinery on which 4D-parallel training steps
//! are replayed and measured.
//!
//! The crate provides independent pieces:
//!
//! * [`time`] — integer-nanosecond simulated time ([`time::SimTime`],
//!   [`time::SimDuration`]).
//! * [`graph`] — a timing-graph executor: ops on FIFO streams with
//!   dependencies and collective (multi-stream barrier) semantics,
//!   including deadlock detection used to validate pipeline schedules.
//! * [`fluid`] — a max-min-fair fluid-flow network simulator for
//!   congestion and bandwidth-sharing studies.
//! * [`memory`] — per-pool allocation timelines and peak tracking.
//! * [`stats`] — summaries, percentiles and ASCII histograms for reports.
//!
//! Everything is deterministic: no wall-clock reads, no unordered-map
//! iteration affecting results, and all randomness (none in this crate)
//! is seeded by callers.
//!
//! ## Example: a two-rank collective
//!
//! ```
//! use sim_engine::graph::TaskGraph;
//! use sim_engine::time::SimDuration;
//!
//! let mut g: TaskGraph<&str> = TaskGraph::new();
//! let r0 = g.add_stream();
//! let r1 = g.add_stream();
//! g.add_op("compute", SimDuration::from_micros(10), [r0], []);
//! g.add_op("compute", SimDuration::from_micros(40), [r1], []);
//! let ag = g.add_op("all_gather", SimDuration::from_micros(5), [r0, r1], []);
//! let run = g.execute()?;
//! // Rank 0 waited 30us for rank 1 to join the all-gather.
//! assert_eq!(run.record(ag).max_sync_wait(), SimDuration::from_micros(30));
//! # Ok::<(), sim_engine::graph::GraphError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod fluid;
pub mod graph;
pub mod memory;
pub mod stats;
pub mod time;

pub use error::SimError;
pub use fluid::{FluidNet, Transfer, TransferOutcome};
pub use graph::{ExecutedGraph, GraphError, OpId, OpRecord, StreamId, TaskGraph};
pub use memory::{MemoryTracker, PoolId};
pub use stats::Summary;
pub use time::{SimDuration, SimTime};
