//! Simulated time.
//!
//! All simulator arithmetic uses integer nanoseconds so that results are
//! exactly reproducible across platforms; convenience conversions to and
//! from floating-point seconds are provided at the edges.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated timeline, in nanoseconds since simulation
/// start.
///
/// ```
/// use sim_engine::time::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// ```
/// use sim_engine::time::SimDuration;
/// let d = SimDuration::from_secs_f64(1.5e-6);
/// assert_eq!(d.as_nanos(), 1_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Elapsed time since `earlier`, saturating at zero if `earlier` is
    /// later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Duration in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// Duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scales the duration by a non-negative factor, rounding to the
    /// nearest nanosecond.
    pub fn scale(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Fraction `self / whole`, or 0 when `whole` is zero.
    pub fn ratio(self, whole: SimDuration) -> f64 {
        if whole.0 == 0 {
            0.0
        } else {
            self.0 as f64 / whole.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                // lint: allow(unwrap) — panicking on time underflow is the Sub impl's documented contract
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    /// Panics on underflow; use [`SimDuration::saturating_sub`] otherwise.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                // lint: allow(unwrap) — panicking on duration underflow is the Sub impl's documented contract
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 * 1e-9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 * 1e-6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 * 1e-3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_secs() {
        let d = SimDuration::from_secs_f64(1.234_567_891);
        assert_eq!(d.as_nanos(), 1_234_567_891);
        assert!((d.as_secs_f64() - 1.234_567_891).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NEG_INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_nanos(100);
        let t1 = t0 + SimDuration::from_nanos(50);
        assert_eq!(t1 - t0, SimDuration::from_nanos(50));
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
    }

    #[test]
    fn duration_scale_and_ratio() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.scale(0.5), SimDuration::from_micros(5));
        assert!((d.ratio(SimDuration::from_micros(40)) - 0.25).abs() < 1e-12);
        assert_eq!(d.ratio(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total, SimDuration::from_nanos(10));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimDuration::from_nanos(1) - SimDuration::from_nanos(2);
    }
}
