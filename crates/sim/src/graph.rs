//! Deterministic timing-graph execution.
//!
//! A training step (or any distributed program) is lowered to a directed
//! graph of *ops*. Each op occupies one or more FIFO *streams* — a stream
//! models an exclusive hardware queue such as a GPU compute stream, a
//! communication channel, or a CPU launch thread. Ops placed on the same
//! stream execute in the order they were added (program order).
//!
//! An op with several streams models a *collective*: it begins only when
//! every participating stream has reached it, runs for its duration on all
//! of them simultaneously, and completes everywhere at the same instant.
//! The per-stream gap between "stream became ready" and "collective
//! started" is recorded as *sync wait* — this is exactly the "waiting for
//! the slowest rank to join the collective" quantity analysed in §7.3.2 of
//! the paper.
//!
//! Dependencies may point at ops added *later* in program order (via
//! [`TaskGraph::add_dep`]); this is how pipeline-parallel receives are
//! wired to sends issued by other ranks. A schedule whose program orders
//! and dependencies admit no complete execution is reported as a
//! [`GraphError::Deadlock`], which the pipeline-schedule validators rely
//! on to reject broken schedules.
//!
//! Start times are fully determined by the graph — there are no
//! scheduling choices — so execution is deterministic and independent of
//! wall-clock time or hash-map iteration order.

use crate::time::{SimDuration, SimTime};
use std::fmt;

/// Identifies a FIFO stream within a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub(crate) u32);

impl StreamId {
    /// The index of this stream in creation order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream{}", self.0)
    }
}

/// Identifies an op within a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub(crate) u32);

impl OpId {
    /// The index of this op in creation order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Errors produced while executing a task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Execution stalled with ops remaining: the program deadlocks.
    ///
    /// Carries the ids of the ops that could not run. Pipeline-schedule
    /// validators use this to reject schedules whose send/recv ordering
    /// can never complete.
    Deadlock(Vec<OpId>),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Deadlock(ops) => {
                write!(f, "deadlock with {} ops unexecuted", ops.len())
            }
        }
    }
}

impl std::error::Error for GraphError {}

struct OpNode<M> {
    meta: M,
    duration: SimDuration,
    streams: Vec<StreamId>,
    deps: Vec<OpId>,
}

/// A buildable, executable timing graph.
///
/// `M` is caller-supplied metadata attached to each op (a label, an op
/// class, a rank, ...) and returned in the [`OpRecord`]s of the resulting
/// [`ExecutedGraph`].
///
/// ```
/// use sim_engine::graph::TaskGraph;
/// use sim_engine::time::SimDuration;
///
/// let mut g: TaskGraph<&str> = TaskGraph::new();
/// let s = g.add_stream();
/// let a = g.add_op("a", SimDuration::from_micros(3), [s], []);
/// let _b = g.add_op("b", SimDuration::from_micros(2), [s], [a]);
/// let run = g.execute()?;
/// assert_eq!(run.makespan(), SimDuration::from_micros(5));
/// # Ok::<(), sim_engine::graph::GraphError>(())
/// ```
pub struct TaskGraph<M> {
    ops: Vec<OpNode<M>>,
    stream_programs: Vec<Vec<OpId>>,
}

impl<M> Default for TaskGraph<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> TaskGraph<M> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        TaskGraph {
            ops: Vec::new(),
            stream_programs: Vec::new(),
        }
    }

    /// Creates an empty graph with preallocated op and stream arenas.
    ///
    /// Lowering code that knows its op count up front (pipeline
    /// schedules, step simulation) should use this to avoid repeated
    /// reallocation while building large graphs.
    pub fn with_capacity(ops: usize, streams: usize) -> Self {
        TaskGraph {
            ops: Vec::with_capacity(ops),
            stream_programs: Vec::with_capacity(streams),
        }
    }

    /// Adds a new FIFO stream and returns its id.
    pub fn add_stream(&mut self) -> StreamId {
        // lint: allow(unwrap) — a u32 id-space overflow is unrecoverable by the caller
        let id = StreamId(u32::try_from(self.stream_programs.len()).expect("too many streams"));
        self.stream_programs.push(Vec::new());
        id
    }

    /// Adds `n` streams, returning their ids in order.
    pub fn add_streams(&mut self, n: usize) -> Vec<StreamId> {
        (0..n).map(|_| self.add_stream()).collect()
    }

    /// Number of streams created so far.
    pub fn stream_count(&self) -> usize {
        self.stream_programs.len()
    }

    /// Number of ops created so far.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Adds an op occupying every stream in `streams` (program order on
    /// each stream is `add_op` call order) that waits for every op in
    /// `deps`. Further dependencies — including on ops added later — can
    /// be wired with [`TaskGraph::add_dep`].
    ///
    /// # Panics
    ///
    /// Panics if a stream or dependency id is invalid, `streams` is empty,
    /// or a stream is repeated — these are programming errors in the
    /// lowering code. (Deadlocks, which are *simulated-program* errors,
    /// are reported by [`TaskGraph::execute`] instead.)
    pub fn add_op(
        &mut self,
        meta: M,
        duration: SimDuration,
        streams: impl IntoIterator<Item = StreamId>,
        deps: impl IntoIterator<Item = OpId>,
    ) -> OpId {
        // lint: allow(unwrap) — a u32 id-space overflow is unrecoverable by the caller
        let id = OpId(u32::try_from(self.ops.len()).expect("too many ops"));
        let streams: Vec<StreamId> = streams.into_iter().collect();
        assert!(!streams.is_empty(), "{id} has no streams");
        for (i, s) in streams.iter().enumerate() {
            assert!(
                s.index() < self.stream_programs.len(),
                "{id} references unknown {s}"
            );
            assert!(!streams[..i].contains(s), "{id} lists {s} more than once");
        }
        let deps: Vec<OpId> = deps.into_iter().collect();
        for d in &deps {
            assert!(d.0 < id.0, "{id} constructor dep {d} must already exist");
        }
        for s in &streams {
            self.stream_programs[s.index()].push(id);
        }
        self.ops.push(OpNode {
            meta,
            duration,
            streams,
            deps,
        });
        id
    }

    /// The metadata of `op`.
    ///
    /// # Panics
    /// Panics if the id is invalid.
    pub fn op_meta(&self, op: OpId) -> &M {
        &self.ops[op.index()].meta
    }

    /// The streams `op` occupies, in the order they were given to
    /// [`TaskGraph::add_op`].
    ///
    /// # Panics
    /// Panics if the id is invalid.
    pub fn op_streams(&self, op: OpId) -> &[StreamId] {
        &self.ops[op.index()].streams
    }

    /// Every dependency of `op` wired so far — constructor deps followed
    /// by [`TaskGraph::add_dep`] edges, in insertion order. Static
    /// analyses (write-race detection) walk these edges without
    /// executing the graph.
    ///
    /// # Panics
    /// Panics if the id is invalid.
    pub fn op_deps(&self, op: OpId) -> &[OpId] {
        &self.ops[op.index()].deps
    }

    /// The FIFO program of one stream: its ops in program (execution)
    /// order. Two ops sharing a stream are totally ordered by their
    /// positions here.
    ///
    /// # Panics
    /// Panics if the id is invalid.
    pub fn stream_program(&self, stream: StreamId) -> &[OpId] {
        &self.stream_programs[stream.index()]
    }

    /// Iterates every op id in creation order.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> {
        (0..self.ops.len() as u32).map(OpId)
    }

    /// Makes `op` wait for `dep`. Unlike constructor deps, `dep` may have
    /// been added after `op` — this is how a pipeline receive is wired to
    /// a send that appears later in global creation order.
    ///
    /// # Panics
    ///
    /// Panics if either id is invalid.
    pub fn add_dep(&mut self, op: OpId, dep: OpId) {
        assert!(op.index() < self.ops.len(), "unknown {op}");
        assert!(dep.index() < self.ops.len(), "unknown dep {dep}");
        self.ops[op.index()].deps.push(dep);
    }

    /// Executes the graph, consuming it.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Deadlock`] if the per-stream program orders
    /// and the dependency edges admit no complete execution (e.g. a
    /// dependency cycle, or a receive ordered before the only op that
    /// could satisfy it on the same stream).
    pub fn execute(self) -> Result<ExecutedGraph<M>, GraphError> {
        let n = self.ops.len();
        let stream_count = self.stream_programs.len();

        // Reversed dependency edges ("who waits on me") in a flat CSR
        // arena: heads[i]..heads[i+1] indexes into `dependents`.
        let mut unmet: Vec<u32> = vec![0; n];
        let mut heads: Vec<u32> = vec![0; n + 1];
        for (i, op) in self.ops.iter().enumerate() {
            unmet[i] = op.deps.len() as u32;
            for d in &op.deps {
                heads[d.index() + 1] += 1;
            }
        }
        for i in 0..n {
            heads[i + 1] += heads[i];
        }
        let mut dependents: Vec<OpId> = vec![OpId(0); heads[n] as usize];
        let mut fill: Vec<u32> = heads[..n].to_vec();
        for (i, op) in self.ops.iter().enumerate() {
            for d in &op.deps {
                dependents[fill[d.index()] as usize] = OpId(i as u32);
                fill[d.index()] += 1;
            }
        }

        // Per-stream cursors into the (immutable) program vectors replace
        // the per-execute queue copies; flat start/finish/sync arenas
        // replace the Vec<Option<..>> churn of take-and-rebuild.
        let mut stream_cursor: Vec<u32> = vec![0; stream_count];
        let mut stream_free: Vec<SimTime> = vec![SimTime::ZERO; stream_count];
        let mut stream_busy: Vec<SimDuration> = vec![SimDuration::ZERO; stream_count];
        let mut executed: Vec<bool> = vec![false; n];
        let mut starts: Vec<SimTime> = vec![SimTime::ZERO; n];
        let mut finish: Vec<SimTime> = vec![SimTime::ZERO; n];
        let mut sync_waits: Vec<Vec<SimDuration>> = (0..n).map(|_| Vec::new()).collect();

        // Event-driven worklist. An op is runnable iff its dep count hit
        // zero AND it is at the front of all its streams. It is (re)pushed
        // exactly when either condition may newly hold: when its last dep
        // finishes, and when it becomes the front of a stream. A popped op
        // that is not yet runnable is simply dropped — the missing event
        // will push it again — so an empty worklist with unexecuted ops
        // remaining means no event can ever fire again: deadlock.
        let mut worklist: Vec<OpId> = (0..n as u32)
            .map(OpId)
            .filter(|id| unmet[id.index()] == 0)
            .collect();
        let mut done = 0usize;
        let mut makespan_end = SimTime::ZERO;

        while let Some(id) = worklist.pop() {
            let i = id.index();
            if executed[i] || unmet[i] != 0 {
                continue;
            }
            let node = &self.ops[i];
            let at_front = node.streams.iter().all(|s| {
                let prog = &self.stream_programs[s.index()];
                prog.get(stream_cursor[s.index()] as usize) == Some(&id)
            });
            if !at_front {
                continue;
            }

            let dep_ready = node
                .deps
                .iter()
                .map(|d| finish[d.index()])
                .max()
                .unwrap_or(SimTime::ZERO);
            let start = node
                .streams
                .iter()
                .map(|s| stream_free[s.index()])
                .chain(std::iter::once(dep_ready))
                .max()
                // lint: allow(unwrap) — the chained once() makes the iterator non-empty
                .expect("op has at least one stream");
            let end = start + node.duration;
            let mut sync_wait = Vec::with_capacity(node.streams.len());
            for s in &node.streams {
                let local_ready = stream_free[s.index()].max(dep_ready);
                sync_wait.push(start.saturating_since(local_ready));
            }
            for s in &node.streams {
                let si = s.index();
                stream_free[si] = end;
                stream_busy[si] += node.duration;
                stream_cursor[si] += 1;
                if let Some(front) = self.stream_programs[si].get(stream_cursor[si] as usize) {
                    worklist.push(*front);
                }
            }
            starts[i] = start;
            finish[i] = end;
            sync_waits[i] = sync_wait;
            executed[i] = true;
            done += 1;
            makespan_end = makespan_end.max(end);
            for &dep in &dependents[heads[i] as usize..heads[i + 1] as usize] {
                let j = dep.index();
                unmet[j] -= 1;
                if unmet[j] == 0 {
                    worklist.push(dep);
                }
            }
        }

        if done != n {
            let stuck: Vec<OpId> = executed
                .iter()
                .enumerate()
                .filter(|(_, e)| !**e)
                .map(|(i, _)| OpId(i as u32))
                .collect();
            return Err(GraphError::Deadlock(stuck));
        }

        let mut records: Vec<OpRecord<M>> = Vec::with_capacity(n);
        for (i, node) in self.ops.into_iter().enumerate() {
            records.push(OpRecord {
                id: OpId(i as u32),
                meta: node.meta,
                streams: node.streams,
                deps: node.deps,
                start: starts[i],
                end: finish[i],
                sync_wait: std::mem::take(&mut sync_waits[i]),
            });
        }
        let makespan = makespan_end.saturating_since(SimTime::ZERO);
        Ok(ExecutedGraph {
            records,
            stream_count,
            stream_busy,
            makespan,
        })
    }
}

/// Timing record of one executed op.
#[derive(Debug, Clone)]
pub struct OpRecord<M> {
    /// The op's id.
    pub id: OpId,
    /// Caller metadata.
    pub meta: M,
    /// Streams the op occupied.
    pub streams: Vec<StreamId>,
    /// Every dependency the op waited on — constructor deps followed by
    /// [`TaskGraph::add_dep`] wiring, in insertion order. Retained so
    /// external validators can re-check causality (each dep's `end` must
    /// not exceed this op's `start`) and acyclicity on the executed
    /// graph.
    pub deps: Vec<OpId>,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
    /// Per participating stream (parallel to `streams`): how long that
    /// stream sat idle between becoming ready for this op and the op
    /// actually starting — i.e. time spent waiting for slower peers.
    pub sync_wait: Vec<SimDuration>,
}

impl<M> OpRecord<M> {
    /// The op's duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// Largest per-stream sync wait.
    pub fn max_sync_wait(&self) -> SimDuration {
        self.sync_wait
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

/// The result of executing a [`TaskGraph`].
#[derive(Debug, Clone)]
pub struct ExecutedGraph<M> {
    records: Vec<OpRecord<M>>,
    stream_count: usize,
    stream_busy: Vec<SimDuration>,
    makespan: SimDuration,
}

impl<M> ExecutedGraph<M> {
    /// Total simulated time from zero to the last op end.
    pub fn makespan(&self) -> SimDuration {
        self.makespan
    }

    /// All op records, indexed by [`OpId`].
    pub fn records(&self) -> &[OpRecord<M>] {
        &self.records
    }

    /// The record for a specific op.
    pub fn record(&self, id: OpId) -> &OpRecord<M> {
        &self.records[id.index()]
    }

    /// Number of streams in the executed graph.
    pub fn stream_count(&self) -> usize {
        self.stream_count
    }

    /// Total busy time of one stream (sum of durations of its ops).
    /// Precomputed during execution, so this is O(1).
    pub fn stream_busy(&self, stream: StreamId) -> SimDuration {
        self.stream_busy[stream.index()]
    }

    /// Idle time of one stream within the makespan.
    pub fn stream_idle(&self, stream: StreamId) -> SimDuration {
        self.makespan.saturating_sub(self.stream_busy(stream))
    }

    /// Sum of durations of ops selected by `pred`.
    pub fn total_where(&self, mut pred: impl FnMut(&OpRecord<M>) -> bool) -> SimDuration {
        self.records
            .iter()
            .filter(|r| pred(r))
            .map(|r| r.duration())
            .sum()
    }

    /// Sum of max sync waits of ops selected by `pred` — the "waiting for
    /// the slowest participant" share of those ops.
    pub fn sync_wait_where(&self, mut pred: impl FnMut(&OpRecord<M>) -> bool) -> SimDuration {
        self.records
            .iter()
            .filter(|r| pred(r))
            .map(|r| r.max_sync_wait())
            .sum()
    }

    /// Consumes the run and returns the records.
    pub fn into_records(self) -> Vec<OpRecord<M>> {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn sequential_ops_on_one_stream() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let s = g.add_stream();
        g.add_op(0, us(3), [s], []);
        g.add_op(1, us(2), [s], []);
        let run = g.execute().unwrap();
        assert_eq!(run.makespan(), us(5));
        assert_eq!(run.records()[1].start, SimTime::from_nanos(3_000));
    }

    #[test]
    fn independent_streams_run_in_parallel() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let a = g.add_stream();
        let b = g.add_stream();
        g.add_op(0, us(3), [a], []);
        g.add_op(1, us(4), [b], []);
        let run = g.execute().unwrap();
        assert_eq!(run.makespan(), us(4));
    }

    #[test]
    fn dependency_across_streams() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let a = g.add_stream();
        let b = g.add_stream();
        let x = g.add_op(0, us(3), [a], []);
        g.add_op(1, us(2), [b], [x]);
        let run = g.execute().unwrap();
        assert_eq!(run.records()[1].start.as_nanos(), 3_000);
        assert_eq!(run.makespan(), us(5));
    }

    #[test]
    fn forward_dependency_via_add_dep() {
        // Receive is first in stream b's program but waits on a send added
        // later (on stream a).
        let mut g: TaskGraph<&str> = TaskGraph::new();
        let a = g.add_stream();
        let b = g.add_stream();
        let recv = g.add_op("recv", us(1), [b], []);
        let send = g.add_op("send", us(2), [a], []);
        g.add_dep(recv, send);
        let run = g.execute().unwrap();
        assert_eq!(run.record(recv).start.as_nanos(), 2_000);
    }

    #[test]
    fn records_retain_dependency_edges() {
        let mut g: TaskGraph<&str> = TaskGraph::new();
        let a = g.add_stream();
        let b = g.add_stream();
        let recv = g.add_op("recv", us(1), [b], []);
        let send = g.add_op("send", us(2), [a], []);
        g.add_dep(recv, send);
        let run = g.execute().unwrap();
        assert_eq!(run.record(recv).deps, vec![send]);
        assert!(run.record(send).deps.is_empty());
        assert!(run.record(recv).start >= run.record(send).end);
    }

    #[test]
    fn collective_waits_for_slowest_and_records_skew() {
        let mut g: TaskGraph<&str> = TaskGraph::new();
        let a = g.add_stream();
        let b = g.add_stream();
        g.add_op("fast", us(1), [a], []);
        g.add_op("slow", us(5), [b], []);
        let c = g.add_op("coll", us(2), [a, b], []);
        let run = g.execute().unwrap();
        let rec = run.record(c);
        assert_eq!(rec.start.as_nanos(), 5_000);
        assert_eq!(rec.end.as_nanos(), 7_000);
        assert_eq!(rec.sync_wait, vec![us(4), us(0)]);
        assert_eq!(rec.max_sync_wait(), us(4));
    }

    #[test]
    fn fifo_order_is_program_order() {
        // Op 1 is added before op 2 on the same stream; even though op 2
        // has no deps it must wait behind op 1's dependency chain.
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let a = g.add_stream();
        let b = g.add_stream();
        let slow = g.add_op(0, us(10), [b], []);
        g.add_op(1, us(1), [a], [slow]);
        g.add_op(2, us(1), [a], []);
        let run = g.execute().unwrap();
        assert_eq!(run.records()[1].start.as_nanos(), 10_000);
        assert_eq!(run.records()[2].start.as_nanos(), 11_000);
    }

    #[test]
    fn dependency_cycle_deadlocks() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let s = g.add_stream();
        let t = g.add_stream();
        let a = g.add_op(0, us(1), [s], []);
        let b = g.add_op(1, us(1), [t], []);
        g.add_dep(a, b);
        g.add_dep(b, a);
        match g.execute() {
            Err(GraphError::Deadlock(stuck)) => assert_eq!(stuck.len(), 2),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn recv_ordered_before_its_send_on_same_stream_deadlocks() {
        // Stream s program: [recv, send]; recv waits on send, which can
        // never reach the front. This is the canonical broken pipeline
        // schedule.
        let mut g: TaskGraph<&str> = TaskGraph::new();
        let s = g.add_stream();
        let recv = g.add_op("recv", us(1), [s], []);
        let send = g.add_op("send", us(1), [s], []);
        g.add_dep(recv, send);
        assert!(matches!(g.execute(), Err(GraphError::Deadlock(_))));
    }

    #[test]
    fn partial_deadlock_reports_only_stuck_ops() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let s = g.add_stream();
        let t = g.add_stream();
        g.add_op(0, us(1), [s], []); // runs fine
        let a = g.add_op(1, us(1), [t], []);
        let b = g.add_op(2, us(1), [t], []);
        g.add_dep(a, b); // a before b on t, but a waits for b
        match g.execute() {
            Err(GraphError::Deadlock(stuck)) => {
                assert_eq!(stuck, vec![a, b]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn busy_idle_accounting() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let a = g.add_stream();
        let b = g.add_stream();
        g.add_op(0, us(3), [a], []);
        g.add_op(1, us(7), [b], []);
        let run = g.execute().unwrap();
        assert_eq!(run.stream_busy(StreamId(0)), us(3));
        assert_eq!(run.stream_idle(StreamId(0)), us(4));
        assert_eq!(run.stream_idle(StreamId(1)), us(0));
    }

    #[test]
    fn total_and_sync_wait_filters() {
        let mut g: TaskGraph<&str> = TaskGraph::new();
        let a = g.add_stream();
        let b = g.add_stream();
        g.add_op("comp", us(4), [a], []);
        g.add_op("comp", us(1), [b], []);
        g.add_op("coll", us(2), [a, b], []);
        let run = g.execute().unwrap();
        assert_eq!(run.total_where(|r| r.meta == "comp"), us(5));
        assert_eq!(run.total_where(|r| r.meta == "coll"), us(2));
        // Stream b waited 3us for stream a to reach the collective.
        assert_eq!(run.sync_wait_where(|r| r.meta == "coll"), us(3));
    }

    #[test]
    #[should_panic(expected = "no streams")]
    fn empty_streams_panics() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        g.add_op(0, us(1), [], []);
    }

    #[test]
    fn zero_duration_ops() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let s = g.add_stream();
        for i in 0..100 {
            g.add_op(i, SimDuration::ZERO, [s], []);
        }
        let run = g.execute().unwrap();
        assert_eq!(run.makespan(), SimDuration::ZERO);
    }

    #[test]
    fn introspection_reflects_structure_before_execution() {
        let mut g: TaskGraph<&str> = TaskGraph::new();
        let a = g.add_stream();
        let b = g.add_stream();
        let recv = g.add_op("recv", us(1), [b], []);
        let send = g.add_op("send", us(2), [a], []);
        g.add_dep(recv, send);
        assert_eq!(*g.op_meta(recv), "recv");
        assert_eq!(g.op_streams(recv), &[b]);
        assert_eq!(g.op_deps(recv), &[send]);
        assert!(g.op_deps(send).is_empty());
        assert_eq!(g.stream_program(a), &[send]);
        assert_eq!(g.stream_program(b), &[recv]);
        assert_eq!(g.op_ids().collect::<Vec<_>>(), vec![recv, send]);
    }

    #[test]
    fn diamond_dependency_timing() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let streams = g.add_streams(3);
        let root = g.add_op(0, us(1), [streams[0]], []);
        let l = g.add_op(1, us(5), [streams[1]], [root]);
        let r = g.add_op(2, us(3), [streams[2]], [root]);
        let join = g.add_op(3, us(1), [streams[0]], [l, r]);
        let run = g.execute().unwrap();
        assert_eq!(run.record(join).start.as_nanos(), 6_000);
        assert_eq!(run.makespan(), us(7));
    }
}
