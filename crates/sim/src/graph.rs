//! Deterministic timing-graph execution.
//!
//! A training step (or any distributed program) is lowered to a directed
//! graph of *ops*. Each op occupies one or more FIFO *streams* — a stream
//! models an exclusive hardware queue such as a GPU compute stream, a
//! communication channel, or a CPU launch thread. Ops placed on the same
//! stream execute in the order they were added (program order).
//!
//! An op with several streams models a *collective*: it begins only when
//! every participating stream has reached it, runs for its duration on all
//! of them simultaneously, and completes everywhere at the same instant.
//! The per-stream gap between "stream became ready" and "collective
//! started" is recorded as *sync wait* — this is exactly the "waiting for
//! the slowest rank to join the collective" quantity analysed in §7.3.2 of
//! the paper.
//!
//! Dependencies may point at ops added *later* in program order (via
//! [`TaskGraph::add_dep`]); this is how pipeline-parallel receives are
//! wired to sends issued by other ranks. A schedule whose program orders
//! and dependencies admit no complete execution is reported as a
//! [`GraphError::Deadlock`], which the pipeline-schedule validators rely
//! on to reject broken schedules.
//!
//! Start times are fully determined by the graph — there are no
//! scheduling choices — so execution is deterministic and independent of
//! wall-clock time or hash-map iteration order.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifies a FIFO stream within a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StreamId(pub(crate) u32);

impl StreamId {
    /// The index of this stream in creation order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream{}", self.0)
    }
}

/// Identifies an op within a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(pub(crate) u32);

impl OpId {
    /// The index of this op in creation order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Errors produced while executing a task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Execution stalled with ops remaining: the program deadlocks.
    ///
    /// Carries the ids of the ops that could not run. Pipeline-schedule
    /// validators use this to reject schedules whose send/recv ordering
    /// can never complete.
    Deadlock(Vec<OpId>),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Deadlock(ops) => {
                write!(f, "deadlock with {} ops unexecuted", ops.len())
            }
        }
    }
}

impl std::error::Error for GraphError {}

struct OpNode<M> {
    meta: M,
    duration: SimDuration,
    streams: Vec<StreamId>,
    deps: Vec<OpId>,
}

/// A buildable, executable timing graph.
///
/// `M` is caller-supplied metadata attached to each op (a label, an op
/// class, a rank, ...) and returned in the [`OpRecord`]s of the resulting
/// [`ExecutedGraph`].
///
/// ```
/// use sim_engine::graph::TaskGraph;
/// use sim_engine::time::SimDuration;
///
/// let mut g: TaskGraph<&str> = TaskGraph::new();
/// let s = g.add_stream();
/// let a = g.add_op("a", SimDuration::from_micros(3), [s], []);
/// let _b = g.add_op("b", SimDuration::from_micros(2), [s], [a]);
/// let run = g.execute()?;
/// assert_eq!(run.makespan(), SimDuration::from_micros(5));
/// # Ok::<(), sim_engine::graph::GraphError>(())
/// ```
pub struct TaskGraph<M> {
    ops: Vec<OpNode<M>>,
    stream_programs: Vec<Vec<OpId>>,
}

impl<M> Default for TaskGraph<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> TaskGraph<M> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        TaskGraph {
            ops: Vec::new(),
            stream_programs: Vec::new(),
        }
    }

    /// Adds a new FIFO stream and returns its id.
    pub fn add_stream(&mut self) -> StreamId {
        let id = StreamId(u32::try_from(self.stream_programs.len()).expect("too many streams"));
        self.stream_programs.push(Vec::new());
        id
    }

    /// Adds `n` streams, returning their ids in order.
    pub fn add_streams(&mut self, n: usize) -> Vec<StreamId> {
        (0..n).map(|_| self.add_stream()).collect()
    }

    /// Number of streams created so far.
    pub fn stream_count(&self) -> usize {
        self.stream_programs.len()
    }

    /// Number of ops created so far.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Adds an op occupying every stream in `streams` (program order on
    /// each stream is `add_op` call order) that waits for every op in
    /// `deps`. Further dependencies — including on ops added later — can
    /// be wired with [`TaskGraph::add_dep`].
    ///
    /// # Panics
    ///
    /// Panics if a stream or dependency id is invalid, `streams` is empty,
    /// or a stream is repeated — these are programming errors in the
    /// lowering code. (Deadlocks, which are *simulated-program* errors,
    /// are reported by [`TaskGraph::execute`] instead.)
    pub fn add_op(
        &mut self,
        meta: M,
        duration: SimDuration,
        streams: impl IntoIterator<Item = StreamId>,
        deps: impl IntoIterator<Item = OpId>,
    ) -> OpId {
        let id = OpId(u32::try_from(self.ops.len()).expect("too many ops"));
        let streams: Vec<StreamId> = streams.into_iter().collect();
        assert!(!streams.is_empty(), "{id} has no streams");
        for (i, s) in streams.iter().enumerate() {
            assert!(
                s.index() < self.stream_programs.len(),
                "{id} references unknown {s}"
            );
            assert!(!streams[..i].contains(s), "{id} lists {s} more than once");
        }
        let deps: Vec<OpId> = deps.into_iter().collect();
        for d in &deps {
            assert!(d.0 < id.0, "{id} constructor dep {d} must already exist");
        }
        for s in &streams {
            self.stream_programs[s.index()].push(id);
        }
        self.ops.push(OpNode {
            meta,
            duration,
            streams,
            deps,
        });
        id
    }

    /// Makes `op` wait for `dep`. Unlike constructor deps, `dep` may have
    /// been added after `op` — this is how a pipeline receive is wired to
    /// a send that appears later in global creation order.
    ///
    /// # Panics
    ///
    /// Panics if either id is invalid.
    pub fn add_dep(&mut self, op: OpId, dep: OpId) {
        assert!(op.index() < self.ops.len(), "unknown {op}");
        assert!(dep.index() < self.ops.len(), "unknown dep {dep}");
        self.ops[op.index()].deps.push(dep);
    }

    /// Executes the graph, consuming it.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Deadlock`] if the per-stream program orders
    /// and the dependency edges admit no complete execution (e.g. a
    /// dependency cycle, or a receive ordered before the only op that
    /// could satisfy it on the same stream).
    pub fn execute(self) -> Result<ExecutedGraph<M>, GraphError> {
        let n = self.ops.len();
        let mut queues: Vec<VecDeque<OpId>> = self
            .stream_programs
            .iter()
            .map(|p| p.iter().copied().collect())
            .collect();
        let mut stream_free = vec![SimTime::ZERO; self.stream_programs.len()];
        let mut dependents: Vec<Vec<OpId>> = vec![Vec::new(); n];
        let mut unmet: Vec<u32> = vec![0; n];
        for (i, op) in self.ops.iter().enumerate() {
            for d in &op.deps {
                dependents[d.index()].push(OpId(i as u32));
                unmet[i] += 1;
            }
        }
        let mut finish: Vec<SimTime> = vec![SimTime::ZERO; n];
        let mut records: Vec<Option<OpRecord<M>>> = (0..n).map(|_| None).collect();
        let mut ops: Vec<Option<OpNode<M>>> = self.ops.into_iter().map(Some).collect();

        let mut ready: VecDeque<OpId> = (0..n as u32).map(OpId).collect();
        let mut done = 0usize;

        // Each pass drains the candidate worklist; completing an op
        // enqueues its dependents and new stream fronts. A full pass with
        // no progress means no op is runnable: deadlock.
        loop {
            let mut progressed = false;
            let mut pass: VecDeque<OpId> = std::mem::take(&mut ready);
            while let Some(id) = pass.pop_front() {
                if records[id.index()].is_some() {
                    continue;
                }
                let runnable = {
                    let node = ops[id.index()].as_ref().expect("op present until run");
                    unmet[id.index()] == 0
                        && node
                            .streams
                            .iter()
                            .all(|s| queues[s.index()].front() == Some(&id))
                };
                if !runnable {
                    continue;
                }
                let node = ops[id.index()].take().expect("op present until run");
                let dep_ready = node
                    .deps
                    .iter()
                    .map(|d| finish[d.index()])
                    .max()
                    .unwrap_or(SimTime::ZERO);
                let start = node
                    .streams
                    .iter()
                    .map(|s| stream_free[s.index()])
                    .chain(std::iter::once(dep_ready))
                    .max()
                    .expect("op has at least one stream");
                let end = start + node.duration;
                let sync_wait = node
                    .streams
                    .iter()
                    .map(|s| {
                        let local_ready = stream_free[s.index()].max(dep_ready);
                        start.saturating_since(local_ready)
                    })
                    .collect();
                for s in &node.streams {
                    queues[s.index()].pop_front();
                    stream_free[s.index()] = end;
                }
                finish[id.index()] = end;
                for dep in &dependents[id.index()] {
                    unmet[dep.index()] -= 1;
                    ready.push_back(*dep);
                }
                for s in &node.streams {
                    if let Some(front) = queues[s.index()].front() {
                        ready.push_back(*front);
                    }
                }
                records[id.index()] = Some(OpRecord {
                    id,
                    meta: node.meta,
                    streams: node.streams,
                    start,
                    end,
                    sync_wait,
                });
                done += 1;
                progressed = true;
            }
            if done == n {
                break;
            }
            if !progressed {
                // Refill and retry once from a complete candidate set:
                // the worklist may have been drained while ops became
                // runnable through a combination of events.
                if ready.is_empty() {
                    let stuck: Vec<OpId> = records
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.is_none())
                        .map(|(i, _)| OpId(i as u32))
                        .collect();
                    let retry: VecDeque<OpId> = stuck.iter().copied().collect();
                    ready = retry;
                    // One more full pass over everything unexecuted; if
                    // nothing runs, declare deadlock.
                    let before = done;
                    let mut pass2 = std::mem::take(&mut ready);
                    'retry: while let Some(id) = pass2.pop_front() {
                        if records[id.index()].is_some() {
                            continue 'retry;
                        }
                        let runnable = {
                            let node = ops[id.index()].as_ref().expect("op present");
                            unmet[id.index()] == 0
                                && node
                                    .streams
                                    .iter()
                                    .all(|s| queues[s.index()].front() == Some(&id))
                        };
                        if runnable {
                            ready.push_back(id);
                        }
                    }
                    if done == before && ready.is_empty() {
                        return Err(GraphError::Deadlock(stuck));
                    }
                } else {
                    continue;
                }
            }
        }

        let records: Vec<OpRecord<M>> = records
            .into_iter()
            .map(|r| r.expect("all ops recorded"))
            .collect();
        let makespan = records
            .iter()
            .map(|r| r.end)
            .max()
            .unwrap_or(SimTime::ZERO)
            .saturating_since(SimTime::ZERO);
        let stream_count = self.stream_programs.len();
        Ok(ExecutedGraph {
            records,
            stream_count,
            makespan,
        })
    }
}

/// Timing record of one executed op.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpRecord<M> {
    /// The op's id.
    pub id: OpId,
    /// Caller metadata.
    pub meta: M,
    /// Streams the op occupied.
    pub streams: Vec<StreamId>,
    /// Start instant.
    pub start: SimTime,
    /// End instant.
    pub end: SimTime,
    /// Per participating stream (parallel to `streams`): how long that
    /// stream sat idle between becoming ready for this op and the op
    /// actually starting — i.e. time spent waiting for slower peers.
    pub sync_wait: Vec<SimDuration>,
}

impl<M> OpRecord<M> {
    /// The op's duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// Largest per-stream sync wait.
    pub fn max_sync_wait(&self) -> SimDuration {
        self.sync_wait
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

/// The result of executing a [`TaskGraph`].
#[derive(Debug, Clone)]
pub struct ExecutedGraph<M> {
    records: Vec<OpRecord<M>>,
    stream_count: usize,
    makespan: SimDuration,
}

impl<M> ExecutedGraph<M> {
    /// Total simulated time from zero to the last op end.
    pub fn makespan(&self) -> SimDuration {
        self.makespan
    }

    /// All op records, indexed by [`OpId`].
    pub fn records(&self) -> &[OpRecord<M>] {
        &self.records
    }

    /// The record for a specific op.
    pub fn record(&self, id: OpId) -> &OpRecord<M> {
        &self.records[id.index()]
    }

    /// Number of streams in the executed graph.
    pub fn stream_count(&self) -> usize {
        self.stream_count
    }

    /// Total busy time of one stream (sum of durations of its ops).
    pub fn stream_busy(&self, stream: StreamId) -> SimDuration {
        self.records
            .iter()
            .filter(|r| r.streams.contains(&stream))
            .map(|r| r.duration())
            .sum()
    }

    /// Idle time of one stream within the makespan.
    pub fn stream_idle(&self, stream: StreamId) -> SimDuration {
        self.makespan.saturating_sub(self.stream_busy(stream))
    }

    /// Sum of durations of ops selected by `pred`.
    pub fn total_where(&self, mut pred: impl FnMut(&OpRecord<M>) -> bool) -> SimDuration {
        self.records
            .iter()
            .filter(|r| pred(r))
            .map(|r| r.duration())
            .sum()
    }

    /// Sum of max sync waits of ops selected by `pred` — the "waiting for
    /// the slowest participant" share of those ops.
    pub fn sync_wait_where(&self, mut pred: impl FnMut(&OpRecord<M>) -> bool) -> SimDuration {
        self.records
            .iter()
            .filter(|r| pred(r))
            .map(|r| r.max_sync_wait())
            .sum()
    }

    /// Consumes the run and returns the records.
    pub fn into_records(self) -> Vec<OpRecord<M>> {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn sequential_ops_on_one_stream() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let s = g.add_stream();
        g.add_op(0, us(3), [s], []);
        g.add_op(1, us(2), [s], []);
        let run = g.execute().unwrap();
        assert_eq!(run.makespan(), us(5));
        assert_eq!(run.records()[1].start, SimTime::from_nanos(3_000));
    }

    #[test]
    fn independent_streams_run_in_parallel() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let a = g.add_stream();
        let b = g.add_stream();
        g.add_op(0, us(3), [a], []);
        g.add_op(1, us(4), [b], []);
        let run = g.execute().unwrap();
        assert_eq!(run.makespan(), us(4));
    }

    #[test]
    fn dependency_across_streams() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let a = g.add_stream();
        let b = g.add_stream();
        let x = g.add_op(0, us(3), [a], []);
        g.add_op(1, us(2), [b], [x]);
        let run = g.execute().unwrap();
        assert_eq!(run.records()[1].start.as_nanos(), 3_000);
        assert_eq!(run.makespan(), us(5));
    }

    #[test]
    fn forward_dependency_via_add_dep() {
        // Receive is first in stream b's program but waits on a send added
        // later (on stream a).
        let mut g: TaskGraph<&str> = TaskGraph::new();
        let a = g.add_stream();
        let b = g.add_stream();
        let recv = g.add_op("recv", us(1), [b], []);
        let send = g.add_op("send", us(2), [a], []);
        g.add_dep(recv, send);
        let run = g.execute().unwrap();
        assert_eq!(run.record(recv).start.as_nanos(), 2_000);
    }

    #[test]
    fn collective_waits_for_slowest_and_records_skew() {
        let mut g: TaskGraph<&str> = TaskGraph::new();
        let a = g.add_stream();
        let b = g.add_stream();
        g.add_op("fast", us(1), [a], []);
        g.add_op("slow", us(5), [b], []);
        let c = g.add_op("coll", us(2), [a, b], []);
        let run = g.execute().unwrap();
        let rec = run.record(c);
        assert_eq!(rec.start.as_nanos(), 5_000);
        assert_eq!(rec.end.as_nanos(), 7_000);
        assert_eq!(rec.sync_wait, vec![us(4), us(0)]);
        assert_eq!(rec.max_sync_wait(), us(4));
    }

    #[test]
    fn fifo_order_is_program_order() {
        // Op 1 is added before op 2 on the same stream; even though op 2
        // has no deps it must wait behind op 1's dependency chain.
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let a = g.add_stream();
        let b = g.add_stream();
        let slow = g.add_op(0, us(10), [b], []);
        g.add_op(1, us(1), [a], [slow]);
        g.add_op(2, us(1), [a], []);
        let run = g.execute().unwrap();
        assert_eq!(run.records()[1].start.as_nanos(), 10_000);
        assert_eq!(run.records()[2].start.as_nanos(), 11_000);
    }

    #[test]
    fn dependency_cycle_deadlocks() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let s = g.add_stream();
        let t = g.add_stream();
        let a = g.add_op(0, us(1), [s], []);
        let b = g.add_op(1, us(1), [t], []);
        g.add_dep(a, b);
        g.add_dep(b, a);
        match g.execute() {
            Err(GraphError::Deadlock(stuck)) => assert_eq!(stuck.len(), 2),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn recv_ordered_before_its_send_on_same_stream_deadlocks() {
        // Stream s program: [recv, send]; recv waits on send, which can
        // never reach the front. This is the canonical broken pipeline
        // schedule.
        let mut g: TaskGraph<&str> = TaskGraph::new();
        let s = g.add_stream();
        let recv = g.add_op("recv", us(1), [s], []);
        let send = g.add_op("send", us(1), [s], []);
        g.add_dep(recv, send);
        assert!(matches!(g.execute(), Err(GraphError::Deadlock(_))));
    }

    #[test]
    fn partial_deadlock_reports_only_stuck_ops() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let s = g.add_stream();
        let t = g.add_stream();
        g.add_op(0, us(1), [s], []); // runs fine
        let a = g.add_op(1, us(1), [t], []);
        let b = g.add_op(2, us(1), [t], []);
        g.add_dep(a, b); // a before b on t, but a waits for b
        match g.execute() {
            Err(GraphError::Deadlock(stuck)) => {
                assert_eq!(stuck, vec![a, b]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn busy_idle_accounting() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let a = g.add_stream();
        let b = g.add_stream();
        g.add_op(0, us(3), [a], []);
        g.add_op(1, us(7), [b], []);
        let run = g.execute().unwrap();
        assert_eq!(run.stream_busy(StreamId(0)), us(3));
        assert_eq!(run.stream_idle(StreamId(0)), us(4));
        assert_eq!(run.stream_idle(StreamId(1)), us(0));
    }

    #[test]
    fn total_and_sync_wait_filters() {
        let mut g: TaskGraph<&str> = TaskGraph::new();
        let a = g.add_stream();
        let b = g.add_stream();
        g.add_op("comp", us(4), [a], []);
        g.add_op("comp", us(1), [b], []);
        g.add_op("coll", us(2), [a, b], []);
        let run = g.execute().unwrap();
        assert_eq!(run.total_where(|r| r.meta == "comp"), us(5));
        assert_eq!(run.total_where(|r| r.meta == "coll"), us(2));
        // Stream b waited 3us for stream a to reach the collective.
        assert_eq!(run.sync_wait_where(|r| r.meta == "coll"), us(3));
    }

    #[test]
    #[should_panic(expected = "no streams")]
    fn empty_streams_panics() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        g.add_op(0, us(1), [], []);
    }

    #[test]
    fn zero_duration_ops() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let s = g.add_stream();
        for i in 0..100 {
            g.add_op(i, SimDuration::ZERO, [s], []);
        }
        let run = g.execute().unwrap();
        assert_eq!(run.makespan(), SimDuration::ZERO);
    }

    #[test]
    fn diamond_dependency_timing() {
        let mut g: TaskGraph<u32> = TaskGraph::new();
        let streams = g.add_streams(3);
        let root = g.add_op(0, us(1), [streams[0]], []);
        let l = g.add_op(1, us(5), [streams[1]], [root]);
        let r = g.add_op(2, us(3), [streams[2]], [root]);
        let join = g.add_op(3, us(1), [streams[0]], [l, r]);
        let run = g.execute().unwrap();
        assert_eq!(run.record(join).start.as_nanos(), 6_000);
        assert_eq!(run.makespan(), us(7));
    }
}
