//! Small statistics helpers used across the experiment harness.


/// Summary statistics of a sample of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes a summary of `values`. Returns `None` for an empty slice.
    ///
    /// ```
    /// use sim_engine::stats::Summary;
    /// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
    /// assert_eq!(s.mean, 2.5);
    /// assert_eq!(s.min, 1.0);
    /// assert_eq!(s.max, 4.0);
    /// ```
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(Summary {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean,
            std_dev: var.sqrt(),
            p50: percentile_sorted(&sorted, 0.50),
            p99: percentile_sorted(&sorted, 0.99),
        })
    }

    /// Ratio of the largest to the smallest sample (the paper's
    /// "slowest rank spends 1.44× more time than the fastest" metric).
    /// Returns `f64::INFINITY` when the minimum is zero.
    pub fn max_over_min(&self) -> f64 {
        if self.min == 0.0 {
            f64::INFINITY
        } else {
            self.max / self.min
        }
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice.
///
/// # Panics
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// A fixed-width histogram over `[lo, hi)` used to print distribution
/// shapes (Fig 14) in text reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Samples below `lo` or at/above `hi`.
    outliers: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            outliers: 0,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, v: f64) {
        if v < self.lo || v >= self.hi || !v.is_finite() {
            self.outliers += 1;
            return;
        }
        let bin = ((v - self.lo) / (self.hi - self.lo) * self.counts.len() as f64) as usize;
        let last = self.counts.len() - 1;
        self.counts[bin.min(last)] += 1;
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples that fell outside the range.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Renders an ASCII bar chart, one bin per line.
    pub fn render(&self, width: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let bin_w = (self.hi - self.lo) / self.counts.len() as f64;
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat((c as usize * width) / peak as usize);
            out.push_str(&format!(
                "[{:>10.3}, {:>10.3}) {:>8} {}\n",
                self.lo + bin_w * i as f64,
                self.lo + bin_w * (i + 1) as f64,
                c,
                bar
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.max_over_min() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&v, 0.0), 10.0);
        assert_eq!(percentile_sorted(&v, 1.0), 40.0);
        assert!((percentile_sorted(&v, 0.5) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [0.0, 1.9, 2.0, 9.99, 10.0, -0.1] {
            h.add(v);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.outliers(), 2);
        assert!(h.render(10).lines().count() == 5);
    }

    #[test]
    fn max_over_min_with_zero_min() {
        let s = Summary::of(&[0.0, 1.0]).unwrap();
        assert!(s.max_over_min().is_infinite());
    }
}
