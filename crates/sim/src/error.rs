//! The workspace-wide simulation error type.
//!
//! Every crate in the stack used to panic on malformed input (mesh
//! shape checks, schedule builders, jitter amplitudes). [`SimError`]
//! gives the fallible constructors and the unified
//! `StepModel::run(&SimOptions)` entrypoint one shared error enum, so
//! callers composing cluster × mesh × model × faults get a `Result`
//! instead of an abort. Domain-specific errors ([`FluidError`],
//! [`GraphError`], and `parallelism-core`'s `PlanError`) convert into
//! it via `From`.

use crate::fluid::FluidError;
use crate::graph::GraphError;
use std::fmt;

/// Errors from building or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A shape constraint was violated (zero-sized mesh dimension,
    /// stage/layer mismatch, cluster size not a multiple of the node
    /// size, ...).
    InvalidShape(String),
    /// A numeric parameter was out of range (negative rate, non-finite
    /// amplitude, zero bandwidth, ...).
    InvalidValue(String),
    /// A schedule could not be built or could not execute.
    InvalidSchedule(String),
    /// The lowered task graph deadlocked.
    Deadlock(String),
    /// The fluid network rejected a transfer.
    Network(FluidError),
    /// No feasible configuration exists (planner exhaustion).
    Infeasible(String),
    /// A pre-flight static analysis rejected the plan before any
    /// simulation ran. The message lists the error-severity
    /// diagnostics (rule id, rank, op) that caused the rejection.
    Rejected(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidShape(m) => write!(f, "invalid shape: {m}"),
            SimError::InvalidValue(m) => write!(f, "invalid value: {m}"),
            SimError::InvalidSchedule(m) => write!(f, "invalid schedule: {m}"),
            SimError::Deadlock(m) => write!(f, "deadlock: {m}"),
            SimError::Network(e) => write!(f, "network: {e}"),
            SimError::Infeasible(m) => write!(f, "infeasible: {m}"),
            SimError::Rejected(m) => write!(f, "rejected by pre-flight analysis: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<FluidError> for SimError {
    fn from(e: FluidError) -> SimError {
        SimError::Network(e)
    }
}

impl From<GraphError> for SimError {
    fn from(e: GraphError) -> SimError {
        match e {
            GraphError::Deadlock(ops) => {
                SimError::Deadlock(format!("{} ops could not run", ops.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::LinkId;

    #[test]
    fn displays_are_informative() {
        let e = SimError::InvalidShape("tp must be positive".into());
        assert!(e.to_string().contains("tp must be positive"));
        let e: SimError = FluidError::UnknownLink(LinkId(3)).into();
        assert!(e.to_string().contains("link3"));
        let e: SimError = GraphError::Deadlock(vec![]).into();
        assert!(matches!(e, SimError::Deadlock(_)));
        let e = SimError::Rejected("DEAD001 rank 0: F0.0".into());
        assert!(e.to_string().contains("pre-flight"));
        assert!(e.to_string().contains("DEAD001"));
    }
}
