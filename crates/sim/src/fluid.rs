//! Max-min-fair fluid-flow network simulation.
//!
//! Network transfers are modelled as fluid flows over capacitated links.
//! At any instant the rate of each active flow is the max-min fair
//! allocation (progressive filling): links are saturated one bottleneck
//! at a time, each flow receiving an equal share of its tightest link.
//! The simulator advances between *rate-change events* (a transfer
//! starting or finishing), which is exact for piecewise-constant rates.
//!
//! This captures the congestion phenomena the paper describes in §3.1.3
//! and §8.2 — e.g. FSDP reduce-scatter traffic degrading pipeline P2P
//! latency when both cross the same inter-node links — without modelling
//! individual packets.

use crate::time::{SimDuration, SimTime};
use std::fmt;

/// Identifies a link in a [`FluidNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// Identifies a transfer submitted to a [`FluidNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransferId(pub u32);

/// A transfer request: `bytes` to move along `route` starting at `start`.
#[derive(Debug, Clone, PartialEq)]
pub struct Transfer {
    /// Links traversed, in order. An empty route completes instantly.
    pub route: Vec<LinkId>,
    /// Payload size in bytes.
    pub bytes: f64,
    /// Earliest start time.
    pub start: SimTime,
}

/// Completion record for one transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferOutcome {
    /// The transfer.
    pub id: TransferId,
    /// When it finished.
    pub finish: SimTime,
    /// Average achieved bandwidth in bytes/second (0 for empty routes or
    /// zero-byte transfers).
    pub avg_bandwidth: f64,
}

/// Errors from fluid simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FluidError {
    /// A transfer referenced a link that does not exist.
    UnknownLink(LinkId),
    /// A link has non-positive capacity but carries traffic.
    DeadLink(LinkId),
}

impl fmt::Display for FluidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FluidError::UnknownLink(l) => write!(f, "unknown {l}"),
            FluidError::DeadLink(l) => write!(f, "{l} has zero capacity but carries traffic"),
        }
    }
}

impl std::error::Error for FluidError {}

/// A capacitated network carrying fluid flows.
///
/// ```
/// use sim_engine::fluid::{FluidNet, Transfer};
/// use sim_engine::time::SimTime;
///
/// let mut net = FluidNet::new();
/// let l = net.add_link(100.0); // 100 B/s
/// // Two flows share the link: each gets 50 B/s.
/// let outcomes = net.run(vec![
///     Transfer { route: vec![l], bytes: 100.0, start: SimTime::ZERO },
///     Transfer { route: vec![l], bytes: 100.0, start: SimTime::ZERO },
/// ])?;
/// assert_eq!(outcomes[0].finish.as_secs_f64(), 2.0);
/// # Ok::<(), sim_engine::fluid::FluidError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct FluidNet {
    capacities: Vec<f64>, // bytes per second
}

impl FluidNet {
    /// Creates an empty network.
    pub fn new() -> Self {
        FluidNet::default()
    }

    /// Adds a link with `bytes_per_sec` capacity and returns its id.
    pub fn add_link(&mut self, bytes_per_sec: f64) -> LinkId {
        // lint: allow(unwrap) — a u32 id-space overflow is unrecoverable by the caller
        let id = LinkId(u32::try_from(self.capacities.len()).expect("too many links"));
        self.capacities.push(bytes_per_sec);
        id
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.capacities.len()
    }

    /// Overwrites a link's capacity (bytes/second). Used by fault
    /// injection to degrade or restore a link in place.
    ///
    /// # Panics
    /// Panics if the link does not exist.
    pub fn set_capacity(&mut self, link: LinkId, bytes_per_sec: f64) {
        self.capacities[link.0 as usize] = bytes_per_sec;
    }

    /// Multiplies a link's capacity by `factor` — the degraded-link
    /// fault model: a NIC flap or mis-negotiated link runs at a
    /// fraction of nominal bandwidth, and every flow crossing it slows
    /// down under the max-min allocation. A factor of `0.0` kills the
    /// link (transfers routed over it then return
    /// [`FluidError::DeadLink`]).
    ///
    /// # Panics
    /// Panics if the link does not exist or `factor` is negative or
    /// non-finite.
    pub fn scale_capacity(&mut self, link: LinkId, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "capacity scale must be finite and >= 0"
        );
        self.capacities[link.0 as usize] *= factor;
    }

    /// Capacity of a link in bytes/second.
    pub fn capacity(&self, link: LinkId) -> f64 {
        self.capacities[link.0 as usize]
    }

    /// Computes the max-min fair rate (bytes/sec) of each flow given each
    /// flow's route. Flows with empty routes get `f64::INFINITY`.
    ///
    /// # Errors
    /// Returns an error for unknown links or zero-capacity links in use.
    pub fn max_min_rates(&self, routes: &[Vec<LinkId>]) -> Result<Vec<f64>, FluidError> {
        for r in routes {
            for &l in r {
                if (l.0 as usize) >= self.capacities.len() {
                    return Err(FluidError::UnknownLink(l));
                }
                if self.capacities[l.0 as usize] <= 0.0 {
                    return Err(FluidError::DeadLink(l));
                }
            }
        }
        let n = routes.len();
        let mut rate = vec![f64::INFINITY; n];
        let mut frozen = vec![false; n];
        let mut residual = self.capacities.clone();
        // Progressive filling: find the most contended link, freeze its
        // flows at the fair share, remove its capacity, repeat.
        loop {
            // Count unfrozen flows per link.
            let mut users = vec![0u32; self.capacities.len()];
            for (i, r) in routes.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                for &l in r {
                    users[l.0 as usize] += 1;
                }
            }
            let bottleneck = users
                .iter()
                .enumerate()
                .filter(|&(_, &u)| u > 0)
                .map(|(l, &u)| (l, residual[l] / u as f64))
                .min_by(|a, b| a.1.total_cmp(&b.1));
            let Some((bl, share)) = bottleneck else {
                break; // no link has unfrozen users
            };
            for (i, r) in routes.iter().enumerate() {
                if frozen[i] || !r.contains(&LinkId(bl as u32)) {
                    continue;
                }
                frozen[i] = true;
                rate[i] = share;
                for &l in r {
                    residual[l.0 as usize] -= share;
                    if residual[l.0 as usize] < 0.0 {
                        residual[l.0 as usize] = 0.0;
                    }
                }
            }
        }
        Ok(rate)
    }

    /// Simulates `transfers` to completion and returns one outcome per
    /// transfer (same order).
    ///
    /// # Errors
    /// Returns an error for unknown or zero-capacity links.
    pub fn run(&self, transfers: Vec<Transfer>) -> Result<Vec<TransferOutcome>, FluidError> {
        // Validate up front so errors do not depend on event order.
        for t in &transfers {
            for &l in &t.route {
                if (l.0 as usize) >= self.capacities.len() {
                    return Err(FluidError::UnknownLink(l));
                }
                if self.capacities[l.0 as usize] <= 0.0 {
                    return Err(FluidError::DeadLink(l));
                }
            }
        }
        let n = transfers.len();
        let mut remaining: Vec<f64> = transfers.iter().map(|t| t.bytes.max(0.0)).collect();
        let mut finish: Vec<Option<SimTime>> = vec![None; n];
        let mut now = SimTime::ZERO;

        // Instantly complete empty-route or zero-byte transfers at start.
        for (i, t) in transfers.iter().enumerate() {
            if t.route.is_empty() || remaining[i] == 0.0 {
                finish[i] = Some(t.start);
            }
        }

        // Fast path: when every route is a single link and no link is
        // shared, flows never interact — each runs at full link capacity
        // for its whole lifetime, so the event loop (quadratic in the
        // number of rate-change events) is unnecessary. This covers the
        // common lowering of pipeline P2P traffic: one transfer per
        // dedicated point-to-point link.
        if self.transfers_are_disjoint_single_link(&transfers) {
            for (i, t) in transfers.iter().enumerate() {
                if finish[i].is_some() {
                    continue;
                }
                let rate = self.capacities[t.route[0].0 as usize];
                // Same nanosecond-grid round-up as the event loop.
                let dt_ns = (remaining[i] / rate * 1e9).ceil().max(1.0);
                finish[i] = Some(t.start + SimDuration::from_nanos(dt_ns as u64));
            }
            return Ok(Self::outcomes(&transfers, &finish));
        }

        loop {
            let active: Vec<usize> = (0..n)
                .filter(|&i| finish[i].is_none() && transfers[i].start <= now)
                .collect();
            let pending_starts: Vec<SimTime> = (0..n)
                .filter(|&i| finish[i].is_none() && transfers[i].start > now)
                .map(|i| transfers[i].start)
                .collect();
            if active.is_empty() {
                match pending_starts.iter().min() {
                    Some(&t) => {
                        now = t;
                        continue;
                    }
                    None => break,
                }
            }
            let routes: Vec<Vec<LinkId>> = active.iter().map(|&i| transfers[i].route.clone()).collect();
            let rates = self.max_min_rates(&routes)?;
            // Next event: earliest completion among active flows, or the
            // next pending start, whichever comes first.
            let mut next_completion = f64::INFINITY;
            for (k, &i) in active.iter().enumerate() {
                let dt = remaining[i] / rates[k];
                if dt < next_completion {
                    next_completion = dt;
                }
            }
            // Round the completion horizon *up* to the nanosecond grid:
            // rounding down can produce a zero-length step that never
            // finishes the flow (starvation).
            let completion_ns = (next_completion * 1e9).ceil().max(1.0);
            let completion_at = if completion_ns.is_finite() {
                now + SimDuration::from_nanos(completion_ns as u64)
            } else {
                SimTime::MAX
            };
            let next_start = pending_starts.iter().min().copied();
            let horizon = match next_start {
                Some(s) if s < completion_at => s,
                _ => completion_at,
            };
            let dt = horizon.saturating_since(now).as_secs_f64();
            for (k, &i) in active.iter().enumerate() {
                remaining[i] -= rates[k] * dt;
                // Tolerate floating-point residue.
                if remaining[i] <= remaining_epsilon(transfers[i].bytes) {
                    remaining[i] = 0.0;
                    finish[i] = Some(horizon);
                }
            }
            now = horizon;
        }

        Ok(Self::outcomes(&transfers, &finish))
    }

    /// True when every non-instant transfer uses exactly one link and no
    /// link carries more than one transfer — the precondition for the
    /// `run` fast path.
    fn transfers_are_disjoint_single_link(&self, transfers: &[Transfer]) -> bool {
        let mut used = vec![false; self.capacities.len()];
        for t in transfers {
            match t.route.as_slice() {
                [] => {}
                [l] => {
                    let li = l.0 as usize;
                    if used[li] {
                        return false;
                    }
                    used[li] = true;
                }
                _ => return false,
            }
        }
        true
    }

    fn outcomes(transfers: &[Transfer], finish: &[Option<SimTime>]) -> Vec<TransferOutcome> {
        transfers
            .iter()
            .enumerate()
            .map(|(i, t)| {
                // lint: allow(unwrap) — the progress loop above terminates only when every transfer finished
                let fin = finish[i].expect("all transfers complete");
                let dt = fin.saturating_since(t.start).as_secs_f64();
                let avg = if dt > 0.0 { t.bytes / dt } else { 0.0 };
                TransferOutcome {
                    id: TransferId(i as u32),
                    finish: fin,
                    avg_bandwidth: avg,
                }
            })
            .collect()
    }
}

fn remaining_epsilon(total: f64) -> f64 {
    (total.abs() * 1e-9).max(1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_full_bandwidth() {
        let mut net = FluidNet::new();
        let l = net.add_link(1000.0);
        let out = net
            .run(vec![Transfer {
                route: vec![l],
                bytes: 500.0,
                start: SimTime::ZERO,
            }])
            .unwrap();
        assert!((out[0].finish.as_secs_f64() - 0.5).abs() < 1e-6);
        assert!((out[0].avg_bandwidth - 1000.0).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut net = FluidNet::new();
        let l = net.add_link(100.0);
        let out = net
            .run(vec![
                Transfer { route: vec![l], bytes: 100.0, start: SimTime::ZERO },
                Transfer { route: vec![l], bytes: 100.0, start: SimTime::ZERO },
            ])
            .unwrap();
        assert!((out[0].finish.as_secs_f64() - 2.0).abs() < 1e-6);
        assert!((out[1].finish.as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn short_flow_finishes_then_long_flow_speeds_up() {
        let mut net = FluidNet::new();
        let l = net.add_link(100.0);
        let out = net
            .run(vec![
                Transfer { route: vec![l], bytes: 50.0, start: SimTime::ZERO },
                Transfer { route: vec![l], bytes: 150.0, start: SimTime::ZERO },
            ])
            .unwrap();
        // Both run at 50 B/s. Flow 0 finishes at t=1 (50 bytes). Flow 1
        // has 100 bytes left, now alone at 100 B/s: finishes at t=2.
        assert!((out[0].finish.as_secs_f64() - 1.0).abs() < 1e-6);
        assert!((out[1].finish.as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn late_arrival_slows_existing_flow() {
        let mut net = FluidNet::new();
        let l = net.add_link(100.0);
        let out = net
            .run(vec![
                Transfer { route: vec![l], bytes: 200.0, start: SimTime::ZERO },
                Transfer {
                    route: vec![l],
                    bytes: 100.0,
                    start: SimTime::from_nanos(1_000_000_000),
                },
            ])
            .unwrap();
        // Flow 0 alone for 1s (100 bytes done), then shares: 100 left at
        // 50 B/s -> finishes at t=3. Flow 1: 100 bytes at 50 B/s -> t=3.
        assert!((out[0].finish.as_secs_f64() - 3.0).abs() < 1e-6);
        assert!((out[1].finish.as_secs_f64() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn max_min_respects_multi_link_bottlenecks() {
        let mut net = FluidNet::new();
        let a = net.add_link(100.0);
        let b = net.add_link(30.0);
        // Flow 0 uses a only; flow 1 uses a and b. Flow 1 is bottlenecked
        // at 30 on b; flow 0 then takes the rest of a (70).
        let rates = net
            .max_min_rates(&[vec![a], vec![a, b]])
            .unwrap();
        assert!((rates[1] - 30.0).abs() < 1e-9);
        assert!((rates[0] - 70.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_flows_do_not_interact() {
        let mut net = FluidNet::new();
        let a = net.add_link(100.0);
        let b = net.add_link(50.0);
        let rates = net.max_min_rates(&[vec![a], vec![b]]).unwrap();
        assert_eq!(rates, vec![100.0, 50.0]);
    }

    #[test]
    fn empty_route_completes_instantly() {
        let net = FluidNet::new();
        let out = net
            .run(vec![Transfer {
                route: vec![],
                bytes: 1e9,
                start: SimTime::from_nanos(42),
            }])
            .unwrap();
        assert_eq!(out[0].finish, SimTime::from_nanos(42));
    }

    #[test]
    fn unknown_link_is_an_error() {
        let net = FluidNet::new();
        let err = net
            .run(vec![Transfer {
                route: vec![LinkId(3)],
                bytes: 1.0,
                start: SimTime::ZERO,
            }])
            .unwrap_err();
        assert_eq!(err, FluidError::UnknownLink(LinkId(3)));
    }

    #[test]
    fn disjoint_single_link_fast_path_matches_event_loop() {
        // 64 staggered transfers on private links (fast path), plus the
        // same set with one extra flow sharing link 0 (event loop). The
        // shared set's private flows must finish at the same instants.
        let mut net = FluidNet::new();
        let links: Vec<LinkId> = (0..64).map(|i| net.add_link(100.0 + i as f64)).collect();
        let mk = |extra: bool| {
            let mut ts: Vec<Transfer> = links
                .iter()
                .enumerate()
                .map(|(i, &l)| Transfer {
                    route: vec![l],
                    bytes: 50.0 * (i + 1) as f64,
                    start: SimTime::from_nanos(1_000 * i as u64),
                })
                .collect();
            if extra {
                ts.push(Transfer {
                    route: vec![links[0], links[1]],
                    bytes: 0.0,
                    start: SimTime::ZERO,
                });
            }
            ts
        };
        let fast = net.run(mk(false)).unwrap();
        let slow = net.run(mk(true)).unwrap();
        for i in 0..64 {
            let d = (fast[i].finish.as_secs_f64() - slow[i].finish.as_secs_f64()).abs();
            assert!(d < 1e-6, "transfer {i} differs by {d}s");
        }
    }

    #[test]
    fn degraded_link_slows_crossing_flows() {
        // The §8.2 degraded-link scenario: scaling one link's capacity
        // to 25 % stretches a transfer crossing it 4×, while a flow on
        // a healthy link is unaffected.
        let mut net = FluidNet::new();
        let bad = net.add_link(100.0);
        let good = net.add_link(100.0);
        net.scale_capacity(bad, 0.25);
        assert!((net.capacity(bad) - 25.0).abs() < 1e-9);
        let out = net
            .run(vec![
                Transfer { route: vec![bad], bytes: 100.0, start: SimTime::ZERO },
                Transfer { route: vec![good], bytes: 100.0, start: SimTime::ZERO },
            ])
            .unwrap();
        assert!((out[0].finish.as_secs_f64() - 4.0).abs() < 1e-6);
        assert!((out[1].finish.as_secs_f64() - 1.0).abs() < 1e-6);
        // Restoring the capacity restores the rate.
        net.set_capacity(bad, 100.0);
        assert!((net.capacity(bad) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fully_failed_link_is_dead() {
        let mut net = FluidNet::new();
        let l = net.add_link(100.0);
        net.scale_capacity(l, 0.0);
        let err = net
            .run(vec![Transfer { route: vec![l], bytes: 1.0, start: SimTime::ZERO }])
            .unwrap_err();
        assert_eq!(err, FluidError::DeadLink(l));
    }

    #[test]
    fn oversubscription_halves_effective_bandwidth() {
        // Two node-local flows funnel into one uplink at half the summed
        // capacity — the §8.2 oversubscribed-spine scenario.
        let mut net = FluidNet::new();
        let leaf0 = net.add_link(100.0);
        let leaf1 = net.add_link(100.0);
        let spine = net.add_link(100.0); // 2:1 oversubscribed
        let out = net
            .run(vec![
                Transfer { route: vec![leaf0, spine], bytes: 100.0, start: SimTime::ZERO },
                Transfer { route: vec![leaf1, spine], bytes: 100.0, start: SimTime::ZERO },
            ])
            .unwrap();
        assert!((out[0].finish.as_secs_f64() - 2.0).abs() < 1e-6);
        assert!((out[0].avg_bandwidth - 50.0).abs() < 1e-3);
    }
}
