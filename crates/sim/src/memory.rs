//! Per-rank memory accounting.
//!
//! The simulator tracks allocation and release *events* on named pools
//! (one pool per GPU rank in practice) against the simulated timeline,
//! then replays them to produce peak usage and a usage timeline. This is
//! the machinery behind the gradient-memory-lifetime study (Fig 4) and
//! the balanced-pipeline memory comparison (Fig 10).

use crate::time::SimTime;
use std::fmt;

/// Identifies a memory pool (typically one GPU rank's HBM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PoolId(pub u32);

impl fmt::Display for PoolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pool{}", self.0)
    }
}

/// One allocation (+) or release (−) event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemEvent {
    /// The pool affected.
    pub pool: PoolId,
    /// When the event takes effect.
    pub at: SimTime,
    /// Signed byte delta.
    pub delta: i64,
}

/// A point on a pool's usage timeline: usage in bytes from `at` until the
/// next point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSample {
    /// Instant the usage changed.
    pub at: SimTime,
    /// Usage in bytes from this instant.
    pub bytes: u64,
}

/// Collects memory events and computes per-pool peaks and timelines.
///
/// ```
/// use sim_engine::memory::{MemoryTracker, PoolId};
/// use sim_engine::time::SimTime;
///
/// let mut m = MemoryTracker::new(1);
/// let p = PoolId(0);
/// m.record(p, SimTime::from_nanos(0), 100);
/// m.record(p, SimTime::from_nanos(10), 50);
/// m.record(p, SimTime::from_nanos(20), -120);
/// assert_eq!(m.peak(p), 150);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryTracker {
    events: Vec<MemEvent>,
    pools: usize,
    /// Baseline bytes counted into every query (e.g. parameters resident
    /// for the whole step), per pool.
    baseline: Vec<u64>,
}

impl MemoryTracker {
    /// Creates a tracker for `pools` pools, all with zero baseline.
    pub fn new(pools: usize) -> Self {
        MemoryTracker {
            events: Vec::new(),
            pools,
            baseline: vec![0; pools],
        }
    }

    /// Number of pools.
    pub fn pool_count(&self) -> usize {
        self.pools
    }

    /// Sets a constant baseline (bytes resident for the entire timeline)
    /// for one pool.
    ///
    /// # Panics
    /// Panics if `pool` is out of range.
    pub fn set_baseline(&mut self, pool: PoolId, bytes: u64) {
        self.baseline[pool.0 as usize] = bytes;
    }

    /// The baseline of one pool.
    pub fn baseline(&self, pool: PoolId) -> u64 {
        self.baseline[pool.0 as usize]
    }

    /// Records a signed delta on `pool` at time `at`.
    ///
    /// # Panics
    /// Panics if `pool` is out of range.
    pub fn record(&mut self, pool: PoolId, at: SimTime, delta: i64) {
        assert!((pool.0 as usize) < self.pools, "unknown {pool}");
        if delta != 0 {
            self.events.push(MemEvent { pool, at, delta });
        }
    }

    /// Peak usage of one pool in bytes (baseline included).
    ///
    /// Events at the same instant are netted before the peak is sampled,
    /// so a free and an alloc at the same time do not create a phantom
    /// spike regardless of recording order.
    pub fn peak(&self, pool: PoolId) -> u64 {
        self.timeline(pool)
            .iter()
            .map(|s| s.bytes)
            .max()
            .unwrap_or(self.baseline(pool))
    }

    /// Peak usage across all pools: `(pool, bytes)` of the highest pool.
    pub fn global_peak(&self) -> (PoolId, u64) {
        (0..self.pools as u32)
            .map(|p| (PoolId(p), self.peak(PoolId(p))))
            .max_by_key(|&(_, b)| b)
            .unwrap_or((PoolId(0), 0))
    }

    /// Peak usage of every pool, indexed by pool id.
    pub fn peaks(&self) -> Vec<u64> {
        (0..self.pools as u32).map(|p| self.peak(PoolId(p))).collect()
    }

    /// Usage timeline of one pool: steps sorted by time, same-instant
    /// events netted, baseline included. The first sample is at
    /// [`SimTime::ZERO`] with the baseline.
    pub fn timeline(&self, pool: PoolId) -> Vec<MemSample> {
        let mut evs: Vec<&MemEvent> = self.events.iter().filter(|e| e.pool == pool).collect();
        evs.sort_by_key(|e| e.at);
        let mut out = vec![MemSample {
            at: SimTime::ZERO,
            bytes: self.baseline(pool),
        }];
        let mut cur = self.baseline(pool) as i64;
        let mut i = 0;
        while i < evs.len() {
            let t = evs[i].at;
            let mut net = 0i64;
            while i < evs.len() && evs[i].at == t {
                net += evs[i].delta;
                i += 1;
            }
            cur += net;
            assert!(cur >= 0, "{pool} usage went negative at {t}");
            if t == SimTime::ZERO {
                out[0].bytes = cur as u64;
            } else {
                out.push(MemSample {
                    at: t,
                    bytes: cur as u64,
                });
            }
        }
        out
    }

    /// Final (end-of-timeline) usage of one pool.
    pub fn final_usage(&self, pool: PoolId) -> u64 {
        self.timeline(pool).last().map(|s| s.bytes).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn peak_and_timeline() {
        let mut m = MemoryTracker::new(2);
        let p = PoolId(0);
        m.record(p, t(0), 100);
        m.record(p, t(5), 200);
        m.record(p, t(9), -250);
        m.record(p, t(12), 10);
        assert_eq!(m.peak(p), 300);
        assert_eq!(m.final_usage(p), 60);
        let tl = m.timeline(p);
        assert_eq!(
            tl,
            vec![
                MemSample { at: t(0), bytes: 100 },
                MemSample { at: t(5), bytes: 300 },
                MemSample { at: t(9), bytes: 50 },
                MemSample { at: t(12), bytes: 60 },
            ]
        );
    }

    #[test]
    fn same_instant_events_are_netted() {
        let mut m = MemoryTracker::new(1);
        let p = PoolId(0);
        m.record(p, t(0), 100);
        // Free-then-alloc at the same instant, recorded alloc-first: must
        // not register a 200-byte phantom peak.
        m.record(p, t(4), 100);
        m.record(p, t(4), -100);
        assert_eq!(m.peak(p), 100);
    }

    #[test]
    fn baseline_included() {
        let mut m = MemoryTracker::new(1);
        let p = PoolId(0);
        m.set_baseline(p, 1000);
        m.record(p, t(3), 500);
        m.record(p, t(6), -500);
        assert_eq!(m.peak(p), 1500);
        assert_eq!(m.final_usage(p), 1000);
        assert_eq!(m.timeline(p)[0].bytes, 1000);
    }

    #[test]
    fn global_peak_picks_largest_pool() {
        let mut m = MemoryTracker::new(3);
        m.record(PoolId(0), t(0), 10);
        m.record(PoolId(1), t(0), 30);
        m.record(PoolId(2), t(0), 20);
        assert_eq!(m.global_peak(), (PoolId(1), 30));
    }

    #[test]
    fn empty_pool_peak_is_baseline() {
        let mut m = MemoryTracker::new(1);
        m.set_baseline(PoolId(0), 7);
        assert_eq!(m.peak(PoolId(0)), 7);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_usage_panics() {
        let mut m = MemoryTracker::new(1);
        m.record(PoolId(0), t(0), -1);
        let _ = m.peak(PoolId(0));
    }

    #[test]
    fn out_of_order_recording_is_sorted() {
        let mut m = MemoryTracker::new(1);
        let p = PoolId(0);
        m.record(p, t(10), -50);
        m.record(p, t(0), 100);
        m.record(p, t(5), 25);
        assert_eq!(m.peak(p), 125);
        assert_eq!(m.final_usage(p), 75);
    }
}
