//! Fixture: the *correct* protocol shapes — every rule must stay
//! silent here. Mirrors the real `serve::coalesce` / `serve::dispatch`
//! idioms: downward-only nesting, temporaries that die with their
//! statement, `drop()` before notify, a predicate loop around the
//! bounded wait, and compute outside every lock.

impl FlightMap<V> {
    fn run_or_follow(&self, key: u64, compute: impl FnOnce() -> V) -> V {
        let (flight, leader) = {
            let mut flights = lock_or_recover(&self.flights);
            match flights.get(&key) {
                Some(f) => (Arc::clone(f), false),
                None => (Arc::new(Flight::new()), true),
            }
        };
        let value = compute();
        lock_or_recover(&self.map.flights).remove(&key);
        let mut slot = lock_or_recover(&flight.slot);
        *slot = Slot::Ready(value.clone());
        drop(slot);
        flight.cv.notify_all();
        value
    }

    fn await_resolved(&self, flight: &Flight<V>) -> Option<V> {
        let mut slot = lock_or_recover(&flight.slot);
        loop {
            match &*slot {
                Slot::Ready(v) => return Some(v.clone()),
                Slot::Failed => return None,
                Slot::Pending => {
                    let (g, _timed_out) = flight
                        .cv
                        .wait_timeout(slot, FOLLOWER_WAIT)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    slot = g;
                }
            }
        }
    }

    fn stats(&self) -> usize {
        self.shards.iter().map(|shard| read_or_recover(shard).len()).sum()
    }
}
