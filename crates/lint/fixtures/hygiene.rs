//! Fixture: one violation per hygiene rule, in rule order, so the
//! fixture test pins every rule ID and location at once. Linted under
//! the path `crates/collectives/src/fixture.rs` (a wire-free substrate
//! crate) so LINT005 applies; LINT004 is path-scoped to the cost
//! modules and exercised separately in `rules::tests`.

fn unwrap_site(y: Result<u32, ()>) -> u32 {
    y.unwrap()
}

fn deprecated_site(m: &StepModel) {
    m.simulate_at(SimFidelity::Full);
}

fn cli_args_site(json: bool) -> SnapshotArgs {
    SnapshotArgs { json }
}

fn wire_site() {
    let q = parallelism_core::query::Query::Version;
}

fn trace_vec_site() {
    let buf: Vec<TraceEvent> = Vec::new();
}
