//! Fixture: the dispatch-path mutant LOCK003 must catch — computing
//! *under* the response-cache lock. The leader's compute can take
//! seconds (a full sweep) and can panic; holding `responses` across it
//! starves every reader and poisons the cache lock on unwind.

impl BrokenDispatcher {
    fn cached_dispatch(&self, key: u64, query: &Query) -> Response {
        let mut responses = lock_or_recover(&self.responses);
        if let Some(hit) = responses.get(key) {
            return hit;
        }
        // Guard live across the compute path: LOCK003 (line 13).
        let fresh = self.compute(query);
        responses.insert(key, fresh.clone());
        fresh
    }
}
