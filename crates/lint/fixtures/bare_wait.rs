//! Fixture: the two condvar-discipline mutants LOCK002 must catch.
//!
//! `broken_await` is the BrokenFlight shape from the interleave
//! battery's `broken_follower_wait_is_caught_with_minimal_schedule`
//! test: an unbounded `.wait(` outside any predicate loop — a missed
//! notify parks the follower forever. `impatient_await` re-checks in a
//! loop but calls `wait_timeout` outside one, so a spurious wake
//! returns with the predicate still false.

impl BrokenFlight {
    fn broken_await(&self) {
        let mut ready = lock_or_recover(&self.ready);
        if !*ready {
            // Unbounded, no predicate loop: LOCK002 (line 15).
            ready = self.cv.wait(ready).unwrap();
        }
        drop(ready);
    }

    fn impatient_await(&self) {
        let mut ready = lock_or_recover(&self.ready);
        // Bounded but not in a loop: LOCK002 (line 23).
        let (g, _) = self.cv.wait_timeout(ready, QUANTUM).unwrap();
        drop(g);
    }
}
