//! Fixture: a lock-order inversion in the PublishGuard teardown shape.
//!
//! The correct drop path clears `flights` first, *then* resolves the
//! slot. This mutant resolves the slot while still holding `flights`…
//! and worse, re-enters the flight table while holding the slot lock —
//! the exact AB-BA shape the interleave battery's
//! `lock_order_inversion_in_protocol_shape_is_caught` test finds
//! dynamically. LOCK001 must flag line 16 (acquiring `flights` while
//! holding `slot`).

impl<V: Clone> Drop for BrokenPublishGuard<'_, V> {
    fn drop(&mut self) {
        let mut slot = lock_or_recover(&self.flight.slot);
        *slot = Slot::Failed;
        // Inversion: `flights` (rank 1) acquired under `slot` (rank 4).
        lock_or_recover(&self.map.flights).remove(&self.key);
        drop(slot);
        self.flight.cv.notify_all();
    }
}
