//! Mutation tests of the lint rules: each fixture under `fixtures/`
//! carries a deliberately injected defect (or, for the clean fixture,
//! none), and the rules must fire — or stay silent — at exactly the
//! pinned `path:line` locations. This is the static half of the
//! contract whose dynamic half lives in
//! `crates/interleave/tests/dispatcher_protocol.rs`: the same
//! inversion, lost-wakeup, and guard-discipline bugs, caught by scan
//! here and by exhaustive interleaving there.

use parallelism_core::analyze::RuleId;

fn lint_as(path: &str, text: &str) -> Vec<parallelism_core::analyze::Diagnostic> {
    lint::lint_path(path, text)
}

#[test]
fn injected_lock_inversion_fires_lock001_with_both_sites() {
    let v = lint_as(
        "crates/serve/src/fixture.rs",
        include_str!("../fixtures/lock_inversion.rs"),
    );
    let hits: Vec<_> = v.iter().filter(|d| d.rule == RuleId::Lock001).collect();
    assert_eq!(hits.len(), 1, "{v:?}");
    assert_eq!(hits[0].op.as_deref(), Some("crates/serve/src/fixture.rs:16"));
    assert!(
        hits[0].message.contains("`flights` acquired while holding `slot`"),
        "{:?}",
        hits[0]
    );
    // The witness names both sites: where the outer guard was taken
    // and where the inversion happened.
    assert!(hits[0].witness[0].contains("fixture.rs:13"), "{:?}", hits[0].witness);
    assert!(hits[0].witness[1].contains("fixture.rs:16"), "{:?}", hits[0].witness);
}

#[test]
fn injected_bare_wait_and_loopless_timeout_fire_lock002() {
    let v = lint_as(
        "crates/serve/src/fixture.rs",
        include_str!("../fixtures/bare_wait.rs"),
    );
    let hits: Vec<_> = v.iter().filter(|d| d.rule == RuleId::Lock002).collect();
    assert_eq!(hits.len(), 2, "{v:?}");
    assert_eq!(hits[0].op.as_deref(), Some("crates/serve/src/fixture.rs:15"));
    assert!(hits[0].message.contains("unbounded Condvar wait"), "{:?}", hits[0]);
    assert_eq!(hits[1].op.as_deref(), Some("crates/serve/src/fixture.rs:23"));
    assert!(
        hits[1].message.contains("outside a predicate loop"),
        "{:?}",
        hits[1]
    );
}

#[test]
fn injected_compute_under_lock_fires_lock003() {
    let v = lint_as(
        "crates/serve/src/fixture.rs",
        include_str!("../fixtures/guard_across_compute.rs"),
    );
    let hits: Vec<_> = v.iter().filter(|d| d.rule == RuleId::Lock003).collect();
    assert_eq!(hits.len(), 1, "{v:?}");
    assert_eq!(hits[0].op.as_deref(), Some("crates/serve/src/fixture.rs:13"));
    assert!(
        hits[0].witness.iter().any(|w| w.contains("`responses` held since")),
        "{:?}",
        hits[0].witness
    );
}

#[test]
fn the_clean_protocol_fixture_is_silent() {
    let v = lint_as(
        "crates/serve/src/fixture.rs",
        include_str!("../fixtures/clean_protocol.rs"),
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn hygiene_fixture_fires_one_finding_per_rule_in_order() {
    let v = lint_as(
        "crates/collectives/src/fixture.rs",
        include_str!("../fixtures/hygiene.rs"),
    );
    let rules: Vec<RuleId> = v.iter().map(|d| d.rule).collect();
    assert_eq!(
        rules,
        vec![
            RuleId::Lint001,
            RuleId::Lint002,
            RuleId::Lint003,
            RuleId::Lint005,
            RuleId::Lint006,
        ],
        "{v:?}"
    );
    for d in &v {
        let op = d.op.as_deref().unwrap_or("");
        assert!(
            op.starts_with("crates/collectives/src/fixture.rs:"),
            "{d:?}"
        );
        assert!(!d.witness.is_empty(), "every finding carries its line: {d:?}");
    }
}
