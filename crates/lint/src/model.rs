//! A comment- and string-aware line model of one Rust source file.
//!
//! Every rule in this crate is a token scan, and token scans lie when
//! they match inside string literals, comments, or `#[cfg(test)]`
//! regions. [`SourceModel`] pre-computes, per line:
//!
//! * `code` — the line with `//` comments removed, `/* */` block
//!   comments blanked (nesting respected, across lines), string-literal
//!   *contents* blanked (quotes kept, raw strings and escapes handled),
//!   and char-literal contents blanked (lifetimes left alone). Braces
//!   and tokens surviving in `code` are real code.
//! * `in_test` — whether the line sits inside a `#[cfg(test)]` (or
//!   `#[cfg(all(test, ...))]`) item, tracked by brace depth over the
//!   blanked code.
//!
//! Rules match tokens against `code`, report `path:line` from the model,
//! and consult the *raw* lines for `// lint: allow(...)` markers (the
//! markers live in comments, which `code` no longer has).

/// One line of the file, raw and in blanked-code form.
#[derive(Debug)]
pub struct LineInfo {
    /// The line exactly as written.
    pub raw: String,
    /// The line with comments removed and literal contents blanked.
    pub code: String,
    /// Whether the line is inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// The parsed model of one source file. Lines are 0-indexed internally;
/// every rendered location is 1-based `path:line`.
#[derive(Debug)]
pub struct SourceModel {
    path: String,
    lines: Vec<LineInfo>,
}

impl SourceModel {
    /// Parses `text` into the line model. `path` is stored verbatim and
    /// only used for locations and path-scoped rules; it does not need
    /// to exist on disk.
    pub fn parse(path: &str, text: &str) -> SourceModel {
        let code_lines = blank_noncode(text);
        let mut lines = Vec::with_capacity(code_lines.len());
        // Track #[cfg(test)] regions by brace depth over blanked code,
        // handling the bodyless-item case (`#[cfg(test)] use foo;`)
        // where the attribute must not swallow the rest of the file.
        let mut test_depth: Option<i32> = None;
        let mut pending_cfg_test = false;
        for (raw, code) in text.lines().zip(code_lines) {
            let mut in_test = false;
            if let Some(depth) = test_depth.as_mut() {
                in_test = true;
                *depth += brace_delta(&code);
                if *depth <= 0 {
                    test_depth = None;
                }
            } else if pending_cfg_test {
                in_test = true;
                let delta = brace_delta(&code);
                if delta > 0 {
                    test_depth = Some(delta);
                    pending_cfg_test = false;
                } else if code.contains(';') {
                    // `#[cfg(test)] use ...;` — a bodyless item.
                    pending_cfg_test = false;
                }
            } else if is_cfg_test_attr(raw.trim()) {
                in_test = true;
                pending_cfg_test = true;
            }
            lines.push(LineInfo {
                raw: raw.to_string(),
                code,
                in_test,
            });
        }
        SourceModel {
            path: path.to_string(),
            lines,
        }
    }

    /// The path the model was parsed under.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The parsed lines, in file order.
    pub fn lines(&self) -> &[LineInfo] {
        &self.lines
    }

    /// The 1-based `path:line` location of line index `idx`.
    pub fn location(&self, idx: usize) -> String {
        format!("{}:{}", self.path, idx + 1)
    }

    /// Whether line `idx` carries `marker` on itself or on the line
    /// directly above — the suppression contract for
    /// `// lint: allow(...)` markers. Checked against raw lines: the
    /// markers live in comments.
    pub fn marked(&self, idx: usize, marker: &str) -> bool {
        self.lines[idx].raw.contains(marker)
            || (idx > 0 && self.lines[idx - 1].raw.contains(marker))
    }
}

/// Whether a trimmed line is a `cfg` attribute gating on `test` —
/// `#[cfg(test)]` itself or a compound like
/// `#[cfg(all(test, feature = "..."))]`.
fn is_cfg_test_attr(trimmed: &str) -> bool {
    trimmed.starts_with("#[cfg(") && contains_word(trimmed, "test")
}

/// Whether `hay` contains `needle` delimited by non-identifier chars.
fn contains_word(hay: &str, needle: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before_ok =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let after_ok =
            end == bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Net brace-depth change of one *blanked* code line. Strings are
/// already blanked, so this is a plain count.
pub fn brace_delta(code: &str) -> i32 {
    let mut delta = 0i32;
    for b in code.bytes() {
        match b {
            b'{' => delta += 1,
            b'}' => delta -= 1,
            _ => {}
        }
    }
    delta
}

/// Lexer state carried across lines while blanking.
enum Blank {
    /// Plain code.
    Code,
    /// Inside a string literal; `raw_hashes` is `Some(n)` for a raw
    /// string closed by `"` + n `#`s, `None` for an ordinary
    /// (escape-processing) string.
    Str { raw_hashes: Option<usize> },
    /// Inside a (possibly nested) block comment.
    Block(u32),
}

/// Produces per-line `code` strings: comments gone, literal contents
/// blanked to spaces (delimiters kept so columns stay meaningful).
fn blank_noncode(text: &str) -> Vec<String> {
    let mut st = Blank::Code;
    let mut out = Vec::new();
    for line in text.lines() {
        let chars: Vec<char> = line.chars().collect();
        let mut code = String::with_capacity(line.len());
        let mut i = 0;
        while i < chars.len() {
            match st {
                Blank::Block(ref mut depth) => {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        *depth -= 1;
                        if *depth == 0 {
                            st = Blank::Code;
                        }
                        code.push_str("  ");
                        i += 2;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        *depth += 1;
                        code.push_str("  ");
                        i += 2;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Blank::Str { raw_hashes: None } => {
                    if chars[i] == '\\' {
                        // Skip the escaped char (a `\` at end of line is
                        // a line continuation: stay in the string).
                        code.push_str("  ");
                        i += 2;
                    } else if chars[i] == '"' {
                        code.push('"');
                        st = Blank::Code;
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Blank::Str {
                    raw_hashes: Some(n),
                } => {
                    if chars[i] == '"' && chars[i + 1..].iter().take(n).filter(|c| **c == '#').count() == n {
                        code.push('"');
                        for _ in 0..n {
                            code.push('#');
                        }
                        st = Blank::Code;
                        i += 1 + n;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Blank::Code => match chars[i] {
                    '/' if chars.get(i + 1) == Some(&'/') => break, // rest is comment
                    '/' if chars.get(i + 1) == Some(&'*') => {
                        st = Blank::Block(1);
                        code.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        st = Blank::Str {
                            raw_hashes: raw_string_hashes(&chars, i),
                        };
                        code.push('"');
                        i += 1;
                    }
                    '\'' => {
                        // Char literal vs lifetime.
                        if let Some(len) = char_literal_len(&chars, i) {
                            code.push('\'');
                            for _ in 0..len - 2 {
                                code.push(' ');
                            }
                            code.push('\'');
                            i += len;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    }
                    c => {
                        code.push(c);
                        i += 1;
                    }
                },
            }
        }
        out.push(code);
    }
    out
}

/// If the `"` at `chars[at]` opens a raw string (`r"`, `r#"`, `br#"`,
/// ...), the number of closing `#`s; `None` for an ordinary string.
fn raw_string_hashes(chars: &[char], at: usize) -> Option<usize> {
    let mut j = at;
    let mut hashes = 0usize;
    while j > 0 && chars[j - 1] == '#' {
        hashes += 1;
        j -= 1;
    }
    if j == 0 || chars[j - 1] != 'r' {
        return None;
    }
    j -= 1;
    if j > 0 && chars[j - 1] == 'b' {
        j -= 1;
    }
    // `r` must start the token — `for"x"` is not a raw string.
    let prev_is_ident =
        j > 0 && (chars[j - 1].is_ascii_alphanumeric() || chars[j - 1] == '_');
    if prev_is_ident {
        None
    } else {
        Some(hashes)
    }
}

/// If the `'` at `chars[at]` opens a char literal, its total length in
/// chars (delimiters included); `None` when it is a lifetime.
fn char_literal_len(chars: &[char], at: usize) -> Option<usize> {
    match chars.get(at + 1)? {
        '\\' => {
            // `'\n'`, `'\''`, `'\\'` — or `'\u{1F600}'`.
            if chars.get(at + 2) == Some(&'u') && chars.get(at + 3) == Some(&'{') {
                let close = chars[at + 4..].iter().position(|c| *c == '\'')?;
                Some(close + 5)
            } else if chars.get(at + 3) == Some(&'\'') {
                Some(4)
            } else {
                None
            }
        }
        _ => {
            if chars.get(at + 2) == Some(&'\'') {
                Some(3)
            } else {
                None // `'a` in `<'a>`: a lifetime
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(text: &str) -> Vec<String> {
        SourceModel::parse("x.rs", text)
            .lines()
            .iter()
            .map(|l| l.code.clone())
            .collect()
    }

    #[test]
    fn line_comments_and_doc_comments_are_removed() {
        let c = codes("let x = 1; // .unwrap() here\n/// doc .expect( too\nlet y = 2;\n");
        assert_eq!(c[0], "let x = 1; ");
        assert_eq!(c[1], "");
        assert_eq!(c[2], "let y = 2;");
    }

    #[test]
    fn string_contents_are_blanked_but_quotes_survive() {
        let c = codes("let s = \"call .unwrap() now\";\n");
        assert!(!c[0].contains(".unwrap()"));
        assert!(c[0].contains("let s = \""));
        assert!(c[0].ends_with("\";"));
    }

    #[test]
    fn escapes_inside_strings_do_not_end_them() {
        let c = codes("let s = \"a\\\"b\"; y.unwrap();\n");
        assert!(c[0].contains(".unwrap()"), "{c:?}");
        assert_eq!(c[0], "let s = \"    \"; y.unwrap();", "contents blanked: {c:?}");
    }

    #[test]
    fn block_comments_span_lines_and_nest() {
        let c = codes("a(); /* x.unwrap()\n /* nested */ still comment\n*/ b();\n");
        assert!(c[0].starts_with("a(); "));
        assert!(!c[0].contains("unwrap"));
        assert!(!c[1].contains("still"));
        assert!(c[2].ends_with("b();"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let c = codes("let s = r#\"y.unwrap() \"inner\" \"#; z.unwrap();\n");
        let hits = c[0].matches(".unwrap()").count();
        assert_eq!(hits, 1, "only the code outside the raw string: {c:?}");
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let c = codes("fn f<'a>(x: &'a str) { m('{', '\\''); }\n");
        assert!(c[0].contains("<'a>"), "{c:?}");
        // The `{` and escaped-quote char literals must not disturb
        // brace or string tracking.
        assert_eq!(brace_delta(&c[0]), 0, "{c:?}");
    }

    #[test]
    fn cfg_test_regions_are_marked_including_compound_cfg() {
        let m = SourceModel::parse(
            "x.rs",
            "fn f() {}\n#[cfg(all(test, feature = \"interleave_check\"))]\nmod tests {\n    fn g() { y.unwrap(); }\n}\nfn h() {}\n",
        );
        let flags: Vec<bool> = m.lines().iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_bodyless_item_does_not_swallow_the_file() {
        let m = SourceModel::parse("x.rs", "#[cfg(test)]\nuse foo::bar;\nfn f() { y.unwrap(); }\n");
        assert!(!m.lines()[2].in_test);
    }

    #[test]
    fn cfg_feature_without_test_is_not_a_test_region() {
        let m = SourceModel::parse(
            "x.rs",
            "#[cfg(feature = \"interleave_check\")]\npub mod check;\nfn f() {}\n",
        );
        assert!(m.lines().iter().all(|l| !l.in_test), "{m:?}");
    }

    #[test]
    fn markers_are_found_on_same_or_previous_raw_line() {
        let m = SourceModel::parse(
            "x.rs",
            "// lint: allow(unwrap) — reason\nlet x = y.unwrap();\nlet z = w.unwrap();\n",
        );
        assert!(m.marked(1, "lint: allow(unwrap)"));
        assert!(!m.marked(2, "lint: allow(unwrap)"));
    }

    #[test]
    fn format_string_braces_do_not_disturb_depth() {
        let c = codes("fn f() { format!(\"{{x}} {}\", 1); }\n");
        assert_eq!(brace_delta(&c[0]), 0, "{c:?}");
    }
}
