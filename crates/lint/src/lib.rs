//! # lint
//!
//! Repo-local static analysis: the source hygiene rules
//! (`LINT001`–`LINT007`) and the concurrency rules
//! (`LOCK001`–`LOCK003`) behind `llama3sim lint` and the `repo_lint`
//! binary. Dependency-free by design — the scanner is a
//! string/comment-aware token model ([`model::SourceModel`]), not a
//! full parser, so it runs in milliseconds over the whole workspace
//! and its failure modes are easy to reason about (documented per rule
//! in [`rules`] and [`locks`]).
//!
//! Findings are [`parallelism_core::analyze::Diagnostic`]s: the same
//! type the schedule analyzer emits, so `llama3sim lint` shares the
//! human and JSONL renderers (and the stable-rule-ID contract) with
//! `llama3sim analyze`. The `op` field carries the 1-based
//! `path:line` location; the witness holds the offending source lines.
//!
//! ```
//! let report = lint::lint_path(
//!     "crates/serve/src/x.rs",
//!     "fn f(&self) {\n    let slot = lock_or_recover(&self.slot);\n    let flights = lock_or_recover(&self.flights);\n}\n",
//! );
//! assert_eq!(report[0].rule, parallelism_core::analyze::RuleId::Lock001);
//! assert_eq!(report[0].op.as_deref(), Some("crates/serve/src/x.rs:3"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod locks;
pub mod model;
pub mod rules;

pub use locks::{CONDVAR_CLASSES, LOCK_HIERARCHY, LOCK_SCOPE};
pub use model::SourceModel;

use parallelism_core::analyze::Diagnostic;
use std::fs;
use std::path::{Path, PathBuf};

/// Sources exempt from every rule (relative to the repo root):
/// figure-generation experiment scripts and the snapshot entry points
/// the deprecated bench bins delegate to — bin-style code living in a
/// library module, where aborting on bad data is the contract.
const ALLOWED_PATHS: [&str; 2] = ["crates/bench/src/experiments", "crates/bench/src/snapshot.rs"];

/// The result of linting a file set.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Number of files scanned.
    pub files: usize,
    /// Every finding, in (path, line) order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// `true` when no rule fired.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lints one in-memory file under its repo-relative `path` (which
/// decides which path-scoped rules apply; it need not exist on disk).
pub fn lint_path(path: &str, text: &str) -> Vec<Diagnostic> {
    let model = SourceModel::parse(path, text);
    let mut out = Vec::new();
    rules::check_hygiene(&model, &mut out);
    if locks::in_scope(path) {
        locks::check_locks(&model, &mut out);
    }
    sort_findings(&mut out);
    out
}

/// Lints every library source under `<root>/crates/*/src`.
pub fn lint_repo(root: &Path) -> LintReport {
    let mut files = Vec::new();
    collect_lib_sources(&root.join("crates"), root, &mut files);
    files.sort();
    let mut report = LintReport {
        files: files.len(),
        diagnostics: Vec::new(),
    };
    for file in &files {
        let rel = file.to_string_lossy().replace('\\', "/");
        match fs::read_to_string(root.join(file)) {
            Ok(text) => report.diagnostics.extend(lint_path(&rel, &text)),
            Err(_) => report.diagnostics.push(
                Diagnostic::error(
                    parallelism_core::analyze::RuleId::Lint001,
                    "unreadable source file",
                )
                .at_op(rel),
            ),
        }
    }
    sort_findings(&mut report.diagnostics);
    report
}

/// Orders findings by (path, line, rule) so output is stable across
/// filesystems.
fn sort_findings(out: &mut [Diagnostic]) {
    out.sort_by_key(|d| {
        let op = d.op.clone().unwrap_or_default();
        let (path, line) = match op.rsplit_once(':') {
            Some((p, l)) => (p.to_string(), l.parse::<u64>().unwrap_or(0)),
            None => (op, 0),
        };
        (path, line, d.rule.as_str())
    });
}

/// The repository root: the nearest ancestor of the current directory
/// holding a `crates/` directory (so the tool works from any subdir).
pub fn repo_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Recursively collects `.rs` files under `crates/*/src`, skipping
/// `bin/` directories and the allow-listed sub-trees. Paths are stored
/// relative to the repo root.
pub fn collect_lib_sources(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            if ALLOWED_PATHS.contains(&rel_str.as_str()) {
                continue;
            }
            // Under crates/<name>/, only descend into src/ (skip
            // tests/, benches/, examples/, fixtures/, target/).
            let depth = rel.components().count();
            if depth == 3 && path.file_name().is_some_and(|n| n != "src") {
                continue;
            }
            collect_lib_sources(&path, root, out);
        } else if rel_str.ends_with(".rs")
            && rel_str.contains("/src/")
            && !ALLOWED_PATHS.contains(&rel_str.as_str())
        {
            out.push(rel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallelism_core::analyze::RuleId;

    #[test]
    fn lint_path_combines_hygiene_and_lock_rules_in_scope() {
        let src = "fn f(&self) {\n    let slot = lock_or_recover(&self.slot);\n    let flights = lock_or_recover(&self.flights);\n    y.unwrap();\n}\n";
        let v = lint_path("crates/serve/src/x.rs", src);
        let rules: Vec<RuleId> = v.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&RuleId::Lock001), "{v:?}");
        assert!(rules.contains(&RuleId::Lint001), "{v:?}");
        // Out of scope: the same inversion in a non-substrate crate
        // only trips the hygiene rule.
        let elsewhere = lint_path("crates/core/src/x.rs", src);
        assert!(elsewhere.iter().all(|d| d.rule != RuleId::Lock001), "{elsewhere:?}");
    }

    #[test]
    fn findings_are_ordered_by_path_and_line() {
        let src = "fn f() {\n    b.unwrap();\n    a.unwrap();\n}\n";
        let v = lint_path("x.rs", src);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].op.as_deref(), Some("x.rs:2"));
        assert_eq!(v[1].op.as_deref(), Some("x.rs:3"));
    }

    #[test]
    fn the_repo_itself_is_clean() {
        // The gating contract: `llama3sim lint` stays green over every
        // library source in the workspace. (Runs from the crate dir —
        // repo_root() climbs to the workspace.)
        let report = lint_repo(&repo_root());
        assert!(report.files > 40, "expected the full workspace, got {}", report.files);
        let rendered: Vec<String> = report
            .diagnostics
            .iter()
            .map(|d| d.render_human())
            .collect();
        assert!(report.clean(), "{}", rendered.join("\n"));
    }
}
