//! The concurrency rules (`LOCK001`–`LOCK003`): a declared lock
//! hierarchy plus a textual guard-liveness scan over the serve/cache
//! substrate.
//!
//! # The declared hierarchy
//!
//! Every named lock in `crates/serve` and `crates/collectives` belongs
//! to a **class** (its field/receiver name), and the classes are
//! totally ordered, outermost first:
//!
//! | rank | class       | lives in                                   |
//! |------|-------------|--------------------------------------------|
//! | 0    | `conns`     | `serve::http` — live connection handles    |
//! | 1    | `flights`   | `serve::coalesce` — the flight table       |
//! | 2    | `responses` | `serve::dispatch` — the response cache     |
//! | 3    | `outcomes`  | `serve::dispatch` — search outcome log     |
//! | 4    | `slot`      | `serve::coalesce` — one flight's slot      |
//! | 5    | `shard`     | `collectives::sharded` — one cache shard   |
//!
//! A thread may only acquire *downward* (a higher-rank class) while
//! holding a guard: acquiring `flights` while holding `slot` is an
//! inversion, and two threads doing it in opposite orders deadlock.
//! `LOCK001` flags any acquisition whose class does not rank strictly
//! below every live guard — including a same-class reacquisition,
//! which self-deadlocks on a `Mutex`.
//!
//! # What "holding" means here
//!
//! This is a *textual* scan, not a borrow checker. A `let`-bound guard
//! (`let g = lock_or_recover(&self.flights);`) is live until its block
//! closes or a `drop(g)` appears; an un-bound acquisition chained into
//! a call (`lock_or_recover(&self.responses).get(k)`) is a temporary
//! that dies at the end of its line. Recognised acquisition forms:
//! the `interleave::sync` recovery helpers (`lock_or_recover`,
//! `read_or_recover`, `write_or_recover`) and the raw `.lock(` /
//! `.read(` / `.write(` methods, with `.unwrap()` / `.expect(` /
//! `.unwrap_or_else(` treated as guard-preserving chains. Calls into
//! functions that themselves acquire are *not* followed — the
//! hierarchy table is what makes the per-site check sound: if every
//! site only acquires downward from what it holds, no cycle can form
//! across call boundaries either.
//!
//! `LOCK002` enforces the condvar discipline on the `cv` class:
//! an unbounded `.wait(` / `.wait_while(` is always flagged (a missed
//! wakeup parks a client-blockable path forever); `.wait_timeout(` must
//! sit inside a `loop`/`while` (the predicate re-check that makes the
//! bounded timeout a safety net rather than a correctness hole).
//!
//! `LOCK003` flags a live guard on a line that calls into
//! user-supplied code (`compute(`, closures handed to
//! `run_or_follow` / `get_or_insert_with`): user code must never run
//! under a substrate lock — it can block, panic, or re-enter.
//!
//! Deliberate exceptions carry `// lint: allow(lock-order)`,
//! `// lint: allow(cv-wait)`, or `// lint: allow(guard-across-compute)`
//! markers on the same or previous line, with a reason.

use crate::model::SourceModel;
use parallelism_core::analyze::{Diagnostic, RuleId};

/// The declared lock hierarchy, outermost class first. Mirrored in
/// DESIGN.md §13; the interleave battery checks the dynamic side of
/// the same contract.
pub const LOCK_HIERARCHY: [&str; 6] =
    ["conns", "flights", "responses", "outcomes", "slot", "shard"];

/// Receiver names treated as condition variables by `LOCK002`.
pub const CONDVAR_CLASSES: [&str; 1] = ["cv"];

/// Path prefixes the lock rules apply to: the concurrent serve/cache
/// substrate. (`crates/interleave` *implements* the primitives and is
/// deliberately out of scope.)
pub const LOCK_SCOPE: [&str; 2] = ["crates/serve/src/", "crates/collectives/src/"];

/// Marker suppressing LOCK001 at the inner acquisition site.
pub const LOCK_ORDER_MARKER: &str = "lint: allow(lock-order)";
/// Marker suppressing LOCK002 at the wait site.
pub const CV_WAIT_MARKER: &str = "lint: allow(cv-wait)";
/// Marker suppressing LOCK003 at the call site.
pub const GUARD_MARKER: &str = "lint: allow(guard-across-compute)";

/// Tokens that mean "user-supplied code runs here" for LOCK003.
const COMPUTE_TOKENS: [&str; 3] = ["compute(", "run_or_follow(", "get_or_insert_with("];

/// Chained calls that still return the guard (so the binding stays a
/// guard binding, not a temporary of some other type).
const GUARD_PRESERVING: [&str; 3] = [".unwrap()", ".expect(", ".unwrap_or_else("];

/// Whether the lock rules apply to `path`.
pub fn in_scope(path: &str) -> bool {
    LOCK_SCOPE.iter().any(|p| path.starts_with(p))
}

fn rank(class: &str) -> Option<usize> {
    LOCK_HIERARCHY.iter().position(|c| *c == class)
}

/// How an acquisition's guard lives.
enum Binding {
    /// `let name = <acquire>;` — lives until the block closes or
    /// `drop(name)`. `depth` is the brace depth entering the line.
    Let { name: String, depth: i32 },
    /// Chained or positional — dies at the end of its line.
    Temp,
}

struct Guard {
    class: &'static str,
    line: usize,
    binding: Binding,
}

/// One recognised acquisition site on a line.
struct Acquisition {
    class: &'static str,
    /// Byte offset of the end of the full acquisition expression
    /// (past guard-preserving chains), for binding classification.
    expr_end: usize,
    /// Byte offset where the acquisition expression starts.
    expr_start: usize,
}

/// Runs the three lock rules over one in-scope file.
pub fn check_locks(model: &SourceModel, out: &mut Vec<Diagnostic>) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i32 = 0;
    // Stack of the (trimmed) lines that opened each currently-open
    // brace — the enclosing-loop evidence for LOCK002.
    let mut openers: Vec<String> = Vec::new();

    for (idx, line) in model.lines().iter().enumerate() {
        if line.in_test {
            // Brace depth still advances through test regions so
            // guards bound outside them die at the right place.
            track_braces(&line.code, &mut openers, &mut depth);
            guards.retain(|g| match g.binding {
                Binding::Let { depth: d, .. } => depth >= d,
                Binding::Temp => false,
            });
            continue;
        }
        let code = line.code.as_str();
        let trimmed = line.raw.trim();

        // 1. Acquisitions, in textual order.
        for acq in find_acquisitions(model, idx) {
            for held in &guards {
                let held_rank = rank(held.class);
                let new_rank = rank(acq.class);
                if let (Some(h), Some(n)) = (held_rank, new_rank) {
                    if h >= n && !model.marked(idx, LOCK_ORDER_MARKER) {
                        out.push(
                            Diagnostic::error(
                                RuleId::Lock001,
                                format!(
                                    "lock-order inversion: `{}` acquired while holding `{}` \
                                     (declared hierarchy: {})",
                                    acq.class,
                                    held.class,
                                    LOCK_HIERARCHY.join(" \u{2192} "),
                                ),
                            )
                            .at_op(model.location(idx))
                            .with_witness(vec![
                                format!(
                                    "holds `{}` since {}: {}",
                                    held.class,
                                    model.location(held.line),
                                    model.lines()[held.line].raw.trim()
                                ),
                                format!("acquires `{}` at {}: {}", acq.class, model.location(idx), trimmed),
                            ]),
                        );
                    }
                }
            }
            guards.push(Guard {
                class: acq.class,
                line: idx,
                binding: classify_binding(code, acq.expr_start, acq.expr_end, depth),
            });
        }

        // 2. LOCK002 — condvar discipline.
        check_condvar(model, idx, &openers, out);

        // 3. LOCK003 — guard live across user-supplied code.
        let calls_user_code = COMPUTE_TOKENS.iter().any(|t| {
            code.match_indices(t)
                .any(|(pos, _)| !ident_char_before(code.as_bytes(), pos))
        });
        if calls_user_code
            && !code.contains("fn ")
            && !guards.is_empty()
            && !model.marked(idx, GUARD_MARKER)
        {
            let held: Vec<String> = guards
                .iter()
                .map(|g| format!("`{}` held since {}", g.class, model.location(g.line)))
                .collect();
            out.push(
                Diagnostic::error(
                    RuleId::Lock003,
                    "lock guard held across a call into user-supplied code (compute \
                     closures must run outside every substrate lock: they can block, \
                     panic, or re-enter)",
                )
                .at_op(model.location(idx))
                .with_witness(
                    std::iter::once(trimmed.to_string())
                        .chain(held)
                        .collect(),
                ),
            );
        }

        // 4. End-of-line guard deaths and depth bookkeeping:
        // temporaries die with their line, `drop(name)` kills a
        // let-bound guard, and a closing block kills everything bound
        // at a deeper depth.
        guards.retain(|g| match &g.binding {
            Binding::Temp => false,
            Binding::Let { name, .. } => {
                name.is_empty() || !code.contains(&format!("drop({name})"))
            }
        });
        track_braces(code, &mut openers, &mut depth);
        guards.retain(|g| match g.binding {
            Binding::Let { depth: d, .. } => depth >= d,
            Binding::Temp => true,
        });
    }
}

/// Advances the opener stack and depth through one blanked-code line,
/// brace by brace (so `} else {` replaces its opener rather than
/// keeping the stale one).
fn track_braces(code: &str, openers: &mut Vec<String>, depth: &mut i32) {
    for b in code.bytes() {
        match b {
            b'{' => openers.push(code.trim().to_string()),
            b'}' => {
                openers.pop();
            }
            _ => {}
        }
    }
    *depth = openers.len() as i32;
}

/// Whether the byte before `pos` is an identifier char (used to reject
/// e.g. `my_compute(` matching `compute(`).
fn ident_char_before(bytes: &[u8], pos: usize) -> bool {
    pos > 0 && (bytes[pos - 1].is_ascii_alphanumeric() || bytes[pos - 1] == b'_')
}

/// Finds lock acquisitions on line `idx`, in textual order.
fn find_acquisitions(model: &SourceModel, idx: usize) -> Vec<Acquisition> {
    let code = model.lines()[idx].code.as_str();
    let mut found: Vec<Acquisition> = Vec::new();

    // Helper form: lock_or_recover(&self.flights), read_or_recover(shard), ...
    for helper in ["lock_or_recover(", "read_or_recover(", "write_or_recover("] {
        for (pos, _) in code.match_indices(helper) {
            if ident_char_before(code.as_bytes(), pos) {
                continue; // part of a longer identifier (or a def site like `pub fn lock_or_recover(`? those have `fn ` before — still skip via ident check on callers)
            }
            let open = pos + helper.len() - 1;
            let Some(close) = balanced_close(code, open) else {
                continue;
            };
            let arg = &code[open + 1..close];
            if let Some(class) = class_of_receiver(arg) {
                found.push(Acquisition {
                    class,
                    expr_start: pos,
                    expr_end: extend_chain(code, close + 1),
                });
            }
        }
    }

    // Method form: <recv>.lock( / .read( / .write(
    for method in [".lock(", ".read(", ".write("] {
        for (pos, _) in code.match_indices(method) {
            let recv = receiver_before(model, idx, pos);
            if let Some(class) = class_of_receiver(&recv) {
                let open = pos + method.len() - 1;
                let end = balanced_close(code, open).map_or(code.len(), |c| c + 1);
                found.push(Acquisition {
                    class,
                    expr_start: receiver_start(code, pos),
                    expr_end: extend_chain(code, end),
                });
            }
        }
    }

    found.sort_by_key(|a| a.expr_start);
    found
}

/// LOCK002: unbounded waits are flagged outright; bounded waits must
/// sit inside a `loop`/`while` within the current function.
fn check_condvar(
    model: &SourceModel,
    idx: usize,
    openers: &[String],
    out: &mut Vec<Diagnostic>,
) {
    let code = model.lines()[idx].code.as_str();
    let trimmed = model.lines()[idx].raw.trim();
    for token in [".wait(", ".wait_while("] {
        for (pos, _) in code.match_indices(token) {
            let recv = receiver_before(model, idx, pos);
            let is_cv =
                last_segment(&recv).is_some_and(|seg| CONDVAR_CLASSES.contains(&seg));
            if is_cv && !model.marked(idx, CV_WAIT_MARKER) {
                out.push(
                    Diagnostic::error(
                        RuleId::Lock002,
                        "unbounded Condvar wait on a client-blockable path (a missed \
                         wakeup parks the caller forever; use `wait_timeout` in a \
                         predicate loop)",
                    )
                    .at_op(model.location(idx))
                    .with_witness(vec![trimmed.to_string()]),
                );
            }
        }
    }
    for (pos, _) in code.match_indices(".wait_timeout(") {
        let recv = receiver_before(model, idx, pos);
        if last_segment(&recv).is_some_and(|seg| CONDVAR_CLASSES.contains(&seg)) {
            let mut in_loop = false;
            for opener in openers.iter().rev() {
                if opener.contains("fn ") {
                    break;
                }
                if opener.starts_with("loop")
                    || opener.contains(" loop ")
                    || opener.contains("while ")
                    || opener.starts_with("while")
                {
                    in_loop = true;
                    break;
                }
            }
            if !in_loop && !model.marked(idx, CV_WAIT_MARKER) {
                out.push(
                    Diagnostic::error(
                        RuleId::Lock002,
                        "Condvar::wait_timeout outside a predicate loop (a spurious or \
                         early wakeup returns with the predicate still false; re-check \
                         in a loop)",
                    )
                    .at_op(model.location(idx))
                    .with_witness(vec![trimmed.to_string()]),
                );
            }
        }
    }
}

/// The byte index one past the matching `)` for the `(` at `open`.
fn balanced_close(code: &str, open: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut depth = 0i32;
    for (i, b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extends `end` past guard-preserving chained calls
/// (`.unwrap_or_else(...)` etc.), returning where the acquisition
/// expression really ends.
fn extend_chain(code: &str, mut end: usize) -> usize {
    loop {
        let rest = &code[end.min(code.len())..];
        let Some(chain) = GUARD_PRESERVING.iter().find(|c| rest.starts_with(**c)) else {
            return end;
        };
        if chain.ends_with('(') {
            let open = end + chain.len() - 1;
            match balanced_close(code, open) {
                Some(close) => end = close + 1,
                None => return code.len(),
            }
        } else {
            end += chain.len();
        }
    }
}

/// The start of the receiver expression feeding a `.method(` at `dot`.
fn receiver_start(code: &str, dot: usize) -> usize {
    let bytes = code.as_bytes();
    let mut i = dot;
    while i > 0 {
        let b = bytes[i - 1];
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b':' {
            i -= 1;
        } else if b == b')' {
            // Walk back over a balanced call, e.g. `self.shard(key)`.
            let mut depth = 0i32;
            while i > 0 {
                match bytes[i - 1] {
                    b')' => depth += 1,
                    b'(' => {
                        depth -= 1;
                        if depth == 0 {
                            i -= 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i -= 1;
            }
        } else {
            break;
        }
    }
    i
}

/// The textual receiver of a `.method(` at byte `pos` of line `idx`,
/// joining up to three previous lines so rustfmt-split chains
/// (`self\n.cv\n.wait_timeout(...)`) still resolve.
fn receiver_before(model: &SourceModel, idx: usize, pos: usize) -> String {
    let code = model.lines()[idx].code.as_str();
    let mut text = code[..pos].to_string();
    let mut back = idx;
    while text.trim_start().starts_with('.') || text.trim().is_empty() {
        if back == 0 || idx - back >= 3 {
            break;
        }
        back -= 1;
        if model.lines()[back].in_test {
            break;
        }
        text = format!("{}{}", model.lines()[back].code.trim(), text.trim_start());
    }
    let start = receiver_start(&text, text.len());
    text[start..].to_string()
}

/// The last path segment of a receiver expression, with any call
/// arguments stripped: `&self.map.flights` → `flights`,
/// `self.shard(&key)` → `shard`, `shard` → `shard`.
fn last_segment(receiver: &str) -> Option<&str> {
    let r = receiver
        .trim()
        .trim_start_matches(['&', '*', ' '])
        .trim_start_matches("mut ")
        .trim();
    let r = match r.find('(') {
        Some(p) => &r[..p],
        None => r,
    };
    let seg = r.rsplit(['.', ':']).next()?.trim();
    if seg.is_empty() || !seg.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') {
        None
    } else {
        Some(seg)
    }
}

/// The hierarchy class of a receiver expression, if its final segment
/// names one.
fn class_of_receiver(receiver: &str) -> Option<&'static str> {
    let seg = last_segment(receiver)?;
    LOCK_HIERARCHY.iter().find(|c| **c == seg).copied()
}

/// Classifies how the guard produced at `expr_start..expr_end` is
/// bound on `code`.
fn classify_binding(code: &str, expr_start: usize, expr_end: usize, depth: i32) -> Binding {
    let after = code[expr_end.min(code.len())..].trim_start();
    if after.starts_with('.') {
        return Binding::Temp; // chained into a non-guard expression
    }
    if !(after.is_empty() || after.starts_with(';')) {
        return Binding::Temp; // positional: an argument, a match head, ...
    }
    let before = code[..expr_start].trim_end();
    let Some(eq) = before.strip_suffix('=') else {
        return Binding::Temp;
    };
    let lhs = eq.trim_end();
    let Some(let_pos) = lhs.rfind("let ") else {
        return Binding::Temp;
    };
    let pat = lhs[let_pos + 4..].trim().trim_start_matches("mut ").trim();
    // Only a simple identifier pattern gets drop()-tracking; anything
    // fancier still dies with its block.
    let name = if pat.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_') && !pat.is_empty() {
        pat.to_string()
    } else {
        String::new()
    };
    Binding::Let { name, depth }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock_lint(text: &str) -> Vec<Diagnostic> {
        let model = SourceModel::parse("crates/serve/src/fixture.rs", text);
        let mut out = Vec::new();
        check_locks(&model, &mut out);
        out
    }

    #[test]
    fn legal_downward_nesting_is_clean() {
        let v = lock_lint(
            "fn f(&self) {\n    let flights = lock_or_recover(&self.flights);\n    let slot = lock_or_recover(&self.slot);\n    drop(slot);\n    drop(flights);\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn inversion_is_flagged_with_both_sites_as_witness() {
        let v = lock_lint(
            "fn f(&self) {\n    let slot = lock_or_recover(&self.slot);\n    let flights = lock_or_recover(&self.flights);\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::Lock001);
        assert_eq!(v[0].op.as_deref(), Some("crates/serve/src/fixture.rs:3"));
        assert!(v[0].witness[0].contains("fixture.rs:2"), "{v:?}");
        assert!(v[0].message.contains("`flights` acquired while holding `slot`"));
    }

    #[test]
    fn same_class_reacquisition_is_an_inversion() {
        let v = lock_lint(
            "fn f(&self) {\n    let a = lock_or_recover(&self.flights);\n    let b = lock_or_recover(&self.flights);\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("holding `flights`"), "{v:?}");
    }

    #[test]
    fn temporaries_die_at_end_of_line() {
        let v = lock_lint(
            "fn f(&self) {\n    lock_or_recover(&self.slot).publish();\n    lock_or_recover(&self.flights).remove(&k);\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn block_close_releases_let_bound_guards() {
        let v = lock_lint(
            "fn f(&self) {\n    {\n        let slot = lock_or_recover(&self.slot);\n    }\n    let flights = lock_or_recover(&self.flights);\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn drop_releases_early() {
        let v = lock_lint(
            "fn f(&self) {\n    let slot = lock_or_recover(&self.slot);\n    drop(slot);\n    let flights = lock_or_recover(&self.flights);\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn raw_lock_unwrap_form_is_recognised() {
        let v = lock_lint(
            "fn f(&self) {\n    let slot = self.slot.lock().unwrap();\n    let flights = self.flights.lock().unwrap();\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::Lock001);
    }

    #[test]
    fn shard_while_holding_slot_is_legal_but_reverse_is_not() {
        let ok = lock_lint(
            "fn f(&self) {\n    let slot = lock_or_recover(&self.slot);\n    let got = read_or_recover(self.shard(&key)).get(&key);\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
        let bad = lock_lint(
            "fn f(&self) {\n    let shard = write_or_recover(self.shard(&key));\n    let slot = lock_or_recover(&self.slot);\n}\n",
        );
        assert_eq!(bad.len(), 1, "{bad:?}");
    }

    #[test]
    fn marker_suppresses_lock001() {
        let v = lock_lint(
            "fn f(&self) {\n    let slot = lock_or_recover(&self.slot);\n    // lint: allow(lock-order) — teardown path, single-threaded by contract\n    let flights = lock_or_recover(&self.flights);\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn bare_condvar_wait_is_flagged() {
        let v = lock_lint(
            "fn f(&self) {\n    let g = lock_or_recover(&self.slot);\n    let g = self.cv.wait(g).unwrap();\n}\n",
        );
        assert!(
            v.iter().any(|d| d.rule == RuleId::Lock002
                && d.message.contains("unbounded Condvar wait")),
            "{v:?}"
        );
    }

    #[test]
    fn wait_timeout_outside_a_loop_is_flagged_inside_is_clean() {
        let bad = lock_lint(
            "fn f(&self) {\n    let g = lock_or_recover(&self.slot);\n    let (g, _) = self.cv.wait_timeout(g, T).unwrap();\n}\n",
        );
        assert!(
            bad.iter().any(|d| d.rule == RuleId::Lock002
                && d.message.contains("outside a predicate loop")),
            "{bad:?}"
        );
        let ok = lock_lint(
            "fn f(&self) {\n    let mut g = lock_or_recover(&self.slot);\n    loop {\n        let (got, _) = self.cv.wait_timeout(g, T).unwrap();\n        g = got;\n    }\n}\n",
        );
        assert!(ok.iter().all(|d| d.rule != RuleId::Lock002), "{ok:?}");
    }

    #[test]
    fn rustfmt_split_receiver_chains_still_resolve() {
        let bad = lock_lint(
            "fn f(&self) {\n    let g = self\n        .cv\n        .wait(guard)\n        .unwrap();\n}\n",
        );
        assert!(
            bad.iter().any(|d| d.rule == RuleId::Lock002),
            "{bad:?}"
        );
    }

    #[test]
    fn guard_across_compute_is_flagged() {
        let v = lock_lint(
            "fn f(&self) {\n    let g = lock_or_recover(&self.responses);\n    let v = compute();\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::Lock003);
        let ok = lock_lint(
            "fn f(&self) {\n    let v = compute();\n    lock_or_recover(&self.responses).insert(k, v);\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn guard_temp_on_the_same_line_as_compute_is_flagged() {
        let v = lock_lint(
            "fn f(&self) {\n    lock_or_recover(&self.responses).insert(k, compute());\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::Lock003);
    }

    #[test]
    fn test_regions_are_exempt_from_lock_rules() {
        let v = lock_lint(
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t(&self) {\n        let slot = lock_or_recover(&self.slot);\n        let flights = lock_or_recover(&self.flights);\n    }\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
