//! The repo hygiene rules (`LINT001`–`LINT007`), ported from the
//! original `repo_lint` binary onto [`SourceModel`] so string literals
//! and block comments can no longer fool the token scans.
//!
//! Each rule reports a [`Diagnostic`] whose `op` field carries the
//! 1-based `path:line` location and whose witness is the offending
//! line; the message texts are the original `repo_lint` contract and
//! are pinned by the golden lint test.

use crate::model::SourceModel;
use parallelism_core::analyze::{Diagnostic, RuleId};

/// Marker suppressing LINT001 on the same or previous line.
pub const UNWRAP_MARKER: &str = "lint: allow(unwrap)";
/// Marker suppressing LINT002 on the same or previous line.
pub const DEPRECATED_MARKER: &str = "lint: allow(deprecated-sim)";
/// Marker suppressing LINT003 on the same or previous line.
pub const CLI_ARGS_MARKER: &str = "lint: allow(cli-args)";
/// Marker suppressing LINT004 on the same or previous line.
pub const SCALAR_MARKER: &str = "lint: allow(f64)";
/// Marker suppressing LINT006 on the same or previous line.
pub const TRACE_VEC_MARKER: &str = "lint: allow(trace-vec)";

/// Unambiguous method names of the deprecated simulation wrappers.
/// (`.simulate(` alone is ambiguous — `RunSimulator::simulate` and
/// `MultimodalStep::simulate` are current API; blanket
/// `#[allow(deprecated)]` is what would hide a deprecated call to
/// them, and that is flagged here too.)
const DEPRECATED_CALLS: [&str; 3] =
    [".simulate_at(", ".simulate_jittered(", ".simulate_with_trace("];

/// Construction sites of the per-subcommand CLI argument structs.
/// Declarations (`struct`/`impl`/`fn` headers) and type positions don't
/// match — only `<Name> {` literal construction does.
const CLI_ARGS_STRUCTS: [&str; 4] =
    ["AnalyzeArgs {", "FuzzArgs {", "SnapshotArgs {", "SearchArgs {"];

/// Modules whose cost expressions must stay generic over `Scalar` —
/// the LINT004 target set.
const SCALAR_COST_PATHS: [&str; 2] = ["crates/core/src/costs.rs", "crates/numerics/src/costs.rs"];

/// Crates below `parallelism-core` in the workspace layering — the
/// LINT005 target set. (`core` itself defines the protocol; `analyzer`,
/// `conformance`, `bench`, and `serve` sit above it and may speak it.)
const WIRE_FREE_CRATES: [&str; 7] = [
    "crates/sim/",
    "crates/cluster/",
    "crates/collectives/",
    "crates/model/",
    "crates/workload/",
    "crates/numerics/",
    "crates/trace/",
];

/// Tokens that betray wire-protocol knowledge in a substrate crate.
const WIRE_TOKENS: [&str; 3] = ["parallelism_core::query", "QUERY_API_VERSION", "llama3sim/1"];

/// Unbounded full-resolution event buffers — the LINT006 token set.
const TRACE_VEC_TOKENS: [&str; 2] = ["Vec<TraceEvent>", "Vec<(u64, TraceEvent)>"];

/// The crate allowed to hold full-resolution buffers: the tiered store
/// itself and the `Trace` container it decimates.
const TRACE_VEC_HOME: &str = "crates/trace/src/";

/// Tokens that betray inference-engine knowledge in a substrate crate —
/// the LINT007 token set. The engine lives in `parallelism_core::infer`
/// (it prices the op graph on the training cost models); substrate
/// crates below `parallelism-core` must stay workload-agnostic. The
/// `workload` crate's traffic generator is deliberately *not* in this
/// set: arrival traces are plain data, not engine surface.
const INFER_TOKENS: [&str; 5] = [
    "parallelism_core::infer",
    "InferPlan",
    "InferSpec",
    "InferCosts",
    "InferenceModel",
];

fn finding(rule: RuleId, model: &SourceModel, idx: usize, message: &str) -> Diagnostic {
    Diagnostic::error(rule, message)
        .at_op(model.location(idx))
        .with_witness(vec![model.lines()[idx].raw.trim().to_string()])
}

/// Runs all seven hygiene rules over one file, appending findings.
pub fn check_hygiene(model: &SourceModel, out: &mut Vec<Diagnostic>) {
    let path = model.path();
    let scalar_costs_module = SCALAR_COST_PATHS.iter().any(|p| path.ends_with(p));
    let wire_free_crate = WIRE_FREE_CRATES.iter().any(|p| path.starts_with(p));
    let trace_vec_banned = !path.starts_with(TRACE_VEC_HOME);

    for (idx, line) in model.lines().iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();

        if (code.contains(".unwrap()") || code.contains(".expect("))
            && !model.marked(idx, UNWRAP_MARKER)
        {
            out.push(finding(
                RuleId::Lint001,
                model,
                idx,
                "unwrap/expect in library code (return SimError or add \
                 `// lint: allow(unwrap)` with a reason)",
            ));
        }

        let deprecated_use = code.contains("#[allow(deprecated)]")
            || DEPRECATED_CALLS.iter().any(|c| code.contains(c));
        if deprecated_use && !model.marked(idx, DEPRECATED_MARKER) {
            out.push(finding(
                RuleId::Lint002,
                model,
                idx,
                "internal caller of a deprecated simulate* wrapper (use \
                 `StepModel::run`, or add `// lint: allow(deprecated-sim)` in oracle code)",
            ));
        }

        // `fn` headers returning the type and `let Args { .. } = ...`
        // destructuring are not construction sites.
        let cli_construction = CLI_ARGS_STRUCTS.iter().any(|c| code.contains(c))
            && !code.contains("struct ")
            && !code.contains("impl ")
            && !code.contains("fn ")
            && !code.contains("} = ");
        if cli_construction && !model.marked(idx, CLI_ARGS_MARKER) {
            out.push(finding(
                RuleId::Lint003,
                model,
                idx,
                "direct construction of a CLI argument struct (go through its \
                 `parse`/`Default` constructor so flag parsing stays unified behind \
                 `llama3sim`, or mark the canonical constructor `// lint: allow(cli-args)`)",
            ));
        }

        if wire_free_crate && WIRE_TOKENS.iter().any(|t| code.contains(t)) {
            out.push(finding(
                RuleId::Lint005,
                model,
                idx,
                "wire-protocol surface referenced below `parallelism-core` (the \
                 query types live in `parallelism_core::query`; substrate crates must \
                 not speak the serve protocol)",
            ));
        }

        if wire_free_crate && INFER_TOKENS.iter().any(|t| code.contains(t)) {
            out.push(finding(
                RuleId::Lint007,
                model,
                idx,
                "inference-engine surface referenced below `parallelism-core` (the \
                 serving engine lives in `parallelism_core::infer`; substrate crates \
                 stay workload-agnostic — traffic traces are plain data)",
            ));
        }

        if trace_vec_banned
            && TRACE_VEC_TOKENS.iter().any(|t| code.contains(t))
            && !model.marked(idx, TRACE_VEC_MARKER)
        {
            out.push(finding(
                RuleId::Lint006,
                model,
                idx,
                "unbounded full-resolution event buffer outside the tiered store \
                 (hold events in a `TieredTrace`, or mark a deliberate reference-capture \
                 site `// lint: allow(trace-vec)` with a reason)",
            ));
        }

        if scalar_costs_module && contains_f64_token(code) && !model.marked(idx, SCALAR_MARKER) {
            out.push(finding(
                RuleId::Lint004,
                model,
                idx,
                "concrete `f64` arithmetic in a Scalar-generic cost module (write \
                 the expression over `S: Scalar` so duals price it too, or mark a deliberate \
                 site `// lint: allow(f64)` with a reason)",
            ));
        }
    }
}

/// Whether `code` contains `f64` as a standalone token (not as part of
/// a longer identifier such as `as_secs_f64`).
fn contains_f64_token(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find("f64") {
        let start = from + pos;
        let end = start + 3;
        let before_ok =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let after_ok =
            end == bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        // `1e15f64` style literal suffixes count: the char before is a
        // digit, but the token is still concrete-float arithmetic.
        let literal_suffix = start > 0 && bytes[start - 1].is_ascii_digit();
        if (before_ok || literal_suffix) && after_ok {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_path(path: &str, text: &str) -> Vec<Diagnostic> {
        let model = SourceModel::parse(path, text);
        let mut out = Vec::new();
        check_hygiene(&model, &mut out);
        out
    }

    fn lint_str(text: &str) -> Vec<Diagnostic> {
        lint_path("x.rs", text)
    }

    #[test]
    fn flags_unwrap_and_expect_in_lib_code() {
        let v = lint_str("fn f() {\n    let x = y.unwrap();\n    let z = w.expect(\"m\");\n}\n");
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].rule, RuleId::Lint001);
        assert_eq!(v[0].op.as_deref(), Some("x.rs:2"));
        assert_eq!(v[1].op.as_deref(), Some("x.rs:3"));
        assert_eq!(v[0].witness, vec!["let x = y.unwrap();".to_string()]);
    }

    #[test]
    fn marker_on_same_or_previous_line_suppresses() {
        let v = lint_str(
            "fn f() {\n    // lint: allow(unwrap) — reason\n    let x = y.unwrap();\n    let z = w.unwrap(); // lint: allow(unwrap)\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cfg_test_regions_and_comments_are_skipped() {
        let v = lint_str(
            "/// doc: calling `.unwrap()` panics\nfn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { y.unwrap(); }\n}\nfn h() { format!(\"{{{}}}\", 1); }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn cfg_test_on_bodyless_item_does_not_swallow_the_file() {
        let v = lint_str("#[cfg(test)]\nuse foo::bar;\nfn f() { y.unwrap(); }\n");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn unwrap_inside_a_string_literal_is_not_flagged() {
        // The original repo_lint flagged this; the SourceModel port is
        // strictly more precise.
        let v = lint_str("fn f() {\n    let s = \"docs about .unwrap() calls\";\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrap_inside_a_block_comment_is_not_flagged() {
        let v = lint_str("fn f() {\n    /* y.unwrap()\n       z.unwrap() */\n    g();\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn flags_deprecated_wrapper_calls_without_marker() {
        let v = lint_str("fn f(m: &M) {\n    m.simulate_at(SimFidelity::Full);\n}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::Lint002);
        assert!(v[0].message.contains("deprecated"));
        let ok = lint_str(
            "fn f(m: &M) {\n    // lint: allow(deprecated-sim)\n    m.simulate_at(SimFidelity::Full);\n}\n",
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn flags_cli_args_construction_without_marker() {
        let v = lint_str("fn f(json: bool) -> SnapshotArgs {\n    SnapshotArgs { json }\n}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::Lint003);
        assert!(v[0].message.contains("CLI argument struct"), "{v:?}");
        let ok = lint_str(
            "fn f(json: bool) -> SnapshotArgs {\n    // lint: allow(cli-args) — canonical\n    SnapshotArgs { json }\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn cli_args_declarations_are_not_construction_sites() {
        let v = lint_str(
            "pub struct SearchArgs {\n    pub json: bool,\n}\nimpl Default for SearchArgs {\n    fn default() -> SearchArgs {\n        // lint: allow(cli-args) — canonical\n        SearchArgs { json: false }\n    }\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn flags_f64_in_scalar_cost_modules_only() {
        let src = "pub fn f(x: f64) -> f64 {\n    x * 2.0\n}\n";
        let v = lint_path("crates/core/src/costs.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::Lint004);
        assert!(v[0].message.contains("Scalar-generic cost module"), "{v:?}");
        let elsewhere = lint_path("crates/core/src/step.rs", src);
        assert!(elsewhere.is_empty(), "{elsewhere:?}");
    }

    #[test]
    fn f64_marker_tests_and_comments_are_exempt() {
        let src = "// doc mentioning f64 freely\npub fn g<S: Scalar>(x: S) -> S {\n    x\n}\n// lint: allow(f64) — fixture\nfn fixture() -> f64 { 1.0 }\n#[cfg(test)]\nmod tests {\n    fn t() { let _: f64 = 1e15f64; }\n}\n";
        let v = lint_path("crates/numerics/src/costs.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn flags_wire_protocol_types_below_core_only() {
        let src = "use parallelism_core::query::Query;\nfn f() {}\n";
        let v = lint_path("crates/collectives/src/cost.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::Lint005);
        assert!(v[0].message.contains("wire-protocol"), "{v:?}");
        let above = lint_path("crates/analyzer/src/lib.rs", src);
        assert!(above.is_empty(), "{above:?}");
        // Doc comments mentioning the protocol are fine anywhere.
        let docs = lint_path(
            "crates/sim/src/graph.rs",
            "// rendered later via parallelism_core::query\nfn f() {}\n",
        );
        assert!(docs.is_empty(), "{docs:?}");
    }

    #[test]
    fn flags_inference_types_below_core_only() {
        let src = "use parallelism_core::infer::InferSpec;\nfn f() {}\n";
        let v = lint_path("crates/workload/src/traffic.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::Lint007);
        assert!(v[0].message.contains("inference-engine"), "{v:?}");
        // Core itself, and the crates above it, may use the engine.
        let home = lint_path("crates/core/src/infer.rs", src);
        assert!(home.is_empty(), "{home:?}");
        let above = lint_path("crates/serve/src/dispatch.rs", "fn f(m: &InferenceModel) {}\n");
        assert!(above.is_empty(), "{above:?}");
        // A bare type token below core is enough to fire.
        let bare = lint_path("crates/sim/src/graph.rs", "fn f() { let c = InferCosts::new(); }\n");
        assert_eq!(bare.len(), 1, "{bare:?}");
        assert_eq!(bare[0].rule, RuleId::Lint007);
        // Doc comments mentioning the engine are fine anywhere.
        let docs = lint_path(
            "crates/model/src/memory.rs",
            "// sized for parallelism_core::infer KV paging\nfn f() {}\n",
        );
        assert!(docs.is_empty(), "{docs:?}");
    }

    #[test]
    fn flags_trace_event_vectors_outside_the_trace_crate() {
        let src = "fn f() {\n    let buf: Vec<TraceEvent> = Vec::new();\n    let tagged: Vec<(u64, TraceEvent)> = Vec::new();\n}\n";
        let v = lint_path("crates/core/src/run.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].rule, RuleId::Lint006);
        assert!(v[0].message.contains("tiered store"), "{v:?}");
        // The trace crate itself is the home of the full-res container.
        let home = lint_path("crates/trace/src/tiered.rs", src);
        assert!(home.is_empty(), "{home:?}");
        // A marked reference-capture site is exempt.
        let ok = lint_str(
            "fn f() {\n    // lint: allow(trace-vec) — oracle reference\n    let buf: Vec<TraceEvent> = Vec::new();\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn f64_token_matching_is_word_boundary_aware() {
        assert!(contains_f64_token("let x: f64 = 1.0;"));
        assert!(contains_f64_token("(1e15f64 / 2.0)"));
        assert!(contains_f64_token("y as f64"));
        assert!(!contains_f64_token("t.as_secs_f64()"));
        assert!(!contains_f64_token("let f64x = 3;"));
        assert!(!contains_f64_token("nothing here"));
    }
}
