//! Seeded conformance fuzz sweep.
//!
//! Samples random `(model, mesh, schedule, options)` configurations,
//! runs the full invariant + oracle battery on each, and on the first
//! violation greedily shrinks the failing spec and prints a
//! ready-to-paste `#[test]` reproducing it.
//!
//! ```text
//! conformance_fuzz [--cases N] [--seed S]
//! ```
//!
//! `--seed` accepts decimal or `0x`-prefixed hex. The sweep is fully
//! deterministic: the same `(cases, seed)` pair replays the same specs.
//! Exit status is 0 on a clean sweep, 1 on a counterexample, 2 on a
//! usage error.

use conformance::fuzz::{minimize, CaseSpec};
use proptest::test_runner::TestRng;

fn parse_u64(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| format!("not a number: {s}"))
}

fn parse_args() -> Result<(u64, u64), String> {
    let mut cases = 500u64;
    let mut seed = 1u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))
                .and_then(|v| parse_u64(&v))
        };
        match arg.as_str() {
            "--cases" => cases = take("--cases")?,
            "--seed" => seed = take("--seed")?,
            "--help" | "-h" => {
                println!("usage: conformance_fuzz [--cases N] [--seed S]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok((cases, seed))
}

fn main() {
    let (cases, seed) = parse_args().unwrap_or_else(|e| {
        eprintln!("conformance_fuzz: {e}");
        std::process::exit(2);
    });
    let mut rng = TestRng::new(seed);
    for case in 0..cases {
        let spec = CaseSpec::sample(&mut rng);
        if let Err(msg) = spec.check() {
            eprintln!("counterexample at case {case}/{cases} (seed {seed:#x}):");
            eprintln!("  {msg}");
            let (min_spec, steps) = minimize(spec);
            let min_msg = min_spec
                .check()
                .expect_err("minimize must preserve the failure");
            eprintln!("shrunk in {steps} steps to: {min_spec}");
            eprintln!("  {min_msg}");
            eprintln!("\npaste this test to pin the regression:\n");
            println!("{}", min_spec.as_test_snippet(seed, case, steps));
            std::process::exit(1);
        }
        if (case + 1) % 500 == 0 {
            eprintln!("conformance_fuzz: {}/{cases} cases clean", case + 1);
        }
    }
    println!("conformance_fuzz: {cases} cases, seed {seed:#x}: no counterexamples");
}
