//! Deprecated shim: the seeded fuzz sweep now lives in the `llama3sim`
//! multi-command CLI as `llama3sim fuzz`. This bin keeps the old
//! invocation working by delegating to the same library entry point
//! ([`conformance::fuzz::sweep`]).

// The shim exists precisely to keep the old path alive.
#![allow(deprecated)]

use conformance::fuzz::{sweep, FuzzArgs};

fn parse_u64(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| format!("not a number: {s}"))
}

fn parse_args() -> Result<FuzzArgs, String> {
    let mut parsed = FuzzArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))
                .and_then(|v| parse_u64(&v))
        };
        match arg.as_str() {
            "--cases" => parsed.cases = take("--cases")?,
            "--seed" => parsed.seed = take("--seed")?,
            "--help" | "-h" => {
                println!("usage: conformance_fuzz [--cases N] [--seed S]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(parsed)
}

fn main() {
    eprintln!("note: `conformance_fuzz` is deprecated; use `llama3sim fuzz` instead");
    let parsed = parse_args().unwrap_or_else(|e| {
        eprintln!("conformance_fuzz: {e}");
        std::process::exit(2);
    });
    std::process::exit(sweep(&parsed));
}
