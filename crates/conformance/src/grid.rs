//! Deterministic configuration grid for the differential-oracle tests.
//!
//! Where the fuzz sweep samples randomly, the grid pins a reproducible
//! set of ≥ 50 configurations spanning every mesh axis, schedule
//! family, ZeRO mode and accelerator, so `cargo test` exercises the
//! oracles on the same points every run. The categorical knobs (GPU,
//! precision of the layer split, sequence length, ZeRO, recompute) are
//! cycled deterministically by entry index rather than enumerated
//! exhaustively — the goal is axis coverage, not a combinatorial blow-up.

use crate::fuzz::{CaseSpec, GpuChoice};
use parallelism_core::{ScheduleKind, ZeroMode};

/// Mesh shapes `[tp, cp, pp, dp]` covered by the grid. Every product is
/// a multiple of 8 so `Cluster::llama3` accepts it unmodified.
pub const MESHES: [(u32, u32, u32, u32); 8] = [
    (1, 1, 2, 4),
    (2, 1, 2, 2),
    (4, 1, 2, 1),
    (2, 2, 2, 1),
    (1, 1, 4, 2),
    (8, 1, 1, 1),
    (2, 1, 4, 4),
    (1, 2, 2, 2),
];

/// Schedule families covered by the grid.
pub const KINDS: [ScheduleKind; 4] = [
    ScheduleKind::AllFwdAllBwd,
    ScheduleKind::Interleaved1F1B,
    ScheduleKind::Flexible { nc: 2 },
    ScheduleKind::Flexible { nc: 4 },
];

/// The deterministic oracle grid: 8 meshes × 4 schedule kinds × 2
/// virtual-stage counts = 64 normalized specs.
pub fn config_grid() -> Vec<CaseSpec> {
    let zeros = [ZeroMode::Zero1, ZeroMode::Zero2, ZeroMode::Zero3];
    let mut out = Vec::new();
    for (mi, &(tp, cp, pp, dp)) in MESHES.iter().enumerate() {
        for (ki, &kind) in KINDS.iter().enumerate() {
            for v in [1, 2] {
                let i = out.len();
                out.push(
                    CaseSpec {
                        gpu: GpuChoice::ALL[i % GpuChoice::ALL.len()],
                        layers_per_stage: 1 + (i % 2) as u32,
                        tp,
                        cp,
                        pp,
                        dp,
                        v,
                        bs: 8,
                        seq: if i % 2 == 0 { 4096 } else { 8192 },
                        kind,
                        zero: zeros[(mi + ki) % zeros.len()],
                        recompute: i % 2 == 1,
                    }
                    .normalized(),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_large_normalized_and_diverse() {
        let grid = config_grid();
        assert!(grid.len() >= 50, "grid holds only {} configs", grid.len());
        for spec in &grid {
            assert_eq!(*spec, spec.normalized(), "not in normal form: {spec}");
            assert_eq!((spec.tp * spec.cp * spec.pp * spec.dp) % 8, 0);
        }
        for axis in [
            grid.iter().map(|s| s.tp).collect::<std::collections::HashSet<_>>().len(),
            grid.iter().map(|s| s.pp).collect::<std::collections::HashSet<_>>().len(),
            grid.iter().map(|s| s.dp).collect::<std::collections::HashSet<_>>().len(),
        ] {
            assert!(axis >= 3, "an axis collapses to {axis} distinct values");
        }
        let kinds: std::collections::HashSet<_> =
            grid.iter().map(|s| format!("{:?}", s.kind)).collect();
        assert!(kinds.len() >= 3);
    }

    #[test]
    fn grid_is_deterministic() {
        assert_eq!(config_grid(), config_grid());
    }
}
