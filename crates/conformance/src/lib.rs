//! # conformance
//!
//! Cross-checking layer for the simulator: the schedule generators and
//! the two timing engines carry fast paths (DP-symmetry folding,
//! memoized collective costs, the fluid disjoint-single-link shortcut,
//! deprecated `simulate*` wrappers) whose equivalence to the slow paths
//! must hold on *every* configuration, not just the hand-picked Llama 3
//! points. Following the simulator-validation practice of RAPID-LLM and
//! Charon, this crate treats that as a first-class subsystem with three
//! layers:
//!
//! 1. [`invariants`] — reusable non-panicking `check_*` functions over
//!    schedules, executed task graphs, process groups, memory models
//!    and traces.
//! 2. [`oracles`] — a generic [`oracles::assert_equivalent`] harness
//!    plus the ten differential oracles (folded vs full fidelity,
//!    memoized vs uncached collective costs, fluid fast path vs the
//!    general max-min solver, `StepModel::run` vs the deprecated
//!    wrappers, `RunSimulator` day totals vs an independent naive
//!    recomposition, the pruned search funnel vs exhaustive
//!    enumeration, guided vs exhaustive search, tiered-trace replay
//!    and aggregates vs full-resolution references, and the
//!    continuous-batching inference engine vs an independent naive
//!    rewalk).
//! 3. [`fuzz`] — seeded random `(model, mesh, schedule, options)`
//!    sampling with greedy dimension-halving shrinking, driven by the
//!    `conformance_fuzz` bin; counterexamples are emitted as
//!    ready-to-paste `#[test]` functions.
//!
//! Every later perf or refactor PR runs this crate (unit tests via
//! `cargo test`, the fuzz smoke stage via `scripts/check.sh`) before
//! touching the hot paths.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fuzz;
pub mod grid;
pub mod invariants;
pub mod oracles;
