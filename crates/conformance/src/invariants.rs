//! Non-panicking invariant checkers.
//!
//! Each `check_*` function validates one structural property and
//! returns `Err(message)` instead of panicking, so the fuzz driver can
//! catch violations, shrink the failing configuration, and report it.
//! The messages name the offending rank/op/value — they are meant to be
//! pasted into a bug report as-is.

use collectives::ProcessGroup;
use parallelism_core::fsdp::{self, ZeroMode};
use parallelism_core::pp::schedule::{warmup_microbatches, PpOp, PpSchedule, ScheduleKind};
use parallelism_core::pp::sim::{simulate_pp, PpCostModel, PpSimResult};
use parallelism_core::step::{StepModel, StepReport};
use sim_engine::graph::{ExecutedGraph, GraphError, StreamId};
use std::collections::HashMap;
use trace_analysis::Trace;

/// Outcome of one invariant check: `Err` carries a human-readable
/// description of the violation.
pub type CheckResult = Result<(), String>;

/// Per-micro-batch completeness: on every rank each `(chunk, mb)` pair
/// appears exactly once as a forward and once as a backward, the op
/// count is `2 · v · nmb`, and no backward precedes its own forward.
/// This is the non-panicking twin of `PpSchedule::assert_well_formed`.
pub fn check_schedule_completeness(s: &PpSchedule) -> CheckResult {
    let total = (s.v * s.nmb) as usize;
    for (ppr, ops) in s.ranks.iter().enumerate() {
        if ops.len() != 2 * total {
            return Err(format!(
                "rank {ppr}: {} ops, expected 2·v·nmb = {}",
                ops.len(),
                2 * total
            ));
        }
        let mut fwd_seen = vec![false; total];
        let mut bwd_seen = vec![false; total];
        for op in ops {
            let idx = (op.chunk() * s.nmb + op.mb()) as usize;
            if idx >= total {
                return Err(format!("rank {ppr}: {op} outside chunk/mb bounds"));
            }
            match op {
                PpOp::Forward { .. } => {
                    if fwd_seen[idx] {
                        return Err(format!("rank {ppr}: duplicate {op}"));
                    }
                    fwd_seen[idx] = true;
                }
                PpOp::Backward { .. } => {
                    if bwd_seen[idx] {
                        return Err(format!("rank {ppr}: duplicate {op}"));
                    }
                    if !fwd_seen[idx] {
                        return Err(format!("rank {ppr}: {op} before its forward"));
                    }
                    bwd_seen[idx] = true;
                }
            }
        }
        if !fwd_seen.iter().all(|&b| b) {
            return Err(format!("rank {ppr}: missing forwards"));
        }
        if !bwd_seen.iter().all(|&b| b) {
            return Err(format!("rank {ppr}: missing backwards"));
        }
    }
    Ok(())
}

/// Warm-up / steady / cool-down accounting against the §3.1.1 closed
/// form. For every rank the in-flight profile must stay non-negative,
/// end at zero, and peak at `peak_in_flight`; for full-main-region
/// 1F1B-family schedules (`nc_eff ≥ pp`, `nmb % nc_eff == 0`) the
/// leading-forward count must equal
/// `min(warmup_microbatches(pp, ppr, v, nc) + 1, v·nmb)`, the trailing
/// backwards must mirror it, and the steady pairs must account for the
/// rest.
pub fn check_phase_counts(s: &PpSchedule) -> CheckResult {
    let total = s.v * s.nmb;
    let nc_eff = s.nc.min(s.nmb);
    let full_main = !matches!(s.kind, ScheduleKind::AllFwdAllBwd)
        && nc_eff >= s.pp
        && s.nmb.is_multiple_of(nc_eff);
    for ppr in 0..s.pp {
        let profile = s.in_flight_profile(ppr);
        if let Some(&neg) = profile.iter().find(|&&c| c < 0) {
            return Err(format!(
                "rank {ppr}: in-flight count dips to {neg} (backward without forward)"
            ));
        }
        match profile.last() {
            Some(&last) if last != 0 => {
                return Err(format!(
                    "rank {ppr}: {last} micro-batches still in flight at end of step"
                ));
            }
            None => return Err(format!("rank {ppr}: empty op list")),
            _ => {}
        }
        let peak = profile.iter().copied().max().unwrap_or(0);
        if peak != s.peak_in_flight(ppr) as i64 {
            return Err(format!(
                "rank {ppr}: profile peak {peak} != peak_in_flight() = {}",
                s.peak_in_flight(ppr)
            ));
        }
        let (lead, steady, trail) = s.phase_counts(ppr);
        if lead == 0 {
            return Err(format!("rank {ppr}: schedule does not start with a forward"));
        }
        if full_main {
            let expected_lead = (warmup_microbatches(s.pp, ppr, s.v, nc_eff) + 1).min(total);
            if lead != expected_lead {
                return Err(format!(
                    "rank {ppr}: {lead} leading forwards, expected warmup+1 = {expected_lead} \
                     (pp={}, v={}, nc={nc_eff})",
                    s.pp, s.v
                ));
            }
            if trail != lead {
                return Err(format!(
                    "rank {ppr}: cool-down of {trail} backwards does not mirror \
                     warm-up of {lead} forwards"
                ));
            }
            if lead + steady + trail + steady != 2 * total {
                return Err(format!(
                    "rank {ppr}: phases ({lead}, {steady}, {trail}) do not cover 2·v·nmb = {}",
                    2 * total
                ));
            }
        }
    }
    Ok(())
}

/// No-deadlock: lowers `s` under `costs` and executes it on the timing
/// engine, converting a [`GraphError::Deadlock`] into a message naming
/// the stuck-op count. Returns the simulation result so callers can
/// chain further checks without re-simulating.
pub fn check_schedule_executes(
    s: &PpSchedule,
    costs: &dyn PpCostModel,
) -> Result<PpSimResult, String> {
    simulate_pp(s, costs).map_err(|e| match e {
        GraphError::Deadlock(stuck) => format!(
            "schedule (pp={}, v={}, nmb={}, nc={}) deadlocks with {} ops stuck",
            s.pp,
            s.v,
            s.nmb,
            s.nc,
            stuck.len()
        ),
    })
}

/// Executed-graph causality and accounting: every op ends no earlier
/// than it starts, starts no earlier than each of its dependencies
/// ends (which also certifies acyclicity — the start times are a
/// topological order), per-stream op sequences respect FIFO program
/// order without overlap, the recorded per-stream busy totals match the
/// op durations, and the makespan equals the last op end.
pub fn check_executed_graph<M>(run: &ExecutedGraph<M>) -> CheckResult {
    let records = run.records();
    let mut stream_last_end = vec![None::<(usize, u64)>; run.stream_count()];
    let mut stream_busy = vec![0u128; run.stream_count()];
    let mut stream_ids = vec![None::<StreamId>; run.stream_count()];
    let mut max_end = 0u64;
    for (i, rec) in records.iter().enumerate() {
        if rec.id.index() != i {
            return Err(format!("record {i} carries id {}", rec.id));
        }
        let (start, end) = (rec.start.as_nanos(), rec.end.as_nanos());
        if end < start {
            return Err(format!("{}: end {end} before start {start}", rec.id));
        }
        for dep in &rec.deps {
            let Some(dep_rec) = records.get(dep.index()) else {
                return Err(format!("{}: unknown dependency {dep}", rec.id));
            };
            if dep_rec.end.as_nanos() > start {
                return Err(format!(
                    "{}: starts at {start} ns before its dependency {dep} ends at {} ns",
                    rec.id,
                    dep_rec.end.as_nanos()
                ));
            }
        }
        for s in &rec.streams {
            if s.index() >= run.stream_count() {
                return Err(format!("{}: unknown {s}", rec.id));
            }
            if let Some((prev, prev_end)) = stream_last_end[s.index()] {
                if start < prev_end {
                    return Err(format!(
                        "{s}: {} starts at {start} ns overlapping op{prev} ending at {prev_end} ns",
                        rec.id
                    ));
                }
            }
            stream_last_end[s.index()] = Some((i, end));
            stream_busy[s.index()] += u128::from(end - start);
            stream_ids[s.index()] = Some(*s);
        }
        max_end = max_end.max(end);
    }
    for (si, &busy) in stream_busy.iter().enumerate() {
        // Streams that ran no ops cannot be named from outside the
        // engine; both sides of the comparison are zero by construction.
        let Some(sid) = stream_ids[si] else { continue };
        let recorded = run.stream_busy(sid).as_nanos();
        if u128::from(recorded) != busy {
            return Err(format!(
                "stream{si}: recorded busy {recorded} ns != summed op durations {busy} ns"
            ));
        }
    }
    if run.makespan().as_nanos() != max_end {
        return Err(format!(
            "makespan {} ns != last op end {max_end} ns",
            run.makespan().as_nanos()
        ));
    }
    Ok(())
}

/// Memory high-water vs the analytical model: the per-rank
/// `peak_memory()` must recompose exactly from the exposed
/// [`MemoryComponents`](parallelism_core::step::MemoryComponents), and
/// the in-flight factor must equal the schedule's own replayed
/// `peak_in_flight`.
pub fn check_memory_model(m: &StepModel) -> CheckResult {
    let sched = m.build_schedule();
    check_schedule_completeness(&sched)?;
    let components = m.memory_components();
    let peaks = m.peak_memory();
    if components.len() != peaks.len() || peaks.len() != m.mesh.pp() as usize {
        return Err(format!(
            "memory vectors sized {} / {} for pp = {}",
            components.len(),
            peaks.len(),
            m.mesh.pp()
        ));
    }
    for (rank, (c, &peak)) in components.iter().zip(&peaks).enumerate() {
        if c.total() != peak {
            return Err(format!(
                "rank {rank}: peak_memory {peak} != state {} + act {} × in-flight {}",
                c.state_bytes, c.act_bytes_per_stage_mb, c.peak_in_flight
            ));
        }
        let replayed = sched.peak_in_flight(rank as u32);
        if c.peak_in_flight != replayed {
            return Err(format!(
                "rank {rank}: memory model holds {} in-flight micro-batches, \
                 schedule replay says {replayed}",
                c.peak_in_flight
            ));
        }
    }
    Ok(())
}

/// Collective byte conservation over one ring round set: walking the
/// group's ring edges, every member must appear exactly once as sender
/// and once as receiver per round, per-member totals must match
/// [`ProcessGroup::ring_traffic_per_rank`], and the group-wide bytes
/// sent must equal the bytes received.
pub fn check_ring_conservation(group: &ProcessGroup, bytes_per_rank: u64) -> CheckResult {
    let n = group.len() as u64;
    let rounds = n.saturating_sub(1);
    let mut sent: HashMap<u32, u64> = HashMap::new();
    let mut received: HashMap<u32, u64> = HashMap::new();
    for (src, dst) in group.ring_edges() {
        if src == dst {
            return Err(format!("{group}: self-loop ring edge at rank {}", src.0));
        }
        *sent.entry(src.0).or_insert(0) += rounds * bytes_per_rank;
        *received.entry(dst.0).or_insert(0) += rounds * bytes_per_rank;
    }
    let expected = group.ring_traffic_per_rank(bytes_per_rank);
    for &rank in group.ranks() {
        let s = sent.get(&rank.0).copied().unwrap_or(0);
        let r = received.get(&rank.0).copied().unwrap_or(0);
        if (s, r) != expected {
            return Err(format!(
                "{group}: rank {} moves ({s}, {r}) bytes, ring model says {expected:?}",
                rank.0
            ));
        }
    }
    let total_sent: u64 = sent.values().sum();
    let total_received: u64 = received.values().sum();
    if total_sent != total_received {
        return Err(format!(
            "{group}: {total_sent} bytes sent but {total_received} received"
        ));
    }
    Ok(())
}

/// FSDP byte conservation: the gradient reduce-scatter volume is the
/// full FP32 gradient buffer under every ZeRO mode, and the parameter
/// all-gather volume is exactly `2 × stage_visits` times the ZeRO-1
/// volume under ZeRO-3 (parameters re-gathered before each forward and
/// backward traversal).
pub fn check_fsdp_conservation(
    params: u64,
    policy: llm_model::memory::PrecisionPolicy,
    stage_visits: u64,
) -> CheckResult {
    let (ag1, rs1) = fsdp::comm_bytes_per_step(params, policy, ZeroMode::Zero1, stage_visits);
    for mode in [ZeroMode::Zero1, ZeroMode::Zero2, ZeroMode::Zero3] {
        let (ag, rs) = fsdp::comm_bytes_per_step(params, policy, mode, stage_visits);
        if rs != params * policy.grad_bytes {
            return Err(format!(
                "{mode:?}: reduce-scatter moves {rs} bytes, gradients hold {}",
                params * policy.grad_bytes
            ));
        }
        if rs != rs1 {
            return Err(format!(
                "{mode:?}: reduce-scatter volume {rs} differs from ZeRO-1's {rs1}"
            ));
        }
        let expected_ag = match mode {
            ZeroMode::Zero1 | ZeroMode::Zero2 => ag1,
            ZeroMode::Zero3 => ag1 * 2 * stage_visits.max(1),
        };
        if ag != expected_ag {
            return Err(format!(
                "{mode:?}: all-gather moves {ag} bytes, expected {expected_ag}"
            ));
        }
    }
    Ok(())
}

/// Monotone, non-overlapping trace lanes: within each `(rank,
/// category)` lane, events ordered by start must not overlap, and no
/// `start + duration` may overflow. The trace span must equal the last
/// event end.
pub fn check_trace_monotone(trace: &Trace) -> CheckResult {
    let mut max_end = 0u64;
    for rank in trace.ranks() {
        let mut lanes: HashMap<_, Vec<(u64, u64)>> = HashMap::new();
        for ev in trace.events_for_rank(rank) {
            let Some(end) = ev.start_ns.checked_add(ev.duration_ns) else {
                return Err(format!(
                    "rank {rank}: event '{}' overflows u64 at start {} + dur {}",
                    ev.name, ev.start_ns, ev.duration_ns
                ));
            };
            lanes
                .entry(ev.category)
                .or_default()
                .push((ev.start_ns, end));
            max_end = max_end.max(end);
        }
        for (cat, mut lane) in lanes {
            lane.sort_unstable();
            for w in lane.windows(2) {
                if w[1].0 < w[0].1 {
                    return Err(format!(
                        "rank {rank} {cat:?}: event at {} ns starts before the previous \
                         one ends at {} ns",
                        w[1].0, w[0].1
                    ));
                }
            }
        }
    }
    if trace.span_ns() != max_end {
        return Err(format!(
            "trace span {} ns != last event end {max_end} ns",
            trace.span_ns()
        ));
    }
    Ok(())
}

/// Step-report sanity against its own model: positive finite step time
/// and throughput, finite non-negative per-PP-rank bubble ratios
/// (idle over compute — legitimately above 1 when `pp > nmb`), the peak
/// memory vector identical to a fresh `peak_memory()` evaluation, and
/// the token count equal to `seq × bs × dp`.
pub fn check_step_report(m: &StepModel, r: &StepReport) -> CheckResult {
    if r.step_time.is_zero() {
        return Err("step time is zero".into());
    }
    if !(r.tflops_per_gpu.is_finite() && r.tflops_per_gpu > 0.0) {
        return Err(format!("non-physical TFLOPs/GPU: {}", r.tflops_per_gpu));
    }
    if r.bubble_ratio.len() != m.mesh.pp() as usize {
        return Err(format!(
            "{} bubble ratios for pp = {}",
            r.bubble_ratio.len(),
            m.mesh.pp()
        ));
    }
    for (rank, &b) in r.bubble_ratio.iter().enumerate() {
        if !(b.is_finite() && b >= 0.0) {
            return Err(format!("rank {rank}: non-physical bubble ratio {b}"));
        }
    }
    if r.peak_memory != m.peak_memory() {
        return Err("report peak memory differs from the analytical model".into());
    }
    let tokens = m.seq * m.bs as u64 * m.mesh.dp() as u64;
    if r.tokens != tokens {
        return Err(format!(
            "report counts {} tokens, seq × bs × dp = {tokens}",
            r.tokens
        ));
    }
    Ok(())
}
