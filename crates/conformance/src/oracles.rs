//! Differential oracles: run the fast path and the reference path on
//! the same input and demand equivalence.
//!
//! The generic entry point is [`assert_equivalent`]; the nine concrete
//! oracles cover every fast path added so far:
//!
//! 1. [`oracle_folded_vs_full`] — DP-symmetry folding vs lowering every
//!    replica.
//! 2. [`oracle_memoized_costs`] — the thread-local collective cost
//!    cache vs pricing uncached.
//! 3. [`oracle_fluid_fast_path`] — the disjoint-single-link fluid
//!    shortcut vs the general max-min event loop.
//! 4. [`oracle_run_vs_deprecated`] — `StepModel::run` vs the four
//!    deprecated `simulate*` wrappers.
//! 5. [`oracle_goodput_recomposition`] — `RunSimulator::simulate` vs an
//!    independent step-by-step walk of the same fault timeline.
//! 6. [`oracle_search_frontier`] — the pruned auto-parallelism search
//!    funnel vs exhaustive scoring plus quadratic-dominance frontier
//!    recovery.
//! 7. [`oracle_guided_frontier`] — the gradient-guided candidate
//!    strategy vs the exhaustive one on the same spec: identical
//!    frontier, bit-identical objectives, consistent savings stats.
//! 8. [`oracle_run_trace_replay`] — `RunSimulator::simulate_traced`'s
//!    tiered store + anchored replay vs an `O(N)` full-resolution
//!    capture of the same run: bit-identical goodput report,
//!    byte-identical rematerialized windows.
//! 9. [`oracle_tiered_trace`] — the tiered (tower-sampling) trace
//!    store vs full-resolution references on a step trace: (a) every
//!    rematerialized window byte-identical to the reference slice,
//!    (b) every stored tier-k aggregate equal to the direct fold of
//!    its raw events and to the merge of its tier-(k−1) halves,
//!    (c) tier-fed slow-rank verdicts identical to full-trace
//!    verdicts.
//! 10. [`oracle_continuous_batching`] — the inference engine's
//!     continuous-batching replica loop vs an independent naive
//!     rewalk of the same admission/prefill/decode policy:
//!     bit-identical outcomes, tokens conserved, no KV block leaked
//!     (`free == capacity` after draining), and the fleet-level
//!     `simulate` bit-identical on a re-run and to a manual
//!     shard-and-fold.

use crate::invariants::CheckResult;
use collectives::cost::{clear_cost_cache, CommCostModel};
use parallelism_core::infer::{
    simulate_replica, InferCosts, InferenceModel, ReplicaResult, RequestOutcome,
};
use parallelism_core::run::{GoodputLoss, GoodputReport, RunSimulator};
use parallelism_core::Request;
use parallelism_core::search::{enumerate_configs, search, SearchSpec, SearchStrategy};
use parallelism_core::step::{ExposedComm, SimFidelity, SimOptions, StepModel, StepReport};
use sim_engine::fluid::{FluidNet, Transfer, TransferOutcome};
use sim_engine::time::{SimDuration, SimTime};
use trace_analysis::synth::{synth_trace, SynthSpec};
use trace_analysis::tiered::{SliceReplay, TierConfig, TieredTrace, WindowStats};
use trace_analysis::{locate_slow_rank, locate_slow_rank_tiered, TraceEvent};

/// Structural approximate equality with field-naming error messages.
///
/// `tol` is a *relative* tolerance; `tol == 0.0` demands bit-identical
/// values. Implementations return the offending field path so a fuzz
/// counterexample explains itself.
pub trait ApproxEq {
    /// Compares `self` to `other` within relative tolerance `tol`.
    fn approx_eq(&self, other: &Self, tol: f64) -> CheckResult;
}

fn field(name: &str, r: CheckResult) -> CheckResult {
    r.map_err(|e| format!("{name}: {e}"))
}

impl ApproxEq for f64 {
    fn approx_eq(&self, other: &Self, tol: f64) -> CheckResult {
        // Infinities compare equal to themselves at any tolerance.
        if self == other {
            return Ok(());
        }
        let diff = (self - other).abs();
        let scale = self.abs().max(other.abs()).max(1.0);
        if diff <= tol * scale {
            Ok(())
        } else {
            Err(format!("{self} vs {other} (|Δ| = {diff:e}, tol = {tol:e})"))
        }
    }
}

impl ApproxEq for u64 {
    fn approx_eq(&self, other: &Self, tol: f64) -> CheckResult {
        if self == other {
            return Ok(());
        }
        if tol > 0.0 {
            return (*self as f64).approx_eq(&(*other as f64), tol);
        }
        Err(format!("{self} vs {other}"))
    }
}

impl ApproxEq for u32 {
    fn approx_eq(&self, other: &Self, tol: f64) -> CheckResult {
        u64::from(*self).approx_eq(&u64::from(*other), tol)
    }
}

impl ApproxEq for SimDuration {
    fn approx_eq(&self, other: &Self, tol: f64) -> CheckResult {
        if tol > 0.0 {
            return self.as_secs_f64().approx_eq(&other.as_secs_f64(), tol);
        }
        if self == other {
            Ok(())
        } else {
            Err(format!("{} ns vs {} ns", self.as_nanos(), other.as_nanos()))
        }
    }
}

impl<T: ApproxEq> ApproxEq for Vec<T> {
    fn approx_eq(&self, other: &Self, tol: f64) -> CheckResult {
        if self.len() != other.len() {
            return Err(format!("length {} vs {}", self.len(), other.len()));
        }
        for (i, (a, b)) in self.iter().zip(other).enumerate() {
            field(&format!("[{i}]"), a.approx_eq(b, tol))?;
        }
        Ok(())
    }
}

impl ApproxEq for ExposedComm {
    fn approx_eq(&self, other: &Self, tol: f64) -> CheckResult {
        field("tp", self.tp.approx_eq(&other.tp, tol))?;
        field("cp", self.cp.approx_eq(&other.cp, tol))?;
        field(
            "cp_sync_wait",
            self.cp_sync_wait.approx_eq(&other.cp_sync_wait, tol),
        )?;
        field("dp", self.dp.approx_eq(&other.dp, tol))
    }
}

impl ApproxEq for StepReport {
    fn approx_eq(&self, other: &Self, tol: f64) -> CheckResult {
        field("step_time", self.step_time.approx_eq(&other.step_time, tol))?;
        field(
            "tflops_per_gpu",
            self.tflops_per_gpu.approx_eq(&other.tflops_per_gpu, tol),
        )?;
        field(
            "bubble_ratio",
            self.bubble_ratio.approx_eq(&other.bubble_ratio, tol),
        )?;
        field(
            "peak_memory",
            self.peak_memory.approx_eq(&other.peak_memory, tol),
        )?;
        field("exposed", self.exposed.approx_eq(&other.exposed, tol))?;
        field("tokens", self.tokens.approx_eq(&other.tokens, tol))
    }
}

impl ApproxEq for GoodputLoss {
    fn approx_eq(&self, other: &Self, tol: f64) -> CheckResult {
        field(
            "checkpoint_s",
            self.checkpoint_s.approx_eq(&other.checkpoint_s, tol),
        )?;
        field("detect_s", self.detect_s.approx_eq(&other.detect_s, tol))?;
        field("restart_s", self.restart_s.approx_eq(&other.restart_s, tol))?;
        field("rework_s", self.rework_s.approx_eq(&other.rework_s, tol))?;
        field(
            "degraded_s",
            self.degraded_s.approx_eq(&other.degraded_s, tol),
        )
    }
}

impl ApproxEq for GoodputReport {
    fn approx_eq(&self, other: &Self, tol: f64) -> CheckResult {
        field(
            "wall_time_s",
            self.wall_time_s.approx_eq(&other.wall_time_s, tol),
        )?;
        field(
            "productive_s",
            self.productive_s.approx_eq(&other.productive_s, tol),
        )?;
        field("goodput", self.goodput.approx_eq(&other.goodput, tol))?;
        field(
            "steps_completed",
            self.steps_completed.approx_eq(&other.steps_completed, tol),
        )?;
        field("restarts", self.restarts.approx_eq(&other.restarts, tol))?;
        field("loss", self.loss.approx_eq(&other.loss, tol))?;
        field(
            "healthy_step_s",
            self.healthy_step_s.approx_eq(&other.healthy_step_s, tol),
        )?;
        field(
            "checkpoint_bytes_per_rank",
            self.checkpoint_bytes_per_rank
                .approx_eq(&other.checkpoint_bytes_per_rank, tol),
        )?;
        field(
            "checkpoint_write_s",
            self.checkpoint_write_s
                .approx_eq(&other.checkpoint_write_s, tol),
        )?;
        field(
            "checkpoint_interval_s",
            self.checkpoint_interval_s
                .approx_eq(&other.checkpoint_interval_s, tol),
        )?;
        field(
            "young_daly_interval_s",
            self.young_daly_interval_s
                .approx_eq(&other.young_daly_interval_s, tol),
        )?;
        field("mtbf_s", self.mtbf_s.approx_eq(&other.mtbf_s, tol))
    }
}

/// Asserts `a ≈ b` within relative tolerance `tol`, prefixing any
/// violation with `label` and the full field path.
pub fn assert_equivalent<T: ApproxEq>(label: &str, a: &T, b: &T, tol: f64) -> CheckResult {
    field(label, a.approx_eq(b, tol))
}

/// Oracle 1 — DP-symmetry folding. A jitter-free, healthy step must
/// produce *bit-identical* reports under [`SimFidelity::Folded`] and
/// [`SimFidelity::Full`]: the folding identity is exact, not
/// approximate.
pub fn oracle_folded_vs_full(m: &StepModel) -> CheckResult {
    let folded = m
        .run(&SimOptions::new().fidelity(SimFidelity::Folded))
        .map_err(|e| format!("folded run failed: {e}"))?
        .report;
    let full = m
        .run(&SimOptions::new().fidelity(SimFidelity::Full))
        .map_err(|e| format!("full run failed: {e}"))?
        .report;
    assert_equivalent("folded vs full", &folded, &full, 0.0)
}

/// Oracle 2 — memoized collective costs. Pricing the same collectives
/// with the thread-local cache enabled and disabled must be
/// bit-identical; the cache may never change a cost, only skip
/// recomputing it. Exercises all five collective entry points over the
/// given groups and byte sizes.
pub fn oracle_memoized_costs(
    model: &CommCostModel,
    groups: &[collectives::ProcessGroup],
    byte_sizes: &[u64],
) -> CheckResult {
    let uncached = model.clone().with_caching(false);
    let cached = model.clone().with_caching(true);
    clear_cost_cache();
    for g in groups {
        for &bytes in byte_sizes {
            let pairs = [
                ("all_gather", cached.all_gather(g, bytes), uncached.all_gather(g, bytes)),
                (
                    "reduce_scatter",
                    cached.reduce_scatter(g, bytes),
                    uncached.reduce_scatter(g, bytes),
                ),
                ("all_reduce", cached.all_reduce(g, bytes), uncached.all_reduce(g, bytes)),
                ("broadcast", cached.broadcast(g, bytes), uncached.broadcast(g, bytes)),
            ];
            for (name, c, u) in pairs {
                assert_equivalent(&format!("{name}({g}, {bytes})"), &c, &u, 0.0)?;
            }
            // Re-query through the now-warm cache: the hit must also match.
            assert_equivalent(
                &format!("all_gather({g}, {bytes}) cache hit"),
                &cached.all_gather(g, bytes),
                &uncached.all_gather(g, bytes),
                0.0,
            )?;
        }
    }
    Ok(())
}

/// Oracle 3 — the fluid solver's disjoint-single-link fast path vs the
/// general max-min event loop on the *same* transfer set. The general
/// path is forced by appending a zero-byte transfer routed over two
/// links: it changes no rate (zero demand) but defeats the
/// single-link-disjointness gate. Finish times may differ only by the
/// event loop's nanosecond rounding, bounded here at 1 µs.
pub fn oracle_fluid_fast_path(link_bps: &[f64], transfer_bytes: &[f64]) -> CheckResult {
    if link_bps.len() < 2 || transfer_bytes.len() > link_bps.len() {
        return Err(format!(
            "need ≥ 2 links and one transfer per link, got {} links / {} transfers",
            link_bps.len(),
            transfer_bytes.len()
        ));
    }
    let mut net = FluidNet::new();
    let links: Vec<_> = link_bps.iter().map(|&bps| net.add_link(bps)).collect();
    let make_transfers = || -> Vec<Transfer> {
        transfer_bytes
            .iter()
            .enumerate()
            .map(|(i, &bytes)| Transfer {
                route: vec![links[i]],
                bytes,
                start: SimTime::ZERO,
            })
            .collect()
    };
    let fast = net
        .run(make_transfers())
        .map_err(|e| format!("fast path failed: {e:?}"))?;
    let mut with_sentinel = make_transfers();
    with_sentinel.push(Transfer {
        route: vec![links[0], links[1]],
        bytes: 0.0,
        start: SimTime::ZERO,
    });
    let general = net
        .run(with_sentinel)
        .map_err(|e| format!("general path failed: {e:?}"))?;
    let finish = |outcomes: &[TransferOutcome], id: usize| {
        outcomes
            .iter()
            .find(|o| o.id.0 as usize == id)
            .map(|o| o.finish.as_nanos() as f64 / 1e9)
    };
    for (i, &bytes) in transfer_bytes.iter().enumerate() {
        let (Some(f), Some(g)) = (finish(&fast, i), finish(&general, i)) else {
            return Err(format!("transfer {i} missing from an outcome set"));
        };
        if (f - g).abs() > 1e-6 {
            return Err(format!(
                "transfer {i} ({bytes} bytes over link {i}): fast path finishes at {f} s, \
                 general max-min at {g} s"
            ));
        }
    }
    Ok(())
}

/// Oracle 4 — the deprecated `simulate*` wrappers are thin shims over
/// [`StepModel::run`] and must stay bit-identical to it until removed.
// lint: allow(deprecated-sim) — this oracle exists to test the deprecated wrappers
#[allow(deprecated)]
pub fn oracle_run_vs_deprecated(m: &StepModel) -> CheckResult {
    let run_default = m
        .run(&SimOptions::default())
        .map_err(|e| format!("run failed: {e}"))?
        .report;
    assert_equivalent("simulate() vs run", &m.simulate(), &run_default, 0.0)?;
    for fidelity in [SimFidelity::Folded, SimFidelity::Full] {
        let via_run = m
            .run(&SimOptions::new().fidelity(fidelity))
            .map_err(|e| format!("run({fidelity:?}) failed: {e}"))?
            .report;
        assert_equivalent(
            &format!("simulate_at({fidelity:?}) vs run"),
            // lint: allow(deprecated-sim)
            &m.simulate_at(fidelity),
            &via_run,
            0.0,
        )?;
    }
    let jitter = cluster_model::jitter::JitterModel::new(
        cluster_model::jitter::JitterKind::Static,
        0.05,
        17,
    );
    let via_run = m
        .run(&SimOptions::new().jitter(jitter).step(3))
        .map_err(|e| format!("jittered run failed: {e}"))?
        .report;
    assert_equivalent(
        "simulate_jittered vs run",
        // lint: allow(deprecated-sim)
        &m.simulate_jittered(&jitter, 3),
        &via_run,
        0.0,
    )?;
    // lint: allow(deprecated-sim)
    let (report, trace) = m.simulate_with_trace();
    let outcome = m
        .run(&SimOptions::new().trace(true))
        .map_err(|e| format!("traced run failed: {e}"))?;
    assert_equivalent("simulate_with_trace vs run", &report, &outcome.report, 0.0)?;
    match outcome.trace {
        Some(t) if t == trace => Ok(()),
        Some(_) => Err("simulate_with_trace vs run: traces differ".into()),
        None => Err("run(trace: true) produced no trace".into()),
    }
}

/// Oracle 5 — `RunSimulator` day totals vs an independent naive
/// recomposition of the same `FaultTimeline`: walk the horizon one step
/// at a time, pricing degraded steps, checkpoint stalls and
/// fatal-fault outages directly from the timeline, with no code shared
/// with `RunSimulator::simulate`. Totals must agree to float-rounding
/// tolerance.
pub fn oracle_goodput_recomposition(sim: &RunSimulator) -> CheckResult {
    let reference = sim
        .simulate()
        .map_err(|e| format!("RunSimulator::simulate failed: {e}"))?;
    let naive = naive_goodput(sim).map_err(|e| format!("naive recomposition failed: {e}"))?;
    assert_equivalent("goodput vs naive recomposition", &reference, &naive, 1e-9)
}

/// Oracle 6 — the staged search funnel vs exhaustive enumeration. The
/// pruned [`search`] pipeline takes two shortcuts the reference here
/// refuses: candidates are rejected at the *first* pre-flight error
/// (the remaining rule families never run), and the Pareto frontier is
/// recovered by one incremental sweep of the sorted objectives. The
/// reference instead scores **every** admitted candidate — running the
/// full analyzer and treating any error as rejection — and recomputes
/// the frontier by quadratic pairwise dominance. The funnel must agree
/// exactly: same rejected/scored split, and the same frontier as a
/// multiset of `(config, step time, peak memory)`. Pruning may never
/// drop a frontier point. Meant for small grids; refuses above 1024
/// candidates.
pub fn oracle_search_frontier(spec: &SearchSpec) -> CheckResult {
    let report = search(spec).map_err(|e| format!("search failed: {e}"))?;

    let (admitted, _) = enumerate_configs(spec);
    if admitted.len() > 1024 {
        return Err(format!(
            "the exhaustive reference is quadratic; {} candidates is too many",
            admitted.len()
        ));
    }
    let mut rejected = 0usize;
    let mut scored: Vec<(String, u64, u64)> = Vec::new();
    for cfg in &admitted {
        let Some(step) = spec.build_step(cfg) else {
            rejected += 1;
            continue;
        };
        if parallelism_core::analyze::analyze_step(&step).has_errors() {
            rejected += 1;
            continue;
        }
        let Ok(outcome) = step.run(&SimOptions::default()) else {
            rejected += 1;
            continue;
        };
        scored.push((
            cfg.to_string(),
            outcome.report.step_time.as_nanos(),
            outcome.report.max_peak_memory(),
        ));
    }

    let c = &report.counts;
    if c.candidates != admitted.len() {
        return Err(format!(
            "funnel saw {} candidates, enumeration yields {}",
            c.candidates,
            admitted.len()
        ));
    }
    if c.rejected_preflight != rejected || c.scored != scored.len() {
        return Err(format!(
            "funnel split {} rejected / {} scored, full analyzer says {rejected} / {}",
            c.rejected_preflight,
            c.scored,
            scored.len()
        ));
    }

    // A point survives iff nothing is ≤ in both objectives and < in at
    // least one; exact-objective duplicates are mutually non-dominating
    // and all survive, matching the funnel's tie handling.
    let dominated = |p: &(String, u64, u64)| {
        scored
            .iter()
            .any(|q| q.1 <= p.1 && q.2 <= p.2 && (q.1 < p.1 || q.2 < p.2))
    };
    let mut reference: Vec<(String, u64, u64)> =
        scored.iter().filter(|p| !dominated(p)).cloned().collect();
    let mut funnel: Vec<(String, u64, u64)> = report
        .frontier
        .iter()
        .map(|p| (p.config.to_string(), p.step_time.as_nanos(), p.peak_memory))
        .collect();
    let key = |p: &(String, u64, u64)| (p.1, p.2, p.0.clone());
    reference.sort_by_key(key);
    funnel.sort_by_key(key);
    if reference != funnel {
        let missing: Vec<&String> = reference
            .iter()
            .filter(|p| !funnel.contains(p))
            .map(|p| &p.0)
            .collect();
        let spurious: Vec<&String> = funnel
            .iter()
            .filter(|p| !reference.contains(p))
            .map(|p| &p.0)
            .collect();
        return Err(format!(
            "frontier mismatch: exhaustive reference has {} points, funnel has {}; \
             dropped by pruning: {missing:?}; not on the true frontier: {spurious:?}",
            reference.len(),
            funnel.len()
        ));
    }
    Ok(())
}

/// Oracle 7 — the gradient-guided search strategy vs the exhaustive
/// one. Guided search may only change *which* candidates are verified,
/// never what a verified candidate scores or which points win: on the
/// same spec the two strategies must produce the same frontier configs
/// with bit-identical step times and peak memory, and the guided stats
/// must account exactly for the candidate split. Meant for small grids
/// (where the guided strategy verifies everything by design); refuses
/// above 256 candidates.
pub fn oracle_guided_frontier(spec: &SearchSpec) -> CheckResult {
    let (admitted, _) = enumerate_configs(spec);
    if admitted.len() > 256 {
        return Err(format!(
            "guided-vs-exhaustive reference wants a small grid; {} candidates is too many",
            admitted.len()
        ));
    }
    let mut exhaustive_spec = spec.clone();
    exhaustive_spec.strategy = SearchStrategy::Exhaustive;
    let mut guided_spec = spec.clone();
    guided_spec.strategy = SearchStrategy::Guided;
    let exhaustive = search(&exhaustive_spec).map_err(|e| format!("exhaustive search failed: {e}"))?;
    let guided = search(&guided_spec).map_err(|e| format!("guided search failed: {e}"))?;

    if exhaustive.guided.is_some() {
        return Err("exhaustive run carries guided stats".into());
    }
    let stats = guided.guided.ok_or("guided run reported no stats")?;
    if stats.exhaustive_candidates != exhaustive.counts.candidates {
        return Err(format!(
            "guided stats claim {} exhaustive candidates, exhaustive run saw {}",
            stats.exhaustive_candidates, exhaustive.counts.candidates
        ));
    }
    if stats.candidates_verified != guided.counts.candidates {
        return Err(format!(
            "guided stats claim {} verified candidates, funnel saw {}",
            stats.candidates_verified, guided.counts.candidates
        ));
    }
    if !(0.0..=100.0).contains(&stats.evals_saved_pct) {
        return Err(format!("evals_saved_pct out of range: {}", stats.evals_saved_pct));
    }

    if exhaustive.frontier.len() != guided.frontier.len() {
        return Err(format!(
            "frontier size: exhaustive {} vs guided {}",
            exhaustive.frontier.len(),
            guided.frontier.len()
        ));
    }
    for (e, g) in exhaustive.frontier.iter().zip(&guided.frontier) {
        if e.config != g.config {
            return Err(format!("frontier config: {} vs {}", e.config, g.config));
        }
        assert_equivalent(
            &format!("frontier point {}", e.config),
            &e.step_time,
            &g.step_time,
            0.0,
        )?;
        assert_equivalent(
            &format!("frontier point {} memory", e.config),
            &e.peak_memory,
            &g.peak_memory,
            0.0,
        )?;
    }
    Ok(())
}

/// Oracle 8 — tiered run tracing vs the plain walk. Simulating with
/// `simulate_traced` (streaming into the bounded tower, recording
/// anchors) must leave the goodput report *bit-identical* to
/// `simulate()`, and every window rematerialized through the anchored
/// replay path must be byte-identical to the corresponding slice of an
/// `O(N)` full-resolution capture of the same run.
pub fn oracle_run_trace_replay(sim: &RunSimulator, cfg: TierConfig) -> CheckResult {
    let plain = sim
        .simulate()
        .map_err(|e| format!("simulate failed: {e}"))?;
    let traced = sim
        .simulate_traced(cfg)
        .map_err(|e| format!("simulate_traced failed: {e}"))?;
    assert_equivalent("traced vs plain report", &traced.report, &plain, 0.0)?;
    let (reference, full_report) = sim
        .trace_events()
        .map_err(|e| format!("trace_events failed: {e}"))?;
    assert_equivalent("full-capture vs plain report", &full_report, &plain, 0.0)?;
    if traced.store.appended() != reference.len() as u64 {
        return Err(format!(
            "store saw {} events, full capture has {}",
            traced.store.appended(),
            reference.len()
        ));
    }
    traced
        .store
        .check_integrity()
        .map_err(|e| format!("tower integrity: {e}"))?;

    let span = traced.store.span_ns();
    let replay = traced.replayer(sim);
    for (t0, t1) in [
        (0, span / 5),
        (span / 2, span / 2 + span / 7),
        (span - span / 6, span + 1),
    ] {
        if t0 >= t1 {
            continue;
        }
        let view = traced.store.window_with_replay(t0, t1, 0, &replay);
        // lint: allow(trace-vec) — oracle reference slice
        let expected: Vec<(u64, TraceEvent)> = reference
            .iter()
            .filter(|(_, e)| e.start_ns >= t0 && e.start_ns < t1)
            .cloned()
            .collect();
        if view.events != expected {
            return Err(format!(
                "window [{t0}, {t1}) ns: rematerialized {} events, reference slice has {} \
                 (rematerialized: {})",
                view.events.len(),
                expected.len(),
                view.rematerialized
            ));
        }
    }
    Ok(())
}

/// Oracle 9 — the tiered trace store vs full-resolution references on
/// the config's step trace (and synthetic slow-rank traces on its
/// mesh). Three claims, all exact:
///
/// * **(a) replay exactness** — any `window_with_replay` seek at zoom 0
///   is byte-identical to the reference slice of the full trace;
/// * **(b) aggregate recomposition** — every resident tier-k window
///   equals both the direct fold of its raw events and the merge of
///   its two tier-(k−1) halves;
/// * **(c) verdict parity** — `locate_slow_rank_tiered` on the bounded
///   store returns the same report as `locate_slow_rank` on the full
///   trace, straggler or not.
pub fn oracle_tiered_trace(m: &StepModel) -> CheckResult {
    let outcome = m
        .run(&SimOptions::new().trace(true))
        .map_err(|e| format!("traced step run failed: {e}"))?;
    let trace = outcome.trace.ok_or("run(trace: true) produced no trace")?;
    if trace.events.is_empty() {
        return Err("step trace is empty".into());
    }
    // A deliberately tiny tower so even short step traces evict and
    // build several tiers.
    let cfg = TierConfig::tiny(16, 2);
    let mut store = TieredTrace::new(cfg);
    for ev in &trace.events {
        store.append(ev.clone());
    }
    store
        .check_integrity()
        .map_err(|e| format!("tower integrity: {e}"))?;
    tiered_replay_exactness(&store, &trace.events)?;
    tiered_aggregate_recomposition(&store, &trace.events)?;
    tiered_verdict_parity(m)
}

/// Oracle 9a: window seeks against the full-resolution reference.
fn tiered_replay_exactness(store: &TieredTrace, events: &[TraceEvent]) -> CheckResult {
    let span = events
        .iter()
        .map(|e| e.start_ns + e.duration_ns)
        .max()
        .unwrap_or(0);
    let replay = SliceReplay::new(events);
    let windows = [
        (0, span / 3),
        (span / 3, 2 * span / 3),
        (span.saturating_sub(span / 5), span + 1),
        (0, span + 1),
    ];
    for (t0, t1) in windows {
        if t0 >= t1 {
            continue;
        }
        let view = store.window_with_replay(t0, t1, 0, &replay);
        // lint: allow(trace-vec) — oracle reference slice
        let expected: Vec<(u64, TraceEvent)> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.start_ns >= t0 && e.start_ns < t1)
            .map(|(i, e)| (i as u64, e.clone()))
            .collect();
        if view.events != expected {
            return Err(format!(
                "window [{t0}, {t1}) ns: rematerialized view has {} events, reference slice \
                 has {} (rematerialized: {})",
                view.events.len(),
                expected.len(),
                view.rematerialized
            ));
        }
    }
    Ok(())
}

/// Oracle 9b: every stored aggregate window recomposes from raw data.
fn tiered_aggregate_recomposition(store: &TieredTrace, events: &[TraceEvent]) -> CheckResult {
    let mut err: Option<String> = None;
    let mut windows = 0u32;
    store.for_each_window(|level, w| {
        if err.is_some() {
            return;
        }
        windows += 1;
        let lo = w.first_index as usize;
        let hi = lo + w.events as usize;
        if hi > events.len() {
            err = Some(format!(
                "tier {level} window at {lo} claims {} raw events past the stream end",
                w.events
            ));
            return;
        }
        let direct = WindowStats::from_run(w.first_index, &events[lo..hi]);
        if direct != *w {
            err = Some(format!(
                "tier {level} window at raw index {lo}: stored aggregate differs from the \
                 direct fold of its {} raw events",
                w.events
            ));
            return;
        }
        // The tier-(k−1) recomposition: a tier-k window is the merge of
        // the two half-span windows it was promoted from.
        let mid = lo + (hi - lo) / 2;
        let first = WindowStats::from_run(w.first_index, &events[lo..mid]);
        let second = WindowStats::from_run(mid as u64, &events[mid..hi]);
        if first.merge(&second) != *w {
            err = Some(format!(
                "tier {level} window at raw index {lo}: merge of its tier-{} halves differs \
                 from the stored aggregate",
                level - 1
            ));
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    if store.appended() > 4 * store.config().tier0_events as u64 && windows == 0 {
        return Err("eviction happened but no aggregate windows are resident".into());
    }
    Ok(())
}

/// Oracle 9c: slow-rank verdict parity on this config's mesh.
fn tiered_verdict_parity(m: &StepModel) -> CheckResult {
    let structure = m.mesh.group_structure();
    if structure.dims.is_empty() {
        // A 1×1×1×1 mesh has no groups to analyze; nothing to compare.
        return Ok(());
    }
    let n = m.mesh.num_gpus();
    for straggler in [None, Some((n / 2, 2.5))] {
        let spec = SynthSpec {
            num_ranks: n,
            rounds: 3,
            base_compute_ns: 80_000,
            straggler,
            structure: structure.clone(),
            seed: 17,
        };
        let trace = synth_trace(&spec);
        let full = locate_slow_rank(&trace, &structure);
        let mut store = TieredTrace::new(TierConfig::tiny(32, 4));
        store.extend_from_trace(&trace);
        let tiered = locate_slow_rank_tiered(&store, &structure);
        if full != tiered {
            return Err(format!(
                "straggler {straggler:?}: full-trace verdict (culprit {:?}, confidence {:.3}) \
                 differs from tier-fed verdict (culprit {:?}, confidence {:.3})",
                full.culprit, full.confidence, tiered.culprit, tiered.confidence
            ));
        }
    }
    Ok(())
}

/// Oracle 10 — continuous batching vs an independent naive rewalk.
/// Four claims, all exact:
///
/// * **(a) rewalk parity** — [`simulate_replica`]'s result on every
///   shard is bit-identical to [`naive_continuous_batching`], a
///   from-scratch reimplementation of the documented policy (FIFO
///   head-of-line admission with whole-lifetime block reservation,
///   serial prefill with priority over decode, one token per resident
///   sequence per decode iteration) sharing no state machinery with
///   the engine — it recomputes resident KV from per-sequence contexts
///   instead of maintaining a running counter, and walks the queue by
///   index instead of a `VecDeque`;
/// * **(b) conservation** — every admissible request completes with
///   exactly the trace's token counts, every inadmissible one is
///   dropped, and every replica ends with `free == capacity` (no KV
///   block leaked);
/// * **(c) determinism** — `simulate` run twice on the same trace is
///   bit-identical (whatever the thread count);
/// * **(d) fold parity** — manually sharding round-robin by id and
///   folding the per-replica results reproduces `simulate`'s report.
pub fn oracle_continuous_batching(model: &InferenceModel, requests: &[Request]) -> CheckResult {
    let report = model.simulate(requests);
    if model.simulate(requests) != report {
        return Err("same-trace re-simulation diverged".into());
    }

    let capacity = model.costs.block_capacity();
    let replicas = model.spec.plan.replicas as usize;
    let mut shards: Vec<Vec<Request>> = vec![Vec::new(); replicas];
    for r in requests {
        shards[(r.id % replicas as u64) as usize].push(*r);
    }
    let mut results: Vec<ReplicaResult> = Vec::with_capacity(replicas);
    for (i, shard) in shards.iter().enumerate() {
        let fast = simulate_replica(&model.costs, model.spec.max_batch, shard);
        let naive = naive_continuous_batching(&model.costs, model.spec.max_batch, shard);
        if fast != naive {
            return Err(format!(
                "replica {i}: engine and naive rewalk diverge ({} vs {} outcomes, \
                 {} vs {} decode iters, free {} vs {})",
                fast.outcomes.len(),
                naive.outcomes.len(),
                fast.decode_iters,
                naive.decode_iters,
                fast.free_blocks_end,
                naive.free_blocks_end
            ));
        }
        if fast.free_blocks_end != capacity {
            return Err(format!(
                "replica {i}: {} of {capacity} blocks leaked after draining",
                capacity - fast.free_blocks_end
            ));
        }
        let inadmissible = shard
            .iter()
            .filter(|r| model.costs.blocks_needed(r) > capacity)
            .count() as u64;
        if fast.dropped != inadmissible
            || fast.outcomes.len() as u64 + fast.dropped != shard.len() as u64
        {
            return Err(format!(
                "replica {i}: {} completed + {} dropped vs {} offered \
                 ({inadmissible} inadmissible)",
                fast.outcomes.len(),
                fast.dropped,
                shard.len()
            ));
        }
        let expected: u64 = shard
            .iter()
            .filter(|r| model.costs.blocks_needed(r) <= capacity)
            .map(|r| r.output_tokens)
            .sum();
        let generated: u64 = fast.outcomes.iter().map(|o| o.output_tokens).sum();
        if generated != expected {
            return Err(format!(
                "replica {i}: generated {generated} tokens, admissible requests carry {expected}"
            ));
        }
        for o in &fast.outcomes {
            if o.first_token_ns <= o.arrival_ns || o.finish_ns < o.first_token_ns {
                return Err(format!(
                    "replica {i}: request {} timing is not causal \
                     (arrival {}, first token {}, finish {})",
                    o.id, o.arrival_ns, o.first_token_ns, o.finish_ns
                ));
            }
        }
        results.push(fast);
    }
    if model.fold(requests.len() as u64, &results) != report {
        return Err("manual shard-and-fold diverges from simulate".into());
    }
    Ok(())
}

/// The independent continuous-batching rewalk used by
/// [`oracle_continuous_batching`]. Implements the policy documented on
/// [`simulate_replica`] from scratch: the waiting queue is an index
/// window over the time-ordered shard (not a `VecDeque`), resident KV
/// tokens are re-summed from per-sequence contexts every decode
/// iteration (not maintained incrementally), and completed sequences
/// are filtered into a fresh vector (not removed in place).
pub fn naive_continuous_batching(
    costs: &InferCosts,
    max_batch: usize,
    requests: &[Request],
) -> ReplicaResult {
    #[derive(Clone, Copy)]
    struct Seq {
        idx: usize,
        context: u64,
        remaining: u64,
    }
    let batch_cap = max_batch.max(1);
    let capacity = costs.block_capacity();
    let mut outcomes: Vec<RequestOutcome> = Vec::new();
    let mut resident: Vec<Seq> = Vec::new();
    let mut first_token = vec![0u64; requests.len()];
    let mut head = 0usize; // next request not yet admitted or dropped
    let mut arrived = 0usize; // requests[head..arrived] is the FIFO queue
    let mut now = 0u64;
    let mut free = capacity;
    let mut dropped = 0u64;
    let mut peak_blocks = 0u64;
    let mut decode_iters = 0u64;
    let mut busy = SimDuration::ZERO;

    while head < requests.len() || !resident.is_empty() {
        while arrived < requests.len() && requests[arrived].arrival_ns <= now {
            arrived += 1;
        }

        let mut n_admit = 0usize;
        while head + n_admit < arrived && resident.len() + n_admit < batch_cap {
            let need = costs.blocks_needed(&requests[head + n_admit]);
            if need > free {
                break;
            }
            free -= need;
            n_admit += 1;
        }
        peak_blocks = peak_blocks.max(capacity - free);

        if n_admit > 0 {
            let mut t = SimDuration::ZERO;
            for r in &requests[head..head + n_admit] {
                t += costs.prefill_time(r.prompt_tokens);
            }
            now += t.as_nanos();
            busy += t;
            for i in head..head + n_admit {
                let r = &requests[i];
                first_token[i] = now;
                if r.output_tokens == 1 {
                    free += costs.blocks_needed(r);
                    outcomes.push(RequestOutcome {
                        id: r.id,
                        arrival_ns: r.arrival_ns,
                        prompt_tokens: r.prompt_tokens,
                        output_tokens: r.output_tokens,
                        first_token_ns: now,
                        finish_ns: now,
                    });
                } else {
                    resident.push(Seq {
                        idx: i,
                        context: r.prompt_tokens + 1,
                        remaining: r.output_tokens - 1,
                    });
                }
            }
            head += n_admit;
            continue;
        }

        if !resident.is_empty() {
            let kv_tokens: u64 = resident.iter().map(|s| s.context).sum();
            let t = costs.decode_iter_time(resident.len() as u64, kv_tokens);
            now += t.as_nanos();
            busy += t;
            decode_iters += 1;
            let mut survivors: Vec<Seq> = Vec::with_capacity(resident.len());
            for mut s in resident {
                s.remaining -= 1;
                s.context += 1;
                if s.remaining == 0 {
                    let r = &requests[s.idx];
                    free += costs.blocks_needed(r);
                    outcomes.push(RequestOutcome {
                        id: r.id,
                        arrival_ns: r.arrival_ns,
                        prompt_tokens: r.prompt_tokens,
                        output_tokens: r.output_tokens,
                        first_token_ns: first_token[s.idx],
                        finish_ns: now,
                    });
                } else {
                    survivors.push(s);
                }
            }
            resident = survivors;
            continue;
        }

        if head < arrived {
            // The head request can never fit: drop, as the engine does.
            head += 1;
            dropped += 1;
            continue;
        }

        now = now.max(requests[arrived].arrival_ns);
    }

    ReplicaResult {
        outcomes,
        dropped,
        peak_blocks,
        free_blocks_end: free,
        decode_iters,
        busy,
    }
}

/// Independent step-by-step recomposition used by
/// [`oracle_goodput_recomposition`]. Deliberately re-derives every
/// quantity (step pricing, checkpoint cadence, outage arithmetic) from
/// the public `StepModel`/`FaultTimeline`/`CheckpointPolicy` APIs
/// rather than calling into `RunSimulator`'s loop.
pub fn naive_goodput(sim: &RunSimulator) -> Result<GoodputReport, String> {
    let base = sim
        .step
        .run(&SimOptions::default())
        .map_err(|e| e.to_string())?
        .report;
    let healthy = base.step_time.as_secs_f64();
    if healthy <= 0.0 {
        return Err("healthy step time must be positive".into());
    }
    let dp_exposed = base.exposed.dp.as_secs_f64();
    let bytes = sim.checkpoint_bytes_per_rank();
    let write_s = bytes as f64 / sim.policy.write_bandwidth;
    let read_s = bytes as f64 / sim.policy.read_bandwidth;
    let every = (sim.policy.interval_s / healthy).round().max(1.0) as u64;
    let horizon = sim.timeline.horizon_s();
    let fatals: Vec<f64> = sim.timeline.fatal_events().map(|e| e.start_s).collect();

    let mut t = 0.0f64;
    let mut committed = 0u64;
    let mut restarts = 0u32;
    let mut loss = GoodputLoss::default();
    let mut since_ckpt = 0u64;
    let mut since_ckpt_wall = 0.0f64;
    let mut since_ckpt_degraded = 0.0f64;
    let mut next_fatal = 0usize;

    while t < horizon {
        let health = sim.timeline.health_at(t);
        let step_s = healthy * health.worst_compute_multiplier()
            + dp_exposed * (1.0 / health.worst_link_scale() - 1.0);
        if next_fatal < fatals.len() && fatals[next_fatal] <= t + step_s {
            let f = fatals[next_fatal];
            next_fatal += 1;
            loss.rework_s += since_ckpt_wall + (f - t).max(0.0);
            since_ckpt = 0;
            since_ckpt_wall = 0.0;
            since_ckpt_degraded = 0.0;
            loss.detect_s += sim.policy.detect_s;
            loss.restart_s += sim.policy.reschedule_s + read_s;
            t = t.max(f) + sim.policy.detect_s + sim.policy.reschedule_s + read_s;
            restarts += 1;
            while next_fatal < fatals.len() && fatals[next_fatal] <= t {
                next_fatal += 1;
            }
            continue;
        }
        t += step_s;
        since_ckpt += 1;
        since_ckpt_wall += step_s;
        since_ckpt_degraded += step_s - healthy;
        if since_ckpt >= every {
            t += write_s;
            loss.checkpoint_s += write_s;
            committed += since_ckpt;
            loss.degraded_s += since_ckpt_degraded;
            since_ckpt = 0;
            since_ckpt_wall = 0.0;
            since_ckpt_degraded = 0.0;
        }
    }
    committed += since_ckpt;
    loss.degraded_s += since_ckpt_degraded;

    let productive = committed as f64 * healthy;
    let mtbf = sim.timeline.mtbf_s();
    Ok(GoodputReport {
        wall_time_s: t,
        productive_s: productive,
        goodput: productive / t.max(f64::MIN_POSITIVE),
        steps_completed: committed,
        restarts,
        loss,
        healthy_step_s: healthy,
        checkpoint_bytes_per_rank: bytes,
        checkpoint_write_s: write_s,
        checkpoint_interval_s: every as f64 * healthy,
        young_daly_interval_s: if mtbf.is_finite() {
            (2.0 * write_s * mtbf).sqrt()
        } else {
            f64::INFINITY
        },
        mtbf_s: mtbf,
    })
}
