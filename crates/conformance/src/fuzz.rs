//! Seeded random configuration sampling with greedy shrinking.
//!
//! [`CaseSpec`] is a flattened, fully-owned description of one fuzz
//! case: mesh shape, virtual stages, schedule family, ZeRO mode, batch
//! geometry and accelerator. It is `Copy`, `Debug` and reconstructible
//! from a literal, which is what makes counterexamples shrinkable and
//! emittable as ready-to-paste `#[test]` functions.
//!
//! [`TraceOpSpec`] is the second case family: a seeded script of
//! append/seek/zoom/stream operations driven against a [`TieredTrace`]
//! and cross-checked, after every operation, against a full-resolution
//! model store. [`InferCaseSpec`] is the third: a seeded serving
//! scenario (traffic shape, arrival rate, mesh, KV paging, batch cap)
//! whose continuous-batching simulation is cross-checked against the
//! independent naive rewalk of conformance oracle 10. All families
//! shrink through the same greedy [`minimize_with`] machinery.
//!
//! Sampling draws from the vendored proptest [`TestRng`] (xoshiro256++)
//! so a `(seed, case index)` pair replays exactly. Every drawn spec is
//! passed through [`CaseSpec::normalized`], which repairs the
//! cross-field constraints (the Llama 3 cluster wants a multiple of 8
//! GPUs, interleaved schedules want `bs % pp == 0`, `nc ≤ bs`, CP wants
//! `seq % (2·cp) == 0`) rather than rejection-sampling them, so no draw
//! is wasted. A final memory-repair ladder shrinks the footprint of
//! specs whose static peak-memory bound over-subscribes the
//! accelerator, so every normalized spec also passes the pre-flight
//! analyzer with zero errors — which [`CaseSpec::check`] asserts.

use crate::invariants::{
    check_executed_graph, check_fsdp_conservation, check_memory_model, check_phase_counts,
    check_ring_conservation, check_schedule_completeness, check_schedule_executes,
    check_step_report, check_trace_monotone,
};
use crate::oracles::{
    oracle_continuous_batching, oracle_fluid_fast_path, oracle_folded_vs_full,
    oracle_run_vs_deprecated,
};
use cluster_model::{Cluster, GlobalRank, GpuSpec};
use llm_model::{MaskSpec, ModelLayout, PrecisionPolicy, TransformerConfig};
use parallelism_core::infer::{InferPlan, InferSpec, InferenceModel};
use parallelism_core::pp::sim::{lower_pp, lowering_capacity, PpSimOp};
use parallelism_core::query;
use parallelism_core::pp::UniformCosts;
use parallelism_core::step::{SimOptions, StepModel};
use parallelism_core::{
    BalancePolicy, Dim, Mesh4D, ScheduleKind, StageAssignment, TrafficShape, TrafficSpec, ZeroMode,
};
use proptest::test_runner::TestRng;
use sim_engine::graph::TaskGraph;
use sim_engine::time::SimDuration;
use std::collections::BTreeMap;
use std::fmt;
use trace_analysis::tiered::{
    category_index, SliceReplay, TierConfig, TieredTrace, CATEGORIES, NUM_CATEGORIES,
};
use trace_analysis::TraceEvent;

/// Accelerator choice for a fuzz case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuChoice {
    /// H100 SXM with HBM3 (the Llama 3 production part).
    H100Hbm3,
    /// H100 with HBM2e (the paper's supplementary-cluster part).
    H100Hbm2e,
    /// A100 SXM.
    A100,
}

impl GpuChoice {
    /// All variants, in sampling order.
    pub const ALL: [GpuChoice; 3] = [GpuChoice::H100Hbm3, GpuChoice::H100Hbm2e, GpuChoice::A100];

    /// The concrete accelerator spec.
    pub fn spec(self) -> GpuSpec {
        match self {
            GpuChoice::H100Hbm3 => GpuSpec::h100_sxm_hbm3(),
            GpuChoice::H100Hbm2e => GpuSpec::h100_hbm2e(),
            GpuChoice::A100 => GpuSpec::a100_sxm(),
        }
    }

    fn literal(self) -> &'static str {
        match self {
            GpuChoice::H100Hbm3 => "GpuChoice::H100Hbm3",
            GpuChoice::H100Hbm2e => "GpuChoice::H100Hbm2e",
            GpuChoice::A100 => "GpuChoice::A100",
        }
    }
}

/// One fuzz case: everything needed to rebuild a [`StepModel`] from a
/// literal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseSpec {
    /// Accelerator.
    pub gpu: GpuChoice,
    /// Body layers per (stage, chunk); total layers = `pp · v · this`.
    pub layers_per_stage: u32,
    /// Tensor-parallel width.
    pub tp: u32,
    /// Context-parallel width.
    pub cp: u32,
    /// Pipeline depth.
    pub pp: u32,
    /// Data-parallel replicas.
    pub dp: u32,
    /// Virtual stages (interleaving chunks) per pipeline rank.
    pub v: u32,
    /// Sequences per DP replica per step (= micro-batches).
    pub bs: u32,
    /// Sequence length.
    pub seq: u64,
    /// Pipeline schedule family.
    pub kind: ScheduleKind,
    /// FSDP sharding mode.
    pub zero: ZeroMode,
    /// Activation recomputation on/off.
    pub recompute: bool,
}

impl fmt::Display for CaseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} mesh [{}, {}, {}, {}] v={} layers/stage={} bs={} seq={} {:?} {:?} recompute={}",
            self.gpu,
            self.tp,
            self.cp,
            self.pp,
            self.dp,
            self.v,
            self.layers_per_stage,
            self.bs,
            self.seq,
            self.kind,
            self.zero,
            self.recompute
        )
    }
}

impl CaseSpec {
    /// Draws one spec from the shared fuzz stream and normalizes it.
    pub fn sample(rng: &mut TestRng) -> CaseSpec {
        let bs = 1 + rng.below(12) as u32;
        let kind = match rng.below(3) {
            0 => ScheduleKind::AllFwdAllBwd,
            1 => ScheduleKind::Interleaved1F1B,
            _ => ScheduleKind::Flexible {
                nc: 1 + rng.below(u64::from(bs)) as u32,
            },
        };
        let spec = CaseSpec {
            gpu: GpuChoice::ALL[rng.below(GpuChoice::ALL.len() as u64) as usize],
            layers_per_stage: 1 + rng.below(2) as u32,
            tp: 1 << rng.below(4),
            cp: 1 + rng.below(2) as u32,
            pp: 1 << rng.below(3),
            dp: 1 << rng.below(3),
            v: 1 + rng.below(3) as u32,
            bs,
            seq: 4096 << rng.below(2),
            kind,
            zero: match rng.below(3) {
                0 => ZeroMode::Zero1,
                1 => ZeroMode::Zero2,
                _ => ZeroMode::Zero3,
            },
            recompute: rng.below(2) == 1,
        };
        spec.normalized()
    }

    /// Repairs cross-field constraints so the spec always builds:
    /// positive dimensions, a multiple-of-8 GPU count (TP doubles until
    /// it fits), `seq` divisible by `2·cp`, and a schedule kind valid
    /// for `(bs, pp)`.
    ///
    /// A memory-repair ladder then shrinks over-subscribed specs until
    /// the static peak-memory bound ([`fits_hbm`](CaseSpec::fits_hbm))
    /// fits the accelerator, in a fixed order from cheapest to most
    /// invasive: enable recomputation, drop to one layer per stage,
    /// drop to one virtual stage, shard everything (ZeRO-3), then
    /// double TP up to 8. The ladder is idempotent — a fitting spec is
    /// returned untouched — so normal forms stay stable under
    /// re-normalization.
    pub fn normalized(mut self) -> CaseSpec {
        for d in [
            &mut self.layers_per_stage,
            &mut self.tp,
            &mut self.cp,
            &mut self.pp,
            &mut self.dp,
            &mut self.v,
            &mut self.bs,
        ] {
            *d = (*d).max(1);
        }
        while !(self.tp * self.cp * self.pp * self.dp).is_multiple_of(8) {
            self.tp *= 2;
        }
        self.seq = if self.seq < 8192 { 4096 } else { 8192 };
        self.kind = match self.kind {
            ScheduleKind::Interleaved1F1B if !self.bs.is_multiple_of(self.pp) => ScheduleKind::Flexible {
                nc: self.pp.min(self.bs),
            },
            ScheduleKind::Flexible { nc } => ScheduleKind::Flexible {
                nc: nc.clamp(1, self.bs),
            },
            k => k,
        };
        if !self.fits_hbm() {
            self.recompute = true;
        }
        if !self.fits_hbm() {
            self.layers_per_stage = 1;
        }
        if !self.fits_hbm() {
            self.v = 1;
        }
        if !self.fits_hbm() {
            self.zero = ZeroMode::Zero3;
        }
        while !self.fits_hbm() && self.tp < 8 {
            self.tp *= 2;
        }
        self
    }

    /// `true` when every pipeline rank's static peak-memory bound (the
    /// pre-flight analyzer's `MEM001` quantity) fits the accelerator's
    /// HBM capacity.
    pub fn fits_hbm(&self) -> bool {
        let m = self.build();
        let Ok(sched) = m.schedule() else {
            // Structural defects are repaired by the caller; memory is
            // not the blocker here.
            return true;
        };
        let capacity = m.cluster.gpu.hbm_capacity;
        parallelism_core::analyze::memory::rank_bounds(&m, &sched)
            .iter()
            .all(|b| b.total() <= capacity)
    }

    /// Materializes the spec as a [`StepModel`]. Infallible for
    /// normalized specs.
    pub fn build(&self) -> StepModel {
        let layers = self.pp * self.v * self.layers_per_stage;
        let cfg = TransformerConfig::llama3_405b_scaled(u64::from(layers));
        let layout = ModelLayout::text(cfg);
        let assignment = StageAssignment::build(&layout, self.pp, self.v, BalancePolicy::Uniform);
        let mesh = Mesh4D::new(self.tp, self.cp, self.pp, self.dp);
        let mut cluster = Cluster::llama3(mesh.num_gpus());
        cluster.gpu = self.gpu.spec();
        StepModel {
            cluster,
            mesh,
            layout,
            assignment,
            schedule: self.kind,
            zero: self.zero,
            bs: self.bs,
            seq: self.seq,
            mask: MaskSpec::Causal,
            recompute: self.recompute,
        }
    }

    /// Runs the full conformance battery on this spec: the pre-flight
    /// static analyzer (which must report zero errors on a normalized
    /// spec), schedule invariants, no-deadlock execution,
    /// executed-graph causality, memory recomposition, step-report
    /// sanity, trace monotonicity, ring/FSDP byte conservation, and the
    /// cheap differential oracles (folding, deprecated wrappers, fluid
    /// fast path). The goodput and memoization oracles run in the grid
    /// tests instead — they price a whole training day and a shared
    /// thread-local cache, which would dominate a multi-thousand-case
    /// sweep.
    pub fn check(&self) -> Result<(), String> {
        let ctx = |label: &'static str| {
            let spec = *self;
            move |e: String| format!("[{spec}] {label}: {e}")
        };
        let m = self.build();
        let report = parallelism_core::analyze::analyze_step(&m);
        if report.has_errors() {
            return Err(ctx("pre-flight analysis")(report.error_summary()));
        }
        let sched = m.schedule().map_err(|e| ctx("schedule build")(e.to_string()))?;
        check_schedule_completeness(&sched).map_err(ctx("completeness"))?;
        check_phase_counts(&sched).map_err(ctx("phase counts"))?;

        let costs = UniformCosts {
            fwd: SimDuration::from_micros(120),
            bwd: SimDuration::from_micros(240),
            p2p: SimDuration::from_micros(15),
        };
        check_schedule_executes(&sched, &costs).map_err(ctx("deadlock"))?;
        let (ops, streams) = lowering_capacity(&sched);
        let mut g: TaskGraph<PpSimOp> = TaskGraph::with_capacity(ops, streams);
        lower_pp(&mut g, &sched, &costs, &[], |op| op);
        let run = g
            .execute()
            .map_err(|e| ctx("graph execution")(format!("{e:?}")))?;
        check_executed_graph(&run).map_err(ctx("executed graph"))?;

        check_memory_model(&m).map_err(ctx("memory model"))?;
        let outcome = m
            .run(&SimOptions::new().trace(true))
            .map_err(|e| ctx("step run")(e.to_string()))?;
        check_step_report(&m, &outcome.report).map_err(ctx("step report"))?;
        let trace = outcome
            .trace
            .ok_or_else(|| ctx("trace")("run(trace: true) produced no trace".into()))?;
        check_trace_monotone(&trace).map_err(ctx("trace"))?;

        for dim in [Dim::Tp, Dim::Cp, Dim::Pp, Dim::Dp] {
            let group = m.mesh.group_of(GlobalRank(0), dim);
            check_ring_conservation(&group, 1 << 20).map_err(ctx("ring conservation"))?;
        }
        check_fsdp_conservation(
            u64::from(self.layers_per_stage) * 1_000_003,
            PrecisionPolicy::llama3(),
            u64::from(self.v),
        )
        .map_err(ctx("fsdp conservation"))?;

        oracle_folded_vs_full(&m).map_err(ctx("oracle folded-vs-full"))?;
        oracle_run_vs_deprecated(&m).map_err(ctx("oracle run-vs-deprecated"))?;
        oracle_fluid_fast_path(
            &[25e9, 50e9, 100e9, 200e9],
            &[
                f64::from(self.bs) * 1e6,
                self.seq as f64 * 512.0,
                f64::from(self.tp * self.pp) * 3e6,
            ],
        )
        .map_err(ctx("oracle fluid-fast-path"))?;
        Ok(())
    }

    /// Strictly-smaller candidate specs for greedy shrinking: each
    /// parallelism dimension halved, the batch and virtual-stage counts
    /// halved, and the categorical knobs reset to their simplest value.
    /// Every candidate is re-normalized; candidates equal to `self` are
    /// dropped, so shrinking always terminates.
    pub fn shrink(&self) -> Vec<CaseSpec> {
        let mut out = Vec::new();
        let mut push = |c: CaseSpec| {
            let c = c.normalized();
            if c != *self && !out.contains(&c) {
                out.push(c);
            }
        };
        push(CaseSpec { tp: self.tp / 2, ..*self });
        push(CaseSpec { cp: self.cp / 2, ..*self });
        push(CaseSpec { pp: self.pp / 2, ..*self });
        push(CaseSpec { dp: self.dp / 2, ..*self });
        push(CaseSpec { v: self.v / 2, ..*self });
        push(CaseSpec { bs: self.bs / 2, ..*self });
        push(CaseSpec { layers_per_stage: 1, ..*self });
        push(CaseSpec { seq: 4096, ..*self });
        if let ScheduleKind::Flexible { nc } = self.kind {
            push(CaseSpec {
                kind: ScheduleKind::Flexible { nc: nc / 2 },
                ..*self
            });
        }
        push(CaseSpec {
            kind: ScheduleKind::AllFwdAllBwd,
            ..*self
        });
        push(CaseSpec {
            gpu: GpuChoice::H100Hbm3,
            ..*self
        });
        push(CaseSpec {
            zero: ZeroMode::Zero1,
            ..*self
        });
        push(CaseSpec {
            recompute: false,
            ..*self
        });
        out
    }

    /// Renders this spec as a ready-to-paste `#[test]` function that
    /// reproduces the failure by calling [`CaseSpec::check`].
    pub fn as_test_snippet(&self, seed: u64, case: u64, shrink_steps: u32) -> String {
        let kind = match self.kind {
            ScheduleKind::AllFwdAllBwd => "ScheduleKind::AllFwdAllBwd".to_string(),
            ScheduleKind::Interleaved1F1B => "ScheduleKind::Interleaved1F1B".to_string(),
            ScheduleKind::Flexible { nc } => format!("ScheduleKind::Flexible {{ nc: {nc} }}"),
        };
        format!(
            r#"// Found by `conformance_fuzz --seed {seed:#x}` (case {case}, {shrink_steps} shrink steps).
#[test]
fn conformance_counterexample_seed_{seed:x}_case_{case}() {{
    use conformance::fuzz::{{CaseSpec, GpuChoice}};
    use parallelism_core::{{ScheduleKind, ZeroMode}};
    let spec = CaseSpec {{
        gpu: {gpu},
        layers_per_stage: {layers_per_stage},
        tp: {tp},
        cp: {cp},
        pp: {pp},
        dp: {dp},
        v: {v},
        bs: {bs},
        seq: {seq},
        kind: {kind},
        zero: ZeroMode::{zero:?},
        recompute: {recompute},
    }};
    if let Err(msg) = spec.check() {{
        panic!("conformance violation: {{msg}}");
    }}
}}
"#,
            gpu = self.gpu.literal(),
            layers_per_stage = self.layers_per_stage,
            tp = self.tp,
            cp = self.cp,
            pp = self.pp,
            dp = self.dp,
            v = self.v,
            bs = self.bs,
            seq = self.seq,
            zero = self.zero,
            recompute = self.recompute,
        )
    }
}

/// Greedily minimizes a failing spec of any case family: repeatedly
/// replaces it with the first `shrink` candidate for which `fails`
/// still holds, until no candidate fails. Returns the minimal spec and
/// the number of accepted shrink steps. The input must itself satisfy
/// `fails`.
pub fn minimize_with<S: Clone>(
    mut spec: S,
    shrink: impl Fn(&S) -> Vec<S>,
    fails: impl Fn(&S) -> bool,
) -> (S, u32) {
    let mut steps = 0u32;
    // Dimensions only shrink, so this terminates; the bound is a
    // safety net against a pathological shrink cycle.
    'outer: for _ in 0..10_000 {
        for cand in shrink(&spec) {
            if fails(&cand) {
                spec = cand;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (spec, steps)
}

/// Greedily minimizes a failing [`CaseSpec`] via [`minimize_with`] over
/// [`CaseSpec::shrink`] and [`CaseSpec::check`].
pub fn minimize(spec: CaseSpec) -> (CaseSpec, u32) {
    minimize_with(spec, CaseSpec::shrink, |c| c.check().is_err())
}

/// One tiered-trace fuzz case: a seeded script of append/seek/zoom/
/// stream operations, replayed deterministically from `(seed, ops)`
/// against a [`TieredTrace`] with the given tower geometry and checked
/// after every operation against a full-resolution model store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOpSpec {
    /// Seed for both event content and operation choices.
    pub seed: u64,
    /// Operations in the script.
    pub ops: u32,
    /// Tier-0 capacity (full-resolution ring), in events.
    pub tier0: u32,
    /// Events per half-window (`C` in the tower).
    pub chunk: u32,
    /// Distinct ranks events land on.
    pub ranks: u32,
}

impl fmt::Display for TraceOpSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace seed={:#x} ops={} tier0={} chunk={} ranks={}",
            self.seed, self.ops, self.tier0, self.chunk, self.ranks
        )
    }
}

impl TraceOpSpec {
    /// Draws one spec from the shared fuzz stream and normalizes it.
    pub fn sample(rng: &mut TestRng) -> TraceOpSpec {
        TraceOpSpec {
            seed: rng.next_u64(),
            ops: 1 + rng.below(24) as u32,
            tier0: 1 << (3 + rng.below(4)),
            chunk: 1 + rng.below(8) as u32,
            ranks: 1 + rng.below(6) as u32,
        }
        .normalized()
    }

    /// Repairs cross-field constraints: positive knobs, tier 0 at least
    /// two chunks wide (mirroring the store's own normalization so the
    /// spec literal matches the geometry that actually ran).
    pub fn normalized(mut self) -> TraceOpSpec {
        self.ops = self.ops.clamp(1, 64);
        self.chunk = self.chunk.clamp(1, 64);
        self.ranks = self.ranks.clamp(1, 64);
        self.tier0 = self.tier0.max(2 * self.chunk);
        self
    }

    /// Runs the op script against a [`TieredTrace`] and a full-resolution
    /// model store, checking after every operation:
    ///
    /// * **seek** — `window_with_replay` is byte-identical (events *and*
    ///   global indices) to the model slice decimated by the zoom rule,
    ///   at the requested stride;
    /// * **zoom/stream** — `sampled(z)` is a byte-identical subsequence
    ///   of the model store with per-rank lanes time-monotone;
    /// * **always** — the tower invariants ([`TieredTrace::check_integrity`])
    ///   hold, and at the end per-rank busy time is conserved exactly,
    ///   the appended count matches, and residency stays within the
    ///   `O(B · log N)` bound.
    pub fn check(&self) -> Result<(), String> {
        let ctx = |label: &'static str| {
            let spec = *self;
            move |e: String| format!("[{spec}] {label}: {e}")
        };
        let mut rng = TestRng::new(self.seed);
        let mut store = TieredTrace::new(TierConfig::tiny(self.tier0 as usize, self.chunk as usize));
        // lint: allow(trace-vec) — the fuzzer's full-resolution model store
        let mut reference: Vec<TraceEvent> = Vec::new();
        let mut clock: u64 = 0;
        for op in 0..self.ops {
            match rng.below(4) {
                // Append a burst of time-ordered events.
                0 | 1 => {
                    let burst = 1 + rng.below(96);
                    for _ in 0..burst {
                        clock += rng.below(200);
                        let ev = TraceEvent {
                            rank: rng.below(u64::from(self.ranks)) as u32,
                            name: format!("e{}", reference.len()),
                            category: CATEGORIES[rng.below(NUM_CATEGORIES as u64) as usize],
                            start_ns: clock,
                            duration_ns: 1 + rng.below(1_000),
                        };
                        reference.push(ev.clone());
                        store.append(ev);
                    }
                }
                // Seek: a random time window at a random zoom must come
                // back byte-identical to the decimated model slice.
                2 => {
                    let span = clock + 1;
                    let (a, b) = (rng.below(span), rng.below(span));
                    let (t0, t1) = (a.min(b), a.max(b) + 1);
                    let zoom = rng.below(4) as u32;
                    let stride = 1u64 << zoom;
                    let view =
                        store.window_with_replay(t0, t1, zoom, &SliceReplay::new(&reference));
                    // lint: allow(trace-vec) — model slice for byte-compare
                    let expect: Vec<(u64, TraceEvent)> = reference
                        .iter()
                        .enumerate()
                        .filter(|(i, e)| {
                            e.start_ns >= t0
                                && e.start_ns < t1
                                && (*i as u64).is_multiple_of(stride)
                        })
                        .map(|(i, e)| (i as u64, e.clone()))
                        .collect();
                    if view.events != expect {
                        return Err(ctx("seek")(format!(
                            "op {op}: window [{t0}, {t1}) zoom {zoom} returned {} events, \
                             model slice has {} (rematerialized: {})",
                            view.events.len(),
                            expect.len(),
                            view.rematerialized
                        )));
                    }
                    if view.stride != stride {
                        return Err(ctx("seek")(format!(
                            "op {op}: window [{t0}, {t1}) zoom {zoom} claims stride {}, want {stride}",
                            view.stride
                        )));
                    }
                }
                // Zoom/stream: the whole retained timeline at a zoom.
                _ => {
                    let zoom = rng.below(6) as u32;
                    let t = store.sampled(zoom);
                    let mut it = reference.iter();
                    for e in &t.events {
                        if !it.any(|r| r == e) {
                            return Err(ctx("zoom")(format!(
                                "op {op}: sampled({zoom}) event {:?} on rank {} is not a \
                                 subsequence match of the model store",
                                e.name, e.rank
                            )));
                        }
                    }
                    for rank in t.ranks() {
                        let mut last = 0u64;
                        for e in t.events_for_rank(rank) {
                            if e.start_ns < last {
                                return Err(ctx("zoom")(format!(
                                    "op {op}: sampled({zoom}) rank {rank} lane goes back in \
                                     time ({} after {last})",
                                    e.start_ns
                                )));
                            }
                            last = e.start_ns;
                        }
                    }
                }
            }
            store.check_integrity().map_err(ctx("integrity"))?;
        }

        if store.appended() != reference.len() as u64 {
            return Err(ctx("count")(format!(
                "store says {} appended, model has {}",
                store.appended(),
                reference.len()
            )));
        }
        let mut expect: BTreeMap<u32, [u64; NUM_CATEGORIES]> = BTreeMap::new();
        for e in &reference {
            expect.entry(e.rank).or_insert([0; NUM_CATEGORIES])[category_index(e.category)] +=
                e.duration_ns;
        }
        if store.rank_totals() != expect {
            return Err(ctx("conservation")(
                "per-rank busy totals diverged from the model store".to_string(),
            ));
        }
        // O(B · log N): each tier holds at most a tier-0's worth of
        // windows (max_windows, with cascade slack) of `chunk` events.
        let cfg = store.config();
        let per_tier = ((cfg.tier0_events / (2 * cfg.chunk)).max(2) + 2) * cfg.chunk;
        let bound = cfg.tier0_events + store.num_tiers() * per_tier;
        if store.resident_events() > bound {
            return Err(ctx("memory")(format!(
                "{} resident events exceeds the O(B log N) bound {bound} \
                 ({} appended, {} tiers)",
                store.resident_events(),
                store.appended(),
                store.num_tiers()
            )));
        }
        Ok(())
    }

    /// Strictly-smaller candidates for greedy shrinking: every knob
    /// halved, re-normalized, duplicates dropped.
    pub fn shrink(&self) -> Vec<TraceOpSpec> {
        let mut out = Vec::new();
        let mut push = |c: TraceOpSpec| {
            let c = c.normalized();
            if c != *self && !out.contains(&c) {
                out.push(c);
            }
        };
        push(TraceOpSpec { ops: self.ops / 2, ..*self });
        push(TraceOpSpec { tier0: self.tier0 / 2, ..*self });
        push(TraceOpSpec { chunk: self.chunk / 2, ..*self });
        push(TraceOpSpec { ranks: self.ranks / 2, ..*self });
        push(TraceOpSpec { seed: self.seed / 2, ..*self });
        out
    }
}

/// One inference fuzz case: a seeded serving scenario (traffic shape,
/// arrival rate, horizon, mesh, KV paging, batch cap) for the 8B model
/// on H100, replayed deterministically and cross-checked by
/// [`oracle_continuous_batching`] — engine vs naive rewalk, token and
/// block conservation, same-seed bit-identical re-simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferCaseSpec {
    /// Seed for the arrival trace (times and sampled lengths).
    pub seed: u64,
    /// Traffic shape the arrival process follows.
    pub shape: TrafficShape,
    /// Offered load, scaled down by the horizon.
    pub requests_per_day: u64,
    /// Simulated wall-clock horizon in seconds.
    pub horizon_s: u32,
    /// Tensor-parallel degree per replica (power of two, ≤ 8).
    pub tp: u32,
    /// Pipeline stages per replica.
    pub pp: u32,
    /// Independent replicas behind round-robin routing.
    pub replicas: u32,
    /// KV-block granularity in tokens.
    pub block_tokens: u64,
    /// Per-replica resident-sequence cap.
    pub max_batch: u32,
}

impl fmt::Display for InferCaseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "infer seed={:#x} {} rpd={} horizon={}s mesh tp{}·pp{}·x{} block={} batch={}",
            self.seed,
            self.shape.tag(),
            self.requests_per_day,
            self.horizon_s,
            self.tp,
            self.pp,
            self.replicas,
            self.block_tokens,
            self.max_batch
        )
    }
}

impl InferCaseSpec {
    /// Draws one spec from the shared fuzz stream and normalizes it.
    pub fn sample(rng: &mut TestRng) -> InferCaseSpec {
        InferCaseSpec {
            seed: rng.next_u64(),
            shape: TrafficShape::ALL[rng.below(TrafficShape::ALL.len() as u64) as usize],
            requests_per_day: 1_000 + rng.below(200_000),
            horizon_s: 60 + rng.below(840) as u32,
            tp: 1 << rng.below(3),
            pp: 1 << rng.below(2),
            replicas: 1 + rng.below(4) as u32,
            block_tokens: 1 << rng.below(7),
            max_batch: 1 + rng.below(64) as u32,
        }
        .normalized()
    }

    /// Repairs cross-field constraints: positive knobs, `tp` rounded
    /// down to a power of two within the NVLink domain, and rates and
    /// horizons clamped to the range the sweep prices in milliseconds
    /// per case. Idempotent.
    pub fn normalized(mut self) -> InferCaseSpec {
        self.tp = self.tp.clamp(1, 8);
        while !self.tp.is_power_of_two() {
            self.tp -= 1;
        }
        self.pp = self.pp.clamp(1, 4);
        self.replicas = self.replicas.clamp(1, 8);
        self.block_tokens = self.block_tokens.clamp(1, 128);
        self.max_batch = self.max_batch.clamp(1, 512);
        self.requests_per_day = self.requests_per_day.clamp(100, 200_000);
        self.horizon_s = self.horizon_s.clamp(60, 900);
        self
    }

    /// Materializes the serving scenario and runs conformance oracle 10
    /// on it; also asserts the seeded arrival trace itself regenerates
    /// bit-identically.
    pub fn check(&self) -> Result<(), String> {
        let ctx = |label: &'static str| {
            let spec = *self;
            move |e: String| format!("[{spec}] {label}: {e}")
        };
        let traffic = TrafficSpec::serving_day(self.shape, self.requests_per_day, self.seed)
            .horizon_s(f64::from(self.horizon_s));
        let trace = traffic.generate();
        if traffic.generate() != trace {
            return Err(ctx("traffic")("same-seed regeneration diverged".into()));
        }
        let spec = InferSpec::new(
            TransformerConfig::llama3_8b(),
            GpuSpec::h100_sxm_hbm3(),
            8,
            InferPlan::new(self.tp, self.pp, self.replicas),
        )
        .block_tokens(self.block_tokens)
        .max_batch(self.max_batch as usize)
        .threads(1);
        let model = InferenceModel::new(spec).map_err(ctx("model build"))?;
        oracle_continuous_batching(&model, &trace).map_err(ctx("oracle continuous-batching"))
    }

    /// Strictly-smaller candidates for greedy shrinking: every knob
    /// halved, the shape reset to steady, re-normalized, duplicates
    /// dropped.
    pub fn shrink(&self) -> Vec<InferCaseSpec> {
        let mut out = Vec::new();
        let mut push = |c: InferCaseSpec| {
            let c = c.normalized();
            if c != *self && !out.contains(&c) {
                out.push(c);
            }
        };
        push(InferCaseSpec { requests_per_day: self.requests_per_day / 2, ..*self });
        push(InferCaseSpec { horizon_s: self.horizon_s / 2, ..*self });
        push(InferCaseSpec { tp: self.tp / 2, ..*self });
        push(InferCaseSpec { pp: self.pp / 2, ..*self });
        push(InferCaseSpec { replicas: self.replicas / 2, ..*self });
        push(InferCaseSpec { block_tokens: self.block_tokens / 2, ..*self });
        push(InferCaseSpec { max_batch: self.max_batch / 2, ..*self });
        push(InferCaseSpec { shape: TrafficShape::Steady, ..*self });
        push(InferCaseSpec { seed: self.seed / 2, ..*self });
        out
    }
}

/// A shrunk inference counterexample from [`run_infer_sweep`].
#[derive(Debug, Clone)]
pub struct InferCounterexample {
    /// Index of the failing case in the sweep.
    pub case: u64,
    /// The original (pre-shrink) violation message.
    pub message: String,
    /// The greedily minimized failing spec.
    pub min_spec: InferCaseSpec,
    /// The minimized spec's violation message.
    pub min_message: String,
    /// Accepted shrink steps.
    pub shrink_steps: u32,
}

/// Runs the seeded inference sweep: samples `cases` serving scenarios,
/// runs [`InferCaseSpec::check`] on each, and on the first violation
/// greedily shrinks it via [`minimize_with`]. Returns `None` on a clean
/// sweep. `progress` is called with the clean-case count every 10 cases
/// (each case prices a full serving horizon, so sweeps are shorter than
/// the step-model family's).
pub fn run_infer_sweep(
    args: &FuzzArgs,
    mut progress: impl FnMut(u64),
) -> Option<InferCounterexample> {
    let FuzzArgs { cases, seed } = *args;
    let mut rng = TestRng::new(seed);
    for case in 0..cases {
        let spec = InferCaseSpec::sample(&mut rng);
        if let Err(message) = spec.check() {
            let (min_spec, shrink_steps) =
                minimize_with(spec, InferCaseSpec::shrink, |c| c.check().is_err());
            let min_message = min_spec
                .check()
                .expect_err("minimize must preserve the failure");
            return Some(InferCounterexample {
                case,
                message,
                min_spec,
                min_message,
                shrink_steps,
            });
        }
        if (case + 1).is_multiple_of(10) {
            progress(case + 1);
        }
    }
    None
}

/// A shrunk trace-store counterexample from [`run_trace_sweep`].
#[derive(Debug, Clone)]
pub struct TraceCounterexample {
    /// Index of the failing case in the sweep.
    pub case: u64,
    /// The original (pre-shrink) violation message.
    pub message: String,
    /// The greedily minimized failing spec.
    pub min_spec: TraceOpSpec,
    /// The minimized spec's violation message.
    pub min_message: String,
    /// Accepted shrink steps.
    pub shrink_steps: u32,
}

/// Runs the seeded tiered-trace sweep: samples `cases` op scripts, runs
/// [`TraceOpSpec::check`] on each, and on the first violation greedily
/// shrinks it via [`minimize_with`]. Returns `None` on a clean sweep.
pub fn run_trace_sweep(
    args: &FuzzArgs,
    mut progress: impl FnMut(u64),
) -> Option<TraceCounterexample> {
    let FuzzArgs { cases, seed } = *args;
    let mut rng = TestRng::new(seed);
    for case in 0..cases {
        let spec = TraceOpSpec::sample(&mut rng);
        if let Err(message) = spec.check() {
            let (min_spec, shrink_steps) =
                minimize_with(spec, TraceOpSpec::shrink, |c| c.check().is_err());
            let min_message = min_spec
                .check()
                .expect_err("minimize must preserve the failure");
            return Some(TraceCounterexample {
                case,
                message,
                min_spec,
                min_message,
                shrink_steps,
            });
        }
        if (case + 1).is_multiple_of(500) {
            progress(case + 1);
        }
    }
    None
}

/// Options for the seeded fuzz sweep (`llama3sim fuzz` and the
/// deprecated `conformance_fuzz` shim).
#[derive(Debug, Clone, Copy)]
pub struct FuzzArgs {
    /// Number of sampled cases.
    pub cases: u64,
    /// RNG seed; the same `(cases, seed)` pair replays the same specs.
    pub seed: u64,
}

impl Default for FuzzArgs {
    fn default() -> FuzzArgs {
        // lint: allow(cli-args) — the canonical defaults
        FuzzArgs {
            cases: 500,
            seed: 1,
        }
    }
}

/// A shrunk sweep counterexample, ready to render or re-check.
#[derive(Debug, Clone)]
pub struct SweepCounterexample {
    /// Index of the failing case in the sweep.
    pub case: u64,
    /// The original (pre-shrink) violation message.
    pub message: String,
    /// The greedily minimized failing spec.
    pub min_spec: CaseSpec,
    /// The minimized spec's violation message.
    pub min_message: String,
    /// Accepted shrink steps.
    pub shrink_steps: u32,
    /// Ready-to-paste `#[test]` reproducing the failure.
    pub snippet: String,
}

/// The structured result of a seeded sweep: what ran and the first
/// (shrunk) violation, if any. This is the data the query API's fuzz
/// response is built from; the CLI printer ([`sweep`]) is a thin
/// renderer over it.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Cases swept (the full count on a clean sweep; sweeping stops at
    /// the first violation).
    pub cases: u64,
    /// The sweep seed.
    pub seed: u64,
    /// The first violation, already minimized; `None` on a clean sweep.
    pub counterexample: Option<SweepCounterexample>,
}

impl SweepOutcome {
    /// Converts into the wire-level query response payload (shared by
    /// the CLI and the serve dispatcher so both render identically).
    pub fn into_response(self) -> query::FuzzResponse {
        query::FuzzResponse {
            cases: self.cases,
            seed: self.seed,
            counterexample: self.counterexample.map(|ce| query::Counterexample {
                case: ce.case,
                message: ce.message,
                min_display: ce.min_spec.to_string(),
                min_message: ce.min_message,
                shrink_steps: ce.shrink_steps,
                snippet: ce.snippet,
            }),
        }
    }
}

/// Runs the seeded sweep: samples `cases` random specs, runs the full
/// invariant + oracle battery on each, and on the first violation
/// greedily shrinks it. `progress` is called with the clean-case count
/// every 500 cases (the CLI prints a heartbeat; the server passes a
/// no-op).
pub fn run_sweep(args: &FuzzArgs, mut progress: impl FnMut(u64)) -> SweepOutcome {
    let FuzzArgs { cases, seed } = *args;
    let mut rng = TestRng::new(seed);
    for case in 0..cases {
        let spec = CaseSpec::sample(&mut rng);
        if let Err(message) = spec.check() {
            let (min_spec, shrink_steps) = minimize(spec);
            let min_message = min_spec
                .check()
                .expect_err("minimize must preserve the failure");
            let snippet = min_spec.as_test_snippet(seed, case, shrink_steps);
            return SweepOutcome {
                cases,
                seed,
                counterexample: Some(SweepCounterexample {
                    case,
                    message,
                    min_spec,
                    min_message,
                    shrink_steps,
                    snippet,
                }),
            };
        }
        if (case + 1).is_multiple_of(500) {
            progress(case + 1);
        }
    }
    SweepOutcome {
        cases,
        seed,
        counterexample: None,
    }
}

/// Runs the seeded sweep and prints the legacy CLI report: on the first
/// violation, the diagnostics go to stderr and a ready-to-paste
/// `#[test]` to stdout. Returns the process exit code: 0 on a clean
/// sweep, 1 on a counterexample.
#[deprecated(
    since = "0.8.0",
    note = "dispatch a `parallelism_core::query::Query::Fuzz` instead; \
            this shim only renders `run_sweep`"
)]
pub fn sweep(args: &FuzzArgs) -> i32 {
    let outcome = run_sweep(args, |clean| {
        eprintln!("conformance fuzz: {clean}/{} cases clean", args.cases);
    });
    let SweepOutcome { cases, seed, .. } = outcome;
    match outcome.counterexample {
        Some(ce) => {
            eprintln!("counterexample at case {}/{cases} (seed {seed:#x}):", ce.case);
            eprintln!("  {}", ce.message);
            eprintln!("shrunk in {} steps to: {}", ce.shrink_steps, ce.min_spec);
            eprintln!("  {}", ce.min_message);
            eprintln!("\npaste this test to pin the regression:\n");
            println!("{}", ce.snippet);
            1
        }
        None => {
            println!("conformance fuzz: {cases} cases, seed {seed:#x}: no counterexamples");
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_normalized() {
        let mut a = TestRng::new(0xC0FFEE);
        let mut b = TestRng::new(0xC0FFEE);
        for _ in 0..50 {
            let sa = CaseSpec::sample(&mut a);
            let sb = CaseSpec::sample(&mut b);
            assert_eq!(sa, sb);
            assert_eq!((sa.tp * sa.cp * sa.pp * sa.dp) % 8, 0);
            assert!(sa.seq.is_multiple_of(u64::from(2 * sa.cp)));
            if let ScheduleKind::Flexible { nc } = sa.kind {
                assert!(nc >= 1 && nc <= sa.bs);
            }
            if sa.kind == ScheduleKind::Interleaved1F1B {
                assert_eq!(sa.bs % sa.pp, 0);
            }
        }
    }

    #[test]
    fn sampled_specs_pass_the_battery() {
        let mut rng = TestRng::new(7);
        for _ in 0..4 {
            let spec = CaseSpec::sample(&mut rng);
            spec.check().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn normalization_repairs_memory_oversubscription() {
        // tp = 1 with Zero1 leaves 6 × 3.2B-parameter layers' state
        // unsharded on every pipeline rank — far past 80 GiB. The
        // ladder must repair it without breaking normal form.
        let over = CaseSpec {
            gpu: GpuChoice::A100,
            layers_per_stage: 2,
            tp: 1,
            cp: 1,
            pp: 8,
            dp: 1,
            v: 3,
            bs: 8,
            seq: 8192,
            kind: ScheduleKind::AllFwdAllBwd,
            zero: ZeroMode::Zero1,
            recompute: false,
        };
        assert!(!over.fits_hbm(), "test premise: the raw spec must not fit");
        let repaired = over.normalized();
        assert!(repaired.fits_hbm(), "ladder failed to repair: {repaired}");
        assert_eq!(repaired, repaired.normalized(), "normal form unstable");
    }

    #[test]
    fn shrink_candidates_are_normalized_and_distinct() {
        let spec = CaseSpec {
            gpu: GpuChoice::A100,
            layers_per_stage: 2,
            tp: 4,
            cp: 2,
            pp: 4,
            dp: 4,
            v: 2,
            bs: 8,
            seq: 8192,
            kind: ScheduleKind::Flexible { nc: 4 },
            zero: ZeroMode::Zero3,
            recompute: true,
        }
        .normalized();
        let candidates = spec.shrink();
        assert!(!candidates.is_empty());
        for c in &candidates {
            assert_ne!(*c, spec);
            assert_eq!(*c, c.normalized(), "candidate not in normal form: {c}");
        }
    }

    #[test]
    fn trace_sampling_is_deterministic_and_normalized() {
        let mut a = TestRng::new(0xBEEF);
        let mut b = TestRng::new(0xBEEF);
        for _ in 0..50 {
            let sa = TraceOpSpec::sample(&mut a);
            let sb = TraceOpSpec::sample(&mut b);
            assert_eq!(sa, sb);
            assert_eq!(sa, sa.normalized(), "normal form unstable: {sa}");
            assert!(sa.ops >= 1 && sa.chunk >= 1 && sa.ranks >= 1);
            assert!(sa.tier0 >= 2 * sa.chunk);
        }
    }

    #[test]
    fn sampled_trace_specs_pass_the_battery() {
        let mut rng = TestRng::new(5);
        for _ in 0..25 {
            let spec = TraceOpSpec::sample(&mut rng);
            spec.check().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn trace_shrink_candidates_are_normalized_and_distinct() {
        let spec = TraceOpSpec {
            seed: 0xFACE,
            ops: 16,
            tier0: 64,
            chunk: 8,
            ranks: 4,
        }
        .normalized();
        let candidates = spec.shrink();
        assert!(!candidates.is_empty());
        for c in &candidates {
            assert_ne!(*c, spec);
            assert_eq!(*c, c.normalized(), "candidate not in normal form: {c}");
        }
    }

    #[test]
    fn minimize_with_drives_trace_specs_to_a_local_minimum() {
        // A synthetic failure predicate: minimize_with must converge to
        // a spec where no shrink candidate still "fails".
        let fails = |s: &TraceOpSpec| s.ops >= 4 && s.tier0 >= 16;
        let start = TraceOpSpec {
            seed: 0x1234_5678,
            ops: 64,
            tier0: 64,
            chunk: 8,
            ranks: 6,
        }
        .normalized();
        assert!(fails(&start));
        let (min, steps) = minimize_with(start, TraceOpSpec::shrink, fails);
        assert!(fails(&min), "minimize left the failing set: {min}");
        assert!(steps > 0);
        assert!(min.shrink().iter().all(|c| !fails(c)), "not minimal: {min}");
        assert_eq!(min.ops, 4);
        assert_eq!(min.tier0, 16);
    }

    #[test]
    fn infer_sampling_is_deterministic_and_normalized() {
        let mut a = TestRng::new(0xCAFE);
        let mut b = TestRng::new(0xCAFE);
        for _ in 0..50 {
            let sa = InferCaseSpec::sample(&mut a);
            let sb = InferCaseSpec::sample(&mut b);
            assert_eq!(sa, sb);
            assert_eq!(sa, sa.normalized(), "normal form unstable: {sa}");
            assert!(sa.tp.is_power_of_two() && sa.tp <= 8);
            assert!(sa.pp >= 1 && sa.replicas >= 1 && sa.max_batch >= 1);
            assert!(sa.block_tokens >= 1);
        }
    }

    #[test]
    fn sampled_infer_specs_pass_the_battery() {
        let mut rng = TestRng::new(13);
        for _ in 0..3 {
            let spec = InferCaseSpec::sample(&mut rng);
            spec.check().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn infer_shrink_candidates_are_normalized_and_distinct() {
        let spec = InferCaseSpec {
            seed: 0xFEED,
            shape: TrafficShape::Bursty,
            requests_per_day: 80_000,
            horizon_s: 600,
            tp: 4,
            pp: 2,
            replicas: 4,
            block_tokens: 32,
            max_batch: 64,
        }
        .normalized();
        let candidates = spec.shrink();
        assert!(!candidates.is_empty());
        for c in &candidates {
            assert_ne!(*c, spec);
            assert_eq!(*c, c.normalized(), "candidate not in normal form: {c}");
        }
    }

    #[test]
    fn snippet_round_trips_the_spec() {
        let spec = CaseSpec::sample(&mut TestRng::new(11));
        let snippet = spec.as_test_snippet(0xC0FFEE, 3, 2);
        assert!(snippet.contains("fn conformance_counterexample_seed_c0ffee_case_3"));
        assert!(snippet.contains(&format!("tp: {}", spec.tp)));
        assert!(snippet.contains(&format!("seq: {}", spec.seq)));
        assert!(snippet.contains("spec.check()"));
    }
}
