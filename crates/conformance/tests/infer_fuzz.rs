//! The inference fuzz battery: seeded serving scenarios (traffic shape
//! × arrival rate × mesh × KV paging × batch cap) cross-checked by
//! conformance oracle 10 — the continuous-batching engine vs the
//! independent naive rewalk, with token/block conservation and
//! same-seed determinism — and greedily shrunk on the first violation.
//! Each case prices a full serving horizon, so the battery is smaller
//! than the trace-store family's but still covers all three traffic
//! shapes many times over.

use conformance::fuzz::{run_infer_sweep, FuzzArgs};

#[test]
fn infer_battery_40_cases_is_clean() {
    let args = FuzzArgs { cases: 40, seed: 1 };
    let mut heartbeats = 0u32;
    let ce = run_infer_sweep(&args, |_clean| heartbeats += 1);
    if let Some(ce) = ce {
        panic!(
            "counterexample at case {} (shrunk in {} steps to [{}]):\n  {}\n  {}",
            ce.case, ce.shrink_steps, ce.min_spec, ce.message, ce.min_message
        );
    }
    assert_eq!(heartbeats, 4, "progress should tick every 10 cases");
}

#[test]
fn infer_sweep_replays_identically() {
    // Same (cases, seed) pair, same verdict — the sweep is a pure
    // function of its arguments.
    let args = FuzzArgs {
        cases: 6,
        seed: 0xBEEF,
    };
    assert!(run_infer_sweep(&args, |_| {}).is_none());
    assert!(run_infer_sweep(&args, |_| {}).is_none());
}
