//! Runs the nine differential oracles over the deterministic
//! ≥ 50-configuration grid from `conformance::grid` (the search-funnel
//! and guided-search oracles over small exhaustive search spaces
//! instead — their references are quadratic; the run-trace replay
//! oracle over 8-GPU fault-boosted runs — its reference capture is
//! `O(N)` in run length).

use cluster_model::{FaultRates, FaultTimeline};
use collectives::CommCostModel;
use conformance::grid::config_grid;
use conformance::oracles::{
    oracle_fluid_fast_path, oracle_folded_vs_full, oracle_goodput_recomposition,
    oracle_guided_frontier, oracle_memoized_costs, oracle_run_trace_replay,
    oracle_run_vs_deprecated, oracle_search_frontier, oracle_tiered_trace,
};
use parallelism_core::search::{enumerate_configs, SearchSpec};
use parallelism_core::{CheckpointPolicy, Dim, RunSimulator, ZeroMode};
use trace_analysis::tiered::TierConfig;

#[test]
fn folded_matches_full_across_grid() {
    let grid = config_grid();
    assert!(grid.len() >= 50);
    for spec in &grid {
        oracle_folded_vs_full(&spec.build()).unwrap_or_else(|e| panic!("[{spec}] {e}"));
    }
}

#[test]
fn deprecated_wrappers_match_run_across_grid() {
    let grid = config_grid();
    assert!(grid.len() >= 50);
    for spec in &grid {
        oracle_run_vs_deprecated(&spec.build()).unwrap_or_else(|e| panic!("[{spec}] {e}"));
    }
}

#[test]
fn memoized_costs_match_uncached_across_grid() {
    let grid = config_grid();
    assert!(grid.len() >= 50);
    for spec in &grid {
        let m = spec.build();
        let model = CommCostModel::new(m.cluster.topology.clone());
        let groups: Vec<_> = [Dim::Tp, Dim::Cp, Dim::Pp, Dim::Dp]
            .into_iter()
            .map(|d| m.mesh.group_of(cluster_model::GlobalRank(0), d))
            .collect();
        oracle_memoized_costs(&model, &groups, &[1 << 16, 1 << 20, 1 << 24])
            .unwrap_or_else(|e| panic!("[{spec}] {e}"));
    }
}

#[test]
fn fluid_fast_path_matches_general_across_grid() {
    // 50 parameterized nets: link speeds and transfer sizes scaled per
    // index, plus a zero-byte and a link-saturating transfer in the mix.
    for i in 0..50u32 {
        let base = 12.5e9 * f64::from(1 + i % 7);
        let links = [base, base * 2.0, base * 4.0, base * 0.5];
        let bytes = [
            1e6 * f64::from(1 + i),
            64.0 * f64::from(1 + i % 13),
            if i % 5 == 0 { 0.0 } else { 3e8 },
        ];
        oracle_fluid_fast_path(&links, &bytes)
            .unwrap_or_else(|e| panic!("net {i} (base {base} B/s): {e}"));
    }
}

#[test]
fn search_funnel_matches_exhaustive_reference() {
    // Small 8B search spaces whose exhaustive reference stays ≤ 256
    // candidates: every (cluster size, sequence, thread count) combo
    // must produce the same rejected/scored split and the same Pareto
    // frontier as full-analyzer scoring plus quadratic dominance.
    for (ngpu, gbs, threads) in [(8u32, 16u64, 1usize), (8, 16, 3), (16, 32, 2)] {
        let mut spec = SearchSpec::llama3_8b(ngpu, 8_192);
        spec.input.model = spec.input.model.with_layers(4);
        spec.input.token_budget = gbs * 8_192;
        spec.zero_modes = vec![ZeroMode::Zero1, ZeroMode::Zero3];
        let spec = spec.max_cp(2).threads(threads);
        let (admitted, _) = enumerate_configs(&spec);
        assert!(
            !admitted.is_empty() && admitted.len() <= 256,
            "want a small but non-trivial grid, got {} candidates",
            admitted.len()
        );
        oracle_search_frontier(&spec)
            .unwrap_or_else(|e| panic!("{ngpu} GPUs, gbs {gbs}, {threads} threads: {e}"));
    }
}

#[test]
fn guided_search_matches_exhaustive_reference() {
    // On grids small enough that the guided strategy verifies every
    // candidate, guided and exhaustive searches must agree exactly:
    // same frontier configs, bit-identical step times and memory, and
    // savings stats that account for the full candidate split.
    for (ngpu, gbs, threads) in [(8u32, 16u64, 1usize), (8, 16, 3), (16, 32, 2)] {
        let mut spec = SearchSpec::llama3_8b(ngpu, 8_192);
        spec.input.model = spec.input.model.with_layers(4);
        spec.input.token_budget = gbs * 8_192;
        spec.zero_modes = vec![ZeroMode::Zero1, ZeroMode::Zero3];
        let spec = spec.max_cp(2).threads(threads);
        let (admitted, _) = enumerate_configs(&spec);
        assert!(
            !admitted.is_empty() && admitted.len() <= 256,
            "want a small but non-trivial grid, got {} candidates",
            admitted.len()
        );
        oracle_guided_frontier(&spec)
            .unwrap_or_else(|e| panic!("{ngpu} GPUs, gbs {gbs}, {threads} threads: {e}"));
    }
}

#[test]
fn tiered_trace_oracle_across_grid() {
    // Oracle 9 over every grid config: replay-exact windows, aggregate
    // recomposition at every tier, slow-rank verdict parity.
    let grid = config_grid();
    assert!(grid.len() >= 50);
    for spec in &grid {
        oracle_tiered_trace(&spec.build()).unwrap_or_else(|e| panic!("[{spec}] {e}"));
    }
}

#[test]
fn run_trace_replay_matches_full_capture() {
    // Oracle 8 on fault-boosted 8-GPU runs: several seeds and two tower
    // geometries per step config, so windows land in evicted regions
    // (forcing anchored replay) as well as in tier 0.
    let rates = {
        let p = FaultRates::llama3_production();
        FaultRates {
            gpu_fail_per_gpu_hour: p.gpu_fail_per_gpu_hour * 2000.0,
            node_loss_per_gpu_hour: p.node_loss_per_gpu_hour * 2000.0,
            link_degrade_per_gpu_hour: p.link_degrade_per_gpu_hour * 2000.0,
            thermal_per_gpu_hour: p.thermal_per_gpu_hour * 2000.0,
            ..p
        }
    };
    let grid = config_grid();
    let specs: Vec<_> = grid
        .iter()
        .filter(|s| s.tp * s.cp * s.pp * s.dp == 8)
        .take(3)
        .collect();
    assert!(!specs.is_empty());
    for spec in specs {
        for seed in 0..3u64 {
            let step = spec.build();
            let timeline =
                FaultTimeline::generate(rates, step.cluster.num_gpus(), 8, 6.0 * 3600.0, seed)
                    .expect("timeline generates");
            let sim = RunSimulator::new(
                step,
                timeline,
                CheckpointPolicy::llama3_production().with_interval(600.0),
            )
            .expect("run simulator builds");
            for cfg in [TierConfig::tiny(32, 4), TierConfig::default()] {
                oracle_run_trace_replay(&sim, cfg)
                    .unwrap_or_else(|e| panic!("[{spec}] seed {seed} cfg {cfg:?}: {e}"));
            }
        }
    }
}

#[test]
fn goodput_recomposition_matches_across_grid() {
    // ≥ 50 (step model, fault seed) combos. Rates are boosted well past
    // production so 6-hour horizons include fatal faults, degraded
    // windows and restarts, not just clean checkpoint cadence.
    let rates = {
        let p = FaultRates::llama3_production();
        FaultRates {
            gpu_fail_per_gpu_hour: p.gpu_fail_per_gpu_hour * 2000.0,
            node_loss_per_gpu_hour: p.node_loss_per_gpu_hour * 2000.0,
            link_degrade_per_gpu_hour: p.link_degrade_per_gpu_hour * 2000.0,
            thermal_per_gpu_hour: p.thermal_per_gpu_hour * 2000.0,
            ..p
        }
    };
    let grid = config_grid();
    let specs: Vec<_> = grid
        .iter()
        .filter(|s| s.tp * s.cp * s.pp * s.dp == 8)
        .take(5)
        .collect();
    assert!(specs.len() * 10 >= 50);
    let mut combos = 0u32;
    for spec in specs {
        for seed in 0..10u64 {
            let step = spec.build();
            let timeline =
                FaultTimeline::generate(rates, step.cluster.num_gpus(), 8, 6.0 * 3600.0, seed)
                    .expect("timeline generates");
            let sim = RunSimulator::new(
                step,
                timeline,
                CheckpointPolicy::llama3_production().with_interval(600.0),
            )
            .expect("run simulator builds");
            oracle_goodput_recomposition(&sim)
                .unwrap_or_else(|e| panic!("[{spec}] seed {seed}: {e}"));
            combos += 1;
        }
    }
    assert!(combos >= 50, "only {combos} goodput combos ran");
}
