//! Mutation-style validation of the invariant checkers: a scratch
//! reimplementation of the classic 1F1B schedule with a parameterized
//! warm-up count. With the correct count it passes the full checker
//! battery; with a deliberately injected off-by-one (the `<=`-style
//! bug that issues one extra leading forward) the completeness checker
//! catches the duplicated micro-batch, and a hand-swapped
//! backward-before-forward is caught as well. This is the evidence
//! that the checkers detect real schedule-generator bugs rather than
//! merely blessing the shipped generator.

use conformance::invariants::{
    check_phase_counts, check_schedule_completeness, check_schedule_executes,
};
use parallelism_core::pp::schedule::{PpOp, PpSchedule, ScheduleKind};
use parallelism_core::pp::UniformCosts;
use sim_engine::time::SimDuration;

/// Scratch classic 1F1B (v = 1, nc = pp): `warmup + 1 + extra_warmup`
/// leading forwards, steady (backward, forward) alternation, trailing
/// backward drain. `extra_warmup = 0` is the correct schedule;
/// `extra_warmup = 1` models an off-by-one in the warm-up loop bound
/// (the steady region still starts where the correct schedule would,
/// so the first steady forward gets issued twice).
fn scratch_1f1b(pp: u32, nmb: u32, extra_warmup: u32) -> PpSchedule {
    assert!(nmb >= pp, "keep the main region full for the phase law");
    let mut ranks = Vec::new();
    for r in 0..pp {
        let w = pp - r - 1;
        let first_steady = (w + 1).min(nmb);
        let lead = (w + 1 + extra_warmup).min(nmb);
        let mut ops = Vec::new();
        for mb in 0..lead {
            ops.push(PpOp::Forward { chunk: 0, mb });
        }
        for mb in first_steady..nmb {
            ops.push(PpOp::Backward {
                chunk: 0,
                mb: mb - first_steady,
            });
            ops.push(PpOp::Forward { chunk: 0, mb });
        }
        for mb in (nmb - first_steady)..nmb {
            ops.push(PpOp::Backward { chunk: 0, mb });
        }
        ranks.push(ops);
    }
    PpSchedule {
        pp,
        v: 1,
        nmb,
        nc: pp,
        kind: ScheduleKind::Flexible { nc: pp },
        ranks,
    }
}

fn costs() -> UniformCosts {
    UniformCosts {
        fwd: SimDuration::from_micros(100),
        bwd: SimDuration::from_micros(200),
        p2p: SimDuration::from_micros(10),
    }
}

#[test]
fn correct_scratch_1f1b_passes_every_checker() {
    for (pp, nmb) in [(2u32, 4u32), (4, 8), (4, 16), (8, 8)] {
        let s = scratch_1f1b(pp, nmb, 0);
        check_schedule_completeness(&s).unwrap_or_else(|e| panic!("pp={pp} nmb={nmb}: {e}"));
        check_phase_counts(&s).unwrap_or_else(|e| panic!("pp={pp} nmb={nmb}: {e}"));
        check_schedule_executes(&s, &costs())
            .unwrap_or_else(|e| panic!("pp={pp} nmb={nmb}: {e}"));
    }
}

#[test]
fn warmup_off_by_one_is_caught_by_completeness() {
    let s = scratch_1f1b(4, 8, 1);
    let err = check_schedule_completeness(&s)
        .expect_err("one extra warm-up forward must fail completeness");
    // Rank 0 issues 9 forwards for 8 micro-batches: either the op
    // count or the duplicate forward is named, both point at the bug.
    assert!(
        err.contains("rank 0"),
        "error does not name the offending rank: {err}"
    );
    assert!(
        err.contains("ops, expected") || err.contains("duplicate"),
        "error does not describe the surplus forward: {err}"
    );
}

#[test]
fn warmup_off_by_one_also_breaks_the_phase_law() {
    // The surplus forward never drains, so the in-flight profile ends
    // above zero — the phase checker flags that before it even gets to
    // comparing the leading-forward count against warmup+1.
    let s = scratch_1f1b(4, 8, 1);
    let err = check_phase_counts(&s).expect_err("phase law must reject the extra forward");
    assert!(
        err.contains("still in flight") || err.contains("leading forwards"),
        "unexpected message: {err}"
    );
}

#[test]
fn backward_before_forward_is_caught() {
    let mut s = scratch_1f1b(4, 8, 0);
    // The last rank's schedule starts F0, B0, ... — swapping the first
    // two ops puts B0 before its own forward.
    let last = s.ranks.len() - 1;
    s.ranks[last].swap(0, 1);
    let err = check_schedule_completeness(&s).expect_err("B before F must fail");
    assert!(
        err.contains("before its forward"),
        "unexpected message: {err}"
    );
    let err = check_phase_counts(&s).expect_err("profile must dip negative");
    assert!(
        err.contains("backward without forward") || err.contains("does not start with a forward"),
        "unexpected message: {err}"
    );
}

#[test]
fn dropped_drain_op_is_caught() {
    let mut s = scratch_1f1b(4, 8, 0);
    s.ranks[0].pop();
    let err = check_schedule_completeness(&s).expect_err("missing backward must fail");
    assert!(
        err.contains("ops, expected"),
        "unexpected message: {err}"
    );
    let err = check_phase_counts(&s).expect_err("in-flight profile must not end at zero");
    assert!(
        err.contains("still in flight"),
        "unexpected message: {err}"
    );
}
