//! The tiered-trace fuzz battery: 2000 seeded op scripts (random
//! append/seek/zoom/stream sequences) against the model-based reference
//! store, with greedy shrinking on the first violation. Deliberately
//! larger than the default CLI sweep — each case is orders of magnitude
//! cheaper than a step-model case, so the whole battery stays in the
//! low seconds.

use conformance::fuzz::{run_trace_sweep, FuzzArgs};

#[test]
fn trace_op_battery_2000_cases_is_clean() {
    let args = FuzzArgs {
        cases: 2000,
        seed: 1,
    };
    let mut heartbeats = 0u32;
    let ce = run_trace_sweep(&args, |_clean| heartbeats += 1);
    if let Some(ce) = ce {
        panic!(
            "counterexample at case {} (shrunk in {} steps to [{}]):\n  {}\n  {}",
            ce.case, ce.shrink_steps, ce.min_spec, ce.message, ce.min_message
        );
    }
    assert_eq!(heartbeats, 4, "progress should tick every 500 cases");
}

#[test]
fn trace_sweep_replays_identically() {
    // Same (cases, seed) pair, same verdict — the sweep is a pure
    // function of its arguments.
    let args = FuzzArgs {
        cases: 50,
        seed: 0xD15C,
    };
    assert!(run_trace_sweep(&args, |_| {}).is_none());
    assert!(run_trace_sweep(&args, |_| {}).is_none());
}
