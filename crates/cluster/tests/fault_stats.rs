//! Statistical validation of the fault-injection generator: per-kind
//! event counts must match the configured Poisson rates, and the
//! stream must be exactly reproducible per seed.

use cluster_model::{FaultKind, FaultRates, FaultTimeline};

const GPUS: u32 = 512;
const HOURS: f64 = 24.0;
const SEEDS: u64 = 32;

/// Distinct per-kind rates so a kind mix-up in the generator shows up
/// as a rate mismatch, not just a total-count error.
fn rates() -> FaultRates {
    FaultRates {
        gpu_fail_per_gpu_hour: 2e-4,
        node_loss_per_gpu_hour: 1e-4,
        link_degrade_per_gpu_hour: 3e-4,
        thermal_per_gpu_hour: 4e-4,
        ..FaultRates::llama3_production()
    }
}

fn rate_of(r: &FaultRates, kind: FaultKind) -> f64 {
    match kind {
        FaultKind::GpuFailStop => r.gpu_fail_per_gpu_hour,
        FaultKind::NodeLoss => r.node_loss_per_gpu_hour,
        FaultKind::LinkDegrade => r.link_degrade_per_gpu_hour,
        FaultKind::ThermalThrottle => r.thermal_per_gpu_hour,
    }
}

#[test]
fn event_counts_match_poisson_rates_within_4_sigma() {
    let r = rates();
    let mut counts = [0u64; FaultKind::ALL.len()];
    for seed in 0..SEEDS {
        let tl = FaultTimeline::generate(r, GPUS, 8, HOURS * 3600.0, seed)
            .expect("timeline generates");
        for ev in tl.events() {
            let ki = FaultKind::ALL
                .iter()
                .position(|&k| k == ev.kind)
                .expect("known kind");
            counts[ki] += 1;
        }
    }
    for (ki, &kind) in FaultKind::ALL.iter().enumerate() {
        // Sum of independent Poisson draws is Poisson: λ = rate ×
        // GPUs × hours × seeds, σ = √λ. A correct generator stays
        // within ±4σ (~6·10⁻⁵ false-failure probability per kind).
        let lambda = rate_of(&r, kind) * f64::from(GPUS) * HOURS * SEEDS as f64;
        let sigma = lambda.sqrt();
        let observed = counts[ki] as f64;
        assert!(
            (observed - lambda).abs() <= 4.0 * sigma,
            "{kind:?}: observed {observed} events, expected {lambda:.1} ± {:.1}",
            4.0 * sigma
        );
    }
}

#[test]
fn same_seed_reproduces_the_exact_timeline() {
    let r = rates();
    for seed in [0u64, 1, 0xC0FFEE] {
        let a = FaultTimeline::generate(r, GPUS, 8, HOURS * 3600.0, seed).unwrap();
        let b = FaultTimeline::generate(r, GPUS, 8, HOURS * 3600.0, seed).unwrap();
        assert_eq!(
            format!("{:?}", a.events()),
            format!("{:?}", b.events()),
            "seed {seed} produced two different timelines"
        );
    }
}

#[test]
fn different_seeds_produce_different_timelines() {
    let r = rates();
    let a = FaultTimeline::generate(r, GPUS, 8, HOURS * 3600.0, 1).unwrap();
    let b = FaultTimeline::generate(r, GPUS, 8, HOURS * 3600.0, 2).unwrap();
    assert_ne!(
        format!("{:?}", a.events()),
        format!("{:?}", b.events()),
        "seeds 1 and 2 produced identical event streams"
    );
}
