//! Hierarchical cluster network topology.
//!
//! Models the training fabric the paper describes in §5.1–§5.2 and §8.2:
//! an NVLink island inside each 8-GPU node, a per-GPU RoCE NIC into a
//! leaf (rack) switch, and leaf↔spine uplinks that may be
//! oversubscribed. The topology answers two questions:
//!
//! * the *class* of the path between two ranks (NVLink vs one or more
//!   network hops) — consumed by the α–β collective cost models, and
//! * the concrete *link route* between two ranks — consumed by the
//!   fluid-flow congestion simulator.

use crate::faults::ClusterHealth;
use crate::gpu::GpuSpec;
use sim_engine::error::SimError;
use sim_engine::fluid::{FluidNet, LinkId};
use sim_engine::time::SimDuration;
use std::fmt;

/// A global GPU rank in the cluster (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalRank(pub u32);

impl fmt::Display for GlobalRank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

/// The locality class of a rank-to-rank path, in increasing distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PathClass {
    /// Same GPU (no communication).
    Local,
    /// Same node: NVLink.
    IntraNode,
    /// Different node, same leaf switch: NIC → leaf → NIC.
    IntraLeaf,
    /// Different leaf: NIC → leaf → spine → leaf → NIC.
    CrossLeaf,
}

/// Cluster network description.
///
/// Bandwidths are bytes/second *per direction*; latencies are one-way.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    /// GPUs per node (8 on Grand Teton, §7.3).
    pub gpus_per_node: u32,
    /// Nodes per leaf (rack) switch.
    pub nodes_per_leaf: u32,
    /// Total number of nodes.
    pub num_nodes: u32,
    /// Per-GPU NVLink bandwidth within the node.
    pub nvlink_bandwidth: f64,
    /// NVLink hop latency.
    pub nvlink_latency: SimDuration,
    /// Per-GPU NIC bandwidth (RoCE). The paper's cluster provides
    /// 50 GB/s per GPU (§5.1).
    pub nic_bandwidth: f64,
    /// One network hop latency (NIC/switch traversal).
    pub net_latency: SimDuration,
    /// Leaf→spine oversubscription factor: 1.0 means full bisection;
    /// 2.0 means the uplinks carry half the leaf's ingress (§8.2).
    pub spine_oversubscription: f64,
}

impl TopologySpec {
    /// The Llama 3 production-like cluster: 8×H100 nodes, NVLink inside
    /// the node, 50 GB/s RoCE per GPU, full-bisection spine.
    pub fn llama3_production(num_nodes: u32) -> TopologySpec {
        TopologySpec {
            gpus_per_node: 8,
            nodes_per_leaf: 16,
            num_nodes,
            nvlink_bandwidth: 450e9,
            nvlink_latency: SimDuration::from_nanos(700),
            nic_bandwidth: 50e9,
            net_latency: SimDuration::from_micros(4),
            spine_oversubscription: 1.0,
        }
    }

    /// Same fabric with an oversubscribed spine (for §8.2 studies).
    pub fn with_oversubscription(mut self, factor: f64) -> TopologySpec {
        self.spine_oversubscription = factor;
        self
    }

    /// Total GPU count.
    pub fn num_gpus(&self) -> u32 {
        self.gpus_per_node * self.num_nodes
    }

    /// Node index of a rank.
    ///
    /// # Panics
    /// Panics if the rank is out of range.
    pub fn node_of(&self, r: GlobalRank) -> u32 {
        assert!(r.0 < self.num_gpus(), "{r} outside cluster");
        r.0 / self.gpus_per_node
    }

    /// GPU index within its node.
    pub fn local_of(&self, r: GlobalRank) -> u32 {
        assert!(r.0 < self.num_gpus(), "{r} outside cluster");
        r.0 % self.gpus_per_node
    }

    /// Leaf-switch index of a rank.
    pub fn leaf_of(&self, r: GlobalRank) -> u32 {
        self.node_of(r) / self.nodes_per_leaf
    }

    /// Classifies the path between two ranks.
    pub fn path_class(&self, a: GlobalRank, b: GlobalRank) -> PathClass {
        if a == b {
            PathClass::Local
        } else if self.node_of(a) == self.node_of(b) {
            PathClass::IntraNode
        } else if self.leaf_of(a) == self.leaf_of(b) {
            PathClass::IntraLeaf
        } else {
            PathClass::CrossLeaf
        }
    }

    /// Point-to-point bandwidth (bytes/s) between two ranks, ignoring
    /// contention.
    pub fn p2p_bandwidth(&self, a: GlobalRank, b: GlobalRank) -> f64 {
        match self.path_class(a, b) {
            PathClass::Local => f64::INFINITY,
            PathClass::IntraNode => self.nvlink_bandwidth,
            PathClass::IntraLeaf | PathClass::CrossLeaf => self.nic_bandwidth,
        }
    }

    /// Point-to-point one-way latency between two ranks.
    pub fn p2p_latency(&self, a: GlobalRank, b: GlobalRank) -> SimDuration {
        match self.path_class(a, b) {
            PathClass::Local => SimDuration::ZERO,
            PathClass::IntraNode => self.nvlink_latency,
            PathClass::IntraLeaf => self.net_latency * 2,
            PathClass::CrossLeaf => self.net_latency * 4,
        }
    }

    /// Time for a contention-free point-to-point transfer of `bytes`.
    pub fn p2p_time(&self, a: GlobalRank, b: GlobalRank, bytes: f64) -> SimDuration {
        if a == b {
            return SimDuration::ZERO;
        }
        self.p2p_latency(a, b) + SimDuration::from_secs_f64(bytes / self.p2p_bandwidth(a, b))
    }

    /// Builds a fluid-flow network mirroring this topology, together
    /// with the routing function from rank pairs to link routes.
    pub fn build_fluid(&self) -> FluidTopology {
        let mut net = FluidNet::new();
        let ngpu = self.num_gpus() as usize;
        let nnodes = self.num_nodes as usize;
        let nleaves = self.num_leaves() as usize;
        // Per-GPU NVLink port (up and down combined into one directed
        // abstraction per GPU; the zig-zag detail is below link level).
        let nv: Vec<LinkId> = (0..ngpu).map(|_| net.add_link(self.nvlink_bandwidth)).collect();
        // Per-GPU NIC up and down.
        let nic_up: Vec<LinkId> = (0..ngpu).map(|_| net.add_link(self.nic_bandwidth)).collect();
        let nic_down: Vec<LinkId> = (0..ngpu).map(|_| net.add_link(self.nic_bandwidth)).collect();
        // Per-node leaf port: aggregates the node's GPUs into the leaf.
        let node_up: Vec<LinkId> = (0..nnodes)
            .map(|_| net.add_link(self.nic_bandwidth * self.gpus_per_node as f64))
            .collect();
        let node_down: Vec<LinkId> = (0..nnodes)
            .map(|_| net.add_link(self.nic_bandwidth * self.gpus_per_node as f64))
            .collect();
        // Leaf↔spine uplinks, possibly oversubscribed.
        let leaf_capacity = self.nic_bandwidth
            * self.gpus_per_node as f64
            * self.nodes_per_leaf as f64
            / self.spine_oversubscription;
        let spine_up: Vec<LinkId> = (0..nleaves).map(|_| net.add_link(leaf_capacity)).collect();
        let spine_down: Vec<LinkId> = (0..nleaves).map(|_| net.add_link(leaf_capacity)).collect();
        FluidTopology {
            spec: self.clone(),
            net,
            nv,
            nic_up,
            nic_down,
            node_up,
            node_down,
            spine_up,
            spine_down,
        }
    }

    /// Number of leaf switches.
    pub fn num_leaves(&self) -> u32 {
        self.num_nodes.div_ceil(self.nodes_per_leaf)
    }
}

/// A [`TopologySpec`] lowered to fluid-network links.
#[derive(Debug, Clone)]
pub struct FluidTopology {
    /// The source spec.
    pub spec: TopologySpec,
    /// The link network (pass to [`FluidNet::run`]).
    pub net: FluidNet,
    nv: Vec<LinkId>,
    nic_up: Vec<LinkId>,
    nic_down: Vec<LinkId>,
    node_up: Vec<LinkId>,
    node_down: Vec<LinkId>,
    spine_up: Vec<LinkId>,
    spine_down: Vec<LinkId>,
}

impl FluidTopology {
    /// Applies a [`ClusterHealth`] snapshot's link degradations: every
    /// degraded node's NIC and leaf-port links are scaled to the
    /// event's capacity fraction (§8.2 — a flapped or mis-negotiated
    /// link slows every ring crossing it). Scaling is multiplicative
    /// against current capacities, so apply it to a freshly built
    /// topology; thermal throttles do not touch the network and are
    /// ignored here.
    pub fn apply_health(&mut self, health: &ClusterHealth) {
        for &(node, scale) in &health.degraded_nodes {
            let node = node as usize;
            if node >= self.node_up.len() {
                continue; // outside this fabric; nothing to degrade
            }
            self.net.scale_capacity(self.node_up[node], scale);
            self.net.scale_capacity(self.node_down[node], scale);
            let g0 = node * self.spec.gpus_per_node as usize;
            for g in g0..(g0 + self.spec.gpus_per_node as usize).min(self.nic_up.len()) {
                self.net.scale_capacity(self.nic_up[g], scale);
                self.net.scale_capacity(self.nic_down[g], scale);
            }
        }
    }

    /// The link route from rank `a` to rank `b`.
    pub fn route(&self, a: GlobalRank, b: GlobalRank) -> Vec<LinkId> {
        match self.spec.path_class(a, b) {
            PathClass::Local => vec![],
            PathClass::IntraNode => vec![self.nv[a.0 as usize], self.nv[b.0 as usize]],
            PathClass::IntraLeaf => vec![
                self.nic_up[a.0 as usize],
                self.node_up[self.spec.node_of(a) as usize],
                self.node_down[self.spec.node_of(b) as usize],
                self.nic_down[b.0 as usize],
            ],
            PathClass::CrossLeaf => vec![
                self.nic_up[a.0 as usize],
                self.node_up[self.spec.node_of(a) as usize],
                self.spine_up[self.spec.leaf_of(a) as usize],
                self.spine_down[self.spec.leaf_of(b) as usize],
                self.node_down[self.spec.node_of(b) as usize],
                self.nic_down[b.0 as usize],
            ],
        }
    }
}

/// A complete cluster: GPU model plus fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Accelerator model (identical across the cluster).
    pub gpu: GpuSpec,
    /// Network fabric.
    pub topology: TopologySpec,
}

impl Cluster {
    /// The Llama 3 production cluster shape: H100-HBM3 nodes of 8 with
    /// `num_gpus` total GPUs (must be a multiple of 8).
    ///
    /// # Panics
    /// Panics if `num_gpus` is not a positive multiple of 8.
    pub fn llama3(num_gpus: u32) -> Cluster {
        // lint: allow(unwrap) — the panic is this constructor's documented contract
        Cluster::try_llama3(num_gpus).expect("need a multiple of 8 GPUs")
    }

    /// Fallible form of [`Cluster::llama3`]: returns an error instead
    /// of panicking when `num_gpus` is not a positive multiple of 8.
    pub fn try_llama3(num_gpus: u32) -> Result<Cluster, SimError> {
        if num_gpus == 0 || !num_gpus.is_multiple_of(8) {
            return Err(SimError::InvalidShape(format!(
                "cluster size must be a positive multiple of 8, got {num_gpus}"
            )));
        }
        Ok(Cluster {
            gpu: GpuSpec::h100_sxm_hbm3(),
            topology: TopologySpec::llama3_production(num_gpus / 8),
        })
    }

    /// Number of GPUs.
    pub fn num_gpus(&self) -> u32 {
        self.topology.num_gpus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TopologySpec {
        TopologySpec::llama3_production(32) // 256 GPUs, 2 leaves
    }

    #[test]
    fn rank_geometry() {
        let t = spec();
        assert_eq!(t.num_gpus(), 256);
        assert_eq!(t.node_of(GlobalRank(0)), 0);
        assert_eq!(t.node_of(GlobalRank(8)), 1);
        assert_eq!(t.local_of(GlobalRank(13)), 5);
        assert_eq!(t.leaf_of(GlobalRank(0)), 0);
        assert_eq!(t.leaf_of(GlobalRank(16 * 8)), 1);
    }

    #[test]
    fn path_classes() {
        let t = spec();
        assert_eq!(t.path_class(GlobalRank(3), GlobalRank(3)), PathClass::Local);
        assert_eq!(t.path_class(GlobalRank(0), GlobalRank(7)), PathClass::IntraNode);
        assert_eq!(t.path_class(GlobalRank(0), GlobalRank(8)), PathClass::IntraLeaf);
        assert_eq!(
            t.path_class(GlobalRank(0), GlobalRank(255)),
            PathClass::CrossLeaf
        );
    }

    #[test]
    fn nvlink_much_faster_than_nic() {
        let t = spec();
        let intra = t.p2p_time(GlobalRank(0), GlobalRank(1), 1e9);
        let inter = t.p2p_time(GlobalRank(0), GlobalRank(8), 1e9);
        assert!(inter.as_secs_f64() / intra.as_secs_f64() > 5.0);
    }

    #[test]
    fn routes_have_expected_hop_counts() {
        let ft = spec().build_fluid();
        assert!(ft.route(GlobalRank(2), GlobalRank(2)).is_empty());
        assert_eq!(ft.route(GlobalRank(0), GlobalRank(1)).len(), 2);
        assert_eq!(ft.route(GlobalRank(0), GlobalRank(8)).len(), 4);
        assert_eq!(ft.route(GlobalRank(0), GlobalRank(255)).len(), 6);
    }

    #[test]
    fn oversubscription_reduces_spine_capacity() {
        let full = spec().build_fluid();
        let over = spec().with_oversubscription(4.0).build_fluid();
        let full_spine = full.route(GlobalRank(0), GlobalRank(255))[2];
        let over_spine = over.route(GlobalRank(0), GlobalRank(255))[2];
        assert!(
            (full.net.capacity(full_spine) / over.net.capacity(over_spine) - 4.0).abs() < 1e-9
        );
    }

    #[test]
    fn p2p_zero_bytes_costs_latency_only() {
        let t = spec();
        assert_eq!(
            t.p2p_time(GlobalRank(0), GlobalRank(1), 0.0),
            t.nvlink_latency
        );
    }

    #[test]
    #[should_panic(expected = "outside cluster")]
    fn out_of_range_rank_panics() {
        spec().node_of(GlobalRank(256));
    }

    #[test]
    fn cluster_constructor_validates() {
        let c = Cluster::llama3(16384);
        assert_eq!(c.num_gpus(), 16384);
        assert_eq!(c.topology.num_leaves(), 128);
        assert!(Cluster::try_llama3(12).is_err());
        assert!(Cluster::try_llama3(0).is_err());
        assert_eq!(Cluster::try_llama3(16384).unwrap(), c);
    }

    #[test]
    fn apply_health_degrades_node_links() {
        use crate::faults::ClusterHealth;
        let mut ft = spec().build_fluid();
        let healthy = spec().build_fluid();
        ft.apply_health(&ClusterHealth::healthy().degrade_node(1, 0.25));
        // Node 1's links (ranks 8..16) run at a quarter capacity.
        let route = ft.route(GlobalRank(0), GlobalRank(8));
        let base = healthy.route(GlobalRank(0), GlobalRank(8));
        // nic_up of rank 0 is untouched; node_down/nic_down of node 1 scaled.
        assert_eq!(ft.net.capacity(route[0]), healthy.net.capacity(base[0]));
        assert!(
            (ft.net.capacity(route[2]) / healthy.net.capacity(base[2]) - 0.25).abs() < 1e-12
        );
        assert!(
            (ft.net.capacity(route[3]) / healthy.net.capacity(base[3]) - 0.25).abs() < 1e-12
        );
        // Out-of-range nodes are ignored rather than panicking.
        ft.apply_health(&ClusterHealth::healthy().degrade_node(10_000, 0.5));
    }
}
