//! Deterministic fault timelines for resilience simulation.
//!
//! The paper's headline numbers come from multi-week runs on 16 K GPUs
//! where failures, stragglers and restarts — not steady-state step time
//! — determine delivered throughput. This module models the four fault
//! classes such runs observe:
//!
//! * **GPU fail-stop** — a GPU (HBM, SRAM, driver) dies; the job
//!   aborts and must restart from the last checkpoint.
//! * **Node loss** — a whole host drops (power, kernel, fabric side);
//!   also fatal to the job.
//! * **Link degradation** — a NIC flap or mis-negotiated link runs at
//!   a fraction of nominal bandwidth for a while; the job keeps
//!   running but every flow crossing the link slows down (§8.2).
//! * **Thermal throttle** — a GPU clocks down for a window; through
//!   the fine-grained synchronization of TP/CP/PP the whole cluster
//!   runs at the throttled rank's speed (§8.1).
//!
//! Rates are expressed **per GPU-hour** so a timeline scales with
//! cluster size: doubling the cluster doubles the expected event count
//! at fixed rates, which is exactly what production fleets observe.
//! Generation is a seeded Poisson process per fault class — the same
//! seed reproduces the identical timeline byte for byte.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_engine::error::SimError;

/// One fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A single GPU fails permanently (fatal to the job).
    GpuFailStop,
    /// A whole node drops out (fatal to the job).
    NodeLoss,
    /// A node's network link runs degraded for a window (non-fatal).
    LinkDegrade,
    /// A GPU runs thermally throttled for a window (non-fatal).
    ThermalThrottle,
}

impl FaultKind {
    /// `true` for fault classes that abort the job (restart required),
    /// `false` for ones the job survives in a degraded state.
    pub fn is_fatal(self) -> bool {
        matches!(self, FaultKind::GpuFailStop | FaultKind::NodeLoss)
    }

    /// All fault classes, in generation order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::GpuFailStop,
        FaultKind::NodeLoss,
        FaultKind::LinkDegrade,
        FaultKind::ThermalThrottle,
    ];
}

/// What a fault event affects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultScope {
    /// A single global GPU rank.
    Gpu(u32),
    /// A node index (all its GPUs / its uplink).
    Node(u32),
}

/// One event on a fault timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Fault class.
    pub kind: FaultKind,
    /// Affected hardware.
    pub scope: FaultScope,
    /// Event start, seconds from run start.
    pub start_s: f64,
    /// Duration in seconds. Fatal events use `f64::INFINITY` — the
    /// hardware does not come back on its own; the run-level restart
    /// policy (spare swap-in) is what recovers.
    pub duration_s: f64,
    /// Class-specific severity: thermal-throttle slowdown multiplier
    /// (≥ 1), link-degrade capacity scale in `(0, 1]`, `0.0` for fatal
    /// events.
    pub severity: f64,
}

impl FaultEvent {
    /// `true` if the event is active at time `t` (fatal events are
    /// active from their start onward).
    pub fn active_at(&self, t: f64) -> bool {
        t >= self.start_s && t < self.start_s + self.duration_s
    }

    /// End time (`INFINITY` for fatal events).
    pub fn end_s(&self) -> f64 {
        self.start_s + self.duration_s
    }
}

/// Per-GPU-hour fault rates plus transient-event shape parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// GPU fail-stop events per GPU-hour.
    pub gpu_fail_per_gpu_hour: f64,
    /// Node losses per GPU-hour (scoped to whole nodes, but rated per
    /// GPU-hour like everything else so it scales with cluster size).
    pub node_loss_per_gpu_hour: f64,
    /// Link-degradation windows per GPU-hour.
    pub link_degrade_per_gpu_hour: f64,
    /// Thermal-throttle windows per GPU-hour.
    pub thermal_per_gpu_hour: f64,
    /// Mean link-degradation window length, seconds (exponential).
    pub link_degrade_mean_s: f64,
    /// Capacity scale of a degraded link, in `(0, 1]`.
    pub link_degrade_capacity_scale: f64,
    /// Mean thermal-throttle window length, seconds (exponential).
    pub thermal_mean_s: f64,
    /// Worst-case throttle slowdown multiplier (events draw uniformly
    /// from `[1, max]`).
    pub thermal_max_slowdown: f64,
}

impl FaultRates {
    /// Paper-plausible production rates. The Llama 3 report counts 466
    /// job interruptions across a 54-day 16K-GPU snapshot (≈ 78 %
    /// hardware), which works out to ≈ 2·10⁻⁵ interruptions per
    /// GPU-hour; thermal and link events are non-fatal and somewhat
    /// more frequent.
    pub fn llama3_production() -> FaultRates {
        FaultRates {
            gpu_fail_per_gpu_hour: 1.6e-5,
            node_loss_per_gpu_hour: 3.0e-6,
            link_degrade_per_gpu_hour: 1.0e-5,
            thermal_per_gpu_hour: 2.0e-5,
            link_degrade_mean_s: 900.0,
            link_degrade_capacity_scale: 0.35,
            thermal_mean_s: 600.0,
            thermal_max_slowdown: 1.25,
        }
    }

    /// A fault-free timeline (all rates zero).
    pub fn none() -> FaultRates {
        FaultRates {
            gpu_fail_per_gpu_hour: 0.0,
            node_loss_per_gpu_hour: 0.0,
            link_degrade_per_gpu_hour: 0.0,
            thermal_per_gpu_hour: 0.0,
            link_degrade_mean_s: 1.0,
            link_degrade_capacity_scale: 1.0,
            thermal_mean_s: 1.0,
            thermal_max_slowdown: 1.0,
        }
    }

    /// Total fatal-event rate per GPU-hour.
    pub fn fatal_per_gpu_hour(&self) -> f64 {
        self.gpu_fail_per_gpu_hour + self.node_loss_per_gpu_hour
    }

    fn rate_of(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::GpuFailStop => self.gpu_fail_per_gpu_hour,
            FaultKind::NodeLoss => self.node_loss_per_gpu_hour,
            FaultKind::LinkDegrade => self.link_degrade_per_gpu_hour,
            FaultKind::ThermalThrottle => self.thermal_per_gpu_hour,
        }
    }

    fn validate(&self) -> Result<(), SimError> {
        let rates = [
            self.gpu_fail_per_gpu_hour,
            self.node_loss_per_gpu_hour,
            self.link_degrade_per_gpu_hour,
            self.thermal_per_gpu_hour,
        ];
        if rates.iter().any(|r| !r.is_finite() || *r < 0.0) {
            return Err(SimError::InvalidValue(
                "fault rates must be finite and >= 0".into(),
            ));
        }
        if !(self.link_degrade_capacity_scale > 0.0 && self.link_degrade_capacity_scale <= 1.0)
        {
            return Err(SimError::InvalidValue(
                "link_degrade_capacity_scale must be in (0, 1]".into(),
            ));
        }
        if !(self.thermal_max_slowdown >= 1.0 && self.thermal_max_slowdown.is_finite()) {
            return Err(SimError::InvalidValue(
                "thermal_max_slowdown must be >= 1".into(),
            ));
        }
        if self.link_degrade_mean_s <= 0.0 || self.thermal_mean_s <= 0.0 {
            return Err(SimError::InvalidValue(
                "mean fault durations must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// A point-in-time degraded-but-operational cluster state, derived from
/// the transient events of a [`FaultTimeline`] (or built by hand for
/// targeted injection). Fatal events are *not* part of a health
/// snapshot — a cluster with a dead GPU is not running a step at all;
/// the run simulator models that as downtime.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClusterHealth {
    /// `(global rank, slowdown multiplier ≥ 1)`, sorted by rank. A
    /// throttled rank's compute runs `multiplier×` slower.
    pub throttled: Vec<(u32, f64)>,
    /// `(node index, capacity scale in (0, 1])`, sorted by node. A
    /// degraded node's network links run at `scale×` nominal bandwidth.
    pub degraded_nodes: Vec<(u32, f64)>,
}

impl ClusterHealth {
    /// A fully healthy cluster.
    pub fn healthy() -> ClusterHealth {
        ClusterHealth::default()
    }

    /// `true` when nothing is throttled or degraded.
    pub fn is_healthy(&self) -> bool {
        self.throttled.is_empty() && self.degraded_nodes.is_empty()
    }

    /// Adds (or worsens) a thermal throttle on `rank`.
    pub fn throttle(mut self, rank: u32, multiplier: f64) -> ClusterHealth {
        match self.throttled.binary_search_by_key(&rank, |e| e.0) {
            Ok(i) => self.throttled[i].1 = self.throttled[i].1.max(multiplier),
            Err(i) => self.throttled.insert(i, (rank, multiplier)),
        }
        self
    }

    /// Adds (or worsens) a link degradation on `node`.
    pub fn degrade_node(mut self, node: u32, scale: f64) -> ClusterHealth {
        match self.degraded_nodes.binary_search_by_key(&node, |e| e.0) {
            Ok(i) => self.degraded_nodes[i].1 = self.degraded_nodes[i].1.min(scale),
            Err(i) => self.degraded_nodes.insert(i, (node, scale)),
        }
        self
    }

    /// The compute-duration multiplier of `rank` (1.0 if unthrottled).
    pub fn compute_multiplier(&self, rank: u32) -> f64 {
        match self.throttled.binary_search_by_key(&rank, |e| e.0) {
            Ok(i) => self.throttled[i].1,
            Err(_) => 1.0,
        }
    }

    /// The worst throttle multiplier anywhere in the cluster (1.0 when
    /// healthy). Because every parallelism dimension synchronizes
    /// within a step, this is the factor the whole cluster runs at
    /// (§8.1).
    pub fn worst_compute_multiplier(&self) -> f64 {
        self.throttled.iter().map(|e| e.1).fold(1.0, f64::max)
    }

    /// The worst link-capacity scale anywhere in the cluster (1.0 when
    /// healthy). One degraded link gates every ring that crosses it
    /// (§8.2).
    pub fn worst_link_scale(&self) -> f64 {
        self.degraded_nodes.iter().map(|e| e.1).fold(1.0, f64::min)
    }
}

/// A deterministic, seeded schedule of fault events over a time
/// horizon.
///
/// ```
/// use cluster_model::faults::{FaultRates, FaultTimeline};
/// let tl = FaultTimeline::generate(
///     FaultRates::llama3_production(), 16_384, 8, 24.0 * 3600.0, 7,
/// ).unwrap();
/// let again = FaultTimeline::generate(
///     FaultRates::llama3_production(), 16_384, 8, 24.0 * 3600.0, 7,
/// ).unwrap();
/// assert_eq!(tl.events(), again.events()); // same seed, same timeline
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTimeline {
    events: Vec<FaultEvent>,
    rates: FaultRates,
    num_gpus: u32,
    gpus_per_node: u32,
    horizon_s: f64,
    seed: u64,
}

impl FaultTimeline {
    /// Generates a timeline: one Poisson arrival process per fault
    /// class, cluster-wide rate = per-GPU-hour rate × GPU count, with
    /// scopes, durations and severities drawn from the same seeded
    /// stream. Events are sorted by start time.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidValue`]/[`SimError::InvalidShape`]
    /// for negative or non-finite rates, a non-positive horizon, or a
    /// zero-GPU cluster.
    pub fn generate(
        rates: FaultRates,
        num_gpus: u32,
        gpus_per_node: u32,
        horizon_s: f64,
        seed: u64,
    ) -> Result<FaultTimeline, SimError> {
        rates.validate()?;
        if num_gpus == 0 || gpus_per_node == 0 {
            return Err(SimError::InvalidShape(
                "cluster must have GPUs and a positive node size".into(),
            ));
        }
        if !(horizon_s > 0.0 && horizon_s.is_finite()) {
            return Err(SimError::InvalidValue("horizon must be positive".into()));
        }
        let num_nodes = num_gpus.div_ceil(gpus_per_node);
        let mut events = Vec::new();
        for (ki, kind) in FaultKind::ALL.iter().enumerate() {
            let per_sec = rates.rate_of(*kind) * num_gpus as f64 / 3600.0;
            if per_sec <= 0.0 {
                continue;
            }
            let mut rng = StdRng::seed_from_u64(mix(seed, ki as u64));
            let mut t = 0.0f64;
            loop {
                t += exp_draw(&mut rng, 1.0 / per_sec);
                if t >= horizon_s {
                    break;
                }
                let (scope, duration_s, severity) = match kind {
                    FaultKind::GpuFailStop => (
                        FaultScope::Gpu(rng.gen_range(0..num_gpus)),
                        f64::INFINITY,
                        0.0,
                    ),
                    FaultKind::NodeLoss => (
                        FaultScope::Node(rng.gen_range(0..num_nodes)),
                        f64::INFINITY,
                        0.0,
                    ),
                    FaultKind::LinkDegrade => (
                        FaultScope::Node(rng.gen_range(0..num_nodes)),
                        exp_draw(&mut rng, rates.link_degrade_mean_s),
                        rates.link_degrade_capacity_scale,
                    ),
                    FaultKind::ThermalThrottle => (
                        FaultScope::Gpu(rng.gen_range(0..num_gpus)),
                        exp_draw(&mut rng, rates.thermal_mean_s),
                        1.0 + rng.gen::<f64>() * (rates.thermal_max_slowdown - 1.0),
                    ),
                };
                events.push(FaultEvent {
                    kind: *kind,
                    scope,
                    start_s: t,
                    duration_s,
                    severity,
                });
            }
        }
        events.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
        Ok(FaultTimeline {
            events,
            rates,
            num_gpus,
            gpus_per_node,
            horizon_s,
            seed,
        })
    }

    /// All events, sorted by start time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The fatal (job-aborting) events, in time order.
    pub fn fatal_events(&self) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(|e| e.kind.is_fatal())
    }

    /// The time horizon in seconds.
    pub fn horizon_s(&self) -> f64 {
        self.horizon_s
    }

    /// GPU count the timeline was generated for.
    pub fn num_gpus(&self) -> u32 {
        self.num_gpus
    }

    /// The generating rates.
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// The generating seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Expected mean time between *fatal* events for this cluster size,
    /// from the rates (`INFINITY` for a fault-free configuration) —
    /// the MTBF term of the Young/Daly optimal-checkpoint-interval
    /// approximation.
    pub fn mtbf_s(&self) -> f64 {
        let per_hour = self.rates.fatal_per_gpu_hour() * self.num_gpus as f64;
        if per_hour <= 0.0 {
            f64::INFINITY
        } else {
            3600.0 / per_hour
        }
    }

    /// The degraded-but-operational cluster state at time `t`: all
    /// transient (non-fatal) events active at `t`, folded into one
    /// [`ClusterHealth`] snapshot.
    pub fn health_at(&self, t: f64) -> ClusterHealth {
        let mut health = ClusterHealth::healthy();
        for e in &self.events {
            if e.kind.is_fatal() || !e.active_at(t) {
                continue;
            }
            health = match (e.kind, e.scope) {
                (FaultKind::ThermalThrottle, FaultScope::Gpu(r)) => health.throttle(r, e.severity),
                (FaultKind::LinkDegrade, FaultScope::Node(n)) => {
                    health.degrade_node(n, e.severity)
                }
                _ => health,
            };
        }
        health
    }

    /// Transition instants of transient events strictly inside
    /// `(t0, t1)` — the times where [`FaultTimeline::health_at`]
    /// changes — sorted and deduplicated. Walking segments between
    /// these boundaries makes piecewise-constant degraded-throughput
    /// integration exact.
    pub fn transient_boundaries(&self, t0: f64, t1: f64) -> Vec<f64> {
        let mut ts: Vec<f64> = self
            .events
            .iter()
            .filter(|e| !e.kind.is_fatal())
            .flat_map(|e| [e.start_s, e.end_s()])
            .filter(|&t| t > t0 && t < t1 && t.is_finite())
            .collect();
        ts.sort_by(f64::total_cmp);
        ts.dedup();
        ts
    }
}

/// Exponential draw with the given mean (inverse-CDF on a uniform).
fn exp_draw(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen();
    // 1 - u is in (0, 1]; ln of it is finite and <= 0.
    -mean * (1.0 - u).ln()
}

/// SplitMix64-style avalanche over (seed, stream).
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0xD1B5_4A32_D192_ED03);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY_S: f64 = 24.0 * 3600.0;

    fn production_timeline(seed: u64) -> FaultTimeline {
        FaultTimeline::generate(FaultRates::llama3_production(), 16_384, 8, DAY_S, seed)
            .unwrap()
    }

    #[test]
    fn same_seed_is_byte_identical() {
        assert_eq!(production_timeline(42), production_timeline(42));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            production_timeline(1).events(),
            production_timeline(2).events()
        );
    }

    #[test]
    fn event_count_scales_with_cluster_size() {
        let rates = FaultRates::llama3_production();
        let small = FaultTimeline::generate(rates, 1_024, 8, DAY_S, 9).unwrap();
        let large = FaultTimeline::generate(rates, 16_384, 8, DAY_S, 9).unwrap();
        assert!(
            large.events().len() > small.events().len() * 4,
            "large {} vs small {}",
            large.events().len(),
            small.events().len()
        );
    }

    #[test]
    fn paper_rates_give_a_plausible_day() {
        // ≈ 2e-5 fatal per GPU-hour × 16K GPUs × 24 h ≈ 7.5 expected
        // fatal events; allow a wide band around it.
        let tl = production_timeline(3);
        let fatal = tl.fatal_events().count();
        assert!((2..=20).contains(&fatal), "fatal events: {fatal}");
        assert!(tl.mtbf_s() > 3600.0 && tl.mtbf_s() < 24.0 * 3600.0);
        // Events are sorted and inside the horizon.
        for w in tl.events().windows(2) {
            assert!(w[0].start_s <= w[1].start_s);
        }
        assert!(tl.events().iter().all(|e| e.start_s < tl.horizon_s()));
    }

    #[test]
    fn health_snapshots_reflect_active_windows() {
        let rates = FaultRates {
            thermal_per_gpu_hour: 5e-4, // frequent, long windows
            thermal_mean_s: 3600.0,
            ..FaultRates::none()
        };
        let tl = FaultTimeline::generate(rates, 4_096, 8, DAY_S, 11).unwrap();
        let throttle = tl
            .events()
            .iter()
            .find(|e| e.kind == FaultKind::ThermalThrottle)
            .expect("expected at least one throttle event");
        let mid = throttle.start_s + throttle.duration_s / 2.0;
        let h = tl.health_at(mid);
        assert!(!h.is_healthy());
        let FaultScope::Gpu(rank) = throttle.scope else {
            panic!("throttle events are GPU-scoped");
        };
        // The active window shows up on its rank at (at least) its severity.
        assert!(h.compute_multiplier(rank) >= throttle.severity);
        // This is the first event, so just before it nothing throttles that rank.
        let before = tl.health_at(f64::min(throttle.start_s, tl.events()[0].start_s) - 1.0);
        assert_eq!(before.compute_multiplier(rank), 1.0);
    }

    #[test]
    fn transient_boundaries_bracket_health_changes() {
        let rates = FaultRates {
            link_degrade_per_gpu_hour: 2e-4,
            link_degrade_mean_s: 1800.0,
            link_degrade_capacity_scale: 0.5,
            ..FaultRates::none()
        };
        let tl = FaultTimeline::generate(rates, 2_048, 8, DAY_S, 5).unwrap();
        let bounds = tl.transient_boundaries(0.0, DAY_S);
        assert!(!bounds.is_empty());
        for w in bounds.windows(2) {
            assert!(w[0] < w[1]);
            // Health is constant strictly inside a segment.
            let a = tl.health_at(w[0] + (w[1] - w[0]) * 0.25);
            let b = tl.health_at(w[0] + (w[1] - w[0]) * 0.75);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn zero_rates_mean_no_events() {
        let tl = FaultTimeline::generate(FaultRates::none(), 16_384, 8, DAY_S, 1).unwrap();
        assert!(tl.events().is_empty());
        assert_eq!(tl.mtbf_s(), f64::INFINITY);
        assert!(tl.health_at(1000.0).is_healthy());
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let mut bad = FaultRates::llama3_production();
        bad.gpu_fail_per_gpu_hour = -1.0;
        assert!(FaultTimeline::generate(bad, 8, 8, DAY_S, 0).is_err());
        let mut bad = FaultRates::llama3_production();
        bad.link_degrade_capacity_scale = 0.0;
        assert!(FaultTimeline::generate(bad, 8, 8, DAY_S, 0).is_err());
        let mut bad = FaultRates::llama3_production();
        bad.thermal_max_slowdown = 0.5;
        assert!(FaultTimeline::generate(bad, 8, 8, DAY_S, 0).is_err());
        assert!(
            FaultTimeline::generate(FaultRates::none(), 0, 8, DAY_S, 0).is_err()
        );
        assert!(
            FaultTimeline::generate(FaultRates::none(), 8, 8, -1.0, 0).is_err()
        );
    }

    #[test]
    fn health_builder_combines_overlapping_faults() {
        let h = ClusterHealth::healthy()
            .throttle(7, 1.1)
            .throttle(7, 1.3)
            .throttle(2, 1.05)
            .degrade_node(1, 0.5)
            .degrade_node(1, 0.8);
        assert_eq!(h.compute_multiplier(7), 1.3); // worst wins
        assert_eq!(h.compute_multiplier(2), 1.05);
        assert_eq!(h.compute_multiplier(0), 1.0);
        assert_eq!(h.worst_compute_multiplier(), 1.3);
        assert_eq!(h.worst_link_scale(), 0.5);
        assert!(h.throttled.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn severities_are_in_range() {
        let tl = production_timeline(21);
        for e in tl.events() {
            match e.kind {
                FaultKind::ThermalThrottle => {
                    assert!((1.0..=1.25).contains(&e.severity), "{e:?}");
                    assert!(e.duration_s.is_finite() && e.duration_s > 0.0);
                }
                FaultKind::LinkDegrade => {
                    assert!((0.0..=1.0).contains(&e.severity), "{e:?}");
                    assert!(e.duration_s.is_finite() && e.duration_s > 0.0);
                }
                FaultKind::GpuFailStop | FaultKind::NodeLoss => {
                    assert_eq!(e.severity, 0.0);
                    assert!(e.duration_s.is_infinite());
                }
            }
        }
    }
}
