//! Performance-variation (DVFS) models.
//!
//! §8.1 of the paper recommends deterministic DVFS because transient,
//! uncorrelated slowdowns accumulate through the fine-grained
//! synchronization of TP/CP/PP domains. This module provides both
//! flavours: a *static* per-rank speed spread (manufacturing variation,
//! deterministic DVFS) and a *transient* model where each rank slows
//! down at different steps (non-deterministic DVFS, thermal events).
//!
//! Multipliers are ≥ 1.0 and scale op durations on the affected rank.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_engine::error::SimError;

/// How per-rank slowdowns vary over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JitterKind {
    /// Every rank has a fixed multiplier for all steps (deterministic
    /// DVFS / static silicon spread).
    Static,
    /// Each rank's multiplier is redrawn every step (transient
    /// slowdowns at different times on different ranks).
    Transient,
}

/// A deterministic, seeded performance-variation model.
///
/// `amplitude` is the maximum fractional slowdown: multipliers are drawn
/// uniformly from `[1, 1 + amplitude]`.
///
/// ```
/// use cluster_model::jitter::{JitterKind, JitterModel};
/// let j = JitterModel::new(JitterKind::Static, 0.05, 42);
/// let m = j.multiplier(3, 0);
/// assert!((1.0..=1.05).contains(&m));
/// // Static jitter does not change across steps.
/// assert_eq!(m, j.multiplier(3, 17));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterModel {
    /// Variation behaviour over time.
    pub kind: JitterKind,
    /// Maximum fractional slowdown (e.g. `0.05` = up to 5 % slower).
    pub amplitude: f64,
    /// RNG seed; same seed ⇒ same multipliers.
    pub seed: u64,
}

impl JitterModel {
    /// Creates a model. `amplitude` must be finite and non-negative.
    ///
    /// # Panics
    /// Panics on a negative or non-finite amplitude.
    pub fn new(kind: JitterKind, amplitude: f64, seed: u64) -> JitterModel {
        assert!(
            amplitude.is_finite() && amplitude >= 0.0,
            "amplitude must be finite and >= 0"
        );
        JitterModel {
            kind,
            amplitude,
            seed,
        }
    }

    /// Fallible constructor: like [`JitterModel::new`] but returns an
    /// error instead of panicking on a bad amplitude.
    pub fn try_new(kind: JitterKind, amplitude: f64, seed: u64) -> Result<JitterModel, SimError> {
        if !(amplitude.is_finite() && amplitude >= 0.0) {
            return Err(SimError::InvalidValue(format!(
                "jitter amplitude must be finite and >= 0, got {amplitude}"
            )));
        }
        Ok(JitterModel {
            kind,
            amplitude,
            seed,
        })
    }

    /// A model with no variation (multiplier always exactly 1).
    pub fn none() -> JitterModel {
        JitterModel::new(JitterKind::Static, 0.0, 0)
    }

    /// The duration multiplier for `rank` at training step `step`.
    pub fn multiplier(&self, rank: u32, step: u64) -> f64 {
        if self.amplitude == 0.0 {
            return 1.0;
        }
        let stream = match self.kind {
            JitterKind::Static => mix(self.seed, rank as u64, 0),
            JitterKind::Transient => mix(self.seed, rank as u64, step + 1),
        };
        let mut rng = StdRng::seed_from_u64(stream);
        1.0 + rng.gen::<f64>() * self.amplitude
    }

    /// The expected cluster-level slowdown when `n` ranks synchronize
    /// every op: the mean of the per-step *maximum* multiplier across
    /// ranks, estimated over `steps` steps. For static jitter this is
    /// simply the worst rank; for transient jitter it approaches
    /// `1 + amplitude` as `n` grows — the §8.1 accumulation effect.
    pub fn synchronized_slowdown(&self, n: u32, steps: u64) -> f64 {
        if self.amplitude == 0.0 || n == 0 || steps == 0 {
            return 1.0;
        }
        let mut total = 0.0;
        for step in 0..steps {
            let worst = (0..n)
                .map(|r| self.multiplier(r, step))
                .fold(1.0f64, f64::max);
            total += worst;
        }
        total / steps as f64
    }
}

/// SplitMix64-style avalanche over (seed, a, b).
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(a.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(b.wrapping_mul(0x94D0_49BB_1331_11EB));
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_amplitude_is_identity() {
        let j = JitterModel::none();
        assert_eq!(j.multiplier(0, 0), 1.0);
        assert_eq!(j.synchronized_slowdown(1024, 10), 1.0);
    }

    #[test]
    fn static_jitter_is_step_invariant() {
        let j = JitterModel::new(JitterKind::Static, 0.1, 7);
        for r in 0..16 {
            assert_eq!(j.multiplier(r, 0), j.multiplier(r, 99));
        }
    }

    #[test]
    fn transient_jitter_varies_by_step() {
        let j = JitterModel::new(JitterKind::Transient, 0.1, 7);
        let same = (0..50).all(|s| j.multiplier(3, s) == j.multiplier(3, 0));
        assert!(!same, "transient jitter should vary across steps");
    }

    #[test]
    fn multipliers_within_bounds() {
        let j = JitterModel::new(JitterKind::Transient, 0.2, 11);
        for r in 0..64 {
            for s in 0..8 {
                let m = j.multiplier(r, s);
                assert!((1.0..=1.2).contains(&m), "m={m}");
            }
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let a = JitterModel::new(JitterKind::Transient, 0.1, 3);
        let b = JitterModel::new(JitterKind::Transient, 0.1, 3);
        assert_eq!(a.multiplier(5, 9), b.multiplier(5, 9));
    }

    #[test]
    fn synchronized_slowdown_grows_with_cluster_size() {
        // §8.1: the bigger the synchronized group, the closer the cluster
        // runs to the worst-case multiplier.
        let j = JitterModel::new(JitterKind::Transient, 0.10, 21);
        let small = j.synchronized_slowdown(2, 64);
        let large = j.synchronized_slowdown(512, 64);
        assert!(large > small);
        assert!(large > 1.09, "large cluster ≈ worst case, got {large}");
    }

    #[test]
    fn transient_worse_than_static_on_average() {
        // With static jitter, the same (worst) rank gates every step; the
        // expected max of a fresh draw each step is at least as large as
        // a single draw's max only when n is big — compare equal-n:
        let amp = 0.1;
        let stat = JitterModel::new(JitterKind::Static, amp, 5).synchronized_slowdown(16, 128);
        let trans =
            JitterModel::new(JitterKind::Transient, amp, 5).synchronized_slowdown(16, 128);
        // Both are ≤ 1+amp; transient re-rolls so its mean max is close to
        // the static max of the same population size.
        assert!(stat <= 1.0 + amp + 1e-9);
        assert!(trans <= 1.0 + amp + 1e-9);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn negative_amplitude_panics() {
        JitterModel::new(JitterKind::Static, -0.1, 0);
    }
}
