//! # cluster-model
//!
//! Hardware substrate for the `llama3-parallelism` workspace: GPU
//! roofline cost models, hierarchical (NVLink + RoCE leaf/spine) network
//! topology, and performance-variation (DVFS) models.
//!
//! ```
//! use cluster_model::{Cluster, Dtype, KernelCost};
//!
//! let cluster = Cluster::llama3(16384);
//! let gemm = KernelCost::gemm(8192, 8192, 8192, Dtype::Bf16);
//! let t = cluster.gpu.gemm_time(gemm, Dtype::Bf16);
//! assert!(t.as_secs_f64() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod faults;
pub mod gpu;
pub mod jitter;
pub mod power;
pub mod topology;

pub use faults::{ClusterHealth, FaultEvent, FaultKind, FaultRates, FaultScope, FaultTimeline};
pub use gpu::{Dtype, GpuSpec, KernelCost};
pub use power::{rank_by_cluster_throughput, PowerSizedCluster};
pub use jitter::{JitterKind, JitterModel};
pub use topology::{Cluster, FluidTopology, GlobalRank, PathClass, TopologySpec};
