//! Cluster-level power budgeting (§8.2).
//!
//! "These large clusters are constrained by the total amount of power
//! available in a data center region rather than the number of AI
//! accelerators that can be procured. Therefore, an accelerator's
//! effective performance per unit of power consumption is as
//! important as, or even more important than, its absolute
//! performance." This module sizes a cluster under a power envelope
//! and compares accelerator choices by deliverable cluster throughput.

use crate::gpu::{Dtype, GpuSpec, KernelCost};

/// Fraction of datacenter power that reaches accelerators (the rest is
/// cooling, hosts, network — a typical PUE-and-overheads allowance).
pub const ACCELERATOR_POWER_FRACTION: f64 = 0.6;

/// A cluster sized to a power envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSizedCluster {
    /// The accelerator chosen.
    pub gpu: GpuSpec,
    /// Accelerators that fit the envelope (rounded down to full
    /// 8-GPU nodes).
    pub num_gpus: u64,
    /// Sustained cluster throughput in FLOP/s on a large-GEMM
    /// workload.
    pub cluster_flops: f64,
}

impl PowerSizedCluster {
    /// Sizes a cluster of `gpu` under `datacenter_watts`.
    ///
    /// # Panics
    /// Panics if the budget does not fit at least one 8-GPU node.
    pub fn size(gpu: GpuSpec, datacenter_watts: f64) -> PowerSizedCluster {
        let usable = datacenter_watts * ACCELERATOR_POWER_FRACTION;
        let nodes = (usable / (gpu.tdp_watts * 8.0)).floor() as u64;
        assert!(nodes > 0, "power budget below one node");
        let num_gpus = nodes * 8;
        let bench = KernelCost::gemm(16384, 16384, 16384, Dtype::Bf16);
        let t = gpu.gemm_time(bench, Dtype::Bf16);
        let per_gpu = bench.flops / t.as_secs_f64();
        PowerSizedCluster {
            gpu,
            num_gpus,
            cluster_flops: per_gpu * num_gpus as f64,
        }
    }

    /// Deliverable exaFLOP/s.
    pub fn cluster_eflops(&self) -> f64 {
        self.cluster_flops / 1e18
    }
}

/// Compares accelerator candidates under one power envelope, best
/// (highest cluster throughput) first.
pub fn rank_by_cluster_throughput(
    candidates: Vec<GpuSpec>,
    datacenter_watts: f64,
) -> Vec<PowerSizedCluster> {
    let mut sized: Vec<PowerSizedCluster> = candidates
        .into_iter()
        .map(|g| PowerSizedCluster::size(g, datacenter_watts))
        .collect();
    // total_cmp keeps the sort panic-free even if a candidate's
    // throughput degenerates to NaN (it sorts last).
    sized.sort_by(|a, b| b.cluster_flops.total_cmp(&a.cluster_flops));
    sized
}

#[cfg(test)]
mod tests {
    use super::*;

    const HUNDRED_MW: f64 = 100e6;

    #[test]
    fn power_budget_caps_gpu_count() {
        let c = PowerSizedCluster::size(GpuSpec::h100_sxm_hbm3(), HUNDRED_MW);
        // 60 MW usable / 700 W ≈ 85.7K GPUs, node-rounded.
        assert!(c.num_gpus > 80_000 && c.num_gpus < 90_000, "{}", c.num_gpus);
        assert!(c.num_gpus.is_multiple_of(8));
    }

    #[test]
    fn perf_per_watt_decides_under_fixed_power() {
        // Under a fixed envelope the better Perf/Watt part wins even
        // though fewer absolute units differ: H100 at 700 W still beats
        // A100 at 400 W because its Perf/Watt is higher.
        let ranked = rank_by_cluster_throughput(
            vec![GpuSpec::a100_sxm(), GpuSpec::h100_sxm_hbm3()],
            HUNDRED_MW,
        );
        assert_eq!(ranked[0].gpu.name, "H100-SXM-HBM3");
        assert!(ranked[0].cluster_flops > ranked[1].cluster_flops);
        // But the A100 cluster holds MORE accelerators — procurement
        // count is not the constraint, power is (§8.2).
        assert!(ranked[1].num_gpus > ranked[0].num_gpus);
    }

    #[test]
    fn a_derated_h100_can_beat_the_full_power_part_per_watt() {
        // A hypothetical 500 W H100 at 85 % speed: worse per unit,
        // better per watt — and therefore better per datacenter.
        let mut derated = GpuSpec::h100_sxm_hbm3();
        derated.name = "H100-derated-500W".to_string();
        derated.tdp_watts = 500.0;
        derated.max_gemm_efficiency *= 0.85;
        let ranked = rank_by_cluster_throughput(
            vec![GpuSpec::h100_sxm_hbm3(), derated],
            HUNDRED_MW,
        );
        assert_eq!(ranked[0].gpu.name, "H100-derated-500W");
    }

    #[test]
    #[should_panic(expected = "below one node")]
    fn tiny_budget_panics() {
        PowerSizedCluster::size(GpuSpec::h100_sxm_hbm3(), 1_000.0);
    }
}
