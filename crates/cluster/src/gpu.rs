//! GPU accelerator cost model.
//!
//! Kernels are priced with a roofline model: a kernel with `flops`
//! floating-point work and `bytes` of HBM traffic takes
//! `max(flops / (peak · eff), bytes / hbm_bw)` plus a fixed launch
//! overhead. This reproduces the qualitative behaviour §8.1 of the paper
//! relies on — parallelism shrinks per-GPU GEMM shapes, lowering
//! arithmetic intensity until kernels become memory-bound or
//! launch-bound.

use sim_engine::time::SimDuration;

/// Floating-point element width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dtype {
    /// 16-bit brain float — the paper's compute/communication format.
    Bf16,
    /// 32-bit IEEE float — used for gradient accumulation (§6.2).
    Fp32,
}

impl Dtype {
    /// Element size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            Dtype::Bf16 => 2,
            Dtype::Fp32 => 4,
        }
    }
}

/// Abstract cost of a kernel before it is priced on a specific GPU.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelCost {
    /// Floating point operations.
    pub flops: f64,
    /// HBM bytes moved (reads + writes).
    pub bytes: f64,
    /// Number of distinct kernel launches (each pays launch overhead).
    pub launches: u32,
}

impl KernelCost {
    /// A kernel with no work (zero time, zero launches).
    pub const ZERO: KernelCost = KernelCost {
        flops: 0.0,
        bytes: 0.0,
        launches: 0,
    };

    /// Component-wise sum.
    pub fn merge(self, other: KernelCost) -> KernelCost {
        KernelCost {
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
            launches: self.launches + other.launches,
        }
    }

    /// Scales flops and bytes (not launches) by `f`.
    pub fn scale(self, f: f64) -> KernelCost {
        KernelCost {
            flops: self.flops * f,
            bytes: self.bytes * f,
            launches: self.launches,
        }
    }

    /// Cost of a GEMM `C[m,n] += A[m,k] · B[k,n]`, counting one launch
    /// and reads/writes of all three operands in `dtype`.
    pub fn gemm(m: u64, n: u64, k: u64, dtype: Dtype) -> KernelCost {
        let e = dtype.bytes() as f64;
        KernelCost {
            flops: 2.0 * m as f64 * n as f64 * k as f64,
            bytes: e * ((m * k) as f64 + (k * n) as f64 + (m * n) as f64),
            launches: 1,
        }
    }
}

/// A GPU model: peak throughput, memory system and launch overheads.
///
/// All bandwidth figures are *bytes per second*; capacities are bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"H100-SXM-HBM3"`.
    pub name: String,
    /// Peak dense BF16 throughput in FLOP/s (no sparsity).
    pub peak_bf16_flops: f64,
    /// Peak dense FP32 throughput in FLOP/s.
    pub peak_fp32_flops: f64,
    /// HBM bandwidth in bytes/s.
    pub hbm_bandwidth: f64,
    /// HBM capacity in bytes.
    pub hbm_capacity: u64,
    /// Fraction of peak a well-tuned large GEMM achieves (tensor-core
    /// efficiency ceiling).
    pub max_gemm_efficiency: f64,
    /// Fraction of peak a fused attention kernel achieves when fully
    /// compute-bound (FlashAttention-class kernels run below GEMM
    /// efficiency because of softmax/rescaling work).
    pub max_attention_efficiency: f64,
    /// Fixed CPU-side cost to prepare and launch one kernel (§8.1's
    /// "ensure sufficient CPU performance" concern).
    pub kernel_launch_overhead: SimDuration,
    /// Board power in watts, for Perf/Watt studies (§8.2).
    pub tdp_watts: f64,
}

impl GpuSpec {
    /// NVIDIA H100 SXM with HBM3 — the Llama 3 production trainer
    /// (§7.3: 700 W TDP, 80 GB HBM3, 989 TFLOPs BF16).
    ///
    /// The efficiency ceilings are *effective end-to-end* values
    /// (sustained kernel throughput including launch gaps, wave
    /// quantization and non-overlapped epilogues), calibrated once so
    /// the production Table 2 configuration reproduces the paper's
    /// ≈ 400 TFLOPs/GPU; isolated microbenchmark GEMMs would show
    /// ~0.75–0.85.
    pub fn h100_sxm_hbm3() -> GpuSpec {
        GpuSpec {
            name: "H100-SXM-HBM3".to_string(),
            peak_bf16_flops: 989e12,
            peak_fp32_flops: 67e12,
            hbm_bandwidth: 3.35e12,
            hbm_capacity: 80 * (1 << 30),
            max_gemm_efficiency: 0.60,
            max_attention_efficiency: 0.45,
            kernel_launch_overhead: SimDuration::from_nanos(3_000),
            tdp_watts: 700.0,
        }
    }

    /// H100 with HBM2e — the lower-memory-bandwidth part used for the
    /// CP scalability study (§7.2, Figs 11–12).
    pub fn h100_hbm2e() -> GpuSpec {
        GpuSpec {
            name: "H100-HBM2e".to_string(),
            peak_bf16_flops: 989e12,
            peak_fp32_flops: 67e12,
            hbm_bandwidth: 2.0e12,
            hbm_capacity: 80 * (1 << 30),
            max_gemm_efficiency: 0.60,
            max_attention_efficiency: 0.45,
            kernel_launch_overhead: SimDuration::from_nanos(3_000),
            tdp_watts: 700.0,
        }
    }

    /// NVIDIA A100 SXM 80 GB, used as a contrast point in hardware
    /// recommendation studies.
    pub fn a100_sxm() -> GpuSpec {
        GpuSpec {
            name: "A100-SXM-80GB".to_string(),
            peak_bf16_flops: 312e12,
            peak_fp32_flops: 19.5e12,
            hbm_bandwidth: 2.039e12,
            hbm_capacity: 80 * (1 << 30),
            max_gemm_efficiency: 0.82,
            max_attention_efficiency: 0.6,
            kernel_launch_overhead: SimDuration::from_nanos(3_000),
            tdp_watts: 400.0,
        }
    }

    /// Returns a copy with a different HBM capacity — the §8.1 "higher
    /// HBM capacity can improve performance" what-if.
    pub fn with_hbm_capacity(mut self, bytes: u64) -> GpuSpec {
        self.hbm_capacity = bytes;
        self
    }

    /// Peak FLOP/s for `dtype`.
    pub fn peak_flops(&self, dtype: Dtype) -> f64 {
        match dtype {
            Dtype::Bf16 => self.peak_bf16_flops,
            Dtype::Fp32 => self.peak_fp32_flops,
        }
    }

    /// Prices a GEMM-class kernel (dense tensor-core work) in `dtype`.
    pub fn gemm_time(&self, cost: KernelCost, dtype: Dtype) -> SimDuration {
        self.kernel_time(cost, self.peak_flops(dtype) * self.max_gemm_efficiency)
    }

    /// Prices an attention-class kernel in `dtype`.
    pub fn attention_time(&self, cost: KernelCost, dtype: Dtype) -> SimDuration {
        self.kernel_time(cost, self.peak_flops(dtype) * self.max_attention_efficiency)
    }

    /// Prices a purely memory-bound (element-wise) kernel.
    pub fn elementwise_time(&self, bytes: f64, launches: u32) -> SimDuration {
        self.kernel_time(
            KernelCost {
                flops: 0.0,
                bytes,
                launches,
            },
            f64::INFINITY,
        )
    }

    fn kernel_time(&self, cost: KernelCost, effective_flops: f64) -> SimDuration {
        let compute_s = if cost.flops > 0.0 {
            cost.flops / effective_flops
        } else {
            0.0
        };
        let memory_s = cost.bytes / self.hbm_bandwidth;
        let busy = compute_s.max(memory_s);
        SimDuration::from_secs_f64(busy) + self.kernel_launch_overhead * u64::from(cost.launches)
    }

    /// Hardware FLOPs utilization achieved by a kernel of `cost` that ran
    /// for `elapsed` at `dtype` peak — the §7.2 HFU metric.
    pub fn hfu(&self, cost: KernelCost, elapsed: SimDuration, dtype: Dtype) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        cost.flops / elapsed.as_secs_f64() / self.peak_flops(dtype)
    }

    /// Achieved FLOP/s per watt for a kernel of `cost` over `elapsed`.
    pub fn flops_per_watt(&self, cost: KernelCost, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        cost.flops / elapsed.as_secs_f64() / self.tdp_watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_cost_counts_flops_and_bytes() {
        let c = KernelCost::gemm(128, 256, 512, Dtype::Bf16);
        assert_eq!(c.flops, 2.0 * 128.0 * 256.0 * 512.0);
        assert_eq!(c.bytes, 2.0 * (128.0 * 512.0 + 512.0 * 256.0 + 128.0 * 256.0));
        assert_eq!(c.launches, 1);
    }

    #[test]
    fn large_gemm_is_compute_bound() {
        let gpu = GpuSpec::h100_sxm_hbm3();
        let c = KernelCost::gemm(8192, 8192, 8192, Dtype::Bf16);
        let t = gpu.gemm_time(c, Dtype::Bf16);
        let expected = c.flops / (gpu.peak_bf16_flops * gpu.max_gemm_efficiency);
        // Within launch overhead of the pure-compute roofline.
        assert!((t.as_secs_f64() - expected).abs() < 5e-6, "{t}");
        // HFU near the efficiency ceiling.
        let hfu = gpu.hfu(c, t, Dtype::Bf16);
        assert!(
            hfu > gpu.max_gemm_efficiency * 0.9 && hfu <= gpu.max_gemm_efficiency,
            "hfu={hfu}"
        );
    }

    #[test]
    fn tiny_gemm_is_launch_or_memory_bound() {
        let gpu = GpuSpec::h100_sxm_hbm3();
        let c = KernelCost::gemm(64, 64, 64, Dtype::Bf16);
        let t = gpu.gemm_time(c, Dtype::Bf16);
        let hfu = gpu.hfu(c, t, Dtype::Bf16);
        assert!(hfu < 0.01, "tiny GEMM should waste the GPU, hfu={hfu}");
    }

    #[test]
    fn lower_hbm_bandwidth_slows_memory_bound_kernels() {
        let hbm3 = GpuSpec::h100_sxm_hbm3();
        let hbm2e = GpuSpec::h100_hbm2e();
        let t3 = hbm3.elementwise_time(1e9, 1);
        let t2e = hbm2e.elementwise_time(1e9, 1);
        assert!(t2e > t3);
        // But an enormous compute-bound GEMM is unaffected.
        let big = KernelCost::gemm(16384, 16384, 16384, Dtype::Bf16);
        assert_eq!(hbm3.gemm_time(big, Dtype::Bf16), hbm2e.gemm_time(big, Dtype::Bf16));
    }

    #[test]
    fn merge_and_scale() {
        let a = KernelCost { flops: 10.0, bytes: 4.0, launches: 1 };
        let b = KernelCost { flops: 5.0, bytes: 2.0, launches: 2 };
        let m = a.merge(b);
        assert_eq!(m.flops, 15.0);
        assert_eq!(m.launches, 3);
        let s = a.scale(2.0);
        assert_eq!(s.flops, 20.0);
        assert_eq!(s.launches, 1);
    }

    #[test]
    fn launch_overhead_dominates_many_small_kernels() {
        // §8.1: a sequence of lightweight kernels becomes CPU/launch
        // bound. 1000 launches of nothing ≈ 3 ms on H100's 3 us overhead.
        let gpu = GpuSpec::h100_sxm_hbm3();
        let t = gpu.elementwise_time(0.0, 1000);
        assert_eq!(t, SimDuration::from_micros(3000));
    }

    #[test]
    fn dtype_peaks_differ() {
        let gpu = GpuSpec::h100_sxm_hbm3();
        assert!(gpu.peak_flops(Dtype::Bf16) > gpu.peak_flops(Dtype::Fp32));
        assert_eq!(Dtype::Bf16.bytes(), 2);
        assert_eq!(Dtype::Fp32.bytes(), 4);
    }

    #[test]
    fn perf_per_watt() {
        let h100 = GpuSpec::h100_sxm_hbm3();
        let a100 = GpuSpec::a100_sxm();
        let c = KernelCost::gemm(8192, 8192, 8192, Dtype::Bf16);
        let th = h100.gemm_time(c, Dtype::Bf16);
        let ta = a100.gemm_time(c, Dtype::Bf16);
        assert!(h100.flops_per_watt(c, th) > a100.flops_per_watt(c, ta));
    }
}
