//! A minimal row-major `f32` matrix.
//!
//! Deliberately simple: the numerics crate exists to study *bit-exact*
//! accumulation behaviour (§6.2), so every operation has an obvious,
//! auditable evaluation order.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A zero matrix.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Builds from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows × cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix { rows, cols, data }
    }

    /// A seeded uniform random matrix in `[-scale, scale)`.
    pub fn random(rows: usize, cols: usize, scale: f32, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-scale..scale))
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Underlying data, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// A sub-matrix of whole rows `[r0, r1)`.
    ///
    /// # Panics
    /// Panics on an invalid range.
    pub fn row_slice(&self, r0: usize, r1: usize) -> Matrix {
        assert!(r0 < r1 && r1 <= self.rows, "bad row range");
        Matrix {
            rows: r1 - r0,
            cols: self.cols,
            data: self.data[r0 * self.cols..r1 * self.cols].to_vec(),
        }
    }

    /// Vertical concatenation.
    ///
    /// # Panics
    /// Panics if column counts differ or `parts` is empty.
    pub fn vstack(parts: &[Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "nothing to stack");
        let cols = parts[0].cols;
        let mut data = Vec::new();
        let mut rows = 0;
        for p in parts {
            assert_eq!(p.cols, cols, "column mismatch");
            data.extend_from_slice(&p.data);
            rows += p.rows;
        }
        Matrix { rows, cols, data }
    }

    /// Element-wise sum, left-to-right (`self + rhs`), in `f32`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Scales every element.
    pub fn scale(&self, s: f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// `true` iff every element is bitwise identical (`0.0 != -0.0`,
    /// NaNs compare equal to themselves bit-for-bit).
    pub fn bitwise_eq(&self, rhs: &Matrix) -> bool {
        self.rows == rhs.rows
            && self.cols == rhs.cols
            && self
                .data
                .iter()
                .zip(&rhs.data)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Largest absolute element-wise difference.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f32 {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Largest relative element-wise difference (`|a−b| / max(|a|,|b|,ε)`).
    pub fn max_rel_diff(&self, rhs: &Matrix) -> f32 {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs() / a.abs().max(b.abs()).max(1e-20))
            .fold(0.0, f32::max)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 6 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(m.transpose().get(2, 1), 5.0);
    }

    #[test]
    fn random_is_seeded() {
        assert!(Matrix::random(4, 4, 1.0, 7).bitwise_eq(&Matrix::random(4, 4, 1.0, 7)));
        assert!(!Matrix::random(4, 4, 1.0, 7).bitwise_eq(&Matrix::random(4, 4, 1.0, 8)));
    }

    #[test]
    fn slicing_and_stacking_roundtrip() {
        let m = Matrix::random(6, 3, 1.0, 1);
        let top = m.row_slice(0, 2);
        let mid = m.row_slice(2, 5);
        let bot = m.row_slice(5, 6);
        assert!(Matrix::vstack(&[top, mid, bot]).bitwise_eq(&m));
    }

    #[test]
    fn bitwise_eq_distinguishes_signed_zero() {
        let a = Matrix::from_vec(1, 1, vec![0.0]);
        let b = Matrix::from_vec(1, 1, vec![-0.0]);
        assert_eq!(a, b); // PartialEq via f32 ==
        assert!(!a.bitwise_eq(&b));
    }

    #[test]
    fn diffs() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 100.0]);
        let b = Matrix::from_vec(1, 2, vec![1.5, 100.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!((a.max_rel_diff(&b) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_panic() {
        Matrix::zeros(0, 3);
    }
}
