//! Forward-mode automatic differentiation: dual numbers with `N`
//! simultaneous partial derivatives.
//!
//! A [`Dual<N>`] carries a primal value and the gradient of that value
//! with respect to `N` independent inputs. Arithmetic propagates both
//! through the chain rule, so evaluating a closed-form cost expression
//! on duals yields the expression's exact gradient in one pass — no
//! finite differencing, no tape. `N` is a compile-time constant (the
//! guided search uses `N = 5` for `(tp, cp, pp, dp, nmb)`), so the
//! partials live inline in a fixed array and the whole number is
//! `Copy`.
//!
//! Comparisons (`PartialEq`/`PartialOrd`) look at the primal value
//! only: two duals with equal values but different derivatives compare
//! equal, which is what branch selection (`max`, `min`, feasibility
//! tests) needs.

use crate::scalar::Scalar;

/// A dual number: primal value plus `N` partial derivatives.
#[derive(Debug, Clone, Copy)]
pub struct Dual<const N: usize> {
    /// The primal value.
    pub v: f64,
    /// Partial derivatives of `v` with respect to the `N` inputs.
    pub d: [f64; N],
}

impl<const N: usize> Dual<N> {
    /// A constant: value `v`, zero gradient.
    pub fn constant(v: f64) -> Dual<N> {
        Dual { v, d: [0.0; N] }
    }

    /// The `i`-th independent variable: value `v`, `∂/∂x_i = 1`.
    ///
    /// # Panics
    /// Panics if `i ≥ N`.
    pub fn var(v: f64, i: usize) -> Dual<N> {
        assert!(i < N, "variable index {i} out of range for Dual<{N}>");
        let mut d = [0.0; N];
        d[i] = 1.0;
        Dual { v, d }
    }

    /// The gradient as a plain array.
    pub fn grad(&self) -> [f64; N] {
        self.d
    }

    /// Maps both value and partials through `f` and its derivative
    /// `df` evaluated at the value — the chain rule for a univariate
    /// function.
    fn chain(self, f: f64, df: f64) -> Dual<N> {
        Dual { v: f, d: core::array::from_fn(|i| df * self.d[i]) }
    }
}

impl<const N: usize> PartialEq for Dual<N> {
    fn eq(&self, other: &Dual<N>) -> bool {
        self.v == other.v
    }
}

impl<const N: usize> PartialOrd for Dual<N> {
    fn partial_cmp(&self, other: &Dual<N>) -> Option<core::cmp::Ordering> {
        self.v.partial_cmp(&other.v)
    }
}

impl<const N: usize> core::ops::Add for Dual<N> {
    type Output = Dual<N>;
    fn add(self, o: Dual<N>) -> Dual<N> {
        Dual { v: self.v + o.v, d: core::array::from_fn(|i| self.d[i] + o.d[i]) }
    }
}

impl<const N: usize> core::ops::Sub for Dual<N> {
    type Output = Dual<N>;
    fn sub(self, o: Dual<N>) -> Dual<N> {
        Dual { v: self.v - o.v, d: core::array::from_fn(|i| self.d[i] - o.d[i]) }
    }
}

impl<const N: usize> core::ops::Mul for Dual<N> {
    type Output = Dual<N>;
    // The product rule (a·b)' = a'·b + a·b' genuinely needs `+`.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn mul(self, o: Dual<N>) -> Dual<N> {
        Dual { v: self.v * o.v, d: core::array::from_fn(|i| self.d[i] * o.v + self.v * o.d[i]) }
    }
}

impl<const N: usize> core::ops::Div for Dual<N> {
    type Output = Dual<N>;
    fn div(self, o: Dual<N>) -> Dual<N> {
        let inv = 1.0 / o.v;
        let v = self.v * inv;
        // (a/b)' = (a' − (a/b)·b') / b
        Dual { v, d: core::array::from_fn(|i| (self.d[i] - v * o.d[i]) * inv) }
    }
}

impl<const N: usize> core::ops::Neg for Dual<N> {
    type Output = Dual<N>;
    fn neg(self) -> Dual<N> {
        Dual { v: -self.v, d: core::array::from_fn(|i| -self.d[i]) }
    }
}

impl<const N: usize> Scalar for Dual<N> {
    fn lit(v: f64) -> Dual<N> {
        Dual::constant(v)
    }

    fn value(self) -> f64 {
        self.v
    }

    fn ln(self) -> Dual<N> {
        self.chain(self.v.ln(), 1.0 / self.v)
    }

    fn exp(self) -> Dual<N> {
        let e = self.v.exp();
        self.chain(e, e)
    }

    fn powf(self, e: f64) -> Dual<N> {
        self.chain(self.v.powf(e), e * self.v.powf(e - 1.0))
    }

    fn sqrt(self) -> Dual<N> {
        let s = self.v.sqrt();
        self.chain(s, 0.5 / s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type D2 = Dual<2>;

    fn x(v: f64) -> D2 {
        D2::var(v, 0)
    }

    fn y(v: f64) -> D2 {
        D2::var(v, 1)
    }

    #[test]
    fn arithmetic_propagates_partials() {
        // f(x, y) = x·y + x² at (3, 5): ∂x = y + 2x = 11, ∂y = x = 3.
        let f = x(3.0) * y(5.0) + x(3.0) * x(3.0);
        assert_eq!(f.v, 24.0);
        assert_eq!(f.grad(), [11.0, 3.0]);
    }

    #[test]
    fn division_quotient_rule() {
        // f = x/y at (6, 2): ∂x = 1/y = 0.5, ∂y = −x/y² = −1.5.
        let f = x(6.0) / y(2.0);
        assert_eq!(f.v, 3.0);
        assert!((f.d[0] - 0.5).abs() < 1e-15);
        assert!((f.d[1] + 1.5).abs() < 1e-15);
    }

    #[test]
    fn transcendentals_chain() {
        // f = ln(exp(x)) must have unit derivative everywhere.
        let f = Scalar::ln(Scalar::exp(x(1.7)));
        assert!((f.v - 1.7).abs() < 1e-14);
        assert!((f.d[0] - 1.0).abs() < 1e-12);
        // powf: d/dx x^3 = 3x² at x = 2 → 12.
        let p = Scalar::powf(x(2.0), 3.0);
        assert_eq!(p.v, 8.0);
        assert!((p.d[0] - 12.0).abs() < 1e-12);
        // sqrt: d/dx √x = 1/(2√x) at 9 → 1/6.
        let s = Scalar::sqrt(x(9.0));
        assert_eq!(s.v, 3.0);
        assert!((s.d[0] - 1.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn hard_max_follows_the_winning_branch() {
        let f = Scalar::max(x(3.0), y(2.0));
        assert_eq!(f.grad(), [1.0, 0.0]);
        let g = Scalar::max(x(1.0), y(2.0));
        assert_eq!(g.grad(), [0.0, 1.0]);
    }

    #[test]
    fn smooth_max_gradient_is_a_sigmoid() {
        // ∂a smooth_max(a,b;β) = σ(β(a−b)); at a = b it is exactly ½
        // for each operand.
        let f = x(2.0).smooth_max(y(2.0), 4.0);
        assert!((f.d[0] - 0.5).abs() < 1e-12);
        assert!((f.d[1] - 0.5).abs() < 1e-12);
        let g = x(3.0).smooth_max(y(2.0), 4.0);
        let sig = 1.0 / (1.0 + (-4.0f64).exp());
        assert!((g.d[0] - sig).abs() < 1e-12, "{:?}", g.d);
        assert!((g.d[1] - (1.0 - sig)).abs() < 1e-12);
    }

    #[test]
    fn comparisons_ignore_partials() {
        assert_eq!(x(1.0), y(1.0));
        assert!(x(1.0) < y(2.0));
    }

    #[test]
    fn exp2_matches_f64_definition() {
        let d = Scalar::exp2(x(3.0));
        let f = Scalar::exp2(3.0f64);
        assert_eq!(d.v, f);
        // d/dl 2^l = ln2 · 2^l.
        assert!((d.d[0] - core::f64::consts::LN_2 * f).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_index_is_checked() {
        let _ = D2::var(1.0, 2);
    }
}
