//! GEMM with explicit precision and accumulation order.
//!
//! Tensor parallelism splits a GEMM's contraction (K) dimension across
//! ranks; each rank produces a partial product that is summed by a
//! collective. Floating-point addition is not associative, so the
//! chunked-and-reduced result differs from the monolithic one at the
//! ulp level — the §6.2 phenomenon that must be distinguished from an
//! implementation bug. This module provides monolithic and chunked
//! GEMMs whose accumulation orders can be matched exactly.

use crate::bf16::Bf16;
use crate::tensor::Matrix;

/// Input/accumulator precision of a GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmPrecision {
    /// `f32` inputs, `f32` accumulation (reference).
    Fp32,
    /// BF16 inputs, `f32` accumulation — the tensor-core behaviour the
    /// paper aligns its software accumulations with (§6.2).
    Bf16InputsFp32Acc,
    /// BF16 inputs, BF16 accumulation — the hazardous configuration.
    Bf16All,
}

/// `C = A · B` with the given precision, accumulating along K from
/// index 0 upward.
///
/// # Panics
/// Panics if the inner dimensions disagree.
pub fn gemm(a: &Matrix, b: &Matrix, precision: GemmPrecision) -> Matrix {
    gemm_k_range(a, b, 0, a.cols(), precision)
}

/// `C = A[:, k0..k1] · B[k0..k1, :]` — one K-chunk partial product.
///
/// # Panics
/// Panics on dimension mismatch or an invalid K range.
pub fn gemm_k_range(
    a: &Matrix,
    b: &Matrix,
    k0: usize,
    k1: usize,
    precision: GemmPrecision,
) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    assert!(k0 < k1 && k1 <= a.cols(), "bad K range");
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            match precision {
                GemmPrecision::Fp32 => {
                    let mut acc = 0.0f32;
                    for k in k0..k1 {
                        acc += a.get(i, k) * b.get(k, j);
                    }
                    c.set(i, j, acc);
                }
                GemmPrecision::Bf16InputsFp32Acc => {
                    let mut acc = 0.0f32;
                    for k in k0..k1 {
                        let x = Bf16::from_f32(a.get(i, k)).to_f32();
                        let y = Bf16::from_f32(b.get(k, j)).to_f32();
                        acc += x * y;
                    }
                    c.set(i, j, acc);
                }
                GemmPrecision::Bf16All => {
                    let mut acc = Bf16::ZERO;
                    for k in k0..k1 {
                        let x = Bf16::from_f32(a.get(i, k));
                        let y = Bf16::from_f32(b.get(k, j));
                        acc = acc + x * y;
                    }
                    c.set(i, j, acc.to_f32());
                }
            }
        }
    }
    c
}

/// Tensor-parallel-style GEMM: K split into `chunks` contiguous parts
/// (one per "rank"), each computed independently, partials returned in
/// rank order — the reduction is the caller's choice (see
/// [`crate::reduce`]).
///
/// # Panics
/// Panics if `chunks` is empty or does not divide K evenly enough
/// (each chunk must be non-empty).
pub fn gemm_k_split(
    a: &Matrix,
    b: &Matrix,
    chunks: usize,
    precision: GemmPrecision,
) -> Vec<Matrix> {
    assert!(chunks > 0 && chunks <= a.cols(), "bad chunk count");
    let k = a.cols();
    let base = k / chunks;
    let rem = k % chunks;
    let mut parts = Vec::with_capacity(chunks);
    let mut k0 = 0;
    for i in 0..chunks {
        let len = base + usize::from(i < rem);
        parts.push(gemm_k_range(a, b, k0, k0 + len, precision));
        k0 += len;
    }
    parts
}

/// The §6.2 *matched-order sequential reference*: a sequential GEMM
/// restructured to accumulate in exactly the same chunk order as the
/// parallel version (compute each K-chunk's partial in f32, then sum
/// the partials left-to-right). Bitwise equality against the parallel
/// emulation proves the parallel implementation is bug-free; any
/// difference from the *monolithic* GEMM is then attributable to
/// accumulation order alone.
pub fn gemm_matched_chunks(
    a: &Matrix,
    b: &Matrix,
    chunks: usize,
    precision: GemmPrecision,
) -> Matrix {
    let parts = gemm_k_split(a, b, chunks, precision);
    parts
        .into_iter()
        .reduce(|acc, p| acc.add(&p))
        // lint: allow(unwrap) — chunking a non-empty GEMM always yields ≥ 1 partial
        .expect("at least one chunk")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab(seed: u64) -> (Matrix, Matrix) {
        (
            Matrix::random(8, 64, 1.0, seed),
            Matrix::random(64, 8, 1.0, seed + 1),
        )
    }

    #[test]
    fn fp32_gemm_matches_naive() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = gemm(&a, &b, GemmPrecision::Fp32);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn chunked_differs_from_monolithic_at_ulp_level() {
        // The §6.2 core fact: splitting K changes the sum order and the
        // bits — without any bug.
        let (a, b) = ab(11);
        let mono = gemm(&a, &b, GemmPrecision::Bf16InputsFp32Acc);
        let chunked = gemm_matched_chunks(&a, &b, 4, GemmPrecision::Bf16InputsFp32Acc);
        assert!(!mono.bitwise_eq(&chunked), "expected order-induced gap");
        // But the gap is tiny.
        assert!(chunked.max_rel_diff(&mono) < 1e-4);
    }

    #[test]
    fn matched_order_reference_is_bitwise_equal_to_parallel_sum() {
        // Emulate the "parallel" path: per-rank partials reduced
        // left-to-right; the matched sequential reference must be
        // bit-identical.
        let (a, b) = ab(21);
        let parallel_parts = gemm_k_split(&a, &b, 4, GemmPrecision::Bf16InputsFp32Acc);
        let parallel = parallel_parts
            .into_iter()
            .reduce(|acc, p| acc.add(&p))
            .unwrap();
        let reference = gemm_matched_chunks(&a, &b, 4, GemmPrecision::Bf16InputsFp32Acc);
        assert!(parallel.bitwise_eq(&reference));
    }

    #[test]
    fn bf16_accumulation_much_worse_than_fp32_accumulation() {
        let a = Matrix::random(4, 512, 1.0, 3);
        let b = Matrix::random(512, 4, 1.0, 4);
        let exact = gemm(&a, &b, GemmPrecision::Fp32);
        let fp32acc = gemm(&a, &b, GemmPrecision::Bf16InputsFp32Acc);
        let bf16acc = gemm(&a, &b, GemmPrecision::Bf16All);
        let err_fp32acc = fp32acc.max_abs_diff(&exact);
        let err_bf16acc = bf16acc.max_abs_diff(&exact);
        assert!(
            err_bf16acc > err_fp32acc * 3.0,
            "bf16 acc {err_bf16acc} vs fp32 acc {err_fp32acc}"
        );
    }

    #[test]
    fn k_split_partials_cover_all_of_k() {
        let (a, b) = ab(31);
        let parts = gemm_k_split(&a, &b, 3, GemmPrecision::Fp32);
        assert_eq!(parts.len(), 3);
        let sum = parts.into_iter().reduce(|acc, p| acc.add(&p)).unwrap();
        let mono = gemm(&a, &b, GemmPrecision::Fp32);
        // f32 partial sums differ from monolithic at ulp level but are
        // close in absolute terms (relative error can blow up when the
        // true sum is near zero).
        assert!(sum.max_abs_diff(&mono) < 1e-4);
    }

    #[test]
    fn single_chunk_is_exactly_monolithic() {
        let (a, b) = ab(41);
        for p in [
            GemmPrecision::Fp32,
            GemmPrecision::Bf16InputsFp32Acc,
            GemmPrecision::Bf16All,
        ] {
            let mono = gemm(&a, &b, p);
            let one = gemm_matched_chunks(&a, &b, 1, p);
            assert!(mono.bitwise_eq(&one));
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        gemm(&a, &b, GemmPrecision::Fp32);
    }
}
