//! Closed-form cost primitives, generic over [`Scalar`].
//!
//! These are the innermost real-arithmetic expressions of the α–β
//! collective model and the roofline kernel model, written once so the
//! exhaustive search prices them in plain floats and the guided search
//! differentiates them with [`crate::dual::Dual`]. Call sites that
//! need today's bit-identical float behaviour instantiate them at the
//! float type; the expressions use the exact operation order of the
//! code they replaced.
//!
//! Repo rule (enforced by `repo_lint`'s `scalar-costs` rule): no
//! direct float arithmetic in this module — every quantity is an `S`
//! and every constant enters through [`Scalar::lit`], so the two
//! pricing paths cannot silently diverge.

use crate::scalar::Scalar;

/// Wire time of moving `bytes` over a link of effective bandwidth
/// `bw` (bytes/s): `bytes / bw`.
pub fn transfer_s<S: Scalar>(bytes: S, bw: S) -> S {
    bytes / bw
}

/// Serial ring-phase wire time: `steps` steps each moving `bytes`
/// over effective bandwidth `bw`, i.e. `steps · bytes / bw`.
pub fn ring_transfer_s<S: Scalar>(steps: S, bytes: S, bw: S) -> S {
    steps * bytes / bw
}

/// Roofline busy time of a kernel: `max(flops / eff_flops,
/// bytes / hbm_bw)` — compute-bound or memory-bound, whichever
/// dominates. Launch overhead is layered on by the caller (it is a
/// count, not real arithmetic).
pub fn kernel_busy_s<S: Scalar>(flops: S, eff_flops: S, bytes: S, hbm_bw: S) -> S {
    (flops / eff_flops).max(bytes / hbm_bw)
}

/// Shards a linear quantity (flops, bytes) evenly over `ways` ranks.
pub fn linear_shard<S: Scalar>(x: S, ways: S) -> S {
    x / ways
}

/// The paper's closed-form pipeline-bubble ratio estimate
/// `(pp − 1) / nmb / v` (§3.1.1).
pub fn bubble_ratio<S: Scalar>(pp: S, nmb: S, v: S) -> S {
    (pp - S::lit(1.0)) / nmb / v
}

/// Model TFLOPs per GPU: `flops / seconds / ngpus / 1e12`.
pub fn tflops_per_gpu<S: Scalar>(flops: S, seconds: S, ngpus: S) -> S {
    flops / seconds / ngpus / S::lit(1e12)
}

/// Attention kernel flops from the attended-pair count:
/// `flops_per_pair_per_headdim · head_dim · num_heads · pairs`.
pub fn attention_pair_flops<S: Scalar>(
    flops_per_pair_per_headdim: S,
    head_dim: S,
    num_heads: S,
    pairs: S,
) -> S {
    flops_per_pair_per_headdim * head_dim * num_heads * pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual::Dual;

    #[test]
    fn expressions_match_plain_float_arithmetic() {
        assert_eq!(transfer_s(8e9, 4e9), 8e9 / 4e9);
        assert_eq!(ring_transfer_s(7.0, 1e6, 5e10), 7.0 * 1e6 / 5e10);
        assert_eq!(
            kernel_busy_s(1e15, 5e14, 1e9, 3e12),
            (1e15f64 / 5e14).max(1e9 / 3e12)
        );
        assert_eq!(linear_shard(100.0, 8.0), 12.5);
        assert_eq!(bubble_ratio(16.0, 128.0, 8.0), 15.0 / 128.0 / 8.0);
        assert_eq!(
            tflops_per_gpu(1e18, 2.0, 1024.0),
            1e18 / 2.0 / 1024.0 / 1e12
        );
        assert_eq!(
            attention_pair_flops(4.0, 128.0, 64.0, 1e8),
            4.0 * 128.0 * 64.0 * 1e8
        );
    }

    #[test]
    fn duals_differentiate_the_same_expressions() {
        // ∂/∂bytes transfer = 1/bw.
        let t = transfer_s(Dual::<1>::var(8e9, 0), Dual::constant(4e9));
        assert!((t.d[0] - 1.0 / 4e9).abs() < 1e-24);
        // Compute-bound roofline: sensitive to flops, not bytes.
        let busy = kernel_busy_s(
            Dual::<2>::var(1e15, 0),
            Dual::constant(5e14),
            Dual::<2>::var(1e9, 1),
            Dual::constant(3e12),
        );
        assert!(busy.d[0] > 0.0 && busy.d[1] == 0.0);
        // ∂/∂pp bubble = 1/(nmb·v).
        let b = bubble_ratio(
            Dual::<1>::var(16.0, 0),
            Dual::constant(128.0),
            Dual::constant(8.0),
        );
        assert!((b.d[0] - 1.0 / (128.0 * 8.0)).abs() < 1e-15);
    }
}
