//! Software BFloat16.
//!
//! A faithful bit-level emulation of the BF16 format the paper trains
//! in (§6.2): 1 sign, 8 exponent, 7 mantissa bits — the top half of an
//! IEEE-754 `f32`, converted with round-to-nearest-even, exactly as
//! hardware converts tensor-core outputs.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 16-bit brain float.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);

    /// Converts from `f32` with round-to-nearest-even.
    pub fn from_f32(v: f32) -> Bf16 {
        let bits = v.to_bits();
        if v.is_nan() {
            // Preserve NaN, force a quiet mantissa bit.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest even on the truncated 16 bits.
        let round_bit = 0x8000u32;
        let lower = bits & 0xFFFF;
        let mut upper = bits >> 16;
        if lower > round_bit || (lower == round_bit && (upper & 1) == 1) {
            upper += 1;
        }
        Bf16(upper as u16)
    }

    /// Widens to `f32` (exact).
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Constructs from a raw bit pattern.
    pub fn from_bits(bits: u16) -> Bf16 {
        Bf16(bits)
    }

    /// Unit-in-last-place distance to another value (0 when bitwise
    /// equal; `u16::MAX` when signs differ on non-zero values or either
    /// is NaN).
    pub fn ulp_distance(self, other: Bf16) -> u16 {
        if self.to_f32().is_nan() || other.to_f32().is_nan() {
            return u16::MAX;
        }
        // Map to a monotonic integer line.
        let a = Self::monotone(self.0);
        let b = Self::monotone(other.0);
        a.abs_diff(b).min(u16::MAX as i32 as u32) as u16
    }

    fn monotone(bits: u16) -> i32 {
        let b = bits as i32;
        if b & 0x8000 != 0 {
            0x8000 - b // negative range reversed
        } else {
            b
        }
    }
}

impl From<f32> for Bf16 {
    fn from(v: f32) -> Bf16 {
        Bf16::from_f32(v)
    }
}

impl From<Bf16> for f32 {
    fn from(v: Bf16) -> f32 {
        v.to_f32()
    }
}

impl Add for Bf16 {
    type Output = Bf16;
    /// BF16 addition: compute in `f32`, round back — the accumulation
    /// behaviour of a BF16 buffer.
    fn add(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl Sub for Bf16 {
    type Output = Bf16;
    fn sub(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl Mul for Bf16 {
    type Output = Bf16;
    fn mul(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl Div for Bf16 {
    type Output = Bf16;
    fn div(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() / rhs.to_f32())
    }
}

impl Neg for Bf16 {
    type Output = Bf16;
    fn neg(self) -> Bf16 {
        Bf16(self.0 ^ 0x8000)
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Quantizes an `f32` slice through BF16 (the "cast to BF16 for
/// communication" step).
pub fn quantize(values: &[f32]) -> Vec<Bf16> {
    values.iter().map(|&v| Bf16::from_f32(v)).collect()
}

/// Widens a BF16 slice back to `f32`.
pub fn dequantize(values: &[Bf16]) -> Vec<f32> {
    values.iter().map(|v| v.to_f32()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for v in [-8.0f32, -1.0, 0.0, 0.5, 1.0, 2.0, 100.0] {
            assert_eq!(Bf16::from_f32(v).to_f32(), v);
        }
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0 + 2^-8 is exactly halfway between 1.0 and the next BF16;
        // RNE rounds to the even mantissa (1.0).
        let halfway = 1.0 + 2f32.powi(-8);
        assert_eq!(Bf16::from_f32(halfway).to_f32(), 1.0);
        // 1.0 + 3·2^-9 rounds up.
        let above = 1.0 + 3.0 * 2f32.powi(-9);
        assert!(Bf16::from_f32(above).to_f32() > 1.0);
    }

    #[test]
    fn precision_loss_is_real() {
        // BF16 has 8 significand bits: 257 is not representable.
        let v = Bf16::from_f32(257.0);
        assert_ne!(v.to_f32(), 257.0);
        assert_eq!(v.to_f32(), 256.0);
    }

    #[test]
    fn addition_swallows_small_terms() {
        // 256 + 1 == 256 in BF16 — the §6.2 accumulation hazard.
        let a = Bf16::from_f32(256.0);
        let b = Bf16::from_f32(1.0);
        assert_eq!((a + b).to_f32(), 256.0);
        // But FP32 accumulation keeps it.
        assert_eq!(a.to_f32() + b.to_f32(), 257.0);
    }

    #[test]
    fn accumulation_order_changes_bf16_sums() {
        // Σ in ascending vs descending order differs in BF16.
        let values: Vec<f32> = (1..=100).map(|i| i as f32 * 0.1).collect();
        let asc = values
            .iter()
            .fold(Bf16::ZERO, |acc, &v| acc + Bf16::from_f32(v));
        let desc = values
            .iter()
            .rev()
            .fold(Bf16::ZERO, |acc, &v| acc + Bf16::from_f32(v));
        assert_ne!(asc.to_bits(), desc.to_bits());
    }

    #[test]
    fn ulp_distance() {
        let one = Bf16::from_f32(1.0);
        let next = Bf16::from_bits(one.to_bits() + 1);
        assert_eq!(one.ulp_distance(one), 0);
        assert_eq!(one.ulp_distance(next), 1);
        assert!(one.ulp_distance(Bf16::from_f32(-1.0)) > 100);
    }

    #[test]
    fn nan_preserved() {
        assert!(Bf16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn negation_flips_sign_bit() {
        let v = Bf16::from_f32(3.5);
        assert_eq!((-v).to_f32(), -3.5);
        assert_eq!((-Bf16::ZERO).to_bits(), 0x8000);
    }

    #[test]
    fn quantize_dequantize() {
        let vals = vec![0.1f32, -2.7, 1e10, -1e-10];
        let q = quantize(&vals);
        let d = dequantize(&q);
        for (orig, round) in vals.iter().zip(&d) {
            let rel = ((orig - round) / orig).abs();
            assert!(rel < 0.01, "{orig} -> {round}");
        }
    }
}
