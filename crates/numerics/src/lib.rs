//! # numerics
//!
//! Real-arithmetic substrate for the paper's §6.2 numerical-debugging
//! methodology: software BF16, GEMMs with explicit accumulation orders,
//! CPU softmax attention with document masks (direct, blockwise/ring,
//! and all-gather-CP variants), gradient-reduction orders, the
//! matched-order bitwise-parity decision procedure, and a miniature
//! training loop demonstrating why Llama 3 accumulates gradients in
//! FP32.
//!
//! The crate also hosts the differentiable-arithmetic substrate of the
//! gradient-guided auto-parallelism search: forward-mode dual numbers
//! ([`dual::Dual`]), the [`scalar::Scalar`] trait that lets one cost
//! expression price both `f64` and duals, and the shared closed-form
//! cost primitives ([`costs`]).
//!
//! ```
//! use numerics::bf16::Bf16;
//! // The §6.2 hazard in one line: BF16 swallows small addends.
//! assert_eq!((Bf16::from_f32(256.0) + Bf16::from_f32(1.0)).to_f32(), 256.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attention;
pub mod bf16;
pub mod costs;
pub mod dual;
pub mod gemm;
pub mod parity;
pub mod reduce;
pub mod scalar;
pub mod tensor;
pub mod training;

pub use bf16::Bf16;
pub use dual::Dual;
pub use gemm::GemmPrecision;
pub use parity::{diagnose, Diagnosis};
pub use scalar::Scalar;
pub use tensor::Matrix;
