//! Gradient-reduction orders and precisions.
//!
//! Data parallelism reduce-scatters gradients; pipeline parallelism
//! accumulates micro-batch gradients locally. Both are floating-point
//! sums whose *order* (sequential, ring, tree) and *precision* (BF16
//! vs FP32) change the result. §6.2's production fix is FP32
//! accumulation for exactly these buffers.

use crate::bf16::Bf16;
use crate::tensor::Matrix;

/// The order in which `n` contributions are summed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOrder {
    /// `((g0 + g1) + g2) + …` — rank-order sequential (ring
    /// reduce-scatter visits ranks in ring order).
    Sequential,
    /// Pairwise binary tree: `(g0+g1) + (g2+g3) …`.
    Tree,
}

/// Accumulator precision of the reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReducePrecision {
    /// FP32 accumulation (the paper's production setting for DP
    /// reduce-scatter and PP micro-batch accumulation).
    Fp32,
    /// BF16 accumulation (each partial sum rounds to BF16).
    Bf16,
}

/// Reduces `parts` element-wise in the given order and precision.
///
/// # Panics
/// Panics if `parts` is empty or shapes mismatch.
pub fn reduce(parts: &[Matrix], order: ReduceOrder, precision: ReducePrecision) -> Matrix {
    assert!(!parts.is_empty(), "nothing to reduce");
    match order {
        ReduceOrder::Sequential => {
            let mut acc = parts[0].clone();
            for p in &parts[1..] {
                acc = add_in(&acc, p, precision);
            }
            acc
        }
        ReduceOrder::Tree => {
            let mut layer: Vec<Matrix> = parts.to_vec();
            while layer.len() > 1 {
                let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                for pair in layer.chunks(2) {
                    next.push(match pair {
                        [a, b] => add_in(a, b, precision),
                        [a] => a.clone(),
                        _ => unreachable!("chunks(2)"),
                    });
                }
                layer = next;
            }
            // lint: allow(unwrap) — the tree-reduce loop exits with exactly one element left
            layer.pop().expect("non-empty")
        }
    }
}

fn add_in(a: &Matrix, b: &Matrix, precision: ReducePrecision) -> Matrix {
    match precision {
        ReducePrecision::Fp32 => a.add(b),
        ReducePrecision::Bf16 => Matrix::from_fn(a.rows(), a.cols(), |r, c| {
            (Bf16::from_f32(a.get(r, c)) + Bf16::from_f32(b.get(r, c))).to_f32()
        }),
    }
}

/// Reference sum in `f64`, rounded once at the end — the "true"
/// gradient against which accumulation error is measured.
///
/// # Panics
/// Panics if `parts` is empty or shapes mismatch.
pub fn reduce_exact(parts: &[Matrix]) -> Matrix {
    assert!(!parts.is_empty(), "nothing to reduce");
    let (rows, cols) = (parts[0].rows(), parts[0].cols());
    Matrix::from_fn(rows, cols, |r, c| {
        parts.iter().map(|p| p.get(r, c) as f64).sum::<f64>() as f32
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grads(n: usize, seed: u64) -> Vec<Matrix> {
        (0..n)
            .map(|i| Matrix::random(8, 8, 1.0, seed + i as u64))
            .collect()
    }

    #[test]
    fn orders_agree_in_value_not_in_bits() {
        let parts = grads(16, 100);
        let seq = reduce(&parts, ReduceOrder::Sequential, ReducePrecision::Fp32);
        let tree = reduce(&parts, ReduceOrder::Tree, ReducePrecision::Fp32);
        assert!(seq.max_rel_diff(&tree) < 1e-5);
        assert!(
            !seq.bitwise_eq(&tree),
            "different orders should differ at the bit level"
        );
    }

    #[test]
    fn fp32_accumulation_beats_bf16_accumulation() {
        // §6.2: FP32 accumulation for DP reduce-scatter closes most of
        // the numerical gap.
        let parts = grads(64, 7);
        let exact = reduce_exact(&parts);
        let fp32 = reduce(&parts, ReduceOrder::Sequential, ReducePrecision::Fp32);
        let bf16 = reduce(&parts, ReduceOrder::Sequential, ReducePrecision::Bf16);
        let err32 = fp32.max_abs_diff(&exact);
        let err16 = bf16.max_abs_diff(&exact);
        assert!(err16 > err32 * 10.0, "bf16 {err16} vs fp32 {err32}");
    }

    #[test]
    fn bf16_tree_beats_bf16_sequential_on_many_terms() {
        // Tree reduction keeps partial sums small — a well-known
        // property the production ring order gives up, making FP32
        // accumulation necessary.
        let parts = grads(256, 13);
        let exact = reduce_exact(&parts);
        let seq = reduce(&parts, ReduceOrder::Sequential, ReducePrecision::Bf16);
        let tree = reduce(&parts, ReduceOrder::Tree, ReducePrecision::Bf16);
        assert!(tree.max_abs_diff(&exact) < seq.max_abs_diff(&exact));
    }

    #[test]
    fn single_part_is_identity() {
        let parts = grads(1, 5);
        for order in [ReduceOrder::Sequential, ReduceOrder::Tree] {
            assert!(reduce(&parts, order, ReducePrecision::Fp32).bitwise_eq(&parts[0]));
        }
    }

    #[test]
    fn deterministic() {
        let parts = grads(8, 3);
        let a = reduce(&parts, ReduceOrder::Tree, ReducePrecision::Bf16);
        let b = reduce(&parts, ReduceOrder::Tree, ReducePrecision::Bf16);
        assert!(a.bitwise_eq(&b));
    }
}
