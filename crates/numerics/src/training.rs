//! Miniature training loop demonstrating loss-curve divergence.
//!
//! "Determining whether a deviation in loss curves stems from an
//! implementation error or from the accumulation of small precision
//! differences across many parallel ranks" (§1) needs an end-to-end
//! demonstration: a linear model trained by gradient descent where the
//! per-micro-batch gradients are accumulated either in BF16 or in FP32
//! (§6.2's production fix), measured against an `f64` oracle.

use crate::bf16::Bf16;
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Gradient-accumulation precision across micro-batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccumPrecision {
    /// FP32 accumulator (the paper's fix).
    Fp32,
    /// BF16 accumulator (each partial sum rounds to BF16).
    Bf16,
    /// `f64` oracle (ground truth).
    Fp64,
}

/// Result of one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingRun {
    /// Mean-squared-error loss after every step.
    pub losses: Vec<f64>,
}

impl TrainingRun {
    /// The final loss.
    ///
    /// # Panics
    /// Panics if the run recorded no steps.
    pub fn final_loss(&self) -> f64 {
        // lint: allow(unwrap) — the panic is this accessor's documented contract
        *self.losses.last().expect("at least one step")
    }

    /// Largest per-step absolute loss gap against a reference run.
    ///
    /// # Panics
    /// Panics if the runs have different lengths.
    pub fn max_loss_gap(&self, reference: &TrainingRun) -> f64 {
        assert_eq!(self.losses.len(), reference.losses.len());
        self.losses
            .iter()
            .zip(&reference.losses)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// A fixed synthetic least-squares problem.
#[derive(Debug, Clone)]
pub struct Regression {
    x: Matrix,
    y: Vec<f32>,
    micro_batches: usize,
}

impl Regression {
    /// Builds a seeded problem with `samples` rows, `features` columns,
    /// split into `micro_batches` for gradient accumulation.
    ///
    /// # Panics
    /// Panics unless `micro_batches` divides `samples`.
    pub fn new(samples: usize, features: usize, micro_batches: usize, seed: u64) -> Regression {
        assert!(
            micro_batches > 0 && samples.is_multiple_of(micro_batches),
            "micro-batches must divide samples"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Matrix::from_fn(samples, features, |_, _| rng.gen_range(-1.0..1.0f32));
        let w_true: Vec<f32> = (0..features).map(|_| rng.gen_range(-2.0..2.0f32)).collect();
        let y: Vec<f32> = (0..samples)
            .map(|i| {
                let clean: f32 = (0..features).map(|c| x.get(i, c) * w_true[c]).sum();
                clean + rng.gen_range(-0.01..0.01f32)
            })
            .collect();
        Regression {
            x,
            y,
            micro_batches,
        }
    }

    fn mb_rows(&self) -> usize {
        self.x.rows() / self.micro_batches
    }

    /// MSE loss of weights `w` over the whole dataset, in `f64`.
    fn loss(&self, w: &[f32]) -> f64 {
        let mut total = 0.0f64;
        for i in 0..self.x.rows() {
            let pred: f64 = (0..self.x.cols())
                .map(|c| self.x.get(i, c) as f64 * w[c] as f64)
                .sum();
            let e = pred - self.y[i] as f64;
            total += e * e;
        }
        total / self.x.rows() as f64
    }

    /// Gradient of the MSE over one micro-batch, in `f32`.
    fn mb_grad(&self, w: &[f32], mb: usize) -> Vec<f32> {
        let rows = self.mb_rows();
        let lo = mb * rows;
        let mut g = vec![0.0f32; self.x.cols()];
        for i in lo..lo + rows {
            let pred: f32 = (0..self.x.cols()).map(|c| self.x.get(i, c) * w[c]).sum();
            let e = 2.0 * (pred - self.y[i]) / self.x.rows() as f32;
            for (c, gc) in g.iter_mut().enumerate() {
                *gc += e * self.x.get(i, c);
            }
        }
        g
    }

    /// Trains for `steps` with learning rate `lr`, accumulating the
    /// micro-batch gradients in `precision`, and returns the loss
    /// trajectory.
    pub fn train(&self, steps: usize, lr: f32, precision: AccumPrecision) -> TrainingRun {
        let mut w = vec![0.0f32; self.x.cols()];
        let mut losses = Vec::with_capacity(steps);
        for _ in 0..steps {
            let grads: Vec<Vec<f32>> =
                (0..self.micro_batches).map(|m| self.mb_grad(&w, m)).collect();
            let total: Vec<f32> = match precision {
                AccumPrecision::Fp32 => {
                    let mut acc = vec![0.0f32; w.len()];
                    for g in &grads {
                        for (a, v) in acc.iter_mut().zip(g) {
                            *a += *v;
                        }
                    }
                    acc
                }
                AccumPrecision::Bf16 => {
                    let mut acc = vec![Bf16::ZERO; w.len()];
                    for g in &grads {
                        for (a, v) in acc.iter_mut().zip(g) {
                            *a = *a + Bf16::from_f32(*v);
                        }
                    }
                    acc.into_iter().map(Bf16::to_f32).collect()
                }
                AccumPrecision::Fp64 => {
                    let mut acc = vec![0.0f64; w.len()];
                    for g in &grads {
                        for (a, v) in acc.iter_mut().zip(g) {
                            *a += *v as f64;
                        }
                    }
                    acc.into_iter().map(|v| v as f32).collect()
                }
            };
            for (wc, g) in w.iter_mut().zip(&total) {
                *wc -= lr * g;
            }
            losses.push(self.loss(&w));
        }
        TrainingRun { losses }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_converges() {
        let p = Regression::new(256, 8, 16, 1);
        let run = p.train(60, 0.5, AccumPrecision::Fp64);
        assert!(run.final_loss() < run.losses[0] / 10.0);
        assert!(run.final_loss() < 0.01);
    }

    #[test]
    fn fp32_accumulation_tracks_oracle_closer_than_bf16() {
        // §6.2: the FP32 gradient accumulator shrinks the loss-curve
        // gap that BF16 accumulation opens across many micro-batches.
        let p = Regression::new(512, 8, 64, 2);
        let oracle = p.train(60, 0.5, AccumPrecision::Fp64);
        let fp32 = p.train(60, 0.5, AccumPrecision::Fp32);
        let bf16 = p.train(60, 0.5, AccumPrecision::Bf16);
        let gap32 = fp32.max_loss_gap(&oracle);
        let gap16 = bf16.max_loss_gap(&oracle);
        assert!(
            gap16 > gap32 * 5.0,
            "bf16 gap {gap16:.3e} should dwarf fp32 gap {gap32:.3e}"
        );
    }

    #[test]
    fn more_microbatches_widen_the_bf16_gap() {
        // The hazard accumulates along the batch dimension, which DP
        // and PP split (§6.2).
        let few = Regression::new(512, 8, 8, 3);
        let many = Regression::new(512, 8, 128, 3);
        let gap = |p: &Regression| {
            let oracle = p.train(40, 0.5, AccumPrecision::Fp64);
            p.train(40, 0.5, AccumPrecision::Bf16).max_loss_gap(&oracle)
        };
        assert!(gap(&many) > gap(&few));
    }

    #[test]
    fn deterministic_runs() {
        let p = Regression::new(128, 4, 8, 9);
        let a = p.train(10, 0.3, AccumPrecision::Bf16);
        let b = p.train(10, 0.3, AccumPrecision::Bf16);
        assert_eq!(a, b);
    }
}
