//! Real (CPU) softmax attention with document masks.
//!
//! Three implementations of the same mathematical function:
//!
//! * [`attention_direct`] — row-at-a-time reference (one softmax pass
//!   per query over all its keys);
//! * [`attention_blockwise`] — FlashAttention/RingAttention-style
//!   streaming over key blocks with running-max log-sum-exp rescaling;
//! * [`cp_allgather_attention`] — the paper's CP design: queries
//!   zig-zag-sharded across ranks, every rank holding the *gathered*
//!   K/V and computing its rows independently.
//!
//! The numerical punchline (§4 + §6.2): all-gather CP is **bitwise
//! identical** to the single-GPU reference, because each output row's
//! arithmetic is untouched by the sharding. Blockwise/ring merging is
//! *not* bitwise identical — its partial-result rescaling reorders the
//! sums — which is precisely the kind of benign, order-induced gap the
//! §6.2 methodology must distinguish from real bugs.

use crate::tensor::Matrix;
use llm_model::masks::MaskSpec;

/// Row-reference attention: `softmax(Q Kᵀ / √d + mask) · V`.
///
/// `q_offset` is the global position of `q`'s first row (queries may be
/// a shard of a longer sequence); keys/values always start at global
/// position 0.
///
/// # Panics
/// Panics on dimension mismatches or when a query row attends no keys.
pub fn attention_direct(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    mask: &MaskSpec,
    q_offset: u64,
) -> Matrix {
    assert_eq!(q.cols(), k.cols(), "head-dim mismatch");
    assert_eq!(k.rows(), v.rows(), "K/V length mismatch");
    let d = q.cols();
    let scale = 1.0 / (d as f32).sqrt();
    let mut out = Matrix::zeros(q.rows(), v.cols());
    for i in 0..q.rows() {
        let qpos = q_offset + i as u64;
        // Scores for allowed keys.
        let mut max_score = f32::NEG_INFINITY;
        let mut scores: Vec<(usize, f32)> = Vec::new();
        for j in 0..k.rows() {
            if !mask.allows(qpos, j as u64) {
                continue;
            }
            let mut s = 0.0f32;
            for c in 0..d {
                s += q.get(i, c) * k.get(j, c);
            }
            let s = s * scale;
            max_score = max_score.max(s);
            scores.push((j, s));
        }
        assert!(
            !scores.is_empty(),
            "query {qpos} attends no keys under the mask"
        );
        let mut denom = 0.0f32;
        let mut acc = vec![0.0f32; v.cols()];
        for &(j, s) in &scores {
            let w = (s - max_score).exp();
            denom += w;
            for (c, a) in acc.iter_mut().enumerate() {
                *a += w * v.get(j, c);
            }
        }
        for (c, a) in acc.iter().enumerate() {
            out.set(i, c, a / denom);
        }
    }
    out
}

/// Streaming attention over key blocks of `block` rows, merging partial
/// results with running-max log-sum-exp rescaling (the FlashAttention /
/// RingAttention merge the paper cites [7, 8]).
///
/// # Panics
/// Panics on dimension mismatches, `block == 0`, or a query row that
/// attends no keys.
pub fn attention_blockwise(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    mask: &MaskSpec,
    q_offset: u64,
    block: usize,
) -> Matrix {
    assert!(block > 0, "block size must be positive");
    assert_eq!(q.cols(), k.cols(), "head-dim mismatch");
    assert_eq!(k.rows(), v.rows(), "K/V length mismatch");
    let d = q.cols();
    let scale = 1.0 / (d as f32).sqrt();
    let mut out = Matrix::zeros(q.rows(), v.cols());
    for i in 0..q.rows() {
        let qpos = q_offset + i as u64;
        let mut running_max = f32::NEG_INFINITY;
        let mut running_denom = 0.0f32;
        let mut acc = vec![0.0f32; v.cols()];
        let mut any = false;
        let mut j0 = 0;
        while j0 < k.rows() {
            let j1 = (j0 + block).min(k.rows());
            // Block-local pass.
            let mut blk_max = f32::NEG_INFINITY;
            let mut blk: Vec<(usize, f32)> = Vec::new();
            for j in j0..j1 {
                if !mask.allows(qpos, j as u64) {
                    continue;
                }
                let mut s = 0.0f32;
                for c in 0..d {
                    s += q.get(i, c) * k.get(j, c);
                }
                let s = s * scale;
                blk_max = blk_max.max(s);
                blk.push((j, s));
            }
            if !blk.is_empty() {
                any = true;
                let new_max = running_max.max(blk_max);
                let rescale = if running_max.is_finite() {
                    (running_max - new_max).exp()
                } else {
                    0.0
                };
                running_denom *= rescale;
                for a in &mut acc {
                    *a *= rescale;
                }
                for &(j, s) in &blk {
                    let w = (s - new_max).exp();
                    running_denom += w;
                    for (c, a) in acc.iter_mut().enumerate() {
                        *a += w * v.get(j, c);
                    }
                }
                running_max = new_max;
            }
            j0 = j1;
        }
        assert!(any, "query {qpos} attends no keys under the mask");
        for (c, a) in acc.iter().enumerate() {
            out.set(i, c, a / running_denom);
        }
    }
    out
}

/// The zig-zag query ranges of rank `r` among `cp` ranks for `seq`
/// rows: chunks `r` and `2·cp − 1 − r` of `2·cp`.
///
/// # Panics
/// Panics unless `2·cp` divides `seq`.
pub fn zigzag_ranges(seq: usize, cp: usize, r: usize) -> [(usize, usize); 2] {
    assert!(cp > 0 && r < cp, "bad rank");
    let chunks = 2 * cp;
    assert!(seq.is_multiple_of(chunks), "seq must be divisible by 2·cp");
    let w = seq / chunks;
    [(r * w, (r + 1) * w), ((chunks - 1 - r) * w, (chunks - r) * w)]
}

/// All-gather CP attention: each of `cp` ranks computes
/// [`attention_direct`] over its zig-zag query chunks with the full
/// (gathered) K/V; outputs are reassembled in sequence order.
///
/// # Panics
/// Panics on dimension mismatches or if `2·cp` does not divide the
/// sequence length.
pub fn cp_allgather_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    mask: &MaskSpec,
    cp: usize,
) -> Matrix {
    let seq = q.rows();
    let mut out = Matrix::zeros(seq, v.cols());
    for r in 0..cp {
        for (lo, hi) in zigzag_ranges(seq, cp, r) {
            let q_shard = q.row_slice(lo, hi);
            let part = attention_direct(&q_shard, k, v, mask, lo as u64);
            for i in 0..part.rows() {
                for c in 0..part.cols() {
                    out.set(lo + i, c, part.get(i, c));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qkv(seq: usize, d: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        (
            Matrix::random(seq, d, 0.5, seed),
            Matrix::random(seq, d, 0.5, seed + 1),
            Matrix::random(seq, d, 0.5, seed + 2),
        )
    }

    #[test]
    fn full_mask_matches_manual_softmax_for_single_query() {
        let q = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let k = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let v = Matrix::from_vec(2, 1, vec![10.0, 20.0]);
        let out = attention_direct(&q, &k, &v, &MaskSpec::Full, 0);
        let s0 = 1.0 / (2f32).sqrt();
        let w0 = (0.0f32).exp(); // after max subtraction: s0 is max
        let w1 = (0.0 - s0).exp();
        let expect = (w0 * 10.0 + w1 * 20.0) / (w0 + w1);
        assert!((out.get(0, 0) - expect).abs() < 1e-6);
    }

    #[test]
    fn causal_first_token_attends_only_itself() {
        let (q, k, v) = qkv(8, 4, 1);
        let out = attention_direct(&q, &k, &v, &MaskSpec::Causal, 0);
        for c in 0..4 {
            assert_eq!(out.get(0, c), v.get(0, c));
        }
    }

    #[test]
    fn document_mask_blocks_cross_document_attention() {
        let (q, k, v) = qkv(8, 4, 2);
        let mask = MaskSpec::document(vec![4, 4]);
        let out = attention_direct(&q, &k, &v, &mask, 0);
        // Token 4 starts doc 2: attends only itself.
        for c in 0..4 {
            assert_eq!(out.get(4, c), v.get(4, c));
        }
        // And differs from the causal result for the same row.
        let causal = attention_direct(&q, &k, &v, &MaskSpec::Causal, 0);
        assert!(out.max_abs_diff(&causal) > 1e-4);
    }

    #[test]
    fn cp_allgather_is_bitwise_identical_to_single_gpu() {
        // The all-gather design's numerical selling point: sharding
        // queries does not change any row's arithmetic.
        let (q, k, v) = qkv(32, 8, 3);
        for mask in [
            MaskSpec::Causal,
            MaskSpec::document(vec![3, 3, 8, 2, 16]),
        ] {
            let single = attention_direct(&q, &k, &v, &mask, 0);
            for cp in [1usize, 2, 4, 8] {
                let sharded = cp_allgather_attention(&q, &k, &v, &mask, cp);
                assert!(
                    sharded.bitwise_eq(&single),
                    "cp={cp} mask={mask:?} not bitwise equal"
                );
            }
        }
    }

    #[test]
    fn blockwise_merge_is_order_induced_not_buggy() {
        // Ring-style merging changes bits but stays numerically close —
        // the benign half of the §6.2 dichotomy.
        let (q, k, v) = qkv(64, 8, 4);
        let direct = attention_direct(&q, &k, &v, &MaskSpec::Causal, 0);
        let blockwise = attention_blockwise(&q, &k, &v, &MaskSpec::Causal, 0, 16);
        assert!(!blockwise.bitwise_eq(&direct), "expected ulp-level gap");
        assert!(blockwise.max_rel_diff(&direct) < 1e-4);
    }

    #[test]
    fn blockwise_with_full_block_is_close_to_direct() {
        let (q, k, v) = qkv(16, 4, 5);
        let direct = attention_direct(&q, &k, &v, &MaskSpec::Causal, 0);
        let blockwise = attention_blockwise(&q, &k, &v, &MaskSpec::Causal, 0, 16);
        assert!(blockwise.max_rel_diff(&direct) < 1e-5);
    }

    #[test]
    fn zigzag_ranges_partition() {
        let mut covered = [false; 32];
        for r in 0..4 {
            for (lo, hi) in zigzag_ranges(32, 4, r) {
                for (i, c) in covered.iter_mut().enumerate().take(hi).skip(lo) {
                    assert!(!*c, "token {i} double-owned");
                    *c = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn q_offset_shards_match_full_computation() {
        let (q, k, v) = qkv(16, 4, 6);
        let full = attention_direct(&q, &k, &v, &MaskSpec::Causal, 0);
        let top = attention_direct(&q.row_slice(0, 8), &k, &v, &MaskSpec::Causal, 0);
        let bottom = attention_direct(&q.row_slice(8, 16), &k, &v, &MaskSpec::Causal, 8);
        assert!(Matrix::vstack(&[top, bottom]).bitwise_eq(&full));
    }

    #[test]
    #[should_panic(expected = "attends no keys")]
    fn empty_row_panics() {
        // A full-mask... use a doc mask where query 0 is fine but craft
        // an impossible case: Full mask with zero keys cannot happen, so
        // use a document mask query beyond... use causal with q_offset
        // such that mask.allows fails for all: impossible for causal.
        // Use Document with q in doc 2 but only doc-1 keys gathered is
        // not expressible here; instead trigger via an all-false custom
        // situation: Document mask where the query's doc starts after
        // the available keys.
        let q = Matrix::zeros(1, 2);
        let k = Matrix::zeros(2, 2);
        let v = Matrix::zeros(2, 2);
        // Query at global position 4 (doc 2 starting at 4), keys 0..2.
        let mask = MaskSpec::document(vec![4, 4]);
        attention_direct(&q, &k, &v, &mask, 4);
    }
}
