//! The §6.2 numerical-debugging methodology.
//!
//! "As parallelism splits computation into chunks and reduces partial
//! results, it cannot achieve bit-wise matching results as the
//! sequential version. To distinguish [numerical issues from
//! implementation bugs], we adopt an approach to split the sequential
//! version into the same accumulation order as the parallel one and
//! check for bit-wise exact matching."
//!
//! [`diagnose`] encodes that decision procedure over three artifacts:
//! the parallel implementation's output, a *matched-order sequential
//! reference* (sequential compute restructured to the parallel
//! accumulation order), and the plain monolithic sequential output.

use crate::tensor::Matrix;
use std::fmt;

/// Outcome of the §6.2 comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Diagnosis {
    /// Parallel output is bitwise equal even to the monolithic
    /// sequential version: nothing to explain.
    ExactMatch,
    /// Parallel output matches the matched-order reference bitwise but
    /// differs from the monolithic version: the gap is caused by
    /// accumulation order, not by a bug. Mitigate with higher-precision
    /// accumulation if the magnitude matters.
    OrderInducedGap {
        /// Largest relative deviation from the monolithic reference.
        max_rel: f32,
        /// Largest absolute deviation from the monolithic reference.
        max_abs: f32,
    },
    /// Parallel output does not even match the matched-order
    /// reference: the parallel implementation has a bug.
    LikelyBug {
        /// Largest relative deviation from the matched-order reference.
        max_rel: f32,
    },
}

impl Diagnosis {
    /// `true` when the implementation is exonerated (exact or
    /// order-induced).
    pub fn implementation_ok(self) -> bool {
        !matches!(self, Diagnosis::LikelyBug { .. })
    }
}

impl fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Diagnosis::ExactMatch => write!(f, "bitwise exact match"),
            Diagnosis::OrderInducedGap { max_rel, max_abs } => write!(
                f,
                "order-induced gap (max rel {max_rel:.3e}, max abs {max_abs:.3e}); implementation correct"
            ),
            Diagnosis::LikelyBug { max_rel } => write!(
                f,
                "MISMATCH vs matched-order reference (max rel {max_rel:.3e}); implementation bug likely"
            ),
        }
    }
}

/// Runs the §6.2 decision procedure.
///
/// # Panics
/// Panics on shape mismatches between the three matrices.
pub fn diagnose(
    parallel: &Matrix,
    matched_order_reference: &Matrix,
    monolithic_reference: &Matrix,
) -> Diagnosis {
    if !parallel.bitwise_eq(matched_order_reference) {
        return Diagnosis::LikelyBug {
            max_rel: parallel.max_rel_diff(matched_order_reference),
        };
    }
    if parallel.bitwise_eq(monolithic_reference) {
        Diagnosis::ExactMatch
    } else {
        Diagnosis::OrderInducedGap {
            max_rel: parallel.max_rel_diff(monolithic_reference),
            max_abs: parallel.max_abs_diff(monolithic_reference),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, gemm_k_split, gemm_matched_chunks, GemmPrecision};

    fn setup() -> (Matrix, Matrix) {
        (
            Matrix::random(8, 96, 1.0, 50),
            Matrix::random(96, 8, 1.0, 51),
        )
    }

    /// Emulates a correct "TP" GEMM: per-rank K-chunks reduced in rank
    /// order.
    fn parallel_gemm(a: &Matrix, b: &Matrix, ranks: usize) -> Matrix {
        gemm_k_split(a, b, ranks, GemmPrecision::Bf16InputsFp32Acc)
            .into_iter()
            .reduce(|acc, p| acc.add(&p))
            .expect("ranks > 0")
    }

    /// Emulates a buggy "TP" GEMM: one rank drops its last K column.
    fn buggy_parallel_gemm(a: &Matrix, b: &Matrix, ranks: usize) -> Matrix {
        let mut parts = gemm_k_split(a, b, ranks, GemmPrecision::Bf16InputsFp32Acc);
        // Re-compute rank 0's chunk with an off-by-one K range.
        let k = a.cols();
        let chunk = k / ranks;
        parts[0] = crate::gemm::gemm_k_range(a, b, 0, chunk - 1, GemmPrecision::Bf16InputsFp32Acc);
        parts
            .into_iter()
            .reduce(|acc, p| acc.add(&p))
            .expect("ranks > 0")
    }

    #[test]
    fn correct_parallel_is_exonerated_as_order_induced() {
        let (a, b) = setup();
        let parallel = parallel_gemm(&a, &b, 4);
        let matched = gemm_matched_chunks(&a, &b, 4, GemmPrecision::Bf16InputsFp32Acc);
        let mono = gemm(&a, &b, GemmPrecision::Bf16InputsFp32Acc);
        let d = diagnose(&parallel, &matched, &mono);
        match d {
            Diagnosis::OrderInducedGap { max_rel, .. } => {
                assert!(max_rel < 1e-4, "gap too large: {max_rel}");
            }
            other => panic!("expected order-induced, got {other}"),
        }
        assert!(d.implementation_ok());
    }

    #[test]
    fn buggy_parallel_is_flagged() {
        let (a, b) = setup();
        let parallel = buggy_parallel_gemm(&a, &b, 4);
        let matched = gemm_matched_chunks(&a, &b, 4, GemmPrecision::Bf16InputsFp32Acc);
        let mono = gemm(&a, &b, GemmPrecision::Bf16InputsFp32Acc);
        let d = diagnose(&parallel, &matched, &mono);
        assert!(matches!(d, Diagnosis::LikelyBug { .. }), "got {d}");
        assert!(!d.implementation_ok());
    }

    #[test]
    fn identical_computation_is_exact() {
        let (a, b) = setup();
        let x = gemm(&a, &b, GemmPrecision::Fp32);
        let d = diagnose(&x, &x.clone(), &x.clone());
        assert_eq!(d, Diagnosis::ExactMatch);
    }

    #[test]
    fn display_is_informative() {
        assert!(Diagnosis::ExactMatch.to_string().contains("exact"));
        assert!(Diagnosis::LikelyBug { max_rel: 0.5 }
            .to_string()
            .contains("bug"));
        assert!(Diagnosis::OrderInducedGap {
            max_rel: 1e-7,
            max_abs: 1e-6
        }
        .to_string()
        .contains("order-induced"));
    }
}
