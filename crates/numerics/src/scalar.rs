//! The [`Scalar`] abstraction: one set of cost expressions, two
//! number types.
//!
//! The analytic α–β/roofline/bubble cost model is closed-form real
//! arithmetic. Writing it once, generic over `Scalar`, lets the same
//! code price a configuration in plain `f64` (the exhaustive search
//! path — bit-identical to hand-written float arithmetic, since every
//! trait method on `f64` forwards to the corresponding intrinsic) and
//! in [`crate::dual::Dual`] forward-mode dual numbers (the guided
//! search path, which descends the model's gradient).
//!
//! Design constraints:
//!
//! * `f64` must incur **zero** abstraction cost: every operation maps
//!   1:1 onto the primitive, so refactoring an existing expression
//!   through `Scalar` cannot change its bits.
//! * Non-smooth points are explicit: [`Scalar::max`]/[`Scalar::min`]
//!   are the hard kinks of the roofline model (derivatives follow the
//!   active branch), while [`Scalar::smooth_max`]/[`Scalar::smooth_min`]
//!   are the log-sum-exp relaxations gradient descent needs.

/// A real-number type the cost expressions are generic over.
///
/// Implemented by `f64` (values only) and [`crate::dual::Dual`]
/// (values plus partial derivatives).
pub trait Scalar:
    Copy
    + core::fmt::Debug
    + PartialEq
    + PartialOrd
    + core::ops::Add<Output = Self>
    + core::ops::Sub<Output = Self>
    + core::ops::Mul<Output = Self>
    + core::ops::Div<Output = Self>
    + core::ops::Neg<Output = Self>
{
    /// Lifts a literal constant (zero derivative) into the type.
    fn lit(v: f64) -> Self;

    /// The primal value (derivatives, if any, are dropped).
    fn value(self) -> f64;

    /// Natural logarithm.
    fn ln(self) -> Self;

    /// Natural exponential.
    fn exp(self) -> Self;

    /// Raises to a *constant* power.
    fn powf(self, e: f64) -> Self;

    /// Square root.
    fn sqrt(self) -> Self;

    /// Base-2 exponential, `2^self`. One shared definition
    /// (`exp(self·ln 2)`) so `f64` and dual evaluations agree exactly
    /// on the primal value.
    fn exp2(self) -> Self {
        (self * Self::lit(core::f64::consts::LN_2)).exp()
    }

    /// Base-2 logarithm, defined as `ln(self)/ln 2` for the same
    /// cross-type agreement as [`Scalar::exp2`].
    fn log2(self) -> Self {
        self.ln() / Self::lit(core::f64::consts::LN_2)
    }

    /// Hard maximum by primal value. The derivative (when present)
    /// follows the winning branch — the roofline kink.
    fn max(self, o: Self) -> Self {
        if self.value() >= o.value() {
            self
        } else {
            o
        }
    }

    /// Hard minimum by primal value.
    fn min(self, o: Self) -> Self {
        if self.value() <= o.value() {
            self
        } else {
            o
        }
    }

    /// Log-sum-exp smooth maximum with sharpness `beta > 0`:
    /// `max(a,b) + ln(e^{β(a−max)} + e^{β(b−max)})/β`. Pivoting on the
    /// hard max keeps the exponentials ≤ 1 (no overflow) and still
    /// yields the exact smooth gradient `σ(β(a−b))`. Approaches the
    /// hard max from above as `beta → ∞`.
    fn smooth_max(self, o: Self, beta: f64) -> Self {
        let b = Self::lit(beta);
        let m = self.max(o);
        m + ((b * (self - m)).exp() + (b * (o - m)).exp()).ln() / b
    }

    /// Log-sum-exp smooth minimum (the negated dual of
    /// [`Scalar::smooth_max`]); approaches the hard min from below.
    fn smooth_min(self, o: Self, beta: f64) -> Self {
        -((-self).smooth_max(-o, beta))
    }
}

impl Scalar for f64 {
    #[inline(always)]
    fn lit(v: f64) -> f64 {
        v
    }

    #[inline(always)]
    fn value(self) -> f64 {
        self
    }

    #[inline(always)]
    fn ln(self) -> f64 {
        f64::ln(self)
    }

    #[inline(always)]
    fn exp(self) -> f64 {
        f64::exp(self)
    }

    #[inline(always)]
    fn powf(self, e: f64) -> f64 {
        f64::powf(self, e)
    }

    #[inline(always)]
    fn sqrt(self) -> f64 {
        f64::sqrt(self)
    }

    // `f64::max`/`min` agree with the trait defaults on every non-NaN
    // input; forwarding to the intrinsics keeps rerouted call sites
    // bit-identical to the code they replaced.
    #[inline(always)]
    fn max(self, o: f64) -> f64 {
        f64::max(self, o)
    }

    #[inline(always)]
    fn min(self, o: f64) -> f64 {
        f64::min(self, o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_forwards_to_intrinsics() {
        assert_eq!(<f64 as Scalar>::lit(2.5), 2.5);
        assert_eq!(Scalar::value(3.0f64), 3.0);
        assert_eq!(Scalar::ln(2.0f64), f64::ln(2.0));
        assert_eq!(Scalar::exp(1.5f64), f64::exp(1.5));
        assert_eq!(Scalar::powf(3.0f64, 2.5), f64::powf(3.0, 2.5));
        assert_eq!(Scalar::sqrt(7.0f64), f64::sqrt(7.0));
        assert_eq!(Scalar::max(1.0f64, 2.0), 2.0);
        assert_eq!(Scalar::min(1.0f64, 2.0), 1.0);
    }

    #[test]
    fn exp2_log2_round_trip() {
        for x in [0.0f64, 1.0, 3.5, 10.25] {
            let y = Scalar::exp2(x);
            assert!((Scalar::log2(y) - x).abs() < 1e-12, "{x}");
        }
    }

    #[test]
    fn smooth_max_brackets_the_hard_max() {
        for (a, b) in [(1.0f64, 2.0), (5.0, 4.9), (-3.0, -3.0)] {
            for beta in [1.0, 8.0, 64.0] {
                let s = a.smooth_max(b, beta);
                let h = f64::max(a, b);
                assert!(s >= h, "smooth {s} < hard {h}");
                assert!(s - h <= core::f64::consts::LN_2 / beta + 1e-12);
            }
        }
    }

    #[test]
    fn smooth_min_brackets_the_hard_min() {
        let s = 3.0f64.smooth_min(3.2, 16.0);
        assert!(s <= 3.0 && 3.0 - s <= core::f64::consts::LN_2 / 16.0 + 1e-12);
    }

    #[test]
    fn smooth_extrema_converge_with_sharpness() {
        let loose = 1.0f64.smooth_max(1.1, 2.0) - 1.1;
        let tight = 1.0f64.smooth_max(1.1, 200.0) - 1.1;
        assert!(tight < loose);
        assert!(tight < 1e-9);
    }
}
