//! Property tests for the numerics substrate.

use llm_model::masks::MaskSpec;
use numerics::attention::{attention_direct, cp_allgather_attention};
use numerics::bf16::Bf16;
use numerics::costs::{
    attention_pair_flops, bubble_ratio, kernel_busy_s, linear_shard, ring_transfer_s,
    tflops_per_gpu, transfer_s,
};
use numerics::dual::Dual;
use numerics::gemm::{gemm, gemm_k_split, gemm_matched_chunks, GemmPrecision};
use numerics::reduce::{reduce, reduce_exact, ReduceOrder, ReducePrecision};
use numerics::tensor::Matrix;
use proptest::prelude::*;

/// Checks every Dual partial of an `N`-ary cost expression against a
/// central finite difference of its `f64` evaluation, to 1e-6 relative.
fn partials_match_fd<const N: usize>(
    dual_f: impl Fn([Dual<N>; N]) -> Dual<N>,
    float_f: impl Fn([f64; N]) -> f64,
    x: [f64; N],
) -> Result<(), TestCaseError> {
    let out = dual_f(std::array::from_fn(|i| Dual::var(x[i], i)));
    prop_assert!(out.v.is_finite(), "non-finite value at {x:?}");
    for i in 0..N {
        let h = (x[i].abs() * 3e-4).max(1e-7);
        let mut hi = x;
        hi[i] += h;
        let mut lo = x;
        lo[i] -= h;
        let fd = (float_f(hi) - float_f(lo)) / (2.0 * h);
        // Scale by the largest of: both derivative estimates, the
        // value's own magnitude (partials near a cancellation are
        // meaningless below the value's noise floor), and 1.
        let scale = out.d[i].abs().max(fd.abs()).max(1e-6 * out.v.abs()).max(1.0);
        prop_assert!(
            (out.d[i] - fd).abs() <= 1e-6 * scale,
            "∂/∂x{i} at {x:?}: dual {} vs fd {fd}",
            out.d[i]
        );
    }
    Ok(())
}

proptest! {
    /// Every cost-expression partial produced by forward-mode duals
    /// matches a central finite difference of the f64 evaluation to
    /// 1e-6 relative, over inputs spanning six orders of magnitude —
    /// the guarantee that lets the guided search trust its gradients.
    #[test]
    fn cost_partials_match_finite_differences(
        la in -2.0f64..7.0,
        lb in -2.0f64..7.0,
        lc in 0.1f64..3.0,
        ld in 0.1f64..3.0,
    ) {
        let (a, b) = (10f64.powf(la), 10f64.powf(lb));
        let (c, d) = (10f64.powf(lc), 10f64.powf(ld));
        partials_match_fd(|[x, w]| transfer_s(x, w), |[x, w]| transfer_s(x, w), [a, b])?;
        partials_match_fd(
            |[s, x, w]| ring_transfer_s(s, x, w),
            |[s, x, w]| ring_transfer_s(s, x, w),
            [c, a, b],
        )?;
        partials_match_fd(|[x, n]| linear_shard(x, n), |[x, n]| linear_shard(x, n), [a, c])?;
        partials_match_fd(
            |[p, n, v]| bubble_ratio(p, n, v),
            |[p, n, v]| bubble_ratio(p, n, v),
            [c, d, 1.0f64.max(c / 2.0)],
        )?;
        partials_match_fd(
            |[f, t, g]| tflops_per_gpu(f, t, g),
            |[f, t, g]| tflops_per_gpu(f, t, g),
            [a * 1e9, b.max(1e-3), c],
        )?;
        partials_match_fd(
            |[k, hd, nh, pr]| attention_pair_flops(k, hd, nh, pr),
            |[k, hd, nh, pr]| attention_pair_flops(k, hd, nh, pr),
            [c, d * 32.0, c * 4.0, a],
        )?;
    }

    /// The roofline max() is piecewise-smooth: away from the kink where
    /// the compute and memory branches cross, dual partials must match
    /// finite differences exactly like any other expression.
    #[test]
    fn kernel_busy_partials_match_fd_away_from_the_roofline_kink(
        lf in 6.0f64..15.0,
        le in 12.0f64..15.0,
        lby in 3.0f64..12.0,
        lbw in 10.0f64..13.0,
    ) {
        let (flops, eff) = (10f64.powf(lf), 10f64.powf(le));
        let (bytes, bw) = (10f64.powf(lby), 10f64.powf(lbw));
        let compute = flops / eff;
        let mem = bytes / bw;
        // Skip draws that land on the kink itself (the vendored
        // proptest has no prop_assume; the kink set has measure zero).
        if (compute - mem).abs() > 1e-2 * compute.max(mem) {
            partials_match_fd(
                |[f, e, by, w]| kernel_busy_s(f, e, by, w),
                |[f, e, by, w]| kernel_busy_s(f, e, by, w),
                [flops, eff, bytes, bw],
            )?;
        }
    }

    /// BF16 round-trip through f32 is idempotent (a BF16 value
    /// re-quantizes to itself), and quantization error is within half a
    /// ulp of the 8-bit significand.
    #[test]
    fn bf16_roundtrip_idempotent(v in -1e30f32..1e30) {
        let q = Bf16::from_f32(v);
        prop_assert_eq!(Bf16::from_f32(q.to_f32()).to_bits(), q.to_bits());
        if v.is_normal() && v.abs() > 1e-30 {
            let rel = ((q.to_f32() - v) / v).abs();
            prop_assert!(rel <= 1.0 / 256.0, "v={v}, rel={rel}");
        }
    }

    /// ulp distance is a symmetric pseudo-metric with identity.
    #[test]
    fn ulp_distance_metric(a in any::<u16>(), b in any::<u16>()) {
        let x = Bf16::from_bits(a);
        let y = Bf16::from_bits(b);
        prop_assert_eq!(x.ulp_distance(y), y.ulp_distance(x));
        prop_assert_eq!(x.ulp_distance(x), if x.to_f32().is_nan() { u16::MAX } else { 0 });
    }

    /// The matched-order reference is always bitwise equal to the
    /// rank-order partial-sum reduction — the §6.2 guarantee the
    /// methodology rests on — for every precision and chunk count.
    #[test]
    fn matched_order_always_bitwise(seed in 0u64..500, chunks in 1usize..8) {
        let a = Matrix::random(4, 32, 1.0, seed);
        let b = Matrix::random(32, 4, 1.0, seed + 1000);
        for p in [GemmPrecision::Fp32, GemmPrecision::Bf16InputsFp32Acc, GemmPrecision::Bf16All] {
            let parallel = gemm_k_split(&a, &b, chunks, p)
                .into_iter()
                .reduce(|acc, x| acc.add(&x))
                .unwrap();
            let matched = gemm_matched_chunks(&a, &b, chunks, p);
            prop_assert!(parallel.bitwise_eq(&matched));
        }
    }

    /// Chunked GEMMs stay numerically close to the monolithic result.
    #[test]
    fn chunking_error_is_bounded(seed in 0u64..200, chunks in 2usize..8) {
        let a = Matrix::random(4, 64, 1.0, seed);
        let b = Matrix::random(64, 4, 1.0, seed + 31);
        let mono = gemm(&a, &b, GemmPrecision::Fp32);
        let chunked = gemm_matched_chunks(&a, &b, chunks, GemmPrecision::Fp32);
        prop_assert!(chunked.max_abs_diff(&mono) < 1e-3);
    }

    /// All reduction orders/precisions stay within BF16-scale error of
    /// the f64 oracle, and FP32 is never worse than BF16.
    #[test]
    fn reduction_error_ordering(n in 2usize..24, seed in 0u64..100) {
        let parts: Vec<Matrix> = (0..n).map(|i| Matrix::random(4, 4, 1.0, seed + i as u64)).collect();
        let oracle = reduce_exact(&parts);
        for order in [ReduceOrder::Sequential, ReduceOrder::Tree] {
            let f32r = reduce(&parts, order, ReducePrecision::Fp32);
            let bf16r = reduce(&parts, order, ReducePrecision::Bf16);
            prop_assert!(f32r.max_abs_diff(&oracle) <= bf16r.max_abs_diff(&oracle) + 1e-6);
        }
    }

    /// All-gather CP attention is bitwise-identical to single-GPU for
    /// arbitrary document packings and CP degrees.
    #[test]
    fn cp_attention_bitwise_for_any_packing(
        seed in 0u64..100,
        cp_pow in 0u32..3,
        lens_seed in prop::collection::vec(1u64..16, 1..6),
    ) {
        let cp = 1usize << cp_pow;
        // Make seq divisible by 2·cp by padding the last doc.
        let chunks = 2 * cp as u64;
        let raw: u64 = lens_seed.iter().sum();
        let seq = raw.div_ceil(chunks) * chunks;
        let mut lens = lens_seed.clone();
        if seq > raw {
            lens.push(seq - raw);
        }
        let mask = MaskSpec::document(lens);
        let q = Matrix::random(seq as usize, 8, 0.5, seed);
        let k = Matrix::random(seq as usize, 8, 0.5, seed + 1);
        let v = Matrix::random(seq as usize, 8, 0.5, seed + 2);
        let single = attention_direct(&q, &k, &v, &mask, 0);
        let sharded = cp_allgather_attention(&q, &k, &v, &mask, cp);
        prop_assert!(sharded.bitwise_eq(&single));
    }
}
