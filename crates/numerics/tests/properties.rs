//! Property tests for the numerics substrate.

use llm_model::masks::MaskSpec;
use numerics::attention::{attention_direct, cp_allgather_attention};
use numerics::bf16::Bf16;
use numerics::gemm::{gemm, gemm_k_split, gemm_matched_chunks, GemmPrecision};
use numerics::reduce::{reduce, reduce_exact, ReduceOrder, ReducePrecision};
use numerics::tensor::Matrix;
use proptest::prelude::*;

proptest! {
    /// BF16 round-trip through f32 is idempotent (a BF16 value
    /// re-quantizes to itself), and quantization error is within half a
    /// ulp of the 8-bit significand.
    #[test]
    fn bf16_roundtrip_idempotent(v in -1e30f32..1e30) {
        let q = Bf16::from_f32(v);
        prop_assert_eq!(Bf16::from_f32(q.to_f32()).to_bits(), q.to_bits());
        if v.is_normal() && v.abs() > 1e-30 {
            let rel = ((q.to_f32() - v) / v).abs();
            prop_assert!(rel <= 1.0 / 256.0, "v={v}, rel={rel}");
        }
    }

    /// ulp distance is a symmetric pseudo-metric with identity.
    #[test]
    fn ulp_distance_metric(a in any::<u16>(), b in any::<u16>()) {
        let x = Bf16::from_bits(a);
        let y = Bf16::from_bits(b);
        prop_assert_eq!(x.ulp_distance(y), y.ulp_distance(x));
        prop_assert_eq!(x.ulp_distance(x), if x.to_f32().is_nan() { u16::MAX } else { 0 });
    }

    /// The matched-order reference is always bitwise equal to the
    /// rank-order partial-sum reduction — the §6.2 guarantee the
    /// methodology rests on — for every precision and chunk count.
    #[test]
    fn matched_order_always_bitwise(seed in 0u64..500, chunks in 1usize..8) {
        let a = Matrix::random(4, 32, 1.0, seed);
        let b = Matrix::random(32, 4, 1.0, seed + 1000);
        for p in [GemmPrecision::Fp32, GemmPrecision::Bf16InputsFp32Acc, GemmPrecision::Bf16All] {
            let parallel = gemm_k_split(&a, &b, chunks, p)
                .into_iter()
                .reduce(|acc, x| acc.add(&x))
                .unwrap();
            let matched = gemm_matched_chunks(&a, &b, chunks, p);
            prop_assert!(parallel.bitwise_eq(&matched));
        }
    }

    /// Chunked GEMMs stay numerically close to the monolithic result.
    #[test]
    fn chunking_error_is_bounded(seed in 0u64..200, chunks in 2usize..8) {
        let a = Matrix::random(4, 64, 1.0, seed);
        let b = Matrix::random(64, 4, 1.0, seed + 31);
        let mono = gemm(&a, &b, GemmPrecision::Fp32);
        let chunked = gemm_matched_chunks(&a, &b, chunks, GemmPrecision::Fp32);
        prop_assert!(chunked.max_abs_diff(&mono) < 1e-3);
    }

    /// All reduction orders/precisions stay within BF16-scale error of
    /// the f64 oracle, and FP32 is never worse than BF16.
    #[test]
    fn reduction_error_ordering(n in 2usize..24, seed in 0u64..100) {
        let parts: Vec<Matrix> = (0..n).map(|i| Matrix::random(4, 4, 1.0, seed + i as u64)).collect();
        let oracle = reduce_exact(&parts);
        for order in [ReduceOrder::Sequential, ReduceOrder::Tree] {
            let f32r = reduce(&parts, order, ReducePrecision::Fp32);
            let bf16r = reduce(&parts, order, ReducePrecision::Bf16);
            prop_assert!(f32r.max_abs_diff(&oracle) <= bf16r.max_abs_diff(&oracle) + 1e-6);
        }
    }

    /// All-gather CP attention is bitwise-identical to single-GPU for
    /// arbitrary document packings and CP degrees.
    #[test]
    fn cp_attention_bitwise_for_any_packing(
        seed in 0u64..100,
        cp_pow in 0u32..3,
        lens_seed in prop::collection::vec(1u64..16, 1..6),
    ) {
        let cp = 1usize << cp_pow;
        // Make seq divisible by 2·cp by padding the last doc.
        let chunks = 2 * cp as u64;
        let raw: u64 = lens_seed.iter().sum();
        let seq = raw.div_ceil(chunks) * chunks;
        let mut lens = lens_seed.clone();
        if seq > raw {
            lens.push(seq - raw);
        }
        let mask = MaskSpec::document(lens);
        let q = Matrix::random(seq as usize, 8, 0.5, seed);
        let k = Matrix::random(seq as usize, 8, 0.5, seed + 1);
        let v = Matrix::random(seq as usize, 8, 0.5, seed + 2);
        let single = attention_direct(&q, &k, &v, &mask, 0);
        let sharded = cp_allgather_attention(&q, &k, &v, &mask, cp);
        prop_assert!(sharded.bitwise_eq(&single));
    }
}
