//! Property tests for collective cost models.

use cluster_model::topology::TopologySpec;
use collectives::{Algorithm, CommCostModel, ProcessGroup};
use proptest::prelude::*;

fn model(alg: Algorithm) -> CommCostModel {
    CommCostModel::new(TopologySpec::llama3_production(64)).with_algorithm(alg)
}

proptest! {
    /// Collective cost is monotone in message size.
    #[test]
    fn cost_monotone_in_bytes(
        n in 2u32..16,
        bytes in 1u64..(1 << 28),
    ) {
        let m = model(Algorithm::Ring);
        let g = ProcessGroup::contiguous(0, n);
        let t1 = m.all_gather(&g, bytes);
        let t2 = m.all_gather(&g, bytes * 2);
        prop_assert!(t2 >= t1);
        prop_assert!(m.all_reduce(&g, bytes * 2) >= m.all_reduce(&g, bytes));
        prop_assert!(m.broadcast(&g, bytes * 2) >= m.broadcast(&g, bytes));
    }

    /// Intra-node groups are never slower than node-strided groups of
    /// the same size and payload.
    #[test]
    fn nvlink_never_slower(n in 2u32..9, bytes in 1u64..(1 << 26)) {
        for alg in [Algorithm::Ring, Algorithm::Hierarchical] {
            let m = model(alg);
            let intra = ProcessGroup::contiguous(0, n);
            let inter = ProcessGroup::strided(0, n, 8);
            prop_assert!(m.all_gather(&intra, bytes) <= m.all_gather(&inter, bytes));
        }
    }

    /// The hierarchical algorithm never loses to the flat ring on
    /// rectangular multi-node groups.
    #[test]
    fn hierarchical_never_worse_on_rectangular_groups(
        nodes in 2u32..8,
        per_node in 2u32..9,
        bytes in 1024u64..(1 << 24),
    ) {
        let size = nodes * per_node;
        // Contiguous group covering exactly `nodes` nodes needs
        // per_node == 8; build with stride mapping instead: take the
        // first `per_node` GPUs of each node.
        let mut ranks = Vec::new();
        for node in 0..nodes {
            for g in 0..per_node {
                ranks.push(cluster_model::GlobalRank(node * 8 + g));
            }
        }
        let group = ProcessGroup::new(ranks);
        prop_assert_eq!(group.len() as u32, size);
        let flat = model(Algorithm::Ring).all_gather(&group, bytes);
        let hier = model(Algorithm::Hierarchical).all_gather(&group, bytes);
        prop_assert!(hier <= flat, "hier {hier} vs flat {flat}");
    }

    /// Ring edges always form a single cycle covering the group.
    #[test]
    fn ring_edges_form_a_cycle(start in 0u32..64, n in 2u32..32) {
        let g = ProcessGroup::contiguous(start, n);
        let edges: Vec<_> = g.ring_edges().collect();
        prop_assert_eq!(edges.len() as u32, n);
        // Every rank appears exactly once as a source and once as a
        // destination.
        let mut sources: Vec<u32> = edges.iter().map(|(a, _)| a.0).collect();
        let mut dests: Vec<u32> = edges.iter().map(|(_, b)| b.0).collect();
        sources.sort_unstable();
        dests.sort_unstable();
        let expected: Vec<u32> = (start..start + n).collect();
        prop_assert_eq!(sources, expected.clone());
        prop_assert_eq!(dests, expected);
    }
}
