//! A sharded, process-wide concurrent memo table.
//!
//! The simulator's memo layers (collective costs here, pre-flight
//! verdicts in `parallelism_core::search`) started life thread-local:
//! each sweep worker warmed a private table, and a concurrent server
//! re-priced identical group shapes once per connection thread. This
//! module is the shared replacement: a `HashMap` split over `N`
//! [`RwLock`] shards (readers never contend with each other; writers
//! contend only within one shard) plus hit/miss counters so cache
//! effectiveness is observable from the `stats` query and the serve
//! benchmark.
//!
//! Values must be cheap to clone (the cached types are `Copy`-sized:
//! durations, booleans) and lookups must be *pure* with respect to the
//! key — two threads racing to insert the same key must compute the
//! same value, so the losing insert is harmless. Every memo layer in
//! the repo satisfies this by construction (keys carry every input of
//! the computation, floats by bit pattern).

use interleave::sync::{read_or_recover, write_or_recover, AtomicU64, RwLock};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::Ordering;

/// Observable state of one memo layer: lifetime hit/miss counters and
/// the current entry count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that missed (the caller computed and inserted).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over total lookups, `0.0` when the cache was never queried.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Number of shards. A power of two comfortably above the machine's
/// core count keeps writer contention negligible without bloating the
/// table.
const SHARDS: usize = 32;

/// A concurrent map sharded over [`SHARDS`] `RwLock`-protected
/// `HashMap`s, with hit/miss accounting.
#[derive(Debug)]
pub struct ShardedCache<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash, V: Clone> Default for ShardedCache<K, V> {
    fn default() -> Self {
        ShardedCache::new()
    }
}

impl<K: Eq + Hash, V: Clone> ShardedCache<K, V> {
    /// An empty cache.
    pub fn new() -> ShardedCache<K, V> {
        ShardedCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        let h = self.hasher.hash_one(key);
        &self.shards[(h as usize) % SHARDS]
    }

    /// Looks `key` up, counting the hit or miss.
    pub fn get(&self, key: &K) -> Option<V> {
        // A panic on another thread must not wedge the daemon: every
        // lock in this module recovers from poisoning (sound because
        // each map operation is a single atomic statement; see the
        // `interleave::sync` module docs).
        let hit = read_or_recover(self.shard(key)).get(key).cloned();
        match hit {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `key → value`. Racing inserts of the same key are
    /// harmless when lookups are pure (both threads computed the same
    /// value).
    pub fn insert(&self, key: K, value: V) {
        write_or_recover(self.shard(&key)).insert(key, value);
    }

    /// Looks `key` up; on a miss, computes the value with `compute`,
    /// inserts it and returns it. `compute` runs outside any lock, so
    /// concurrent missers may compute redundantly but never deadlock —
    /// request-level coalescing is the server's job, not the cache's.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        if let Some(v) = self.get(&key) {
            return v;
        }
        let v = compute();
        self.insert(key, v.clone());
        v
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|shard| read_or_recover(shard).len()).sum()
    }

    /// `true` when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empties every shard (counters are preserved; see
    /// [`ShardedCache::reset_stats`]).
    pub fn clear(&self) {
        for shard in &self.shards {
            write_or_recover(shard).clear();
        }
    }

    /// Zeroes the hit/miss counters.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// A snapshot of the counters and entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn get_insert_and_stats_account_correctly() {
        let c: ShardedCache<u64, u64> = ShardedCache::new();
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        c.insert(1, 10);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get_or_insert_with(2, || 20), 20);
        assert_eq!(c.get_or_insert_with(2, || unreachable!()), 20);
        let s = c.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.hits, 2); // get(&1) after insert + the memoized get_or_insert
        assert_eq!(s.misses, 2); // the first get(&1) + the first get_or_insert probe
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        c.clear();
        assert!(c.is_empty());
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats { hits: 0, misses: 0, entries: 0 });
    }

    #[test]
    fn concurrent_readers_and_writers_agree() {
        let c: ShardedCache<u64, u64> = ShardedCache::new();
        let threads = 8u64;
        let barrier = Barrier::new(threads as usize);
        std::thread::scope(|s| {
            for t in 0..threads {
                let c = &c;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    for k in 0..256u64 {
                        // Pure: every thread computes the same value.
                        let v = c.get_or_insert_with(k, || k * k);
                        assert_eq!(v, k * k, "thread {t} saw a torn value");
                    }
                });
            }
        });
        assert_eq!(c.len(), 256);
        let s = c.stats();
        assert!(s.hits > 0, "{s:?}");
        assert!(s.misses >= 256, "{s:?}");
    }

    #[test]
    fn empty_cache_hit_rate_is_zero() {
        let c: ShardedCache<u8, u8> = ShardedCache::new();
        assert_eq!(c.stats().hit_rate(), 0.0);
    }
}
