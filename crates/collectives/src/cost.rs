//! α–β cost models for collectives.
//!
//! Each collective is priced for a specific [`ProcessGroup`] on a
//! specific [`TopologySpec`] using ring algorithms: `(n−1)` steps, each
//! step moving one chunk across every ring edge simultaneously, gated by
//! the slowest edge. This matches NCCL's default ring behaviour closely
//! enough to reproduce the paper's comparisons (§5.2's ordering argument
//! and §7.2's achieved all-gather bandwidths).
//!
//! A hierarchical variant prices node-aware algorithms (intra-node ring
//! at NVLink speed, inter-node ring at NIC speed) used by FSDP when its
//! group spans many nodes.

use crate::group::{GroupShape, ProcessGroup};
use crate::sharded::{CacheStats, ShardedCache};
use cluster_model::topology::{GlobalRank, TopologySpec};
use numerics::costs::{ring_transfer_s, transfer_s};
use sim_engine::time::SimDuration;
use std::sync::LazyLock;

/// Which algorithm family prices a collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Flat ring over the group order.
    Ring,
    /// Node-aware: intra-node phase at NVLink speed, inter-node phase at
    /// NIC speed. Falls back to ring for intra-node groups.
    Hierarchical,
}

/// Collective kind discriminant inside a [`CacheKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum OpKind {
    AllGather,
    Broadcast,
}

/// Everything a priced collective depends on besides the group members:
/// topology constants, protocol parameters, and algorithm family.
/// Floats are keyed by bit pattern — the cache must only ever hit on
/// *exactly* the configuration that produced the entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ModelSig {
    gpus_per_node: u32,
    nodes_per_leaf: u32,
    num_nodes: u32,
    nvlink_bandwidth: u64,
    nvlink_latency_ns: u64,
    nic_bandwidth: u64,
    net_latency_ns: u64,
    spine_oversubscription: u64,
    launch_overhead_ns: u64,
    bandwidth_efficiency: u64,
    algorithm: Algorithm,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    model: ModelSig,
    op: OpKind,
    group: GroupShape,
    bytes: u64,
}

/// Memoized collective costs, shared by every thread in the process.
/// Originally thread-local (each sweep worker warmed a private table);
/// promoted to a sharded concurrent cache so server connection threads
/// and planner sweeps share one warm table. Pricing is pure per key
/// (the key carries every model input, floats by bit pattern), so
/// cross-thread sharing cannot change a single priced bit.
static COST_CACHE: LazyLock<ShardedCache<CacheKey, SimDuration>> =
    LazyLock::new(ShardedCache::new);

/// Empties the process-wide collective cost cache.
pub fn clear_cost_cache() {
    COST_CACHE.clear();
}

/// Number of entries in the process-wide collective cost cache.
pub fn cost_cache_len() -> usize {
    COST_CACHE.len()
}

/// Hit/miss counters and entry count of the process-wide collective
/// cost cache.
pub fn cost_cache_stats() -> CacheStats {
    COST_CACHE.stats()
}

/// Prices collectives on a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct CommCostModel {
    topo: TopologySpec,
    /// Fixed software cost to enqueue one collective (CPU + NCCL
    /// bookkeeping), paid once per call.
    pub launch_overhead: SimDuration,
    /// Fraction of the wire bandwidth a well-pipelined collective
    /// sustains (protocol efficiency).
    pub bandwidth_efficiency: f64,
    algorithm: Algorithm,
    caching: bool,
}

impl CommCostModel {
    /// Creates a cost model with production-like defaults: 8 µs launch
    /// overhead, 80 % protocol efficiency, hierarchical algorithms.
    pub fn new(topo: TopologySpec) -> CommCostModel {
        CommCostModel {
            topo,
            launch_overhead: SimDuration::from_micros(8),
            bandwidth_efficiency: 0.8,
            algorithm: Algorithm::Hierarchical,
            caching: true,
        }
    }

    /// Overrides the algorithm family.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> CommCostModel {
        self.algorithm = algorithm;
        self
    }

    /// Enables or disables collective cost memoization (on by default).
    /// Cached and uncached pricing are bit-identical; disabling only
    /// matters for benchmarking the uncached path.
    pub fn with_caching(mut self, caching: bool) -> CommCostModel {
        self.caching = caching;
        self
    }

    fn sig(&self) -> ModelSig {
        ModelSig {
            gpus_per_node: self.topo.gpus_per_node,
            nodes_per_leaf: self.topo.nodes_per_leaf,
            num_nodes: self.topo.num_nodes,
            nvlink_bandwidth: self.topo.nvlink_bandwidth.to_bits(),
            nvlink_latency_ns: self.topo.nvlink_latency.as_nanos(),
            nic_bandwidth: self.topo.nic_bandwidth.to_bits(),
            net_latency_ns: self.topo.net_latency.as_nanos(),
            spine_oversubscription: self.topo.spine_oversubscription.to_bits(),
            launch_overhead_ns: self.launch_overhead.as_nanos(),
            bandwidth_efficiency: self.bandwidth_efficiency.to_bits(),
            algorithm: self.algorithm,
        }
    }

    /// Looks up `(op, group, bytes)` under this model's signature, or
    /// prices it with `compute` and remembers the result.
    fn cached(
        &self,
        op: OpKind,
        group: &ProcessGroup,
        bytes: u64,
        compute: impl FnOnce() -> SimDuration,
    ) -> SimDuration {
        if !self.caching {
            return compute();
        }
        let leaf_ranks = self.topo.gpus_per_node * self.topo.nodes_per_leaf;
        let key = CacheKey {
            model: self.sig(),
            op,
            group: group.shape(leaf_ranks),
            bytes,
        };
        COST_CACHE.get_or_insert_with(key, compute)
    }

    /// The underlying topology.
    pub fn topology(&self) -> &TopologySpec {
        &self.topo
    }

    /// Slowest p2p bandwidth along the group's ring edges, after
    /// protocol efficiency. `None` for singleton groups.
    fn ring_bottleneck(&self, group: &ProcessGroup) -> Option<(f64, SimDuration)> {
        group
            .ring_edges()
            .map(|(a, b)| (self.topo.p2p_bandwidth(a, b), self.topo.p2p_latency(a, b)))
            .fold(None, |acc, (bw, lat)| match acc {
                None => Some((bw, lat)),
                Some((abw, alat)) => Some((abw.min(bw), alat.max(lat))),
            })
            .map(|(bw, lat)| (bw * self.bandwidth_efficiency, lat))
    }

    /// Ring time for a per-step chunk of `chunk_bytes` over `steps`
    /// steps.
    fn ring_time(&self, group: &ProcessGroup, chunk_bytes: f64, steps: u64) -> SimDuration {
        let Some((bw, lat)) = self.ring_bottleneck(group) else {
            return SimDuration::ZERO;
        };
        let per_step = lat + SimDuration::from_secs_f64(transfer_s(chunk_bytes, bw));
        self.launch_overhead + per_step * steps
    }

    /// Splits the group into its node-major structure:
    /// `(ranks_per_node, node_count)` when perfectly rectangular.
    fn rectangular_split(&self, group: &ProcessGroup) -> Option<(u64, u64)> {
        let nodes = group.node_span(&self.topo) as u64;
        let n = group.len() as u64;
        if nodes > 1 && n.is_multiple_of(nodes) {
            Some((n / nodes, nodes))
        } else {
            None
        }
    }

    /// All-gather: every rank contributes `bytes_per_rank` and ends with
    /// `n × bytes_per_rank`.
    pub fn all_gather(&self, group: &ProcessGroup, bytes_per_rank: u64) -> SimDuration {
        let n = group.len() as u64;
        if n <= 1 {
            return SimDuration::ZERO;
        }
        self.cached(OpKind::AllGather, group, bytes_per_rank, || {
            self.all_gather_priced(group, bytes_per_rank)
        })
    }

    fn all_gather_priced(&self, group: &ProcessGroup, bytes_per_rank: u64) -> SimDuration {
        let n = group.len() as u64;
        match (self.algorithm, self.rectangular_split(group)) {
            (Algorithm::Hierarchical, Some((k, m))) if k > 1 => {
                // Phase 1: inter-node ring gathers each node-local shard
                // set across nodes (each rank moves its shard m−1 times
                // over NIC). Phase 2: intra-node all-gather of the now
                // m× larger per-rank data over NVLink.
                let nic = self.topo.nic_bandwidth * self.bandwidth_efficiency;
                let nv = self.topo.nvlink_bandwidth * self.bandwidth_efficiency;
                let inter = SimDuration::from_secs_f64(ring_transfer_s(
                    (m - 1) as f64,
                    bytes_per_rank as f64,
                    nic,
                )) + self.topo.net_latency * (m - 1) * 2;
                let intra = SimDuration::from_secs_f64(ring_transfer_s(
                    (k - 1) as f64,
                    (bytes_per_rank * m) as f64,
                    nv,
                )) + self.topo.nvlink_latency * (k - 1);
                self.launch_overhead + inter + intra
            }
            _ => self.ring_time(group, bytes_per_rank as f64, n - 1),
        }
    }

    /// Reduce-scatter: every rank contributes `n × bytes_per_rank` and
    /// ends with a reduced shard of `bytes_per_rank`. Ring cost is
    /// symmetric with all-gather.
    pub fn reduce_scatter(&self, group: &ProcessGroup, bytes_per_rank: u64) -> SimDuration {
        self.all_gather(group, bytes_per_rank)
    }

    /// All-reduce of `bytes` on every rank (ring reduce-scatter followed
    /// by ring all-gather).
    pub fn all_reduce(&self, group: &ProcessGroup, bytes: u64) -> SimDuration {
        let n = group.len() as u64;
        if n <= 1 {
            return SimDuration::ZERO;
        }
        let shard = bytes.div_ceil(n);
        // Two phases but a single launch.
        self.all_gather(group, shard) + self.reduce_scatter(group, shard)
            - self.launch_overhead
    }

    /// Broadcast of `bytes` from the group's first rank via a ring
    /// pipeline (cost ≈ one traversal of the slowest edge).
    pub fn broadcast(&self, group: &ProcessGroup, bytes: u64) -> SimDuration {
        let n = group.len() as u64;
        if n <= 1 {
            return SimDuration::ZERO;
        }
        self.cached(OpKind::Broadcast, group, bytes, || {
            let Some((bw, lat)) = self.ring_bottleneck(group) else {
                return SimDuration::ZERO;
            };
            self.launch_overhead
                + lat * (n - 1)
                + SimDuration::from_secs_f64(transfer_s(bytes as f64, bw))
        })
    }

    /// Point-to-point send of `bytes`.
    pub fn p2p(&self, src: GlobalRank, dst: GlobalRank, bytes: u64) -> SimDuration {
        if src == dst {
            return SimDuration::ZERO;
        }
        let bw = self.topo.p2p_bandwidth(src, dst) * self.bandwidth_efficiency;
        self.topo.p2p_latency(src, dst) + SimDuration::from_secs_f64(transfer_s(bytes as f64, bw))
    }

    /// Achieved all-gather *algorithm bandwidth* in bytes/s: output bytes
    /// per rank divided by elapsed time — the metric plotted in Fig 12.
    pub fn achieved_all_gather_bandwidth(
        &self,
        group: &ProcessGroup,
        bytes_per_rank: u64,
    ) -> f64 {
        let t = self.all_gather(group, bytes_per_rank);
        if t.is_zero() {
            return 0.0;
        }
        let total = bytes_per_rank * group.len() as u64;
        total as f64 / t.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cost cache is process-global now, so tests that assert on
    /// entry counts (or clear the cache) must not interleave with other
    /// tests priced through it. Every pricing test takes this lock.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn model() -> CommCostModel {
        CommCostModel::new(TopologySpec::llama3_production(64))
    }

    #[test]
    fn singleton_collectives_are_free() {
        let m = model();
        let g = ProcessGroup::contiguous(0, 1);
        assert_eq!(m.all_gather(&g, 1 << 30), SimDuration::ZERO);
        assert_eq!(m.all_reduce(&g, 1 << 30), SimDuration::ZERO);
        assert_eq!(m.broadcast(&g, 1 << 30), SimDuration::ZERO);
    }

    #[test]
    fn intra_node_all_gather_near_nvlink_speed() {
        let _serial = serial();
        let m = model();
        let g = ProcessGroup::contiguous(0, 8); // one node
        let bytes = 512u64 << 20;
        let t = m.all_gather(&g, bytes);
        let bw = m.achieved_all_gather_bandwidth(&g, bytes);
        // Ring bus bandwidth approaches nvlink × efficiency × n/(n−1).
        assert!(bw > 300e9, "achieved {bw:.3e} B/s in {t}");
        assert!(bw < 450e9);
    }

    #[test]
    fn cross_node_all_gather_is_nic_bound() {
        let _serial = serial();
        let m = model().with_algorithm(Algorithm::Ring);
        let g = ProcessGroup::strided(0, 4, 8); // 4 nodes, one GPU each
        let bw = m.achieved_all_gather_bandwidth(&g, 256 << 20);
        assert!(bw < 60e9, "achieved {bw:.3e} B/s should be NIC-bound");
    }

    #[test]
    fn hierarchical_beats_flat_ring_on_mixed_groups() {
        let _serial = serial();
        let topo = TopologySpec::llama3_production(64);
        let flat = CommCostModel::new(topo.clone()).with_algorithm(Algorithm::Ring);
        let hier = CommCostModel::new(topo).with_algorithm(Algorithm::Hierarchical);
        // 4 nodes × 8 GPUs = 32 ranks.
        let g = ProcessGroup::contiguous(0, 32);
        let bytes = 64u64 << 20;
        assert!(hier.all_gather(&g, bytes) < flat.all_gather(&g, bytes));
    }

    #[test]
    fn all_reduce_is_roughly_twice_all_gather() {
        let _serial = serial();
        let m = model().with_algorithm(Algorithm::Ring);
        let g = ProcessGroup::contiguous(0, 8);
        let bytes = 256u64 << 20;
        let ar = m.all_reduce(&g, bytes);
        let ag = m.all_gather(&g, bytes / 8);
        let ratio = ar.as_secs_f64() / ag.as_secs_f64();
        assert!((1.5..=2.5).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn p2p_intra_vs_inter_node() {
        let m = model();
        let intra = m.p2p(GlobalRank(0), GlobalRank(1), 1 << 30);
        let inter = m.p2p(GlobalRank(0), GlobalRank(8), 1 << 30);
        assert!(inter > intra * 5);
        assert_eq!(m.p2p(GlobalRank(3), GlobalRank(3), 1 << 30), SimDuration::ZERO);
    }

    #[test]
    fn all_gather_latency_term_dominates_tiny_messages() {
        let _serial = serial();
        let m = model();
        let g = ProcessGroup::contiguous(0, 8);
        let tiny = m.all_gather(&g, 16);
        // Must still pay launch overhead + per-step latency.
        assert!(tiny >= m.launch_overhead);
    }

    #[test]
    fn broadcast_scales_with_bytes_not_much_with_ranks() {
        let _serial = serial();
        let m = model();
        let g8 = ProcessGroup::contiguous(0, 8);
        let b1 = m.broadcast(&g8, 1 << 20);
        let b2 = m.broadcast(&g8, 1 << 24);
        assert!(b2 > b1);
    }

    #[test]
    fn cached_costs_bit_identical_to_uncached() {
        let _serial = serial();
        // Ring and hierarchical all-gather / reduce-scatter / all-reduce
        // on NVLink-local, leaf-local, and cross-leaf groups: caching
        // must never change a single bit of the priced duration.
        clear_cost_cache();
        let topo = TopologySpec::llama3_production(64);
        let groups = [
            ProcessGroup::contiguous(0, 8),    // one NVLink island
            ProcessGroup::contiguous(0, 32),   // 4 nodes, one leaf
            ProcessGroup::strided(0, 16, 8),   // rank 0 of 16 nodes
            ProcessGroup::strided(3, 4, 128),  // cross-leaf stride
            ProcessGroup::new(vec![
                GlobalRank(0),
                GlobalRank(9),
                GlobalRank(2),
                GlobalRank(300),
            ]), // irregular
        ];
        for alg in [Algorithm::Ring, Algorithm::Hierarchical] {
            let cached = CommCostModel::new(topo.clone()).with_algorithm(alg);
            let raw = CommCostModel::new(topo.clone())
                .with_algorithm(alg)
                .with_caching(false);
            for g in &groups {
                for bytes in [1u64, 4 << 10, 64 << 20, 1 << 30] {
                    // Two passes: the second exercises actual cache hits.
                    for pass in 0..2 {
                        assert_eq!(
                            cached.all_gather(g, bytes),
                            raw.all_gather(g, bytes),
                            "all_gather {alg:?} {g} {bytes}B pass{pass}"
                        );
                        assert_eq!(
                            cached.reduce_scatter(g, bytes),
                            raw.reduce_scatter(g, bytes),
                            "reduce_scatter {alg:?} {g} {bytes}B pass{pass}"
                        );
                        assert_eq!(
                            cached.all_reduce(g, bytes),
                            raw.all_reduce(g, bytes),
                            "all_reduce {alg:?} {g} {bytes}B pass{pass}"
                        );
                        assert_eq!(
                            cached.broadcast(g, bytes),
                            raw.broadcast(g, bytes),
                            "broadcast {alg:?} {g} {bytes}B pass{pass}"
                        );
                    }
                }
            }
        }
        assert!(cost_cache_len() > 0, "cache should have been populated");
    }

    #[test]
    fn cache_hits_on_translated_groups() {
        let _serial = serial();
        // Two DP-style groups offset by exactly one leaf (128 ranks on
        // the production topology) share a shape, so the second lookup
        // must not add a cache entry — and must price identically.
        clear_cost_cache();
        let m = model();
        let leaf_ranks = 8 * 16;
        let a = ProcessGroup::strided(5, 8, 8);
        let b = ProcessGroup::strided(5 + leaf_ranks, 8, 8);
        let before = cost_cache_len();
        let ta = m.all_gather(&a, 64 << 20);
        let after_a = cost_cache_len();
        let tb = m.all_gather(&b, 64 << 20);
        let after_b = cost_cache_len();
        assert_eq!(ta, tb);
        assert_eq!(after_a, before + 1);
        assert_eq!(after_b, after_a, "translated group must hit the cache");
        // Different start alignment within the leaf is a different shape.
        let c = ProcessGroup::strided(6, 8, 8);
        m.all_gather(&c, 64 << 20);
        assert_eq!(cost_cache_len(), after_b + 1);
    }

    #[test]
    fn communication_demand_ordering_matches_section_5_2() {
        let _serial = serial();
        // TP (intra-node, per-layer, exposed) must be placed innermost:
        // verify the model prices an intra-node all-gather far cheaper
        // than the same bytes cross-node, which is the quantitative basis
        // of the [TP, CP, PP, DP] ordering.
        let m = model();
        let tp_group = ProcessGroup::contiguous(0, 8);
        let dp_group = ProcessGroup::strided(0, 8, 8);
        let bytes = 32u64 << 20;
        assert!(m.all_gather(&tp_group, bytes) < m.all_gather(&dp_group, bytes));
    }
}
