//! Process groups: ordered sets of ranks participating in a collective.

use cluster_model::topology::{GlobalRank, TopologySpec};
use std::fmt;

/// An ordered set of distinct global ranks that communicate together,
/// analogous to an NCCL communicator.
///
/// The order is meaningful: ring algorithms send from `ranks[i]` to
/// `ranks[(i + 1) % n]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProcessGroup {
    ranks: Vec<GlobalRank>,
}

impl ProcessGroup {
    /// Creates a group from an ordered rank list.
    ///
    /// # Panics
    /// Panics if the list is empty or contains duplicates.
    pub fn new(ranks: Vec<GlobalRank>) -> ProcessGroup {
        assert!(!ranks.is_empty(), "process group cannot be empty");
        let mut seen = ranks.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), ranks.len(), "duplicate rank in process group");
        ProcessGroup { ranks }
    }

    /// A contiguous group `[start, start + n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn contiguous(start: u32, n: u32) -> ProcessGroup {
        assert!(n > 0, "process group cannot be empty");
        ProcessGroup {
            ranks: (start..start + n).map(GlobalRank).collect(),
        }
    }

    /// A strided group: `n` ranks starting at `start`, `stride` apart.
    ///
    /// # Panics
    /// Panics if `n == 0` or `stride == 0`.
    pub fn strided(start: u32, n: u32, stride: u32) -> ProcessGroup {
        assert!(n > 0, "process group cannot be empty");
        assert!(stride > 0, "stride must be positive");
        ProcessGroup {
            ranks: (0..n).map(|i| GlobalRank(start + i * stride)).collect(),
        }
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// `true` if the group has exactly one rank (collectives are no-ops).
    pub fn is_singleton(&self) -> bool {
        self.ranks.len() == 1
    }

    /// Always `false`: groups are non-empty by construction. Provided for
    /// API completeness alongside [`ProcessGroup::len`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The participating ranks in group order.
    pub fn ranks(&self) -> &[GlobalRank] {
        &self.ranks
    }

    /// Position of `rank` within the group, if present.
    pub fn position(&self, rank: GlobalRank) -> Option<usize> {
        self.ranks.iter().position(|&r| r == rank)
    }

    /// Iterates the ring edges `(ranks[i], ranks[i+1 mod n])`.
    /// A singleton group yields nothing.
    pub fn ring_edges(&self) -> impl Iterator<Item = (GlobalRank, GlobalRank)> + '_ {
        let n = self.ranks.len();
        (0..n)
            .filter(move |_| n > 1)
            .map(move |i| (self.ranks[i], self.ranks[(i + 1) % n]))
    }

    /// Bytes each member `(sends, receives)` in a ring all-gather (or
    /// reduce-scatter) where every rank contributes `bytes_per_rank`:
    /// `(n − 1) · bytes_per_rank` each way, zero for singletons.
    ///
    /// Because the ring is symmetric this doubles as the byte-
    /// conservation reference: summing over members, total bytes sent
    /// equals total bytes received. Conformance checkers re-derive the
    /// same totals by walking [`ProcessGroup::ring_edges`] and compare.
    pub fn ring_traffic_per_rank(&self, bytes_per_rank: u64) -> (u64, u64) {
        let each = bytes_per_rank * (self.ranks.len() as u64 - 1);
        (each, each)
    }

    /// `true` if every rank lives on the same node of `topo`.
    pub fn is_intra_node(&self, topo: &TopologySpec) -> bool {
        let node = topo.node_of(self.ranks[0]);
        self.ranks.iter().all(|&r| topo.node_of(r) == node)
    }

    /// Number of distinct nodes the group touches.
    pub fn node_span(&self, topo: &TopologySpec) -> usize {
        let mut nodes: Vec<u32> = self.ranks.iter().map(|&r| topo.node_of(r)).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }

    /// A topology signature for cost caching: two groups with equal
    /// shapes have identical collective costs on any topology whose
    /// leaf holds `leaf_ranks` ranks (`gpus_per_node × nodes_per_leaf`).
    ///
    /// Path classes depend only on rank positions *within* the
    /// node/leaf grid, so translating a whole group by a multiple of
    /// `leaf_ranks` changes nothing — captured by keeping the first
    /// rank modulo `leaf_ranks` plus the exact offset pattern. The
    /// signature is exact (no hashing), so equal signatures can never
    /// alias groups with different costs.
    ///
    /// # Panics
    /// Panics if `leaf_ranks == 0`.
    pub fn shape(&self, leaf_ranks: u32) -> GroupShape {
        assert!(leaf_ranks > 0, "leaf_ranks must be positive");
        let start = self.ranks[0].0;
        let start_mod = start % leaf_ranks;
        let n = self.ranks.len() as u32;
        if n == 1 {
            return GroupShape::Strided {
                start_mod,
                stride: 1,
                n: 1,
            };
        }
        // Ascending arithmetic progressions (the contiguous/strided
        // constructors) get a compact signature; two-level lattices (an
        // inner run repeated at an outer stride — the dp-major ×
        // cp-minor FSDP groups) get one too; anything else keeps the
        // exact offset list.
        if self.ranks[1].0 > start {
            let stride = self.ranks[1].0 - start;
            let is_ap = self
                .ranks
                .windows(2)
                .all(|w| w[1].0 > w[0].0 && w[1].0 - w[0].0 == stride);
            if is_ap {
                return GroupShape::Strided {
                    start_mod,
                    stride,
                    n,
                };
            }
            if let Some(shape) = self.lattice_shape(start_mod, stride) {
                return shape;
            }
        }
        GroupShape::Irregular {
            start_mod,
            offsets: self
                .ranks
                .iter()
                .map(|r| i64::from(r.0) - i64::from(start))
                .collect(),
        }
    }

    /// Recognizes a two-level lattice in group order: `inner_n` ranks at
    /// `inner_stride`, repeated `outer_n` times at `outer_stride`. The
    /// five parameters reproduce every offset exactly, so the compact
    /// signature aliases precisely the rank lists an
    /// [`GroupShape::Irregular`] offset list would — no cost-cache
    /// collisions are possible. Returns `None` unless the whole list
    /// matches (callers fall back to the exact offset list).
    fn lattice_shape(&self, start_mod: u32, inner_stride: u32) -> Option<GroupShape> {
        let start = self.ranks[0].0;
        let n = self.ranks.len();
        let mut inner_n = 1usize;
        while inner_n < n
            && self.ranks[inner_n].0 > self.ranks[inner_n - 1].0
            && self.ranks[inner_n].0 - self.ranks[inner_n - 1].0 == inner_stride
        {
            inner_n += 1;
        }
        if inner_n < 2 || inner_n >= n || !n.is_multiple_of(inner_n) {
            return None;
        }
        if self.ranks[inner_n].0 <= start {
            return None;
        }
        let outer_stride = self.ranks[inner_n].0 - start;
        let expect = |k: usize| -> u64 {
            u64::from(start)
                + (k / inner_n) as u64 * u64::from(outer_stride)
                + (k % inner_n) as u64 * u64::from(inner_stride)
        };
        if self
            .ranks
            .iter()
            .enumerate()
            .any(|(k, r)| u64::from(r.0) != expect(k))
        {
            return None;
        }
        Some(GroupShape::Lattice {
            start_mod,
            inner_stride,
            inner_n: inner_n as u32,
            outer_stride,
            outer_n: (n / inner_n) as u32,
        })
    }
}

/// Translation-invariant group signature returned by
/// [`ProcessGroup::shape`]; used as part of collective cost-cache keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupShape {
    /// Ascending arithmetic progression `start + i × stride`.
    Strided {
        /// First rank modulo the leaf size.
        start_mod: u32,
        /// Rank step.
        stride: u32,
        /// Participant count.
        n: u32,
    },
    /// Two-level lattice in group order: `ranks[j·inner_n + i] =
    /// ranks[0] + j·outer_stride + i·inner_stride`. This is the shape of
    /// FSDP's dp-major × cp-minor groups when `pp > 1` separates the two
    /// strides; keeping it compact (five scalars instead of a dp·cp-long
    /// offset list) is what makes large-cluster collective checking and
    /// cost caching O(1) per group instead of O(members).
    Lattice {
        /// First rank modulo the leaf size.
        start_mod: u32,
        /// Step within an inner run.
        inner_stride: u32,
        /// Length of each inner run (≥ 2).
        inner_n: u32,
        /// Step between the starts of consecutive inner runs.
        outer_stride: u32,
        /// Number of inner runs (≥ 2).
        outer_n: u32,
    },
    /// Any other ordering; `offsets[i]` is `ranks[i] − ranks[0]`.
    Irregular {
        /// First rank modulo the leaf size.
        start_mod: u32,
        /// Signed offsets from the first rank (exact, collision-free).
        offsets: Vec<i64>,
    },
}

impl fmt::Display for ProcessGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg[")?;
        for (i, r) in self.ranks.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", r.0)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_and_strided() {
        let c = ProcessGroup::contiguous(4, 3);
        assert_eq!(
            c.ranks(),
            &[GlobalRank(4), GlobalRank(5), GlobalRank(6)]
        );
        let s = ProcessGroup::strided(1, 3, 8);
        assert_eq!(
            s.ranks(),
            &[GlobalRank(1), GlobalRank(9), GlobalRank(17)]
        );
    }

    #[test]
    fn ring_edges_wrap() {
        let g = ProcessGroup::contiguous(0, 3);
        let edges: Vec<_> = g.ring_edges().collect();
        assert_eq!(
            edges,
            vec![
                (GlobalRank(0), GlobalRank(1)),
                (GlobalRank(1), GlobalRank(2)),
                (GlobalRank(2), GlobalRank(0)),
            ]
        );
    }

    #[test]
    fn singleton_has_no_edges() {
        let g = ProcessGroup::contiguous(5, 1);
        assert!(g.is_singleton());
        assert_eq!(g.ring_edges().count(), 0);
    }

    #[test]
    fn ring_traffic_is_conserved() {
        let g = ProcessGroup::contiguous(0, 4);
        assert_eq!(g.ring_traffic_per_rank(100), (300, 300));
        let solo = ProcessGroup::contiguous(9, 1);
        assert_eq!(solo.ring_traffic_per_rank(100), (0, 0));
    }

    #[test]
    fn node_span() {
        let topo = TopologySpec::llama3_production(4);
        let intra = ProcessGroup::contiguous(0, 8);
        assert!(intra.is_intra_node(&topo));
        assert_eq!(intra.node_span(&topo), 1);
        let cross = ProcessGroup::strided(0, 4, 8);
        assert!(!cross.is_intra_node(&topo));
        assert_eq!(cross.node_span(&topo), 4);
    }

    #[test]
    fn position() {
        let g = ProcessGroup::strided(2, 4, 2);
        assert_eq!(g.position(GlobalRank(6)), Some(2));
        assert_eq!(g.position(GlobalRank(5)), None);
    }

    #[test]
    fn shape_recognizes_two_level_lattices() {
        // An FSDP dp-major × cp-minor group on a tp2·cp2·pp4·dp4 mesh:
        // inner runs of 2 at stride 2, outer stride tp·cp·pp = 16.
        let ranks: Vec<GlobalRank> = (0..4)
            .flat_map(|dp| (0..2).map(move |cp| GlobalRank(dp * 16 + cp * 2)))
            .collect();
        let g = ProcessGroup::new(ranks);
        assert_eq!(
            g.shape(8),
            GroupShape::Lattice {
                start_mod: 0,
                inner_stride: 2,
                inner_n: 2,
                outer_stride: 16,
                outer_n: 4,
            }
        );
    }

    #[test]
    fn lattice_shape_is_exact_not_a_heuristic() {
        // Perturbing one rank of a lattice must fall back to the exact
        // offset list, never alias the compact signature.
        let mut ranks: Vec<GlobalRank> = (0..3)
            .flat_map(|j| (0..2).map(move |i| GlobalRank(j * 16 + i * 2)))
            .collect();
        ranks[5] = GlobalRank(35); // was 34
        let g = ProcessGroup::new(ranks);
        assert!(matches!(g.shape(8), GroupShape::Irregular { .. }), "{:?}", g.shape(8));
        // A full arithmetic progression stays Strided, not Lattice: the
        // inner run covers the whole list.
        let ap = ProcessGroup::strided(0, 8, 2);
        assert!(matches!(ap.shape(8), GroupShape::Strided { .. }));
    }

    #[test]
    fn lattice_shape_is_translation_invariant_per_leaf() {
        let lat = |base: u32| {
            ProcessGroup::new(
                (0..4)
                    .flat_map(|j| (0..2).map(move |i| GlobalRank(base + j * 16 + i * 2)))
                    .collect(),
            )
        };
        let leaf = 64;
        assert_eq!(lat(1).shape(leaf), lat(1 + leaf).shape(leaf));
        assert_ne!(lat(1).shape(leaf), lat(2).shape(leaf));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_rank_panics() {
        ProcessGroup::new(vec![GlobalRank(1), GlobalRank(1)]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_group_panics() {
        ProcessGroup::new(vec![]);
    }
}
