//! Process groups: ordered sets of ranks participating in a collective.

use cluster_model::topology::{GlobalRank, TopologySpec};
use std::fmt;

/// An ordered set of distinct global ranks that communicate together,
/// analogous to an NCCL communicator.
///
/// The order is meaningful: ring algorithms send from `ranks[i]` to
/// `ranks[(i + 1) % n]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProcessGroup {
    ranks: Vec<GlobalRank>,
}

impl ProcessGroup {
    /// Creates a group from an ordered rank list.
    ///
    /// # Panics
    /// Panics if the list is empty or contains duplicates.
    pub fn new(ranks: Vec<GlobalRank>) -> ProcessGroup {
        assert!(!ranks.is_empty(), "process group cannot be empty");
        let mut seen = ranks.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), ranks.len(), "duplicate rank in process group");
        ProcessGroup { ranks }
    }

    /// A contiguous group `[start, start + n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn contiguous(start: u32, n: u32) -> ProcessGroup {
        assert!(n > 0, "process group cannot be empty");
        ProcessGroup {
            ranks: (start..start + n).map(GlobalRank).collect(),
        }
    }

    /// A strided group: `n` ranks starting at `start`, `stride` apart.
    ///
    /// # Panics
    /// Panics if `n == 0` or `stride == 0`.
    pub fn strided(start: u32, n: u32, stride: u32) -> ProcessGroup {
        assert!(n > 0, "process group cannot be empty");
        assert!(stride > 0, "stride must be positive");
        ProcessGroup {
            ranks: (0..n).map(|i| GlobalRank(start + i * stride)).collect(),
        }
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// `true` if the group has exactly one rank (collectives are no-ops).
    pub fn is_singleton(&self) -> bool {
        self.ranks.len() == 1
    }

    /// Always `false`: groups are non-empty by construction. Provided for
    /// API completeness alongside [`ProcessGroup::len`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The participating ranks in group order.
    pub fn ranks(&self) -> &[GlobalRank] {
        &self.ranks
    }

    /// Position of `rank` within the group, if present.
    pub fn position(&self, rank: GlobalRank) -> Option<usize> {
        self.ranks.iter().position(|&r| r == rank)
    }

    /// Iterates the ring edges `(ranks[i], ranks[i+1 mod n])`.
    /// A singleton group yields nothing.
    pub fn ring_edges(&self) -> impl Iterator<Item = (GlobalRank, GlobalRank)> + '_ {
        let n = self.ranks.len();
        (0..n)
            .filter(move |_| n > 1)
            .map(move |i| (self.ranks[i], self.ranks[(i + 1) % n]))
    }

    /// Bytes each member `(sends, receives)` in a ring all-gather (or
    /// reduce-scatter) where every rank contributes `bytes_per_rank`:
    /// `(n − 1) · bytes_per_rank` each way, zero for singletons.
    ///
    /// Because the ring is symmetric this doubles as the byte-
    /// conservation reference: summing over members, total bytes sent
    /// equals total bytes received. Conformance checkers re-derive the
    /// same totals by walking [`ProcessGroup::ring_edges`] and compare.
    pub fn ring_traffic_per_rank(&self, bytes_per_rank: u64) -> (u64, u64) {
        let each = bytes_per_rank * (self.ranks.len() as u64 - 1);
        (each, each)
    }

    /// `true` if every rank lives on the same node of `topo`.
    pub fn is_intra_node(&self, topo: &TopologySpec) -> bool {
        let node = topo.node_of(self.ranks[0]);
        self.ranks.iter().all(|&r| topo.node_of(r) == node)
    }

    /// Number of distinct nodes the group touches.
    pub fn node_span(&self, topo: &TopologySpec) -> usize {
        let mut nodes: Vec<u32> = self.ranks.iter().map(|&r| topo.node_of(r)).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }

    /// A topology signature for cost caching: two groups with equal
    /// shapes have identical collective costs on any topology whose
    /// leaf holds `leaf_ranks` ranks (`gpus_per_node × nodes_per_leaf`).
    ///
    /// Path classes depend only on rank positions *within* the
    /// node/leaf grid, so translating a whole group by a multiple of
    /// `leaf_ranks` changes nothing — captured by keeping the first
    /// rank modulo `leaf_ranks` plus the exact offset pattern. The
    /// signature is exact (no hashing), so equal signatures can never
    /// alias groups with different costs.
    ///
    /// # Panics
    /// Panics if `leaf_ranks == 0`.
    pub fn shape(&self, leaf_ranks: u32) -> GroupShape {
        assert!(leaf_ranks > 0, "leaf_ranks must be positive");
        let start = self.ranks[0].0;
        let start_mod = start % leaf_ranks;
        let n = self.ranks.len() as u32;
        if n == 1 {
            return GroupShape::Strided {
                start_mod,
                stride: 1,
                n: 1,
            };
        }
        // Ascending arithmetic progressions (the contiguous/strided
        // constructors) get a compact signature; anything else keeps the
        // exact offset list.
        if self.ranks[1].0 > start {
            let stride = self.ranks[1].0 - start;
            let is_ap = self
                .ranks
                .windows(2)
                .all(|w| w[1].0 > w[0].0 && w[1].0 - w[0].0 == stride);
            if is_ap {
                return GroupShape::Strided {
                    start_mod,
                    stride,
                    n,
                };
            }
        }
        GroupShape::Irregular {
            start_mod,
            offsets: self
                .ranks
                .iter()
                .map(|r| i64::from(r.0) - i64::from(start))
                .collect(),
        }
    }
}

/// Translation-invariant group signature returned by
/// [`ProcessGroup::shape`]; used as part of collective cost-cache keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupShape {
    /// Ascending arithmetic progression `start + i × stride`.
    Strided {
        /// First rank modulo the leaf size.
        start_mod: u32,
        /// Rank step.
        stride: u32,
        /// Participant count.
        n: u32,
    },
    /// Any other ordering; `offsets[i]` is `ranks[i] − ranks[0]`.
    Irregular {
        /// First rank modulo the leaf size.
        start_mod: u32,
        /// Signed offsets from the first rank (exact, collision-free).
        offsets: Vec<i64>,
    },
}

impl fmt::Display for ProcessGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pg[")?;
        for (i, r) in self.ranks.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", r.0)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_and_strided() {
        let c = ProcessGroup::contiguous(4, 3);
        assert_eq!(
            c.ranks(),
            &[GlobalRank(4), GlobalRank(5), GlobalRank(6)]
        );
        let s = ProcessGroup::strided(1, 3, 8);
        assert_eq!(
            s.ranks(),
            &[GlobalRank(1), GlobalRank(9), GlobalRank(17)]
        );
    }

    #[test]
    fn ring_edges_wrap() {
        let g = ProcessGroup::contiguous(0, 3);
        let edges: Vec<_> = g.ring_edges().collect();
        assert_eq!(
            edges,
            vec![
                (GlobalRank(0), GlobalRank(1)),
                (GlobalRank(1), GlobalRank(2)),
                (GlobalRank(2), GlobalRank(0)),
            ]
        );
    }

    #[test]
    fn singleton_has_no_edges() {
        let g = ProcessGroup::contiguous(5, 1);
        assert!(g.is_singleton());
        assert_eq!(g.ring_edges().count(), 0);
    }

    #[test]
    fn ring_traffic_is_conserved() {
        let g = ProcessGroup::contiguous(0, 4);
        assert_eq!(g.ring_traffic_per_rank(100), (300, 300));
        let solo = ProcessGroup::contiguous(9, 1);
        assert_eq!(solo.ring_traffic_per_rank(100), (0, 0));
    }

    #[test]
    fn node_span() {
        let topo = TopologySpec::llama3_production(4);
        let intra = ProcessGroup::contiguous(0, 8);
        assert!(intra.is_intra_node(&topo));
        assert_eq!(intra.node_span(&topo), 1);
        let cross = ProcessGroup::strided(0, 4, 8);
        assert!(!cross.is_intra_node(&topo));
        assert_eq!(cross.node_span(&topo), 4);
    }

    #[test]
    fn position() {
        let g = ProcessGroup::strided(2, 4, 2);
        assert_eq!(g.position(GlobalRank(6)), Some(2));
        assert_eq!(g.position(GlobalRank(5)), None);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_rank_panics() {
        ProcessGroup::new(vec![GlobalRank(1), GlobalRank(1)]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_group_panics() {
        ProcessGroup::new(vec![]);
    }
}
