//! Step-wise collective algorithms lowered to fluid-network transfers.
//!
//! Where the α–β closed forms in [`crate::cost`] assume a quiet network,
//! these builders emit the individual ring-step transfers so that the
//! max-min-fair fluid simulator can price collectives *under
//! contention* — the §3.1.3 observation that FSDP reduce-scatter
//! traffic congests pipeline P2P, and the §8.2 oversubscription studies.

use crate::group::ProcessGroup;
use cluster_model::topology::FluidTopology;
use sim_engine::fluid::{FluidError, Transfer};
use sim_engine::time::SimTime;

/// One logical flow of a stepped collective: who sends to whom, how many
/// bytes, and which algorithm step it belongs to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// Sender position in the group.
    pub from_pos: usize,
    /// Receiver position in the group.
    pub to_pos: usize,
    /// Bytes moved by this flow.
    pub bytes: f64,
    /// Ring step index (flows of the same step run concurrently).
    pub step: usize,
}

/// All flows of a ring all-gather on `group` where each rank contributes
/// `bytes_per_rank`: `(n−1)` steps, each rank forwarding one chunk to
/// its ring successor.
pub fn ring_all_gather_flows(group: &ProcessGroup, bytes_per_rank: u64) -> Vec<FlowSpec> {
    let n = group.len();
    let mut flows = Vec::new();
    if n <= 1 {
        return flows;
    }
    for step in 0..n - 1 {
        for from_pos in 0..n {
            flows.push(FlowSpec {
                from_pos,
                to_pos: (from_pos + 1) % n,
                bytes: bytes_per_rank as f64,
                step,
            });
        }
    }
    flows
}

/// All flows of a ring reduce-scatter (same traffic pattern as the ring
/// all-gather, run in reverse; byte counts are identical).
pub fn ring_reduce_scatter_flows(group: &ProcessGroup, bytes_per_rank: u64) -> Vec<FlowSpec> {
    ring_all_gather_flows(group, bytes_per_rank)
}

/// Outcome of running a stepped collective on the fluid network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteppedOutcome {
    /// When the final step's slowest flow finished.
    pub finish: SimTime,
    /// Achieved algorithm bandwidth: output bytes per rank over elapsed
    /// time (bytes/s).
    pub algorithm_bandwidth: f64,
}

/// Runs a stepped collective on the fluid topology, with optional
/// concurrent background transfers sharing the fabric.
///
/// Steps are serialized: step `k+1` starts when every flow of step `k`
/// has completed (a conservative model of ring synchronization).
/// Background transfers all start at `start` and run throughout.
///
/// # Errors
/// Propagates fluid-network errors (unknown or dead links).
pub fn run_stepped(
    ft: &FluidTopology,
    group: &ProcessGroup,
    flows: &[FlowSpec],
    start: SimTime,
    background: &[Transfer],
) -> Result<SteppedOutcome, FluidError> {
    let n = group.len();
    let steps = flows.iter().map(|f| f.step + 1).max().unwrap_or(0);
    let mut now = start;
    let mut total_bytes_per_rank = 0.0;
    // Background traffic is modelled as present for the whole window:
    // re-submitted in every step's sub-simulation (fluid runs are
    // memoryless, so this approximates long-running elephant flows).
    for step in 0..steps {
        let step_flows: Vec<&FlowSpec> = flows.iter().filter(|f| f.step == step).collect();
        let mut transfers: Vec<Transfer> = step_flows
            .iter()
            .map(|f| Transfer {
                route: ft.route(group.ranks()[f.from_pos], group.ranks()[f.to_pos]),
                bytes: f.bytes,
                start: now,
            })
            .collect();
        let fg_count = transfers.len();
        transfers.extend(background.iter().map(|b| Transfer {
            route: b.route.clone(),
            bytes: b.bytes,
            start: now,
        }));
        let outcomes = ft.net.run(transfers)?;
        let step_end = outcomes
            .iter()
            .take(fg_count)
            .map(|o| o.finish)
            .max()
            .unwrap_or(now);
        total_bytes_per_rank += step_flows
            .iter()
            .map(|f| f.bytes)
            .fold(0.0f64, f64::max);
        now = step_end;
    }
    let elapsed = now.saturating_since(start).as_secs_f64();
    let out_bytes = total_bytes_per_rank + total_bytes_per_rank / (n.max(2) - 1) as f64;
    let algorithm_bandwidth = if elapsed > 0.0 { out_bytes / elapsed } else { 0.0 };
    Ok(SteppedOutcome {
        finish: now,
        algorithm_bandwidth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_model::topology::{GlobalRank, TopologySpec};

    #[test]
    fn all_gather_flow_count() {
        let g = ProcessGroup::contiguous(0, 4);
        let flows = ring_all_gather_flows(&g, 100);
        // (n−1) steps × n flows.
        assert_eq!(flows.len(), 3 * 4);
        assert!(flows.iter().all(|f| f.bytes == 100.0));
        assert_eq!(flows.iter().map(|f| f.step).max(), Some(2));
    }

    #[test]
    fn singleton_has_no_flows() {
        let g = ProcessGroup::contiguous(0, 1);
        assert!(ring_all_gather_flows(&g, 100).is_empty());
    }

    #[test]
    fn stepped_intra_node_all_gather_runs() {
        let topo = TopologySpec::llama3_production(2);
        let ft = topo.build_fluid();
        let g = ProcessGroup::contiguous(0, 4);
        let flows = ring_all_gather_flows(&g, 1 << 26);
        let out = run_stepped(&ft, &g, &flows, SimTime::ZERO, &[]).unwrap();
        assert!(out.finish > SimTime::ZERO);
        assert!(out.algorithm_bandwidth > 0.0);
    }

    #[test]
    fn background_traffic_slows_the_collective() {
        // The §3.1.3 effect: FSDP reduce-scatter crossing the same NICs
        // as pipeline P2P degrades it.
        let topo = TopologySpec::llama3_production(4);
        let ft = topo.build_fluid();
        // Collective across nodes (one GPU per node).
        let g = ProcessGroup::strided(0, 4, 8);
        let flows = ring_all_gather_flows(&g, 1 << 26);
        let quiet = run_stepped(&ft, &g, &flows, SimTime::ZERO, &[]).unwrap();
        // Background elephant flow sharing rank0's NIC.
        let bg = vec![Transfer {
            route: ft.route(GlobalRank(0), GlobalRank(16)),
            bytes: 1e12,
            start: SimTime::ZERO,
        }];
        let congested = run_stepped(&ft, &g, &flows, SimTime::ZERO, &bg).unwrap();
        assert!(congested.finish > quiet.finish);
    }

    #[test]
    fn reduce_scatter_mirrors_all_gather() {
        let g = ProcessGroup::contiguous(0, 8);
        assert_eq!(
            ring_all_gather_flows(&g, 7),
            ring_reduce_scatter_flows(&g, 7)
        );
    }
}
