//! # collectives
//!
//! Communication substrate: process groups, α–β collective cost models,
//! and step-wise ring algorithms that can be priced under contention on
//! the fluid network.
//!
//! ```
//! use collectives::{CommCostModel, ProcessGroup};
//! use cluster_model::TopologySpec;
//!
//! let model = CommCostModel::new(TopologySpec::llama3_production(16));
//! let tp_group = ProcessGroup::contiguous(0, 8);
//! let t = model.all_gather(&tp_group, 64 << 20);
//! assert!(t.as_secs_f64() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithms;
pub mod cost;
pub mod group;
pub mod sharded;

pub use cost::{cost_cache_stats, Algorithm, CommCostModel};
pub use group::{GroupShape, ProcessGroup};
pub use sharded::{CacheStats, ShardedCache};
