//! The deterministic interleaving explorer (loom-lite).
//!
//! [`Explorer::check`] runs a closure — which spawns checked threads
//! via [`spawn`] and synchronizes through the instrumented
//! [`crate::sync`] shims — once per *schedule*, where a schedule is the
//! sequence of thread choices made at every scheduling point (lock
//! acquire, condvar wait/notify, spawn, join, thread exit). Schedules
//! are enumerated by depth-first search with a **bounded-preemption
//! frontier**: the default policy never preempts (the running thread
//! continues while it can make progress), and the DFS additionally
//! explores every alternative choice whose total preemption count stays
//! within the bound. Most concurrency bugs are exposed by very few
//! preemptions (CHESS's empirical result), so bound 2–3 is exhaustive
//! in practice for protocol-sized state spaces while keeping the run
//! count polynomial.
//!
//! ## Execution mechanics
//!
//! Real OS threads run the checked code, but a baton (the `active`
//! thread id in [`ExecState`]) serializes them: a thread only executes
//! between two of its own scheduling points, everything else is parked
//! on the explorer's own condvar. Blocking is *modeled* — a thread
//! never issues a std lock operation until the model has granted it the
//! lock, so the std primitives underneath are always uncontended and
//! exist only to provide safe storage and poisoning semantics.
//!
//! ## What counts as a failure
//!
//! * **Deadlock** — no thread is runnable, at least one is blocked
//!   (this includes every lost-wakeup on an unbounded wait).
//! * **Panic of the root thread** — assertion failures in the checked
//!   closure. Panics on *spawned* threads are not failures by
//!   themselves (the leader-panic scenarios rely on this); they are
//!   reported through [`JoinHandle::join`].
//! * **Hang** — the execution exceeded the wall-clock safety net.
//!
//! Timed waits ([`crate::sync::Condvar::wait_timeout`]) never fire on
//! real time under the model: the timeout transition is enabled only
//! when the system would otherwise deadlock, and every firing is
//! counted in [`Report::timeout_executions`] — so asserting that it
//! stays zero is exactly the "no lost notifications" check: every
//! wakeup arrived without the bounded-timeout safety net.
//!
//! On failure the explorer **shrinks** the schedule greedily (zeroing
//! and truncating forced choices while the failure still reproduces,
//! like `CaseSpec::minimize` in the conformance fuzzer) and reports the
//! minimal schedule plus a human-readable trace of every scheduling
//! decision on the failing path — a ready-to-commit regression input
//! for [`Explorer::replay`].

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::time::Duration;

/// How a thread holds (or wants) a lock: a mutex lock and an rwlock
/// write are both `Exclusive`; an rwlock read is `Shared`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Access {
    /// Mutex lock / rwlock write.
    Exclusive,
    /// Rwlock read.
    Shared,
}

/// A checked thread's link back to its execution: the shared execution
/// state plus this thread's id.
pub(crate) type Ctx = (Arc<Exec>, usize);

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The execution the current OS thread is registered with, if any.
pub(crate) fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// Sentinel panic payload used to unwind parked threads when an
/// execution is aborted (deadlock found, hang, shrink replay done).
struct AbortToken;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    /// Can run, holds no pending operation.
    Ready,
    /// Is the active thread (holds the baton).
    Running,
    /// Wants `obj` with `access`; runnable once the model can grant it.
    BlockedLock { obj: u64, access: Access },
    /// Parked on condvar `cv`; will reacquire `lock` when woken.
    /// `bounded` marks a `wait_timeout`, which the scheduler may time
    /// out when nothing else can run.
    BlockedCv { cv: u64, lock: u64, bounded: bool },
    /// Waiting for thread `target` to finish.
    BlockedJoin { target: usize },
    /// Done (normally or by panic).
    Finished,
}

struct ThreadState {
    status: Status,
    /// The pending operation, for trace rendering.
    op: String,
    /// Panic message if the thread panicked (not abort-unwound).
    panicked: Option<String>,
    /// Whether the last condvar wake was a modeled timeout.
    timed_out_wake: bool,
}

impl ThreadState {
    fn new(status: Status) -> ThreadState {
        ThreadState {
            status,
            op: "start".to_string(),
            panicked: None,
            timed_out_wake: false,
        }
    }
}

#[derive(Default)]
struct LockModel {
    readers: Vec<usize>,
    writer: Option<usize>,
}

/// One scheduling decision, with everything the DFS needs to enumerate
/// its unexplored siblings.
struct Decision {
    /// Number of runnable threads at this point (choice arity).
    arity: usize,
    /// Index chosen, in exploration order (0 = the non-preemptive
    /// default).
    rank: usize,
    /// Whether the previously active thread was still runnable here —
    /// if so, every rank > 0 costs one preemption.
    prev_runnable: bool,
    /// Whether the taken choice was a preemption.
    preemptive: bool,
    /// `tid: op` of the chosen thread, for trace rendering.
    desc: String,
}

struct ExecState {
    threads: Vec<ThreadState>,
    active: Option<usize>,
    locks: HashMap<u64, LockModel>,
    decisions: Vec<Decision>,
    /// Forced choice ranks; decisions beyond this replay the default.
    schedule: Vec<usize>,
    seed: u64,
    timeouts_fired: u64,
    abort: bool,
    complete: bool,
    deadlock: Option<Vec<String>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Shared state of one execution.
pub(crate) struct Exec {
    m: StdMutex<ExecState>,
    cv: StdCondvar,
}

fn lock_state(exec: &Exec) -> StdMutexGuard<'_, ExecState> {
    exec.m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Cheap deterministic mixer for seeded exploration-order shuffles.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn is_runnable(st: &ExecState, tid: usize) -> bool {
    match st.threads[tid].status {
        Status::Ready => true,
        Status::BlockedLock { obj, access } => {
            let model = st.locks.get(&obj);
            match access {
                Access::Exclusive => {
                    model.is_none_or(|l| l.writer.is_none() && l.readers.is_empty())
                }
                Access::Shared => model.is_none_or(|l| l.writer.is_none()),
            }
        }
        Status::BlockedJoin { target } => st.threads[target].status == Status::Finished,
        Status::Running | Status::BlockedCv { .. } | Status::Finished => false,
    }
}

fn runnable_set(st: &ExecState) -> Vec<usize> {
    (0..st.threads.len()).filter(|&t| is_runnable(st, t)).collect()
}

fn blocked_trace(st: &ExecState) -> Vec<String> {
    st.threads
        .iter()
        .enumerate()
        .filter(|(_, th)| th.status != Status::Finished)
        .map(|(t, th)| format!("t{t} blocked at {} ({:?})", th.op, th.status))
        .collect()
}

/// Grants whatever the thread was blocked on and hands it the baton.
fn activate(st: &mut ExecState, tid: usize) {
    if let Status::BlockedLock { obj, access } = st.threads[tid].status {
        let model = st.locks.entry(obj).or_default();
        match access {
            Access::Exclusive => model.writer = Some(tid),
            Access::Shared => model.readers.push(tid),
        }
    }
    st.threads[tid].status = Status::Running;
    st.active = Some(tid);
}

/// Picks the next thread to run: the heart of the explorer. Assumes the
/// caller already parked or finished the previously active thread.
fn schedule_next(st: &mut ExecState) {
    if st.abort || st.complete {
        return;
    }
    loop {
        let runnable = runnable_set(st);
        if runnable.is_empty() {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                st.complete = true;
                return;
            }
            // Timeout escape: a bounded wait may fire, but only when
            // nothing else can move — and it is counted, so tests can
            // assert it never had to.
            let bounded = (0..st.threads.len()).find(|&t| {
                matches!(st.threads[t].status, Status::BlockedCv { bounded: true, .. })
            });
            if let Some(t) = bounded {
                if let Status::BlockedCv { lock, .. } = st.threads[t].status {
                    st.timeouts_fired += 1;
                    st.threads[t].timed_out_wake = true;
                    st.threads[t].status = Status::BlockedLock {
                        obj: lock,
                        access: Access::Exclusive,
                    };
                    continue;
                }
            }
            st.deadlock = Some(blocked_trace(st));
            st.abort = true;
            return;
        }

        // Exploration order: the previously active thread first (the
        // non-preemptive default), then the rest ascending, optionally
        // shuffled by the seed.
        let prev = st.active;
        let mut order = runnable.clone();
        let prev_runnable = prev.is_some_and(|p| order.contains(&p));
        if let Some(p) = prev {
            if let Some(pos) = order.iter().position(|&t| t == p) {
                order.remove(pos);
                if st.seed != 0 && order.len() > 1 {
                    let mut s = splitmix(st.seed ^ st.decisions.len() as u64);
                    for i in (1..order.len()).rev() {
                        s = splitmix(s);
                        order.swap(i, (s as usize) % (i + 1));
                    }
                }
                order.insert(0, p);
            }
        }

        let di = st.decisions.len();
        let rank = st
            .schedule
            .get(di)
            .copied()
            .unwrap_or(0)
            .min(order.len() - 1);
        let chosen = order[rank];
        let preemptive = prev_runnable && Some(chosen) != prev;
        st.decisions.push(Decision {
            arity: order.len(),
            rank,
            prev_runnable,
            preemptive,
            desc: format!("t{chosen}: {}", st.threads[chosen].op),
        });
        activate(st, chosen);
        return;
    }
}

/// Parks the calling thread after a scheduling decision until the baton
/// comes back; returns the state guard so callers can read wake flags.
fn pause<'a>(exec: &'a Exec, mut st: StdMutexGuard<'a, ExecState>, me: usize) -> StdMutexGuard<'a, ExecState> {
    schedule_next(&mut st);
    exec.cv.notify_all();
    while !st.abort && st.active != Some(me) {
        st = exec
            .cv
            .wait(st)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
    if st.abort {
        drop(st);
        panic::panic_any(AbortToken);
    }
    st
}

/// Scheduling point: acquire `obj` with `access`.
pub(crate) fn acquire(cx: &Ctx, obj: u64, access: Access, what: &str) {
    let (exec, me) = cx;
    let mut st = lock_state(exec);
    if st.abort {
        drop(st);
        panic::panic_any(AbortToken);
    }
    st.threads[*me].status = Status::BlockedLock { obj, access };
    st.threads[*me].op = format!("{what} #{obj}");
    let _st = pause(exec, st, *me);
}

/// Model release of `obj`. Not a scheduling point: control stays with
/// the releasing thread until its next blocking operation, which keeps
/// the decision tree small without hiding any lock-protocol bug (every
/// acquire after the release is still a decision).
pub(crate) fn release(cx: &Ctx, obj: u64, access: Access) {
    let (exec, me) = cx;
    let mut st = lock_state(exec);
    let model = st.locks.entry(obj).or_default();
    match access {
        Access::Exclusive => {
            if model.writer == Some(*me) {
                model.writer = None;
            }
        }
        Access::Shared => {
            if let Some(pos) = model.readers.iter().position(|&t| t == *me) {
                model.readers.remove(pos);
            }
        }
    }
}

/// Scheduling point: condvar wait. Atomically releases `lock`, parks on
/// `cv`, and on wake reacquires `lock` in the model. Returns whether
/// the wake was a modeled timeout.
pub(crate) fn cv_wait(cx: &Ctx, cv: u64, lock: u64, bounded: bool) -> bool {
    let (exec, me) = cx;
    let mut st = lock_state(exec);
    if st.abort {
        drop(st);
        panic::panic_any(AbortToken);
    }
    let model = st.locks.entry(lock).or_default();
    if model.writer == Some(*me) {
        model.writer = None;
    }
    st.threads[*me].status = Status::BlockedCv { cv, lock, bounded };
    st.threads[*me].timed_out_wake = false;
    st.threads[*me].op = format!("wait cv#{cv}");
    let st = pause(exec, st, *me);
    st.threads[*me].timed_out_wake
}

/// Scheduling point: wake one or all waiters of `cv`; they move to the
/// lock-reacquisition queue of their respective mutexes.
pub(crate) fn notify(cx: &Ctx, cv: u64, all: bool) {
    let (exec, me) = cx;
    let mut st = lock_state(exec);
    if st.abort {
        drop(st);
        panic::panic_any(AbortToken);
    }
    let mut woken = 0usize;
    for t in 0..st.threads.len() {
        if let Status::BlockedCv { cv: c, lock, .. } = st.threads[t].status {
            if c == cv {
                st.threads[t].status = Status::BlockedLock {
                    obj: lock,
                    access: Access::Exclusive,
                };
                st.threads[t].timed_out_wake = false;
                woken += 1;
                if !all {
                    break;
                }
            }
        }
    }
    st.threads[*me].status = Status::Ready;
    st.threads[*me].op = format!(
        "notify{} cv#{cv} ({woken} woken)",
        if all { "_all" } else { "_one" }
    );
    let _st = pause(exec, st, *me);
}

/// Handle to a checked thread spawned with [`spawn`].
pub struct JoinHandle {
    exec: Arc<Exec>,
    tid: usize,
}

impl JoinHandle {
    /// Scheduling point: blocks until the thread finishes. Returns its
    /// panic message if it panicked — *not* a failure of the execution;
    /// the caller decides what a child panic means.
    pub fn join(self) -> Result<(), String> {
        // Misuse of the checker API is a contract violation; panicking
        // with a precise message is the diagnostic. lint: allow(unwrap)
        let (exec, me) = current_ctx().expect("join called outside a checked execution");
        debug_assert!(Arc::ptr_eq(&exec, &self.exec), "join across executions");
        let mut st = lock_state(&exec);
        if st.abort {
            drop(st);
            panic::panic_any(AbortToken);
        }
        if st.threads[self.tid].status != Status::Finished {
            st.threads[me].status = Status::BlockedJoin { target: self.tid };
            st.threads[me].op = format!("join t{}", self.tid);
            st = pause(&exec, st, me);
        }
        match &st.threads[self.tid].panicked {
            Some(msg) => Err(msg.clone()),
            None => Ok(()),
        }
    }
}

/// Spawns a checked thread inside the current execution. A scheduling
/// point: the child becomes runnable immediately and the explorer
/// decides who goes first.
pub fn spawn<F: FnOnce() + Send + 'static>(f: F) -> JoinHandle {
    // Misuse of the checker API is a contract violation; panicking
    // with a precise message is the diagnostic. lint: allow(unwrap)
    let (exec, me) = current_ctx().expect("spawn called outside a checked execution");
    let mut st = lock_state(&exec);
    if st.abort {
        drop(st);
        panic::panic_any(AbortToken);
    }
    let tid = st.threads.len();
    st.threads.push(ThreadState::new(Status::Ready));
    let exec2 = Arc::clone(&exec);
    st.handles
        .push(std::thread::spawn(move || wrapper(exec2, tid, f)));
    st.threads[me].status = Status::Ready;
    st.threads[me].op = format!("spawn t{tid}");
    let handle = JoinHandle {
        exec: Arc::clone(&exec),
        tid,
    };
    let _st = pause(&exec, st, me);
    handle
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Body run by every checked OS thread: register, wait for the first
/// activation, run, then hand the baton on.
fn wrapper(exec: Arc<Exec>, me: usize, f: impl FnOnce()) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), me)));
    {
        let mut st = lock_state(&exec);
        while !st.abort && st.active != Some(me) {
            st = exec
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if st.abort {
            st.threads[me].status = Status::Finished;
            drop(st);
            exec.cv.notify_all();
            CTX.with(|c| *c.borrow_mut() = None);
            return;
        }
    }
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CTX.with(|c| *c.borrow_mut() = None);
    let mut st = lock_state(&exec);
    st.threads[me].status = Status::Finished;
    if let Err(payload) = result {
        if payload.downcast_ref::<AbortToken>().is_none() {
            st.threads[me].panicked = Some(panic_message(payload.as_ref()));
        }
    }
    if !st.abort && !st.complete {
        schedule_next(&mut st);
    }
    drop(st);
    exec.cv.notify_all();
}

/// Installs (once) a panic hook that silences panics on checked
/// threads: leader-panic scenarios unwind thousands of times per
/// battery and the messages are modeled, not noise for stderr.
fn install_hook() {
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let prev = panic::take_hook();
    panic::set_hook(Box::new(move |info| {
        if current_ctx().is_some() {
            return;
        }
        prev(info);
    }));
}

/// Why an exploration failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// No thread could make progress (includes lost wakeups on
    /// unbounded waits).
    Deadlock,
    /// The root checked thread panicked (an assertion in the closure).
    Panic(String),
    /// The execution exceeded the wall-clock safety net.
    Hang,
}

impl FailureKind {
    fn tag(&self) -> u8 {
        match self {
            FailureKind::Deadlock => 0,
            FailureKind::Panic(_) => 1,
            FailureKind::Hang => 2,
        }
    }
}

/// A failing exploration: the (shrunk) schedule and its decision trace.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// Minimal forced-choice schedule that reproduces it — feed to
    /// [`Explorer::replay`] as a committed regression.
    pub schedule: Vec<usize>,
    /// Every scheduling decision on the failing path, then the blocked
    /// threads (for deadlocks).
    pub trace: Vec<String>,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            FailureKind::Deadlock => writeln!(f, "deadlock under schedule {:?}:", self.schedule)?,
            FailureKind::Panic(m) => {
                writeln!(f, "root panic under schedule {:?}: {m}", self.schedule)?
            }
            FailureKind::Hang => writeln!(f, "hang under schedule {:?}:", self.schedule)?,
        }
        for line in &self.trace {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

/// Outcome of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Executions run during exploration (shrinking replays excluded).
    pub executions: usize,
    /// Executions in which at least one modeled `wait_timeout` fired —
    /// i.e. a thread was saved by its bounded-timeout fallback. Zero
    /// means no notification was ever lost.
    pub timeout_executions: usize,
    /// Whether the bounded-preemption frontier was fully explored.
    pub complete: bool,
    /// The first failure found, if any (shrunk to a minimal schedule).
    pub failure: Option<Failure>,
}

impl Report {
    /// `true` when no failure was found.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }

    /// Panics with the rendered failure if one was found.
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "interleave check failed after {} executions:\n{f}",
                self.executions
            );
        }
        assert!(
            self.complete,
            "exploration frontier not exhausted within the execution budget"
        );
    }
}

/// What the DFS needs to know about one taken decision.
#[derive(Clone, Copy)]
struct DecisionLite {
    rank: usize,
    arity: usize,
    prev_runnable: bool,
    preemptive: bool,
}

struct ExecOutcome {
    decisions: Vec<DecisionLite>,
    trace: Vec<String>,
    timeouts: u64,
    failure: Option<FailureKind>,
}

impl ExecOutcome {
    fn ranks(&self) -> Vec<usize> {
        self.decisions.iter().map(|d| d.rank).collect()
    }
}

/// The deterministic bounded-preemption explorer.
pub struct Explorer {
    bound: usize,
    max_executions: usize,
    seed: u64,
    safety_net: Duration,
}

impl Explorer {
    /// An explorer with the given preemption bound. Bound 2–3 is
    /// exhaustive-in-practice for protocol-sized tests.
    pub fn new(preemption_bound: usize) -> Explorer {
        Explorer {
            bound: preemption_bound,
            max_executions: 100_000,
            seed: 0,
            safety_net: Duration::from_secs(10),
        }
    }

    /// Caps the number of explored executions (default 100 000).
    pub fn max_executions(mut self, n: usize) -> Explorer {
        self.max_executions = n;
        self
    }

    /// Deterministically shuffles the exploration order of
    /// non-default choices. Seed 0 (the default) keeps ascending
    /// thread-id order; any seed explores the same frontier in a
    /// different order, which varies *which* counterexample surfaces
    /// first without sacrificing reproducibility.
    pub fn seed(mut self, seed: u64) -> Explorer {
        self.seed = seed;
        self
    }

    /// Explores every schedule of `body` within the preemption bound.
    pub fn check<F: Fn() + Send + Sync + 'static>(&self, body: F) -> Report {
        install_hook();
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
        let mut schedule: Vec<usize> = Vec::new();
        let mut executions = 0usize;
        let mut timeout_executions = 0usize;
        loop {
            executions += 1;
            let out = self.run_once(&body, &schedule);
            if out.timeouts > 0 {
                timeout_executions += 1;
            }
            if let Some(kind) = out.failure.clone() {
                let failure = self.shrink(&body, out.ranks(), kind);
                return Report {
                    executions,
                    timeout_executions,
                    complete: false,
                    failure: Some(failure),
                };
            }
            match next_schedule(&out, self.bound) {
                Some(next) => schedule = next,
                None => {
                    return Report {
                        executions,
                        timeout_executions,
                        complete: true,
                        failure: None,
                    }
                }
            }
            if executions >= self.max_executions {
                return Report {
                    executions,
                    timeout_executions,
                    complete: false,
                    failure: None,
                };
            }
        }
    }

    /// Replays one specific schedule (e.g. a committed minimal
    /// counterexample) and returns its failure, if it still fails.
    pub fn replay<F: Fn() + Send + Sync + 'static>(
        &self,
        schedule: &[usize],
        body: F,
    ) -> Option<Failure> {
        install_hook();
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
        let out = self.run_once(&body, schedule);
        out.failure.map(|kind| Failure {
            kind,
            schedule: schedule.to_vec(),
            trace: out.trace,
        })
    }

    fn run_once(&self, body: &Arc<dyn Fn() + Send + Sync>, schedule: &[usize]) -> ExecOutcome {
        let exec = Arc::new(Exec {
            m: StdMutex::new(ExecState {
                threads: vec![ThreadState::new(Status::Running)],
                active: Some(0),
                locks: HashMap::new(),
                decisions: Vec::new(),
                schedule: schedule.to_vec(),
                seed: self.seed,
                timeouts_fired: 0,
                abort: false,
                complete: false,
                deadlock: None,
                handles: Vec::new(),
            }),
            cv: StdCondvar::new(),
        });

        let b = Arc::clone(body);
        let e2 = Arc::clone(&exec);
        let root = std::thread::spawn(move || wrapper(e2, 0, move || b()));

        let mut hang = false;
        {
            let mut st = lock_state(&exec);
            st.handles.push(root);
            let deadline = std::time::Instant::now() + self.safety_net;
            while !st.complete && !st.abort {
                let left = deadline.saturating_duration_since(std::time::Instant::now());
                if left.is_zero() {
                    hang = true;
                    st.abort = true;
                    break;
                }
                let (g, _) = exec
                    .cv
                    .wait_timeout(st, left)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                st = g;
            }
        }
        exec.cv.notify_all();

        let handles = {
            let mut st = lock_state(&exec);
            std::mem::take(&mut st.handles)
        };
        for h in handles {
            let _ = h.join();
        }

        let st = lock_state(&exec);
        let decisions: Vec<DecisionLite> = st
            .decisions
            .iter()
            .map(|d| DecisionLite {
                rank: d.rank,
                arity: d.arity,
                prev_runnable: d.prev_runnable,
                preemptive: d.preemptive,
            })
            .collect();
        let mut trace: Vec<String> = st.decisions.iter().map(|d| d.desc.clone()).collect();
        let failure = if hang {
            Some(FailureKind::Hang)
        } else if let Some(lines) = &st.deadlock {
            trace.extend(lines.iter().cloned());
            Some(FailureKind::Deadlock)
        } else {
            st.threads[0].panicked.clone().map(FailureKind::Panic)
        };
        ExecOutcome {
            decisions,
            trace,
            timeouts: st.timeouts_fired,
            failure,
        }
    }

    /// Greedy schedule shrink: truncate the forced suffix, then zero
    /// individual choices, keeping every candidate that still fails the
    /// same way. Deterministic replay makes this sound.
    fn shrink(
        &self,
        body: &Arc<dyn Fn() + Send + Sync>,
        ranks: Vec<usize>,
        kind: FailureKind,
    ) -> Failure {
        let tag = kind.tag();
        let mut best = trim_zeros(ranks);
        let mut budget = 500usize;
        let reproduce = |s: &[usize], budget: &mut usize| -> Option<ExecOutcome> {
            if *budget == 0 {
                return None;
            }
            *budget -= 1;
            let out = self.run_once(body, s);
            match &out.failure {
                Some(k) if k.tag() == tag => Some(out),
                _ => None,
            }
        };
        loop {
            let mut improved = false;
            // Truncation: drop trailing forced choices.
            while !best.is_empty() {
                let cand = trim_zeros(best[..best.len() - 1].to_vec());
                if cand.len() == best.len() {
                    break;
                }
                if reproduce(&cand, &mut budget).is_some() {
                    best = cand;
                    improved = true;
                } else {
                    break;
                }
            }
            // Zeroing: replace forced choices with the default.
            for i in (0..best.len()).rev() {
                if best[i] == 0 {
                    continue;
                }
                let mut cand = best.clone();
                cand[i] = 0;
                let cand = trim_zeros(cand);
                if reproduce(&cand, &mut budget).is_some() {
                    best = cand;
                    improved = true;
                }
            }
            if !improved || budget == 0 {
                break;
            }
        }
        // Final replay to capture the minimal trace (the failure must
        // still reproduce: `best` only ever moved between reproducing
        // schedules).
        let out = self.run_once(body, &best);
        let (kind, trace) = match out.failure {
            Some(k) => (k, out.trace),
            None => (kind, vec!["(shrunk schedule raced; trace unavailable)".into()]),
        };
        Failure {
            kind,
            schedule: best,
            trace,
        }
    }
}

fn trim_zeros(mut v: Vec<usize>) -> Vec<usize> {
    while v.last() == Some(&0) {
        v.pop();
    }
    v
}

/// The DFS frontier step: backtrack to the deepest decision of the
/// taken path that has an unexplored sibling whose preemption cost
/// stays within `bound`, and return the forced-choice prefix selecting
/// it. `None` when the frontier is exhausted.
fn next_schedule(out: &ExecOutcome, bound: usize) -> Option<Vec<usize>> {
    let ds = &out.decisions;
    // Preemptions taken strictly before decision i.
    let mut preempts_before = vec![0usize; ds.len()];
    let mut acc = 0usize;
    for (i, d) in ds.iter().enumerate() {
        preempts_before[i] = acc;
        if d.preemptive {
            acc += 1;
        }
    }
    for i in (0..ds.len()).rev() {
        let d = ds[i];
        if d.rank + 1 >= d.arity {
            continue;
        }
        // rank > 0 with the previous thread runnable is a preemption;
        // if the previous thread was blocked every sibling is free.
        if d.prev_runnable && preempts_before[i] + 1 > bound {
            continue;
        }
        let mut sched: Vec<usize> = ds[..i].iter().map(|p| p.rank).collect();
        sched.push(d.rank + 1);
        return Some(sched);
    }
    None
}

#[cfg(all(test, feature = "interleave_check"))]
mod tests {
    use super::*;
    use crate::sync::{lock_or_recover, Condvar, Mutex};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn counter_increments_are_serialized() {
        // Two threads incrementing under a mutex: every interleaving
        // must end at 2. Also pins the execution count so the frontier
        // size itself is deterministic.
        let report = Explorer::new(2).check(|| {
            let m = Arc::new(Mutex::new(0u64));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    spawn(move || {
                        let mut g = lock_or_recover(&m);
                        *g += 1;
                    })
                })
                .collect();
            for h in hs {
                h.join().expect("no child panic");
            }
            assert_eq!(*lock_or_recover(&m), 2);
        });
        report.assert_ok();
        assert!(report.executions > 1, "must explore more than one schedule");
        assert_eq!(report.timeout_executions, 0);
    }

    #[test]
    fn ab_ba_deadlock_is_found_and_shrunk() {
        let report = Explorer::new(2).check(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = spawn(move || {
                let _ga = lock_or_recover(&a2);
                let _gb = lock_or_recover(&b2);
            });
            {
                let _gb = lock_or_recover(&b);
                let _ga = lock_or_recover(&a);
            }
            let _ = t.join();
        });
        let failure = report.failure.expect("AB-BA inversion must deadlock");
        assert_eq!(failure.kind, FailureKind::Deadlock);
        // The minimal counterexample needs exactly one non-default
        // choice (one preemption between the two first acquires); the
        // shrinker trims trailing defaults, so the forced choice is
        // the last entry.
        assert!(
            failure.schedule.len() <= 3,
            "schedule not minimal: {:?}",
            failure.schedule
        );
        assert_eq!(
            failure.schedule.iter().filter(|&&r| r != 0).count(),
            1,
            "one preemption suffices: {:?}",
            failure.schedule
        );
        assert!(!failure.trace.is_empty());
    }

    #[test]
    fn lost_notification_on_unbounded_wait_is_a_deadlock() {
        // Classic check-then-park race: the waiter samples the flag,
        // *drops the lock*, and only then parks. If the setter's
        // set+notify lands in that gap, the notification wakes nobody
        // and the unbounded wait never returns — exactly the bug shape
        // LOCK002 exists to flag statically.
        let report = Explorer::new(2).check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let setter = spawn(move || {
                let (m, cv) = &*p2;
                *lock_or_recover(m) = true;
                cv.notify_one();
            });
            let (m, cv) = &*pair;
            let ready = *lock_or_recover(m); // guard dropped here
            if !ready {
                let g = lock_or_recover(m);
                // Deliberately no predicate re-check and no
                // `wait_timeout` fallback: on the lost-notify schedule
                // this parks forever, which the model reports as a
                // deadlock.
                let _g = cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            let _ = setter.join();
        });
        let failure = report.failure.expect("lost notification must be caught");
        assert_eq!(failure.kind, FailureKind::Deadlock);
    }

    #[test]
    fn bounded_wait_escapes_and_is_counted() {
        // The same racy park, but with a bounded wait: the schedule
        // that loses the notification no longer deadlocks — the
        // modeled timeout fires (only when nothing else can run) and
        // is counted, so the report quantifies exactly how often the
        // safety net was needed. This is the LOCK002 rationale: on
        // client-blockable paths a bounded fallback turns a lost
        // wakeup from a hang into a recoverable, observable event.
        let report = Explorer::new(2).check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let setter = spawn(move || {
                let (m, cv) = &*p2;
                *lock_or_recover(m) = true;
                cv.notify_one();
            });
            let (m, cv) = &*pair;
            let ready = *lock_or_recover(m); // guard dropped here
            if !ready {
                let g = lock_or_recover(m);
                // Still no predicate re-check before parking (the
                // lost-notify bug is intact) — but bounded, so the
                // model can escape.
                let (g, _t) = cv
                    .wait_timeout(g, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                assert!(*g, "woken (or timed out) only after the flag was set");
            }
            let _ = setter.join();
        });
        report.assert_ok();
        assert!(
            report.timeout_executions > 0,
            "the lost-notify schedule must have been escaped via timeout"
        );
    }

    #[test]
    fn child_panic_is_reported_via_join_not_as_failure() {
        let report = Explorer::new(1).check(|| {
            let t = spawn(|| panic!("leader died"));
            let err = t.join().expect_err("child panicked");
            assert!(err.contains("leader died"), "got: {err}");
        });
        report.assert_ok();
    }

    #[test]
    fn root_assertion_failure_is_reported_with_schedule() {
        // A flag written without synchronization against the read:
        // some schedule sees 0, which the closure asserts against.
        let report = Explorer::new(2).check(|| {
            let m = Arc::new(Mutex::new(0u64));
            let m2 = Arc::clone(&m);
            let t = spawn(move || {
                *lock_or_recover(&m2) = 1;
            });
            let seen = *lock_or_recover(&m);
            let _ = t.join();
            assert_eq!(seen, 1, "read raced the write");
        });
        match report.failure {
            Some(Failure {
                kind: FailureKind::Panic(msg),
                ..
            }) => assert!(msg.contains("read raced the write"), "got: {msg}"),
            other => panic!("expected a root panic, got {other:?}"),
        }
    }

    #[test]
    fn exploration_is_deterministic() {
        fn body() -> (usize, Option<Vec<usize>>) {
            let report = Explorer::new(2).check(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t = spawn(move || {
                    let _ga = lock_or_recover(&a2);
                    let _gb = lock_or_recover(&b2);
                });
                {
                    let _gb = lock_or_recover(&b);
                    let _ga = lock_or_recover(&a);
                }
                let _ = t.join();
            });
            (
                report.executions,
                report.failure.map(|f| f.schedule),
            )
        }
        let first = body();
        for _ in 0..3 {
            assert_eq!(body(), first, "same program, same exploration");
        }
    }

    #[test]
    fn replay_reproduces_a_minimized_schedule() {
        let make = || {
            let flag = Arc::new(AtomicUsize::new(0));
            move || {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t = spawn(move || {
                    let _ga = lock_or_recover(&a2);
                    let _gb = lock_or_recover(&b2);
                });
                {
                    let _gb = lock_or_recover(&b);
                    let _ga = lock_or_recover(&a);
                }
                let _ = t.join();
                flag.fetch_add(1, Ordering::Relaxed);
            }
        };
        let report = Explorer::new(2).check(make());
        let found = report.failure.expect("deadlock");
        let replayed = Explorer::new(2)
            .replay(&found.schedule, make())
            .expect("minimized schedule must reproduce the deadlock");
        assert_eq!(replayed.kind, FailureKind::Deadlock);
    }

    #[test]
    fn seeded_exploration_still_finds_the_bug() {
        for seed in [1u64, 7, 42] {
            let report = Explorer::new(2).seed(seed).check(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t = spawn(move || {
                    let _ga = lock_or_recover(&a2);
                    let _gb = lock_or_recover(&b2);
                });
                {
                    let _gb = lock_or_recover(&b);
                    let _ga = lock_or_recover(&a);
                }
                let _ = t.join();
            });
            assert!(
                matches!(
                    report.failure,
                    Some(Failure {
                        kind: FailureKind::Deadlock,
                        ..
                    })
                ),
                "seed {seed} must still find the AB-BA deadlock"
            );
        }
    }

    #[test]
    fn rwlock_readers_share_and_writer_excludes() {
        let report = Explorer::new(2).check(|| {
            let l = Arc::new(crate::sync::RwLock::new(0u64));
            let (l2, l3) = (Arc::clone(&l), Arc::clone(&l));
            let w = spawn(move || {
                *crate::sync::write_or_recover(&l2) = 7;
            });
            let r = spawn(move || {
                let v = *crate::sync::read_or_recover(&l3);
                assert!(v == 0 || v == 7, "torn read: {v}");
            });
            w.join().expect("writer ok");
            r.join().expect("reader ok");
            assert_eq!(*crate::sync::read_or_recover(&l), 7);
        });
        report.assert_ok();
    }
}
