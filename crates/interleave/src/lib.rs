//! Checkable synchronization for the serve/cache substrate.
//!
//! Two halves:
//!
//! * [`sync`] — drop-in `Mutex` / `RwLock` / `Condvar` / `AtomicU64`
//!   plus the workspace-wide poison-recovery helpers
//!   ([`sync::lock_or_recover`] and friends). Without the
//!   `interleave_check` feature these are plain re-exports of
//!   `std::sync` — zero cost, zero behavioural change.
//! * [`check`] — available only with `--features interleave_check`: a
//!   deterministic loom-lite model checker. [`check::Explorer`] runs a
//!   closure under a cooperative scheduler that enumerates thread
//!   interleavings by DFS over a bounded-preemption frontier, reports
//!   deadlocks / lost notifications / assertion failures, and shrinks
//!   any failing schedule to a minimal replayable trace.
//!
//! Because the feature flag swaps the types that *other* crates compile
//! against (cargo feature unification), running
//!
//! ```text
//! cargo test -p interleave --features interleave_check
//! ```
//!
//! rebuilds `serve` and `collectives` on the instrumented shims and
//! puts the real dispatcher coalescing protocol — not a model of it —
//! under exhaustive scheduling. See DESIGN.md §13 for the semantics and
//! the declared lock hierarchy the static analyzer checks against.

pub mod sync;

#[cfg(feature = "interleave_check")]
pub mod check;
