//! The checkable sync facade.
//!
//! Code that wants its concurrency model-checked imports
//! `interleave::sync::{Mutex, RwLock, Condvar, AtomicU64}` instead of
//! `std::sync::*`. Without the `interleave_check` feature these are
//! **zero-cost re-exports of the std types** — no wrapper, no branch,
//! byte-for-byte the binary you had before. With the feature, they are
//! instrumented shims: every acquire, condvar wait and notify becomes a
//! scheduling point of the deterministic explorer in [`crate::check`],
//! so a test can drive the code through *every* interleaving up to a
//! preemption bound instead of the one the OS happens to pick.
//!
//! Threads that are not part of an active exploration (including all
//! threads when no [`crate::check::Explorer`] is running) fall through
//! to plain std behaviour even when the feature is on.
//!
//! [`AtomicU64`] is re-exported unshimmed in both modes: under the
//! cooperative scheduler exactly one thread runs at a time, so atomic
//! operations are already sequentially consistent per execution and add
//! no scheduling decisions worth exploring (they are monotonic counters
//! everywhere in this workspace).
//!
//! # Poisoned-lock policy
//!
//! [`lock_or_recover`] (and the RwLock twins) are the workspace-wide
//! answer to lock poisoning: a panicked client thread must not wedge
//! the daemon, so instead of propagating the poison panic to every
//! subsequent locker, callers take the guard anyway. This is sound for
//! every protected structure in the serve/cache substrate because each
//! one is kept consistent *per statement* (single inserts/removes into
//! maps, whole-value slot writes) — there is no multi-step invariant a
//! panic can tear in a way later readers would misinterpret, and the
//! flight protocol additionally publishes an explicit failure marker
//! from the leader's unwind path (see `serve::coalesce`).

pub use std::sync::atomic::AtomicU64;

#[cfg(not(feature = "interleave_check"))]
pub use std::sync::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(feature = "interleave_check")]
pub use shim::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

use std::sync::PoisonError;

/// Locks `m`, recovering the guard from a poisoned mutex instead of
/// panicking. See the module docs for why recovery is sound here.
pub fn lock_or_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks `l`, recovering from poison instead of panicking.
pub fn read_or_recover<T: ?Sized>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks `l`, recovering from poison instead of panicking.
pub fn write_or_recover<T: ?Sized>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// The instrumented shims. Each primitive wraps the real std primitive
/// (which provides safe storage, poisoning, and actual mutual exclusion
/// for unregistered threads) plus a process-unique id the scheduler's
/// lock model is keyed on. Registered threads ask the model before
/// touching the std primitive, so a model grant is always uncontended
/// in std terms.
#[cfg(feature = "interleave_check")]
mod shim {
    use crate::check::{self, Access, Ctx};
    use std::fmt;
    use std::ops::{Deref, DerefMut};
    use std::sync::atomic::{AtomicU64 as IdCounter, Ordering};
    use std::sync::{LockResult, PoisonError};
    use std::time::Duration;

    fn next_id() -> u64 {
        static NEXT: IdCounter = IdCounter::new(1);
        NEXT.fetch_add(1, Ordering::Relaxed)
    }

    /// Outcome of a [`Condvar::wait_timeout`]: mirrors
    /// `std::sync::WaitTimeoutResult` (which has no public
    /// constructor), exposing only [`WaitTimeoutResult::timed_out`].
    #[derive(Debug, Clone, Copy)]
    pub struct WaitTimeoutResult {
        timed_out: bool,
    }

    impl WaitTimeoutResult {
        /// `true` when the wait ended by timeout rather than a notify.
        pub fn timed_out(&self) -> bool {
            self.timed_out
        }
    }

    /// An instrumented mutex: API-compatible with `std::sync::Mutex`
    /// for the operations the workspace uses.
    pub struct Mutex<T: ?Sized> {
        id: u64,
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// A fresh mutex holding `value`.
        pub fn new(value: T) -> Mutex<T> {
            Mutex {
                id: next_id(),
                inner: std::sync::Mutex::new(value),
            }
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock; a scheduling point under exploration.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            let model = check::current_ctx();
            if let Some(cx) = &model {
                check::acquire(cx, self.id, Access::Exclusive, "lock");
            }
            wrap_lock(self.inner.lock(), self, model)
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Mutex").field("id", &self.id).finish_non_exhaustive()
        }
    }

    fn wrap_lock<'a, T: ?Sized>(
        res: LockResult<std::sync::MutexGuard<'a, T>>,
        lock: &'a Mutex<T>,
        model: Option<Ctx>,
    ) -> LockResult<MutexGuard<'a, T>> {
        match res {
            Ok(std) => Ok(MutexGuard {
                lock,
                std: Some(std),
                model,
            }),
            Err(poisoned) => Err(PoisonError::new(MutexGuard {
                lock,
                std: Some(poisoned.into_inner()),
                model,
            })),
        }
    }

    /// Guard of an instrumented [`Mutex`]. Releases the model lock (and
    /// the underlying std lock) on drop.
    pub struct MutexGuard<'a, T: ?Sized> {
        lock: &'a Mutex<T>,
        std: Option<std::sync::MutexGuard<'a, T>>,
        model: Option<Ctx>,
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // lint: allow(unwrap) — `std` is Some for every live guard
            self.std.as_ref().unwrap()
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // lint: allow(unwrap) — `std` is Some for every live guard
            self.std.as_mut().unwrap()
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release the real lock first, then the model lock: by the
            // time another model thread is granted this lock (only ever
            // at a scheduling point, after this whole fn returned), the
            // std mutex is free.
            self.std = None;
            if let Some(cx) = self.model.take() {
                check::release(&cx, self.lock.id, Access::Exclusive);
            }
        }
    }

    /// An instrumented condition variable.
    pub struct Condvar {
        id: u64,
        inner: std::sync::Condvar,
    }

    impl Default for Condvar {
        fn default() -> Condvar {
            Condvar::new()
        }
    }

    impl Condvar {
        /// A fresh condvar.
        pub fn new() -> Condvar {
            Condvar {
                id: next_id(),
                inner: std::sync::Condvar::new(),
            }
        }

        /// Blocks until notified; a scheduling point under exploration.
        /// Modeled as an *unbounded* wait: a lost notification shows up
        /// as a deadlock in the explorer's report.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            match self.wait_inner(guard, None) {
                Ok((g, _)) => Ok(g),
                Err(p) => {
                    let (g, _) = p.into_inner();
                    Err(PoisonError::new(g))
                }
            }
        }

        /// Blocks until notified or (conceptually) `dur` elapses. Under
        /// exploration the timeout never fires on real time: it is a
        /// transition the scheduler enables **only when every thread is
        /// otherwise blocked**, and each firing is counted in the
        /// report so tests can assert no wakeup was lost.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            self.wait_inner(guard, Some(dur))
        }

        fn wait_inner<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Option<Duration>,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            let lock = guard.lock;
            let (std, model) = dismantle(guard);
            match model {
                None => {
                    // Unregistered thread: plain std condvar semantics.
                    // lint: allow(unwrap) — `std` is Some for every live guard
                    let std = std.unwrap();
                    let (res, timed_out) = match dur {
                        Some(d) => match self.inner.wait_timeout(std, d) {
                            Ok((g, t)) => (Ok(g), t.timed_out()),
                            Err(p) => {
                                let (g, t) = p.into_inner();
                                (Err(PoisonError::new(g)), t.timed_out())
                            }
                        },
                        None => match self.inner.wait(std) {
                            Ok(g) => (Ok(g), false),
                            Err(p) => (Err(PoisonError::new(p.into_inner())), false),
                        },
                    };
                    finish_wait(res, lock, None, timed_out)
                }
                Some(cx) => {
                    // Model wait: drop the real guard first (std locks
                    // are not reentrant and another granted thread may
                    // take it while we are parked), then let the model
                    // own the interleaving entirely.
                    drop(std);
                    let timed_out = check::cv_wait(&cx, self.id, lock.id, dur.is_some());
                    // The model re-granted `lock` to this thread; the
                    // std lock is necessarily uncontended now.
                    finish_wait(lock.inner.lock(), lock, Some(cx), timed_out)
                }
            }
        }

        /// Wakes one waiter; a scheduling point under exploration.
        pub fn notify_one(&self) {
            match check::current_ctx() {
                Some(cx) => check::notify(&cx, self.id, false),
                None => self.inner.notify_one(),
            }
        }

        /// Wakes all waiters; a scheduling point under exploration.
        pub fn notify_all(&self) {
            match check::current_ctx() {
                Some(cx) => check::notify(&cx, self.id, true),
                None => self.inner.notify_all(),
            }
        }
    }

    impl fmt::Debug for Condvar {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Condvar").field("id", &self.id).finish()
        }
    }

    /// Takes a guard apart without running its release logic: the real
    /// guard (dropped by the caller as needed) and the model context.
    fn dismantle<'a, T: ?Sized>(
        mut guard: MutexGuard<'a, T>,
    ) -> (Option<std::sync::MutexGuard<'a, T>>, Option<Ctx>) {
        (guard.std.take(), guard.model.take())
    }

    fn finish_wait<'a, T: ?Sized>(
        relock: LockResult<std::sync::MutexGuard<'a, T>>,
        lock: &'a Mutex<T>,
        model: Option<Ctx>,
        timed_out: bool,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let t = WaitTimeoutResult { timed_out };
        match wrap_lock(relock, lock, model) {
            Ok(g) => Ok((g, t)),
            Err(p) => Err(PoisonError::new((p.into_inner(), t))),
        }
    }

    /// An instrumented reader-writer lock.
    pub struct RwLock<T: ?Sized> {
        id: u64,
        inner: std::sync::RwLock<T>,
    }

    impl<T> RwLock<T> {
        /// A fresh rwlock holding `value`.
        pub fn new(value: T) -> RwLock<T> {
            RwLock {
                id: next_id(),
                inner: std::sync::RwLock::new(value),
            }
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquires a shared read guard; a scheduling point under
        /// exploration.
        pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
            let model = check::current_ctx();
            if let Some(cx) = &model {
                check::acquire(cx, self.id, Access::Shared, "read");
            }
            match self.inner.read() {
                Ok(std) => Ok(RwLockReadGuard {
                    lock: self,
                    std: Some(std),
                    model,
                }),
                Err(p) => Err(PoisonError::new(RwLockReadGuard {
                    lock: self,
                    std: Some(p.into_inner()),
                    model,
                })),
            }
        }

        /// Acquires the exclusive write guard; a scheduling point under
        /// exploration.
        pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
            let model = check::current_ctx();
            if let Some(cx) = &model {
                check::acquire(cx, self.id, Access::Exclusive, "write");
            }
            match self.inner.write() {
                Ok(std) => Ok(RwLockWriteGuard {
                    lock: self,
                    std: Some(std),
                    model,
                }),
                Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                    lock: self,
                    std: Some(p.into_inner()),
                    model,
                })),
            }
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("RwLock").field("id", &self.id).finish_non_exhaustive()
        }
    }

    /// Shared guard of an instrumented [`RwLock`].
    pub struct RwLockReadGuard<'a, T: ?Sized> {
        lock: &'a RwLock<T>,
        std: Option<std::sync::RwLockReadGuard<'a, T>>,
        model: Option<Ctx>,
    }

    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // lint: allow(unwrap) — `std` is Some for every live guard
            self.std.as_ref().unwrap()
        }
    }

    impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            self.std = None;
            if let Some(cx) = self.model.take() {
                check::release(&cx, self.lock.id, Access::Shared);
            }
        }
    }

    /// Exclusive guard of an instrumented [`RwLock`].
    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        lock: &'a RwLock<T>,
        std: Option<std::sync::RwLockWriteGuard<'a, T>>,
        model: Option<Ctx>,
    }

    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // lint: allow(unwrap) — `std` is Some for every live guard
            self.std.as_ref().unwrap()
        }
    }

    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // lint: allow(unwrap) — `std` is Some for every live guard
            self.std.as_mut().unwrap()
        }
    }

    impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            self.std = None;
            if let Some(cx) = self.model.take() {
                check::release(&cx, self.lock.id, Access::Exclusive);
            }
        }
    }
}
