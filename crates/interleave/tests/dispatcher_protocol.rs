//! Exhaustive interleaving checks of the serve coalescing protocol.
//!
//! These tests only exist under `--features interleave_check`: the
//! feature swaps `interleave::sync` to the instrumented shims, and
//! cargo feature unification rebuilds `serve` and `collectives` (dev
//! dependencies of this crate) against them — so the flights, caches
//! and condvars being explored here are the *production* types, not a
//! model of them.
//!
//! Each test drives a protocol scenario through every schedule up to
//! preemption bound 2–3 and asserts the three contract properties from
//! `serve::coalesce`:
//!
//! * deadlock freedom (the explorer reports any all-blocked state),
//! * no lost notifications (`timeout_executions == 0`: no follower
//!   ever needed its bounded `wait_timeout` fallback), and
//! * byte-identical coalesced responses (leader and followers return
//!   the same value).
//!
//! The `broken_*` tests are the mutation check: deliberately wrong
//! protocol variants must make the explorer produce a failure with a
//! minimal replayable schedule — proving the battery would catch a
//! real regression in the flight protocol.

#![cfg(feature = "interleave_check")]

use collectives::ShardedCache;
use interleave::check::{spawn, Explorer, FailureKind};
use interleave::sync::{lock_or_recover, Condvar, Mutex};
use serve::{BoundedFifoCache, FlightMap, FlightOutcome};
use std::sync::Arc;

/// Renders an outcome for byte-comparison across threads.
fn outcome_value(o: FlightOutcome<String>) -> String {
    match o {
        FlightOutcome::Led(v) | FlightOutcome::Followed(v) => v,
        FlightOutcome::LeaderFailed => "LEADER_FAILED".to_string(),
    }
}

#[test]
fn coalescing_two_threads_identical_bytes() {
    // Two concurrent requests for one key: every interleaving must end
    // with both threads holding byte-identical responses, exactly one
    // computation unless the flights never overlapped, no deadlock and
    // no lost notification.
    let report = Explorer::new(3).check(|| {
        let map = Arc::new(FlightMap::<String>::new());
        let computed = Arc::new(Mutex::new(0u32));
        let (m2, c2) = (Arc::clone(&map), Arc::clone(&computed));
        let t = spawn(move || {
            let v = outcome_value(m2.run_or_follow(42, || {
                *lock_or_recover(&c2) += 1;
                "response-bytes".to_string()
            }));
            assert_eq!(v, "response-bytes");
        });
        let v = outcome_value(map.run_or_follow(42, || {
            *lock_or_recover(&computed) += 1;
            "response-bytes".to_string()
        }));
        assert_eq!(v, "response-bytes");
        t.join().expect("no panic in the second requester");
        let n = *lock_or_recover(&computed);
        assert!(n == 1 || n == 2, "at most one computation per flight window");
        assert_eq!(map.open(), 0, "every flight must be cleared");
    });
    report.assert_ok();
    assert_eq!(
        report.timeout_executions, 0,
        "a follower needed its timeout fallback: a notification was lost"
    );
}

#[test]
fn coalescing_three_threads_identical_bytes() {
    // Three requesters, preemption bound 2: the follower queue can hold
    // two parked threads when the leader publishes; notify_all must
    // wake both.
    let report = Explorer::new(2).max_executions(50_000).check(|| {
        let map = Arc::new(FlightMap::<String>::new());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let map = Arc::clone(&map);
                spawn(move || {
                    let v = outcome_value(map.run_or_follow(7, || "shared".to_string()));
                    assert_eq!(v, "shared");
                })
            })
            .collect();
        let v = outcome_value(map.run_or_follow(7, || "shared".to_string()));
        assert_eq!(v, "shared");
        for h in handles {
            h.join().expect("requester ok");
        }
        assert_eq!(map.open(), 0);
    });
    report.assert_ok();
    assert_eq!(report.timeout_executions, 0, "lost notification");
}

#[test]
fn leader_panic_frees_followers_and_the_key() {
    // The leader-panic race from ISSUE 9: under every schedule the
    // follower must observe either the healthy value (it led, or it
    // followed a flight that resolved before the panicking leader's —
    // impossible here with one flight, but the contract allows it) or
    // `LeaderFailed` — never a hang. The key must be reusable after.
    let report = Explorer::new(2).check(|| {
        let map = Arc::new(FlightMap::<String>::new());
        let m2 = Arc::clone(&map);
        let leader = spawn(move || {
            let _ = m2.run_or_follow(9, || -> String { panic!("leader died mid-flight") });
        });
        let follower_saw = match map.run_or_follow(9, || "healthy".to_string()) {
            FlightOutcome::Led(v) | FlightOutcome::Followed(v) => v,
            FlightOutcome::LeaderFailed => {
                // Re-dispatch, as the Dispatcher does: the panicked
                // leader's unwind cleared the flight, so the retry
                // leads a healthy one.
                outcome_value(map.run_or_follow(9, || "healthy".to_string()))
            }
        };
        assert_eq!(follower_saw, "healthy");
        // Which thread led is schedule-dependent: if the panicking
        // closure actually led, its thread unwound (join reports the
        // panic); if it coalesced onto the healthy flight first, it
        // returned normally. Both are correct — what may never happen
        // is a hang or a stale flight.
        if let Err(err) = leader.join() {
            assert!(err.contains("leader died"), "got: {err}");
        }
        assert_eq!(map.open(), 0, "the unwind path must clear the flight");
    });
    report.assert_ok();
    assert_eq!(report.timeout_executions, 0, "lost notification");
}

#[test]
fn eviction_races_publication_coherently() {
    // The cache-eviction race: one thread leads a flight that inserts
    // into a capacity-1 response cache (as `Dispatcher::cached_dispatch`
    // does inside the flight); a second thread concurrently inserts a
    // different key, evicting the first. Every interleaving must leave
    // the cache internally consistent (len == 1, the surviving entry
    // intact) and both threads with correct values.
    let report = Explorer::new(2).check(|| {
        let cache = Arc::new(Mutex::new(BoundedFifoCache::<String>::new(1)));
        let map = Arc::new(FlightMap::<String>::new());
        let c2 = Arc::clone(&cache);
        let evictor = spawn(move || {
            lock_or_recover(&c2).insert(2, "evictor".to_string());
        });
        let led = outcome_value(map.run_or_follow(1, || {
            let v = "published".to_string();
            lock_or_recover(&cache).insert(1, v.clone());
            v
        }));
        assert_eq!(led, "published");
        evictor.join().expect("evictor ok");
        let cache = lock_or_recover(&cache);
        assert_eq!(cache.len(), 1, "capacity-1 cache holds exactly the survivor");
        let survivor_coherent = match (cache.get(1), cache.get(2)) {
            (Some(v), None) => v == "published",
            (None, Some(v)) => v == "evictor",
            _ => false,
        };
        assert!(survivor_coherent, "torn cache state");
    });
    report.assert_ok();
    assert_eq!(report.timeout_executions, 0, "lost notification");
}

#[test]
fn sharded_cache_same_key_race_is_consistent() {
    // Two threads racing `get_or_insert_with` on one key of the
    // process-global memo structure: both must observe the same pure
    // value under every schedule, and the losing insert is harmless.
    let report = Explorer::new(2).check(|| {
        let cache = Arc::new(ShardedCache::<u64, u64>::new());
        let c2 = Arc::clone(&cache);
        let t = spawn(move || {
            assert_eq!(c2.get_or_insert_with(5, || 25), 25);
        });
        assert_eq!(cache.get_or_insert_with(5, || 25), 25);
        t.join().expect("racer ok");
        assert_eq!(cache.len(), 1);
    });
    report.assert_ok();
}

#[test]
fn trace_query_racing_search_query_distinct_keys() {
    // The ISSUE's "same-key trace query racing a search query" shape:
    // two *different* canonical keys in flight at once (a trace and a
    // search hash never collide) plus one coalescing follower on the
    // search key. Flights must stay independent: no cross-key wakeup,
    // no deadlock, both values correct.
    let report = Explorer::new(2).max_executions(50_000).check(|| {
        let map = Arc::new(FlightMap::<String>::new());
        const TRACE_KEY: u64 = 0x7ace;
        const SEARCH_KEY: u64 = 0x5ea7c4;
        let (m2, m3) = (Arc::clone(&map), Arc::clone(&map));
        let trace = spawn(move || {
            let v = outcome_value(m2.run_or_follow(TRACE_KEY, || "trace-bytes".to_string()));
            assert_eq!(v, "trace-bytes");
        });
        let search_follower = spawn(move || {
            let v = outcome_value(m3.run_or_follow(SEARCH_KEY, || "search-bytes".to_string()));
            assert_eq!(v, "search-bytes");
        });
        let v = outcome_value(map.run_or_follow(SEARCH_KEY, || "search-bytes".to_string()));
        assert_eq!(v, "search-bytes");
        trace.join().expect("trace ok");
        search_follower.join().expect("search follower ok");
        assert_eq!(map.open(), 0);
    });
    report.assert_ok();
    assert_eq!(report.timeout_executions, 0, "lost notification");
}

// ---------------------------------------------------------------------
// Mutation checks: broken protocol variants the battery must catch.
// ---------------------------------------------------------------------

/// A deliberately broken flight: the follower samples the slot, drops
/// the lock, and parks *unboundedly* without re-checking — the exact
/// lost-wakeup bug `FlightMap::await_resolved`'s predicate loop and
/// LOCK002 exist to prevent.
struct BrokenFlight {
    ready: Mutex<bool>,
    cv: Condvar,
}

impl BrokenFlight {
    fn new() -> BrokenFlight {
        BrokenFlight {
            ready: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn publish(&self) {
        *lock_or_recover(&self.ready) = true;
        self.cv.notify_all();
    }

    fn broken_await(&self) {
        let sampled = *lock_or_recover(&self.ready); // guard dropped here
        if !sampled {
            let g = lock_or_recover(&self.ready);
            // No re-check, no bound: the publish can land in the gap
            // above, and this parks forever.
            let _g = self.cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

#[test]
fn broken_follower_wait_is_caught_with_minimal_schedule() {
    // The flight is built *inside* the body: the explorer re-runs the
    // closure once per schedule, and each execution must start from
    // fresh state.
    fn body() {
        let flight = Arc::new(BrokenFlight::new());
        let f2 = Arc::clone(&flight);
        let leader = spawn(move || f2.publish());
        flight.broken_await();
        leader.join().expect("leader ok");
    }
    let report = Explorer::new(2).check(body);
    let failure = report.failure.expect("the lost wakeup must be found");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    // The minimized schedule must replay: this is what gets committed
    // as a regression input when the checker finds a real protocol bug.
    let replayed = Explorer::new(2)
        .replay(&failure.schedule, body)
        .expect("minimized schedule must reproduce the deadlock");
    assert_eq!(replayed.kind, FailureKind::Deadlock);
    assert!(
        failure.schedule.len() <= 6,
        "shrinker left a non-minimal schedule: {:?}",
        failure.schedule
    );
}

#[test]
fn lock_order_inversion_in_protocol_shape_is_caught() {
    // A flights→slot / slot→flights inversion — the hierarchy violation
    // LOCK001 flags statically — must also be caught dynamically.
    let report = Explorer::new(2).check(|| {
        let flights = Arc::new(Mutex::new(0u32));
        let slot = Arc::new(Mutex::new(0u32));
        let (f2, s2) = (Arc::clone(&flights), Arc::clone(&slot));
        let t = spawn(move || {
            let _f = lock_or_recover(&f2);
            let _s = lock_or_recover(&s2);
        });
        {
            // Inverted: slot before flights.
            let _s = lock_or_recover(&slot);
            let _f = lock_or_recover(&flights);
        }
        let _ = t.join();
    });
    assert!(
        matches!(
            report.failure,
            Some(ref f) if f.kind == FailureKind::Deadlock
        ),
        "the inversion deadlock must be found: {:?}",
        report.failure
    );
}

#[test]
fn exploration_of_the_protocol_is_deterministic() {
    let run = || {
        let report = Explorer::new(2).check(|| {
            let map = Arc::new(FlightMap::<String>::new());
            let m2 = Arc::clone(&map);
            let t = spawn(move || {
                let _ = m2.run_or_follow(3, || "x".to_string());
            });
            let _ = map.run_or_follow(3, || "x".to_string());
            t.join().expect("ok");
        });
        (report.executions, report.timeout_executions, report.complete)
    };
    let first = run();
    assert!(first.2, "the frontier must be exhausted");
    for _ in 0..2 {
        assert_eq!(run(), first, "same protocol, same exploration");
    }
}
