//! # trace-analysis
//!
//! Performance-trace tooling for the `llama3-parallelism` workspace:
//! the trace data model, Chrome-trace export for visual inspection,
//! synthetic trace generation, and the §6.1 top-down slow-rank
//! localization that finds the root-cause straggler across parallelism
//! dimensions (Fig 8).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod report;
pub mod format;
pub mod slowrank;
pub mod synth;

pub use report::{auto_report, AutoReport};
pub use format::{EventCategory, Trace, TraceEvent};
pub use slowrank::{locate_slow_rank, DimGroups, GroupStructure, SlowRankReport};
pub use synth::{synth_trace, SynthSpec};
