//! # trace-analysis
//!
//! Performance-trace tooling for the `llama3-parallelism` workspace:
//! the trace data model, Chrome-trace export for visual inspection,
//! synthetic trace generation, the §6.1 top-down slow-rank
//! localization that finds the root-cause straggler across parallelism
//! dimensions (Fig 8), and the tiered (RRD-style tower-sampling) trace
//! store that keeps multi-day run timelines in `O(log N)` memory with
//! exact replay-backed random seek.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod report;
pub mod format;
pub mod slowrank;
pub mod synth;
pub mod tiered;

pub use report::{auto_report, AutoReport};
pub use format::{EventCategory, Trace, TraceEvent};
pub use slowrank::{
    locate_slow_rank, locate_slow_rank_tiered, DimGroups, GroupStructure, RankTotals,
    SlowRankReport,
};
pub use synth::{synth_trace, SynthSpec};
pub use tiered::{
    ReplaySource, ReplayedWindow, SliceReplay, TierConfig, TieredTrace, WindowStats, WindowView,
};
