//! Performance-trace data model.
//!
//! A [`Trace`] is a flat list of per-rank timed events, mirroring what a
//! production profiler (Kineto et al.) collects: compute kernels and
//! communication collectives, each tagged with the parallelism dimension
//! it belongs to. The §6.1 slow-rank analysis consumes these.

use std::collections::BTreeMap;

/// Which subsystem an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventCategory {
    /// GPU compute kernels.
    Compute,
    /// Tensor-parallel collectives.
    TpComm,
    /// Context-parallel collectives.
    CpComm,
    /// Pipeline-parallel point-to-point.
    PpComm,
    /// Data-parallel (FSDP) collectives.
    DpComm,
    /// Anything else (host, memory ops, ...).
    Other,
}

/// One timed event on one rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global rank the event executed on.
    pub rank: u32,
    /// Event name (kernel or collective label).
    pub name: String,
    /// Subsystem.
    pub category: EventCategory,
    /// Start timestamp in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds. For a collective this is the *observed*
    /// duration on this rank: time from the rank's call until the
    /// collective completed — early arrivers therefore record *longer*
    /// durations (they wait), and the slowest rank records the shortest.
    pub duration_ns: u64,
}

/// A collection of events across ranks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// All events, in no particular order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if there are no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All distinct ranks appearing in the trace, ascending.
    pub fn ranks(&self) -> Vec<u32> {
        let mut r: Vec<u32> = self.events.iter().map(|e| e.rank).collect();
        r.sort_unstable();
        r.dedup();
        r
    }

    /// Total event time per rank for one category, in nanoseconds.
    pub fn total_by_rank(&self, category: EventCategory) -> BTreeMap<u32, u64> {
        let mut totals = BTreeMap::new();
        for e in &self.events {
            if e.category == category {
                *totals.entry(e.rank).or_insert(0) += e.duration_ns;
            }
        }
        totals
    }

    /// Total time of one category on one rank.
    pub fn rank_total(&self, rank: u32, category: EventCategory) -> u64 {
        self.events
            .iter()
            .filter(|e| e.rank == rank && e.category == category)
            .map(|e| e.duration_ns)
            .sum()
    }

    /// All events on one rank, in push order. Emitters append per-rank
    /// lanes in timestamp order, so conformance checkers iterate this to
    /// verify monotone, non-overlapping lanes.
    pub fn events_for_rank(&self, rank: u32) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.rank == rank)
    }

    /// End timestamp of the last event (ns), or 0 for an empty trace.
    pub fn span_ns(&self) -> u64 {
        self.events
            .iter()
            .map(|e| e.start_ns + e.duration_ns)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rank: u32, cat: EventCategory, start: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            rank,
            name: "e".to_string(),
            category: cat,
            start_ns: start,
            duration_ns: dur,
        }
    }

    #[test]
    fn totals_by_rank() {
        let mut t = Trace::new();
        t.push(ev(0, EventCategory::Compute, 0, 10));
        t.push(ev(0, EventCategory::Compute, 10, 5));
        t.push(ev(1, EventCategory::Compute, 0, 7));
        t.push(ev(0, EventCategory::TpComm, 15, 3));
        let totals = t.total_by_rank(EventCategory::Compute);
        assert_eq!(totals[&0], 15);
        assert_eq!(totals[&1], 7);
        assert_eq!(t.rank_total(0, EventCategory::TpComm), 3);
        assert_eq!(t.rank_total(1, EventCategory::TpComm), 0);
    }

    #[test]
    fn ranks_and_span() {
        let mut t = Trace::new();
        t.push(ev(3, EventCategory::Other, 5, 10));
        t.push(ev(1, EventCategory::Other, 0, 2));
        t.push(ev(3, EventCategory::Other, 20, 1));
        assert_eq!(t.ranks(), vec![1, 3]);
        assert_eq!(t.span_ns(), 21);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.span_ns(), 0);
        assert!(t.ranks().is_empty());
    }
}
