//! Top-down slow-rank localization (§6.1).
//!
//! In multi-dimensional parallelism, the rank where a slowdown is
//! *observed* is usually not its *source*: every peer of a straggler
//! shows inflated collective times (they wait), while the straggler
//! itself shows the **shortest** collective durations — it arrives
//! last and waits for nobody (Fig 8).
//!
//! Following the paper, the analysis walks the parallelism dimensions
//! from the outermost level inward (the reverse of the §5.2
//! `[TP, CP, PP, DP]` inner→outer order). At each level:
//!
//! 1. Every group's *skew* — the gap between its most-waiting and
//!    least-waiting member in that dimension's collectives — is
//!    computed. A large skew means the group contains (or is chained
//!    to) the bottleneck.
//! 2. If one group's skew clearly dominates, the candidate set is
//!    narrowed to that group.
//!
//! Once all dimensions are processed, the culprit among the remaining
//! candidates is the rank with the **least total communication time**
//! across every dimension (it never waits; every victim waits
//! somewhere), with compute time as the tie-breaker.

use crate::format::{EventCategory, Trace};
use crate::tiered::{category_index, TieredTrace, NUM_CATEGORIES};
use std::collections::BTreeMap;

/// Exact per-rank communication/compute totals — the only signal the
/// §6.1 analysis consumes. Both a full-resolution [`Trace`] and a
/// decimated [`TieredTrace`] produce the *same* totals (the tiered
/// store folds durations from full-resolution data before thinning
/// events), which is why tier-fed verdicts match full-trace verdicts
/// bit for bit (oracle 9c).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankTotals {
    totals: BTreeMap<u32, [u64; NUM_CATEGORIES]>,
}

impl RankTotals {
    /// Folds a full-resolution trace.
    pub fn from_trace(trace: &Trace) -> RankTotals {
        let mut totals: BTreeMap<u32, [u64; NUM_CATEGORIES]> = BTreeMap::new();
        for e in &trace.events {
            totals.entry(e.rank).or_insert([0; NUM_CATEGORIES])[category_index(e.category)] +=
                e.duration_ns;
        }
        RankTotals { totals }
    }

    /// Reads the exact aggregates out of a tiered store.
    pub fn from_tiered(store: &TieredTrace) -> RankTotals {
        RankTotals {
            totals: store.rank_totals(),
        }
    }

    /// All ranks seen, ascending.
    pub fn ranks(&self) -> Vec<u32> {
        self.totals.keys().copied().collect()
    }

    /// Total time of one category on one rank, nanoseconds.
    pub fn rank_total(&self, rank: u32, category: EventCategory) -> u64 {
        self.totals
            .get(&rank)
            .map(|t| t[category_index(category)])
            .unwrap_or(0)
    }
}

/// The groups of one parallelism dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimGroups {
    /// Dimension name (`"dp"`, `"pp"`, `"cp"`, `"tp"`).
    pub name: String,
    /// Trace category of this dimension's collectives.
    pub category: EventCategory,
    /// Rank groups: each inner vec is one communicating group.
    pub groups: Vec<Vec<u32>>,
}

/// Parallelism structure ordered **outermost dimension first** — the
/// traversal order of the top-down analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupStructure {
    /// Dimensions, outermost first.
    pub dims: Vec<DimGroups>,
}

/// One narrowing step of the analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct NarrowingStep {
    /// Dimension examined.
    pub dim: String,
    /// Per candidate-intersecting group: `(group index, skew_ns)` where
    /// skew is `max − min` member duration in this dimension.
    pub group_skews: Vec<(usize, u64)>,
    /// Group selected as containing the bottleneck chain, if the signal
    /// was decisive.
    pub picked_group: Option<usize>,
    /// Candidate ranks remaining after this step.
    pub survivors: Vec<u32>,
}

/// Result of the top-down analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowRankReport {
    /// The narrowing steps, outermost dimension first.
    pub steps: Vec<NarrowingStep>,
    /// The rank identified as the root-cause straggler, or `None` when
    /// the trace shows no rank waiting decisively less than its peers —
    /// a healthy, straggler-free step also produces skew noise, and
    /// naming a rank there would be a false positive.
    pub culprit: Option<u32>,
    /// The best candidate by the least-waits rule, even when the signal
    /// was too weak to name it as [`SlowRankReport::culprit`].
    pub suspect: u32,
    /// How decisively the suspect separates from the rest:
    /// `1 − suspect_comm / mean_other_comm`, clamped to `[0, 1]`. A
    /// genuine straggler's victims wait for it in every collective, so
    /// real slowdowns score near 1; healthy traces score near 0.
    pub confidence: f64,
}

/// A group's skew must exceed the runner-up by this factor to be
/// considered decisive; otherwise the step keeps all candidates
/// (ambiguous signals are common at outer dimensions, where lateness
/// has already propagated to everyone — §6.1's "the first rank where a
/// problem is observed is often not the true source").
const DECISIVE_SKEW_RATIO: f64 = 1.10;

/// Minimum [`SlowRankReport::confidence`] for the suspect to be named
/// as the culprit: it must wait less than half of what its peers
/// average. Synthetic healthy traces score well below this; a ≥1.5×
/// straggler scores well above it.
pub const CULPRIT_CONFIDENCE_THRESHOLD: f64 = 0.5;

/// Runs the §6.1 top-down analysis. See the module docs for the
/// algorithm.
///
/// # Panics
/// Panics if `structure` has no dimensions or the trace is empty.
pub fn locate_slow_rank(trace: &Trace, structure: &GroupStructure) -> SlowRankReport {
    locate_slow_rank_from_totals(&RankTotals::from_trace(trace), structure)
}

/// Runs the §6.1 analysis off a decimated [`TieredTrace`]. The tiered
/// store's per-rank aggregates are exact at every tier, so this yields
/// the same `culprit`/`suspect`/`confidence` as [`locate_slow_rank`] on
/// the full-resolution trace — making the analysis usable on week-long
/// simulated runs whose full event stream was never retained.
///
/// # Panics
/// Panics if `structure` has no dimensions or the store is empty.
pub fn locate_slow_rank_tiered(store: &TieredTrace, structure: &GroupStructure) -> SlowRankReport {
    locate_slow_rank_from_totals(&RankTotals::from_tiered(store), structure)
}

/// The core analysis over pre-folded per-rank totals.
///
/// # Panics
/// Panics if `structure` has no dimensions or `totals` has no ranks.
pub fn locate_slow_rank_from_totals(
    trace: &RankTotals,
    structure: &GroupStructure,
) -> SlowRankReport {
    assert!(!structure.dims.is_empty(), "need at least one dimension");
    let mut candidates: Vec<u32> = trace.ranks();
    assert!(!candidates.is_empty(), "empty trace");
    let mut steps = Vec::new();

    for dim in &structure.dims {
        if candidates.len() == 1 {
            break;
        }
        let mut group_skews: Vec<(usize, u64)> = Vec::new();
        for (gi, group) in dim.groups.iter().enumerate() {
            if !group.iter().any(|r| candidates.contains(r)) {
                continue;
            }
            let durs: Vec<u64> = group
                .iter()
                .map(|&r| trace.rank_total(r, dim.category))
                .collect();
            let skew = durs.iter().max().unwrap_or(&0) - durs.iter().min().unwrap_or(&0);
            group_skews.push((gi, skew));
        }
        if group_skews.is_empty() {
            continue;
        }
        let mut ranked = group_skews.clone();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let decisive = match ranked.as_slice() {
            [(_, best)] => *best > 0,
            [(_, best), (_, second), ..] => {
                *best > 0 && *best as f64 > *second as f64 * DECISIVE_SKEW_RATIO
            }
            [] => false,
        };
        let (picked_group, survivors) = if decisive {
            let gi = ranked[0].0;
            let inter: Vec<u32> = dim.groups[gi]
                .iter()
                .copied()
                .filter(|r| candidates.contains(r))
                .collect();
            if inter.is_empty() {
                (None, candidates.clone())
            } else {
                (Some(gi), inter)
            }
        } else {
            (None, candidates.clone())
        };
        steps.push(NarrowingStep {
            dim: dim.name.clone(),
            group_skews,
            picked_group,
            survivors: survivors.clone(),
        });
        candidates = survivors;
    }

    // Final rule: the culprit waits the least across all communication
    // dimensions; ties go to the rank with the most compute time.
    let comm_cats: Vec<EventCategory> = structure.dims.iter().map(|d| d.category).collect();
    let total_comm = |r: u32| -> u64 { comm_cats.iter().map(|&c| trace.rank_total(r, c)).sum() };
    let suspect = *candidates
        .iter()
        .min_by(|&&a, &&b| {
            total_comm(a).cmp(&total_comm(b)).then_with(|| {
                trace
                    .rank_total(b, EventCategory::Compute)
                    .cmp(&trace.rank_total(a, EventCategory::Compute))
            })
        })
        // lint: allow(unwrap) — callers guarantee at least one candidate rank
        .expect("non-empty candidates");

    // True-negative detection: a real straggler waits far less than
    // everyone who waits *for* it. Compare the suspect against the mean
    // of all other ranks in the trace (victims everywhere wait, not
    // just the surviving candidates).
    let others: Vec<u64> = trace
        .ranks()
        .into_iter()
        .filter(|&r| r != suspect)
        .map(total_comm)
        .collect();
    let confidence = if others.is_empty() {
        0.0
    } else {
        let mean = others.iter().sum::<u64>() as f64 / others.len() as f64;
        if mean <= 0.0 {
            0.0
        } else {
            (1.0 - total_comm(suspect) as f64 / mean).clamp(0.0, 1.0)
        }
    };
    let culprit = (confidence >= CULPRIT_CONFIDENCE_THRESHOLD).then_some(suspect);

    SlowRankReport {
        steps,
        culprit,
        suspect,
        confidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synth_trace, SynthSpec};

    /// The Fig 8 configuration: 8 GPUs, cp = 2 (outer), tp = 4 (inner).
    /// TP groups: {0..3}, {4..7}; CP pairs: (i, i+4).
    fn fig8_structure() -> GroupStructure {
        GroupStructure {
            dims: vec![
                DimGroups {
                    name: "cp".to_string(),
                    category: EventCategory::CpComm,
                    groups: (0..4).map(|i| vec![i, i + 4]).collect(),
                },
                DimGroups {
                    name: "tp".to_string(),
                    category: EventCategory::TpComm,
                    groups: vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]],
                },
            ],
        }
    }

    #[test]
    fn fig8_scenario_finds_true_straggler() {
        // Rank 6 is the real straggler. Inside TP group 0, rank 2 *looks*
        // slowest (shortest TP collectives) because its CP peer is rank 6
        // — exactly the misleading observation in Fig 8.
        let spec = SynthSpec {
            num_ranks: 8,
            rounds: 4,
            base_compute_ns: 100_000,
            straggler: Some((6, 2.0)),
            structure: fig8_structure(),
            seed: 1,
        };
        let trace = synth_trace(&spec);
        // Sanity: within TP group {0,1,2,3}, rank 2 has the shortest TP
        // collective total (it is delayed by its CP pair with rank 6).
        let tp2 = trace.rank_total(2, EventCategory::TpComm);
        for r in [0u32, 1, 3] {
            assert!(
                trace.rank_total(r, EventCategory::TpComm) > tp2,
                "rank {r} should wait longer than rank 2 in TP"
            );
        }
        let report = locate_slow_rank(&trace, &spec.structure);
        assert_eq!(report.culprit, Some(6), "steps: {:#?}", report.steps);
        assert!(report.confidence >= CULPRIT_CONFIDENCE_THRESHOLD);
        // The CP step narrowed to the pair {2, 6}.
        assert_eq!(report.steps[0].dim, "cp");
        assert_eq!(report.steps[0].survivors, vec![2, 6]);
    }

    #[test]
    fn straggler_in_every_position_is_found() {
        for culprit in 0..8u32 {
            let spec = SynthSpec {
                num_ranks: 8,
                rounds: 3,
                base_compute_ns: 50_000,
                straggler: Some((culprit, 1.5)),
                structure: fig8_structure(),
                seed: culprit as u64 + 10,
            };
            let trace = synth_trace(&spec);
            let report = locate_slow_rank(&trace, &spec.structure);
            assert_eq!(report.culprit, Some(culprit));
        }
    }

    #[test]
    fn no_straggler_reports_no_culprit() {
        // A healthy trace must be a true negative: noise-level skew is
        // not enough to accuse a rank.
        for seed in 0..8u64 {
            let spec = SynthSpec {
                num_ranks: 8,
                rounds: 2,
                base_compute_ns: 10_000,
                straggler: None,
                structure: fig8_structure(),
                seed,
            };
            let trace = synth_trace(&spec);
            let report = locate_slow_rank(&trace, &spec.structure);
            assert_eq!(
                report.culprit, None,
                "seed {seed}: confidence {} steps {:#?}",
                report.confidence, report.steps
            );
            assert!(report.confidence < CULPRIT_CONFIDENCE_THRESHOLD);
            assert!(report.suspect < 8);
        }
    }

    #[test]
    fn mild_straggler_is_still_confident() {
        // 1.3x is the weakest slowdown the paper cares about (thermal
        // throttle range); it should still clear the threshold.
        let spec = SynthSpec {
            num_ranks: 8,
            rounds: 4,
            base_compute_ns: 100_000,
            straggler: Some((5, 1.3)),
            structure: fig8_structure(),
            seed: 17,
        };
        let trace = synth_trace(&spec);
        let report = locate_slow_rank(&trace, &spec.structure);
        assert_eq!(report.culprit, Some(5), "confidence {}", report.confidence);
    }

    #[test]
    fn tiered_verdict_matches_full_trace() {
        use crate::tiered::{TierConfig, TieredTrace};
        for (straggler, seed) in [(Some((6u32, 2.0f64)), 1u64), (Some((3, 1.4)), 4), (None, 2)] {
            let spec = SynthSpec {
                num_ranks: 8,
                rounds: 6,
                base_compute_ns: 100_000,
                straggler,
                structure: fig8_structure(),
                seed,
            };
            let trace = synth_trace(&spec);
            // Tiny capacity: most of the trace is decimated away.
            let mut store = TieredTrace::new(TierConfig::tiny(16, 2));
            store.extend_from_trace(&trace);
            assert!(store.resident_events() < trace.len());
            let full = locate_slow_rank(&trace, &spec.structure);
            let tiered = locate_slow_rank_tiered(&store, &spec.structure);
            assert_eq!(full, tiered);
        }
    }

    #[test]
    fn three_level_structure() {
        // 16 ranks: dp=2 (outer) × cp=2 × tp=4 (inner).
        let tp_groups: Vec<Vec<u32>> = (0..4).map(|g| (g * 4..g * 4 + 4).collect()).collect();
        let cp_groups: Vec<Vec<u32>> = (0..8)
            .map(|i| {
                let base = (i / 4) * 8 + (i % 4);
                vec![base, base + 4]
            })
            .collect();
        let dp_groups: Vec<Vec<u32>> = (0..8).map(|i| vec![i, i + 8]).collect();
        let structure = GroupStructure {
            dims: vec![
                DimGroups {
                    name: "dp".to_string(),
                    category: EventCategory::DpComm,
                    groups: dp_groups,
                },
                DimGroups {
                    name: "cp".to_string(),
                    category: EventCategory::CpComm,
                    groups: cp_groups,
                },
                DimGroups {
                    name: "tp".to_string(),
                    category: EventCategory::TpComm,
                    groups: tp_groups,
                },
            ],
        };
        for culprit in [0u32, 5, 11, 15] {
            let spec = SynthSpec {
                num_ranks: 16,
                rounds: 4,
                base_compute_ns: 80_000,
                straggler: Some((culprit, 1.8)),
                structure: structure.clone(),
                seed: 99 + culprit as u64,
            };
            let trace = synth_trace(&spec);
            let report = locate_slow_rank(&trace, &structure);
            assert_eq!(report.culprit, Some(culprit), "steps: {:#?}", report.steps);
        }
    }
}
