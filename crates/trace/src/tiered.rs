//! Tiered trace storage: RRD-style tower sampling for multi-day runs.
//!
//! A 24 h 16K-GPU run emits far too many events to retain at full
//! resolution, but the simulator's bit-exact determinism means lossy
//! storage is safe: any decimated region can be re-derived exactly by
//! replaying from a nearby checkpoint. [`TieredTrace`] exploits this:
//!
//! * **Tier 0** holds the last `B` events at full resolution (a bounded
//!   ring).
//! * **Tier k ≥ 1** holds a deterministic `1/2^k` decimation of an older
//!   region — exactly the events whose global append index is a
//!   multiple of `2^k` — plus exact per-window aggregates
//!   ([`WindowStats`]: busy time per rank per category, event counts,
//!   max idle lag) computed from full-resolution data *before* the
//!   events were thinned and merged losslessly upward ever since.
//!
//! Total storage is `O(B · log N)` for an `N`-event run. Because the
//! decimation rule is a pure function of the global append index, a
//! window rematerialized by replay ([`ReplaySource`]) decimates to the
//! byte-identical view the store would have produced had it kept
//! everything — the replay-exactness property oracle 9 verifies.

use crate::format::{EventCategory, Trace, TraceEvent};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Number of [`EventCategory`] variants (the width of per-category
/// aggregate arrays).
pub const NUM_CATEGORIES: usize = 6;

/// All categories, in aggregate-array index order.
pub const CATEGORIES: [EventCategory; NUM_CATEGORIES] = [
    EventCategory::Compute,
    EventCategory::TpComm,
    EventCategory::CpComm,
    EventCategory::PpComm,
    EventCategory::DpComm,
    EventCategory::Other,
];

/// Index of a category in per-category aggregate arrays.
pub fn category_index(cat: EventCategory) -> usize {
    match cat {
        EventCategory::Compute => 0,
        EventCategory::TpComm => 1,
        EventCategory::CpComm => 2,
        EventCategory::PpComm => 3,
        EventCategory::DpComm => 4,
        EventCategory::Other => 5,
    }
}

/// Per-rank aggregate over one window of consecutive events.
///
/// The fields form a monoid under [`RankWindowStats`] concatenation of
/// *adjacent* windows (same event stream, left window strictly before
/// the right in append order), which is what makes tier-k aggregates
/// exactly equal to the fold of their tier-(k−1) constituents.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RankWindowStats {
    /// Events on this rank inside the window.
    pub events: u64,
    /// Busy nanoseconds by category (index via [`category_index`]).
    /// Sums of full-resolution durations — exact at every tier.
    pub busy_ns: [u64; NUM_CATEGORIES],
    /// Start of this rank's first event in the window.
    pub first_start_ns: u64,
    /// End of this rank's *last* event in append order (not the max
    /// end — using the last event keeps the merge associative even for
    /// overlapping lanes).
    pub last_end_ns: u64,
    /// Largest idle gap between consecutive events of this rank
    /// (`next.start − prev.end`, floored at zero) — the "max lag".
    pub max_gap_ns: u64,
}

impl RankWindowStats {
    /// Total busy nanoseconds across all categories.
    pub fn busy_total_ns(&self) -> u64 {
        self.busy_ns.iter().sum()
    }

    /// Busy nanoseconds for one category.
    pub fn busy(&self, cat: EventCategory) -> u64 {
        self.busy_ns[category_index(cat)]
    }

    /// Communication nanoseconds (all four comm categories).
    pub fn comm_ns(&self) -> u64 {
        self.busy_ns[1] + self.busy_ns[2] + self.busy_ns[3] + self.busy_ns[4]
    }

    fn merge(&self, later: &RankWindowStats) -> RankWindowStats {
        let mut busy = self.busy_ns;
        for (b, l) in busy.iter_mut().zip(later.busy_ns.iter()) {
            *b += l;
        }
        let boundary_gap = later.first_start_ns.saturating_sub(self.last_end_ns);
        RankWindowStats {
            events: self.events + later.events,
            busy_ns: busy,
            first_start_ns: self.first_start_ns,
            last_end_ns: later.last_end_ns,
            max_gap_ns: self.max_gap_ns.max(later.max_gap_ns).max(boundary_gap),
        }
    }
}

/// Exact aggregate over a window of consecutive events.
///
/// Computed from full-resolution events when a chunk leaves tier 0 and
/// merged pairwise as windows migrate to coarser tiers; every numeric
/// field stays exact (integer sums, min/max) at every tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowStats {
    /// Global append index of the window's first event.
    pub first_index: u64,
    /// Number of full-resolution events folded in (the window covers
    /// raw indices `first_index .. first_index + events`).
    pub events: u64,
    /// Earliest event start in the window.
    pub start_ns: u64,
    /// Latest event end in the window.
    pub end_ns: u64,
    /// Longest single event duration.
    pub max_duration_ns: u64,
    /// Per-rank aggregates.
    pub per_rank: BTreeMap<u32, RankWindowStats>,
}

impl WindowStats {
    /// The empty window anchored at `first_index` (merge identity).
    pub fn empty(first_index: u64) -> WindowStats {
        WindowStats {
            first_index,
            events: 0,
            start_ns: u64::MAX,
            end_ns: 0,
            max_duration_ns: 0,
            per_rank: BTreeMap::new(),
        }
    }

    /// Folds a run of consecutive events (in append order) starting at
    /// global index `first_index`.
    pub fn from_run<'a>(
        first_index: u64,
        events: impl IntoIterator<Item = &'a TraceEvent>,
    ) -> WindowStats {
        let mut w = WindowStats::empty(first_index);
        for ev in events {
            w.fold_event(ev);
        }
        w
    }

    fn fold_event(&mut self, ev: &TraceEvent) {
        let end = ev.start_ns + ev.duration_ns;
        self.events += 1;
        self.start_ns = self.start_ns.min(ev.start_ns);
        self.end_ns = self.end_ns.max(end);
        self.max_duration_ns = self.max_duration_ns.max(ev.duration_ns);
        let r = self.per_rank.entry(ev.rank).or_default();
        if r.events == 0 {
            r.first_start_ns = ev.start_ns;
        } else {
            let gap = ev.start_ns.saturating_sub(r.last_end_ns);
            r.max_gap_ns = r.max_gap_ns.max(gap);
        }
        r.events += 1;
        r.busy_ns[category_index(ev.category)] += ev.duration_ns;
        r.last_end_ns = end;
    }

    /// Merges this window with the adjacent `later` window (the one
    /// covering the immediately following events in append order). The
    /// operation is associative over any adjacent split of one event
    /// stream, so folding windows pairwise up the tower yields the same
    /// aggregate as folding the raw events directly.
    pub fn merge(&self, later: &WindowStats) -> WindowStats {
        if self.events == 0 {
            let mut w = later.clone();
            w.first_index = self.first_index;
            return w;
        }
        if later.events == 0 {
            return self.clone();
        }
        let mut per_rank = self.per_rank.clone();
        for (rank, rb) in &later.per_rank {
            match per_rank.get_mut(rank) {
                Some(ra) => *ra = ra.merge(rb),
                None => {
                    per_rank.insert(*rank, rb.clone());
                }
            }
        }
        WindowStats {
            first_index: self.first_index,
            events: self.events + later.events,
            start_ns: self.start_ns.min(later.start_ns),
            end_ns: self.end_ns.max(later.end_ns),
            max_duration_ns: self.max_duration_ns.max(later.max_duration_ns),
            per_rank,
        }
    }

    /// Total busy nanoseconds across ranks and categories.
    pub fn busy_total_ns(&self) -> u64 {
        self.per_rank.values().map(|r| r.busy_total_ns()).sum()
    }
}

/// Rematerialized full-resolution events for one time window, each
/// tagged with its global append index (the decimation key).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplayedWindow {
    /// `(global index, event)` pairs, in append order.
    pub events: Vec<(u64, TraceEvent)>,
}

/// A deterministic source that can re-derive full-resolution events for
/// a time window — for the run simulator, by replaying the priced walk
/// from the nearest checkpoint anchor.
pub trait ReplaySource {
    /// Returns every event whose `start_ns` lies in `[t0_ns, t1_ns)`,
    /// in append order, with global append indices attached.
    fn replay(&self, t0_ns: u64, t1_ns: u64) -> ReplayedWindow;
}

/// A [`ReplaySource`] backed by a full-resolution event slice — the
/// model reference used by tests and oracles.
pub struct SliceReplay<'a> {
    events: &'a [TraceEvent],
}

impl<'a> SliceReplay<'a> {
    /// Wraps a full-resolution event list (append order, index 0 first).
    pub fn new(events: &'a [TraceEvent]) -> SliceReplay<'a> {
        SliceReplay { events }
    }
}

impl ReplaySource for SliceReplay<'_> {
    fn replay(&self, t0_ns: u64, t1_ns: u64) -> ReplayedWindow {
        ReplayedWindow {
            events: self
                .events
                .iter()
                .enumerate()
                .filter(|(_, e)| e.start_ns >= t0_ns && e.start_ns < t1_ns)
                .map(|(i, e)| (i as u64, e.clone()))
                .collect(),
        }
    }
}

/// A time window extracted from the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowView {
    /// `(global index, event)` pairs with `start_ns` in `[t0, t1)`, in
    /// append order, decimated to `stride_of_zoom(zoom)` or the stored
    /// resolution, whichever is coarser.
    pub events: Vec<(u64, TraceEvent)>,
    /// The coarsest stride among regions overlapping the window (after
    /// applying the requested zoom). `stride == 1 << zoom` means the
    /// window came back at the requested resolution.
    pub stride: u64,
    /// `true` if the events were rematerialized by replay rather than
    /// read from storage.
    pub rematerialized: bool,
}

impl WindowView {
    /// The events as a [`Trace`] (for chrome export etc.).
    pub fn to_trace(&self) -> Trace {
        let mut t = Trace::new();
        for (_, ev) in &self.events {
            t.push(ev.clone());
        }
        t
    }
}

/// Capacity knobs for a [`TieredTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierConfig {
    /// Full-resolution events retained in tier 0 (`B`). Normalized up
    /// to at least two chunks.
    pub tier0_events: usize,
    /// Events per half-window (`C`): tier 0 evicts `2C` events at a
    /// time, so tier-k windows span `C · 2^k` raw events.
    pub chunk: usize,
}

impl Default for TierConfig {
    fn default() -> TierConfig {
        TierConfig {
            tier0_events: 4096,
            chunk: 64,
        }
    }
}

impl TierConfig {
    /// A deliberately tiny store (used by tests to force deep towers on
    /// small traces).
    pub fn tiny(tier0_events: usize, chunk: usize) -> TierConfig {
        TierConfig {
            tier0_events,
            chunk,
        }
    }

    fn normalized(self) -> TierConfig {
        let chunk = self.chunk.max(1);
        TierConfig {
            tier0_events: self.tier0_events.max(2 * chunk),
            chunk,
        }
    }
}

/// One decimated tier: level `k` holds events whose global index is a
/// multiple of `2^k`, plus the exact aggregates of the windows they
/// came from. Events and windows always tile the same raw-index region.
#[derive(Debug, Clone, Default)]
struct Tier {
    events: VecDeque<(u64, TraceEvent)>,
    windows: VecDeque<WindowStats>,
}

/// Summary of one tier's residency, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierSummary {
    /// Tier level (0 = full resolution).
    pub level: u32,
    /// Decimation stride `2^level`.
    pub stride: u64,
    /// Resident (decimated) events.
    pub events: usize,
    /// Resident aggregate windows (0 for tier 0).
    pub windows: usize,
    /// Raw append-index range covered, `[start, end)`.
    pub raw_range: (u64, u64),
}

/// The tiered store. Append events with [`TieredTrace::append`]; read
/// back with [`TieredTrace::sampled`] (whole retained timeline at a
/// zoom), [`TieredTrace::window`] /
/// [`TieredTrace::window_with_replay`] (random seek), and
/// [`TieredTrace::window_stats`] / [`TieredTrace::rank_totals`]
/// (exact aggregates).
#[derive(Debug, Clone)]
pub struct TieredTrace {
    cfg: TierConfig,
    /// Tier 0: newest events at full resolution.
    tier0: VecDeque<(u64, TraceEvent)>,
    /// Tiers 1.. in `tiers[k-1]`; higher levels cover older regions.
    tiers: Vec<Tier>,
    appended: u64,
}

impl Default for TieredTrace {
    fn default() -> TieredTrace {
        TieredTrace::new(TierConfig::default())
    }
}

impl TieredTrace {
    /// Creates an empty store.
    pub fn new(cfg: TierConfig) -> TieredTrace {
        TieredTrace {
            cfg: cfg.normalized(),
            tier0: VecDeque::new(),
            tiers: Vec::new(),
            appended: 0,
        }
    }

    /// The (normalized) configuration.
    pub fn config(&self) -> TierConfig {
        self.cfg
    }

    /// Appends one event (global index = number appended so far).
    pub fn append(&mut self, ev: TraceEvent) {
        self.tier0.push_back((self.appended, ev));
        self.appended += 1;
        self.rebalance();
    }

    /// Appends every event of a [`Trace`] in order.
    pub fn extend_from_trace(&mut self, trace: &Trace) {
        for ev in &trace.events {
            self.append(ev.clone());
        }
    }

    /// Total events ever appended (the full-resolution count `N`).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Events currently resident across all tiers — the memory bound,
    /// `O(B · log N)`.
    pub fn resident_events(&self) -> usize {
        self.tier0.len() + self.tiers.iter().map(|t| t.events.len()).sum::<usize>()
    }

    /// Aggregate windows currently resident.
    pub fn resident_windows(&self) -> usize {
        self.tiers.iter().map(|t| t.windows.len()).sum()
    }

    /// Number of tiers including tier 0.
    pub fn num_tiers(&self) -> usize {
        1 + self.tiers.len()
    }

    /// Per-tier residency summaries, coarsest (oldest) first.
    pub fn tier_summaries(&self) -> Vec<TierSummary> {
        let mut out = Vec::new();
        for (i, t) in self.tiers.iter().enumerate().rev() {
            let level = (i + 1) as u32;
            let range = match (t.windows.front(), t.windows.back()) {
                (Some(a), Some(b)) => (a.first_index, b.first_index + b.events),
                _ => (0, 0),
            };
            out.push(TierSummary {
                level,
                stride: 1u64 << level,
                events: t.events.len(),
                windows: t.windows.len(),
                raw_range: range,
            });
        }
        let t0_range = match (self.tier0.front(), self.tier0.back()) {
            (Some((a, _)), Some((b, _))) => (*a, *b + 1),
            _ => (self.appended, self.appended),
        };
        out.push(TierSummary {
            level: 0,
            stride: 1,
            events: self.tier0.len(),
            windows: 0,
            raw_range: t0_range,
        });
        out
    }

    /// End timestamp of the newest retained event (ns).
    pub fn span_ns(&self) -> u64 {
        self.tier0
            .back()
            .map(|(_, e)| e.start_ns + e.duration_ns)
            .unwrap_or(0)
    }

    /// The whole retained timeline at a zoom level, as a [`Trace`]:
    /// events whose global index is a multiple of `2^zoom`, oldest
    /// first. Regions stored coarser than the requested zoom come back
    /// at their stored resolution (their indices already satisfy the
    /// filter).
    pub fn sampled(&self, zoom: u32) -> Trace {
        let stride = stride_of_zoom(zoom);
        let mut t = Trace::new();
        for (idx, ev) in self.iter_retained() {
            if idx.is_multiple_of(stride) {
                t.push(ev.clone());
            }
        }
        t
    }

    /// Iterates retained `(index, event)` pairs oldest → newest.
    fn iter_retained(&self) -> impl Iterator<Item = (u64, &TraceEvent)> {
        self.tiers
            .iter()
            .rev()
            .flat_map(|t| t.events.iter())
            .chain(self.tier0.iter())
            .map(|(i, e)| (*i, e))
    }

    /// Visits every resident aggregate window, oldest first, with its
    /// tier level. Used by the conformance oracles to verify that
    /// tier-k aggregates recompose from full-resolution reference data.
    pub fn for_each_window(&self, mut f: impl FnMut(u32, &WindowStats)) {
        for (i, t) in self.tiers.iter().enumerate().rev() {
            let level = (i + 1) as u32;
            for w in &t.windows {
                f(level, w);
            }
        }
    }

    /// Extracts the events with `start_ns` in `[t0_ns, t1_ns)` from
    /// storage at the requested zoom. Regions stored coarser than
    /// `2^zoom` come back at their stored resolution;
    /// [`WindowView::stride`] reports the coarsest stride involved, so
    /// `view.stride > 1 << zoom` means a [`ReplaySource`] is needed for
    /// full fidelity (see [`TieredTrace::window_with_replay`]).
    pub fn window(&self, t0_ns: u64, t1_ns: u64, zoom: u32) -> WindowView {
        let want = stride_of_zoom(zoom);
        let mut events = Vec::new();
        let mut stride = want;
        for (i, t) in self.tiers.iter().enumerate().rev() {
            let level = (i + 1) as u32;
            let region_stride = 1u64 << level;
            if Self::region_overlaps(t.windows.front(), t.windows.back(), t0_ns, t1_ns) {
                stride = stride.max(region_stride);
            }
            collect_in_window(t.events.iter(), t0_ns, t1_ns, want, &mut events);
        }
        collect_in_window(self.tier0.iter(), t0_ns, t1_ns, want, &mut events);
        WindowView {
            events,
            stride,
            rematerialized: false,
        }
    }

    fn region_overlaps(
        front: Option<&WindowStats>,
        back: Option<&WindowStats>,
        t0_ns: u64,
        t1_ns: u64,
    ) -> bool {
        match (front, back) {
            (Some(a), Some(b)) => a.start_ns < t1_ns && t0_ns < b.end_ns,
            _ => false,
        }
    }

    /// Like [`TieredTrace::window`], but when the stored resolution is
    /// coarser than the requested zoom, rematerializes the window by
    /// deterministic replay and decimates it with the same global-index
    /// rule — producing exactly what the store would have held had it
    /// never evicted. Replay cost is bounded by the source's anchor
    /// spacing (one checkpoint interval for the run simulator), not by
    /// run length.
    pub fn window_with_replay(
        &self,
        t0_ns: u64,
        t1_ns: u64,
        zoom: u32,
        replay: &dyn ReplaySource,
    ) -> WindowView {
        let stored = self.window(t0_ns, t1_ns, zoom);
        let want = stride_of_zoom(zoom);
        if stored.stride <= want {
            return stored;
        }
        let rep = replay.replay(t0_ns, t1_ns);
        let events = rep
            .events
            .into_iter()
            .filter(|(idx, _)| idx.is_multiple_of(want))
            .collect();
        WindowView {
            events,
            stride: want,
            rematerialized: true,
        }
    }

    /// Exact aggregate stats for the stored structures overlapping
    /// `[t0_ns, t1_ns)`: whole tier windows whose time extent
    /// intersects the range (window-granularity coverage — the
    /// returned `start_ns`/`end_ns` report what was actually folded)
    /// plus tier-0 events with `start_ns` inside it. `None` if nothing
    /// overlaps.
    pub fn window_stats(&self, t0_ns: u64, t1_ns: u64) -> Option<WindowStats> {
        let mut acc: Option<WindowStats> = None;
        let mut fold = |w: WindowStats| {
            acc = Some(match acc.take() {
                Some(a) => a.merge(&w),
                None => w,
            });
        };
        for t in self.tiers.iter().rev() {
            for w in &t.windows {
                if w.start_ns < t1_ns && t0_ns < w.end_ns {
                    fold(w.clone());
                }
            }
        }
        let mut t0_stats: Option<WindowStats> = None;
        for (idx, ev) in &self.tier0 {
            if ev.start_ns >= t0_ns && ev.start_ns < t1_ns {
                let s = t0_stats.get_or_insert_with(|| WindowStats::empty(*idx));
                s.fold_event(ev);
            }
        }
        if let Some(s) = t0_stats {
            fold(s);
        }
        acc
    }

    /// Exact per-rank busy time by category over the *entire* run
    /// (everything ever appended, including evicted regions — the
    /// aggregates were folded from full-resolution data before
    /// decimation). This is what feeds the slow-rank localizer on
    /// week-long runs.
    pub fn rank_totals(&self) -> BTreeMap<u32, [u64; NUM_CATEGORIES]> {
        let mut totals: BTreeMap<u32, [u64; NUM_CATEGORIES]> = BTreeMap::new();
        self.for_each_window(|_, w| {
            for (rank, r) in &w.per_rank {
                let t = totals.entry(*rank).or_insert([0; NUM_CATEGORIES]);
                for (a, b) in t.iter_mut().zip(r.busy_ns.iter()) {
                    *a += b;
                }
            }
        });
        for (_, ev) in &self.tier0 {
            let t = totals.entry(ev.rank).or_insert([0; NUM_CATEGORIES]);
            t[category_index(ev.category)] += ev.duration_ns;
        }
        totals
    }

    /// Verifies the internal tower invariants; returns a description of
    /// the first violation. Used by the fuzzer.
    pub fn check_integrity(&self) -> Result<(), String> {
        let mut expected_next: Option<u64> = None;
        for (i, t) in self.tiers.iter().enumerate().rev() {
            let level = (i + 1) as u32;
            let stride = 1u64 << level;
            let mut ev_iter = t.events.iter().peekable();
            for w in &t.windows {
                if let Some(e) = expected_next {
                    if w.first_index != e {
                        return Err(format!(
                            "tier {level}: window starts at {} but previous region ended at {e}",
                            w.first_index
                        ));
                    }
                }
                let span = self.cfg.chunk as u64 * stride;
                if w.events != span {
                    return Err(format!(
                        "tier {level}: window at {} spans {} raw events, expected {span}",
                        w.first_index, w.events
                    ));
                }
                expected_next = Some(w.first_index + w.events);
                while let Some((idx, _)) = ev_iter.peek() {
                    if *idx >= w.first_index + w.events {
                        break;
                    }
                    if *idx < w.first_index {
                        return Err(format!(
                            "tier {level}: event index {idx} precedes its window"
                        ));
                    }
                    if !idx.is_multiple_of(stride) {
                        return Err(format!(
                            "tier {level}: event index {idx} not a multiple of stride {stride}"
                        ));
                    }
                    ev_iter.next();
                }
            }
            if ev_iter.next().is_some() {
                return Err(format!("tier {level}: events outside any window"));
            }
        }
        let mut want = match expected_next {
            Some(e) => e,
            None => match self.tier0.front() {
                Some((i, _)) => *i,
                None => 0,
            },
        };
        for (idx, _) in &self.tier0 {
            if *idx != want {
                return Err(format!("tier 0: expected index {want}, found {idx}"));
            }
            want += 1;
        }
        if want != self.appended {
            return Err(format!(
                "retained indices end at {want} but {} events were appended",
                self.appended
            ));
        }
        Ok(())
    }

    /// Evicts tier-0 overflow into the tower and cascades coarser tiers.
    fn rebalance(&mut self) {
        let b = self.cfg.tier0_events;
        let c = self.cfg.chunk;
        while self.tier0.len() > b {
            // Pop the oldest 2C full-resolution events, fold their exact
            // window, thin to stride 2, and push into tier 1.
            let mut chunk: Vec<(u64, TraceEvent)> = Vec::with_capacity(2 * c);
            for _ in 0..2 * c {
                match self.tier0.pop_front() {
                    Some(p) => chunk.push(p),
                    None => break,
                }
            }
            let first_index = chunk.first().map(|(i, _)| *i).unwrap_or(0);
            let w = WindowStats::from_run(first_index, chunk.iter().map(|(_, e)| e));
            if self.tiers.is_empty() {
                self.tiers.push(Tier::default());
            }
            let t1 = &mut self.tiers[0];
            for (idx, ev) in chunk {
                if idx.is_multiple_of(2) {
                    t1.events.push_back((idx, ev));
                }
            }
            t1.windows.push_back(w);
            self.cascade();
        }
    }

    /// Window capacity per tier: each tier retains about one tier-0's
    /// worth of history at its own granularity before promoting.
    fn max_windows(&self) -> usize {
        (self.cfg.tier0_events / (2 * self.cfg.chunk)).max(2)
    }

    fn cascade(&mut self) {
        let cap = self.max_windows();
        let mut k = 0;
        while k < self.tiers.len() {
            if self.tiers[k].windows.len() <= cap {
                k += 1;
                continue;
            }
            // Merge the two oldest windows of tier k+1 (level k+1) into
            // one tier k+2 window; halve their events.
            let (merged, moved) = {
                let tier = &mut self.tiers[k];
                let wa = match tier.windows.pop_front() {
                    Some(w) => w,
                    None => break,
                };
                let wb = match tier.windows.pop_front() {
                    Some(w) => w,
                    None => {
                        tier.windows.push_front(wa);
                        break;
                    }
                };
                let merged = wa.merge(&wb);
                let end = merged.first_index + merged.events;
                let next_stride = 1u64 << (k + 2);
                let mut moved = Vec::new();
                while let Some((idx, _)) = tier.events.front() {
                    if *idx >= end {
                        break;
                    }
                    if let Some((idx, ev)) = tier.events.pop_front() {
                        if idx.is_multiple_of(next_stride) {
                            moved.push((idx, ev));
                        }
                    }
                }
                (merged, moved)
            };
            if k + 1 == self.tiers.len() {
                self.tiers.push(Tier::default());
            }
            let up = &mut self.tiers[k + 1];
            up.events.extend(moved);
            up.windows.push_back(merged);
        }
    }
}

/// Decimation stride for a zoom level: `2^zoom`, saturating.
pub fn stride_of_zoom(zoom: u32) -> u64 {
    1u64.checked_shl(zoom).unwrap_or(u64::MAX)
}

fn collect_in_window<'a>(
    events: impl Iterator<Item = &'a (u64, TraceEvent)>,
    t0_ns: u64,
    t1_ns: u64,
    stride: u64,
    out: &mut Vec<(u64, TraceEvent)>,
) {
    for (idx, ev) in events {
        if ev.start_ns >= t0_ns && ev.start_ns < t1_ns && idx.is_multiple_of(stride) {
            out.push((*idx, ev.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent {
            rank: (i % 4) as u32,
            name: format!("e{i}"),
            category: if i % 3 == 0 {
                EventCategory::Compute
            } else {
                EventCategory::DpComm
            },
            start_ns: i * 100,
            duration_ns: 50 + (i % 7) * 10,
        }
    }

    fn filled(n: u64, cfg: TierConfig) -> (TieredTrace, Vec<TraceEvent>) {
        let mut store = TieredTrace::new(cfg);
        let mut reference = Vec::new();
        for i in 0..n {
            let e = ev(i);
            reference.push(e.clone());
            store.append(e);
        }
        (store, reference)
    }

    #[test]
    fn small_trace_stays_full_resolution() {
        let (store, reference) = filled(100, TierConfig::default());
        assert_eq!(store.num_tiers(), 1);
        assert_eq!(store.resident_events(), 100);
        let t = store.sampled(0);
        assert_eq!(t.events, reference);
    }

    #[test]
    fn eviction_builds_tower_with_log_memory() {
        let (store, _) = filled(100_000, TierConfig::tiny(64, 8));
        store.check_integrity().unwrap();
        assert!(store.num_tiers() >= 4, "tiers {}", store.num_tiers());
        // O(B log N): far below full resolution.
        assert!(
            store.resident_events() < 64 * store.num_tiers() + 64,
            "resident {} tiers {}",
            store.resident_events(),
            store.num_tiers()
        );
        assert_eq!(store.appended(), 100_000);
    }

    #[test]
    fn sampled_events_match_reference_at_their_indices() {
        let (store, reference) = filled(5_000, TierConfig::tiny(64, 8));
        for zoom in 0..6 {
            let stride = 1u64 << zoom;
            let t = store.sampled(zoom);
            assert!(!t.is_empty());
            // Every sampled event is byte-identical to the reference at
            // some index that satisfies the stride rule; indices ascend.
            let mut last = None;
            for e in &t.events {
                let idx = e.start_ns / 100;
                assert!(idx.is_multiple_of(stride) || idx >= store.appended() - 64);
                assert_eq!(e, &reference[idx as usize]);
                assert!(last.map(|l| l < idx).unwrap_or(true));
                last = Some(idx);
            }
        }
    }

    #[test]
    fn totals_are_conserved_exactly() {
        let (store, reference) = filled(10_000, TierConfig::tiny(32, 4));
        let totals = store.rank_totals();
        let mut expect: BTreeMap<u32, [u64; NUM_CATEGORIES]> = BTreeMap::new();
        for e in &reference {
            expect.entry(e.rank).or_insert([0; NUM_CATEGORIES])[category_index(e.category)] +=
                e.duration_ns;
        }
        assert_eq!(totals, expect);
    }

    #[test]
    fn window_with_replay_rematerializes_exactly() {
        let (store, reference) = filled(10_000, TierConfig::tiny(32, 4));
        let replay = SliceReplay::new(&reference);
        // An old region long since decimated.
        let (t0, t1) = (100 * 100, 300 * 100);
        let stored = store.window(t0, t1, 0);
        assert!(stored.stride > 1, "old region should be decimated");
        let full = store.window_with_replay(t0, t1, 0, &replay);
        assert!(full.rematerialized);
        let expect: Vec<(u64, TraceEvent)> = reference
            .iter()
            .enumerate()
            .filter(|(_, e)| e.start_ns >= t0 && e.start_ns < t1)
            .map(|(i, e)| (i as u64, e.clone()))
            .collect();
        assert_eq!(full.events, expect);
        // A recent window needs no replay.
        let span = store.span_ns();
        let recent = store.window_with_replay(span - 1000, span, 0, &replay);
        assert!(!recent.rematerialized);
    }

    #[test]
    fn window_stats_fold_matches_reference() {
        let (store, reference) = filled(4_096, TierConfig::tiny(32, 4));
        let mut checked = 0;
        store.for_each_window(|_, w| {
            let lo = w.first_index as usize;
            let hi = (w.first_index + w.events) as usize;
            let expect = WindowStats::from_run(w.first_index, reference[lo..hi].iter());
            assert_eq!(w, &expect);
            checked += 1;
        });
        assert!(checked > 4);
    }

    #[test]
    fn merge_is_associative_on_adjacent_splits() {
        let reference: Vec<TraceEvent> = (0..48).map(ev).collect();
        let w = |lo: usize, hi: usize| WindowStats::from_run(lo as u64, reference[lo..hi].iter());
        let a = w(0, 7);
        let b = w(7, 20);
        let c = w(20, 48);
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        assert_eq!(a.merge(&b.merge(&c)), w(0, 48));
    }

    #[test]
    fn empty_store_is_sane() {
        let store = TieredTrace::default();
        assert_eq!(store.resident_events(), 0);
        assert!(store.sampled(0).is_empty());
        assert!(store.window_stats(0, u64::MAX).is_none());
        store.check_integrity().unwrap();
        assert_eq!(store.span_ns(), 0);
    }
}
