//! Automatic performance-trace analysis.
//!
//! §6.1 closes with: "An automatic tool for analyzing performance
//! traces and identifying the root cause of the slowest rank would be a
//! valuable asset for performance debugging in Llama training systems."
//! This module is that tool for simulator traces: given a trace and the
//! mesh's group structure it produces a complete diagnostic — per-rank
//! category breakdown, per-dimension group skews, the top-down
//! narrowing chain, and the culprit with supporting evidence.

use crate::format::{EventCategory, Trace};
use crate::slowrank::{locate_slow_rank, GroupStructure, SlowRankReport};
use std::fmt::Write as _;

/// A complete automatic diagnosis of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoReport {
    /// The localization result.
    pub slow_rank: SlowRankReport,
    /// Per-rank totals: `(rank, compute_ns, comm_ns_by_dim)` in rank
    /// order, where the comm vector follows the structure's dimension
    /// order.
    pub rank_totals: Vec<(u32, u64, Vec<u64>)>,
    /// For the suspect: its compute time relative to the population
    /// median (> 1 supports a genuine compute straggler).
    pub suspect_compute_ratio: f64,
    /// For the suspect: its total communication time relative to the
    /// population median (< 1 supports "everyone waits for it").
    pub suspect_comm_ratio: f64,
}

impl AutoReport {
    /// `true` when the evidence is internally consistent: the suspect
    /// computes more and waits less than the median rank.
    pub fn evidence_consistent(&self) -> bool {
        self.suspect_compute_ratio >= 1.0 && self.suspect_comm_ratio <= 1.0
    }

    /// Renders a human-readable diagnostic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "automatic trace diagnosis");
        let _ = writeln!(out, "=========================");
        for step in &self.slow_rank.steps {
            let _ = writeln!(
                out,
                "  [{}] {} -> survivors {:?}",
                step.dim,
                match step.picked_group {
                    Some(g) => format!("group {g} decisively skewed"),
                    None => "ambiguous skews, kept all candidates".to_string(),
                },
                step.survivors
            );
        }
        match self.slow_rank.culprit {
            Some(rank) => {
                let _ = writeln!(
                    out,
                    "  culprit: rank {} (confidence {:.2}, compute {:.2}x median, \
                     comm {:.2}x median{})",
                    rank,
                    self.slow_rank.confidence,
                    self.suspect_compute_ratio,
                    self.suspect_comm_ratio,
                    if self.evidence_consistent() {
                        "; evidence consistent"
                    } else {
                        "; WARNING: evidence inconsistent — inspect manually"
                    }
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  no clear slow rank (best candidate: rank {} at confidence \
                     {:.2}, below the {:.2} threshold) — skew is within noise",
                    self.slow_rank.suspect,
                    self.slow_rank.confidence,
                    crate::slowrank::CULPRIT_CONFIDENCE_THRESHOLD,
                );
            }
        }
        out
    }
}

fn median(mut v: Vec<u64>) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_unstable();
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2] as f64
    } else {
        (v[n / 2 - 1] + v[n / 2]) as f64 / 2.0
    }
}

/// Runs the full automatic analysis.
///
/// # Panics
/// Panics if the trace is empty or the structure has no dimensions
/// (propagated from [`locate_slow_rank`]).
pub fn auto_report(trace: &Trace, structure: &GroupStructure) -> AutoReport {
    let slow_rank = locate_slow_rank(trace, structure);
    let ranks = trace.ranks();
    let dims: Vec<EventCategory> = structure.dims.iter().map(|d| d.category).collect();
    let rank_totals: Vec<(u32, u64, Vec<u64>)> = ranks
        .iter()
        .map(|&r| {
            (
                r,
                trace.rank_total(r, EventCategory::Compute),
                dims.iter().map(|&c| trace.rank_total(r, c)).collect(),
            )
        })
        .collect();
    let med_compute = median(rank_totals.iter().map(|(_, c, _)| *c).collect());
    let med_comm = median(
        rank_totals
            .iter()
            .map(|(_, _, comm)| comm.iter().sum::<u64>())
            .collect(),
    );
    let suspect = slow_rank.suspect;
    let (_, c_compute, c_comm) = rank_totals
        .iter()
        .find(|(r, _, _)| *r == suspect)
        .cloned()
        // lint: allow(unwrap) — the suspect was selected from this same trace two lines up
        .expect("suspect present in trace");
    AutoReport {
        slow_rank,
        rank_totals,
        suspect_compute_ratio: if med_compute > 0.0 {
            c_compute as f64 / med_compute
        } else {
            1.0
        },
        suspect_comm_ratio: if med_comm > 0.0 {
            c_comm.iter().sum::<u64>() as f64 / med_comm
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slowrank::DimGroups;
    use crate::synth::{synth_trace, SynthSpec};

    fn structure() -> GroupStructure {
        GroupStructure {
            dims: vec![
                DimGroups {
                    name: "cp".to_string(),
                    category: EventCategory::CpComm,
                    groups: (0..4).map(|i| vec![i, i + 4]).collect(),
                },
                DimGroups {
                    name: "tp".to_string(),
                    category: EventCategory::TpComm,
                    groups: vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]],
                },
            ],
        }
    }

    #[test]
    fn report_finds_culprit_with_consistent_evidence() {
        let spec = SynthSpec {
            num_ranks: 8,
            rounds: 4,
            base_compute_ns: 100_000,
            straggler: Some((6, 2.0)),
            structure: structure(),
            seed: 1,
        };
        let trace = synth_trace(&spec);
        let report = auto_report(&trace, &spec.structure);
        assert_eq!(report.slow_rank.culprit, Some(6));
        assert!(report.suspect_compute_ratio > 1.5);
        assert!(report.suspect_comm_ratio < 1.0);
        assert!(report.evidence_consistent());
        let text = report.render();
        assert!(text.contains("culprit: rank 6"));
        assert!(text.contains("evidence consistent"));
    }

    #[test]
    fn per_rank_totals_cover_every_rank_and_dim() {
        let spec = SynthSpec {
            num_ranks: 8,
            rounds: 2,
            base_compute_ns: 50_000,
            straggler: None,
            structure: structure(),
            seed: 3,
        };
        let trace = synth_trace(&spec);
        let report = auto_report(&trace, &spec.structure);
        assert_eq!(report.rank_totals.len(), 8);
        assert!(report.rank_totals.iter().all(|(_, _, comm)| comm.len() == 2));
        assert!(report
            .rank_totals
            .iter()
            .all(|(_, compute, _)| *compute > 0));
    }

    #[test]
    fn healthy_trace_renders_no_clear_slow_rank() {
        let spec = SynthSpec {
            num_ranks: 8,
            rounds: 2,
            base_compute_ns: 50_000,
            straggler: None,
            structure: structure(),
            seed: 5,
        };
        let trace = synth_trace(&spec);
        let report = auto_report(&trace, &spec.structure);
        assert_eq!(report.slow_rank.culprit, None);
        let text = report.render();
        assert!(text.contains("no clear slow rank"), "{text}");
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(vec![3, 1, 2]), 2.0);
        assert_eq!(median(vec![4, 1, 2, 3]), 2.5);
        assert_eq!(median(vec![]), 0.0);
    }
}
