//! Chrome-trace (about://tracing, Perfetto) export.
//!
//! Serializes a [`Trace`] to the Trace Event Format's JSON array form:
//! complete events (`"ph": "X"`) with one process per rank, so the
//! result opens directly in `chrome://tracing` or Perfetto for visual
//! inspection of simulated schedules. The JSON is emitted directly
//! (no serde dependency); only event names need escaping, the rest of
//! the fields are numbers or fixed ASCII literals.

use crate::format::{EventCategory, Trace};

fn cat_name(c: EventCategory) -> &'static str {
    match c {
        EventCategory::Compute => "compute",
        EventCategory::TpComm => "tp_comm",
        EventCategory::CpComm => "cp_comm",
        EventCategory::PpComm => "pp_comm",
        EventCategory::DpComm => "dp_comm",
        EventCategory::Other => "other",
    }
}

fn cat_tid(c: EventCategory) -> u32 {
    match c {
        EventCategory::Compute => 0,
        EventCategory::TpComm => 1,
        EventCategory::CpComm => 2,
        EventCategory::PpComm => 3,
        EventCategory::DpComm => 4,
        EventCategory::Other => 5,
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Microsecond timestamps rendered the way `chrome://tracing` expects:
/// a plain decimal with no exponent (`1.5`, not `1.5e0` or `1.500000`).
fn push_micros(out: &mut String, ns: u64) {
    let whole = ns / 1000;
    let frac = ns % 1000;
    if frac == 0 {
        out.push_str(&format!("{whole}.0"));
    } else {
        let s = format!("{frac:03}");
        out.push_str(&format!("{whole}.{}", s.trim_end_matches('0')));
    }
}

/// Renders the trace as a Chrome Trace Event Format JSON string.
/// Each rank becomes a process; each category becomes a thread lane.
///
/// # Errors
/// Infallible today (kept as a `Result` so callers don't churn if a
/// fallible writer backend is introduced later).
pub fn to_chrome_json(trace: &Trace) -> Result<String, std::fmt::Error> {
    let mut out = String::with_capacity(64 + trace.events.len() * 96);
    out.push('[');
    for (i, e) in trace.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_string(&mut out, &e.name);
        out.push_str(",\"cat\":\"");
        out.push_str(cat_name(e.category));
        out.push_str("\",\"ph\":\"X\",\"ts\":");
        push_micros(&mut out, e.start_ns);
        out.push_str(",\"dur\":");
        push_micros(&mut out, e.duration_ns);
        out.push_str(&format!(
            ",\"pid\":{},\"tid\":{}}}",
            e.rank,
            cat_tid(e.category)
        ));
    }
    out.push(']');
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceEvent;

    #[test]
    fn exports_valid_json() {
        let mut t = Trace::new();
        t.push(TraceEvent {
            rank: 2,
            name: "all_gather".to_string(),
            category: EventCategory::CpComm,
            start_ns: 1500,
            duration_ns: 2500,
        });
        let json = to_chrome_json(&t).unwrap();
        assert_eq!(
            json,
            "[{\"name\":\"all_gather\",\"cat\":\"cp_comm\",\"ph\":\"X\",\
             \"ts\":1.5,\"dur\":2.5,\"pid\":2,\"tid\":2}]"
        );
    }

    #[test]
    fn escapes_event_names() {
        let mut t = Trace::new();
        t.push(TraceEvent {
            rank: 0,
            name: "layer \"q\" \\ proj\n".to_string(),
            category: EventCategory::Compute,
            start_ns: 1000,
            duration_ns: 1000,
        });
        let json = to_chrome_json(&t).unwrap();
        assert!(json.contains(r#""name":"layer \"q\" \\ proj\n""#), "{json}");
    }

    #[test]
    fn whole_and_fractional_micros() {
        let mut s = String::new();
        push_micros(&mut s, 2000);
        assert_eq!(s, "2.0");
        s.clear();
        push_micros(&mut s, 2050);
        assert_eq!(s, "2.05");
        s.clear();
        push_micros(&mut s, 1);
        assert_eq!(s, "0.001");
    }

    #[test]
    fn empty_trace_is_empty_array() {
        assert_eq!(to_chrome_json(&Trace::new()).unwrap(), "[]");
    }
}
