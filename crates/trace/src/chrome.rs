//! Chrome-trace (about://tracing, Perfetto) export.
//!
//! Serializes a [`Trace`] to the Trace Event Format's JSON array form:
//! complete events (`"ph": "X"`) with one process per rank, so the
//! result opens directly in `chrome://tracing` or Perfetto for visual
//! inspection of simulated schedules.

use crate::format::{EventCategory, Trace};
use serde::Serialize;

#[derive(Serialize)]
struct ChromeEvent<'a> {
    name: &'a str,
    cat: &'static str,
    ph: &'static str,
    /// Microseconds, per the Trace Event Format.
    ts: f64,
    dur: f64,
    pid: u32,
    tid: u32,
}

fn cat_name(c: EventCategory) -> &'static str {
    match c {
        EventCategory::Compute => "compute",
        EventCategory::TpComm => "tp_comm",
        EventCategory::CpComm => "cp_comm",
        EventCategory::PpComm => "pp_comm",
        EventCategory::DpComm => "dp_comm",
        EventCategory::Other => "other",
    }
}

fn cat_tid(c: EventCategory) -> u32 {
    match c {
        EventCategory::Compute => 0,
        EventCategory::TpComm => 1,
        EventCategory::CpComm => 2,
        EventCategory::PpComm => 3,
        EventCategory::DpComm => 4,
        EventCategory::Other => 5,
    }
}

/// Renders the trace as a Chrome Trace Event Format JSON string.
/// Each rank becomes a process; each category becomes a thread lane.
///
/// # Errors
/// Returns a `serde_json` error if serialization fails (practically
/// impossible for this data model, but surfaced rather than swallowed).
pub fn to_chrome_json(trace: &Trace) -> Result<String, serde_json::Error> {
    let events: Vec<ChromeEvent<'_>> = trace
        .events
        .iter()
        .map(|e| ChromeEvent {
            name: &e.name,
            cat: cat_name(e.category),
            ph: "X",
            ts: e.start_ns as f64 / 1000.0,
            dur: e.duration_ns as f64 / 1000.0,
            pid: e.rank,
            tid: cat_tid(e.category),
        })
        .collect();
    serde_json::to_string(&events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceEvent;

    #[test]
    fn exports_valid_json() {
        let mut t = Trace::new();
        t.push(TraceEvent {
            rank: 2,
            name: "all_gather".to_string(),
            category: EventCategory::CpComm,
            start_ns: 1500,
            duration_ns: 2500,
        });
        let json = to_chrome_json(&t).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0]["ph"], "X");
        assert_eq!(arr[0]["pid"], 2);
        assert_eq!(arr[0]["cat"], "cp_comm");
        assert_eq!(arr[0]["ts"], 1.5);
        assert_eq!(arr[0]["dur"], 2.5);
    }

    #[test]
    fn empty_trace_is_empty_array() {
        assert_eq!(to_chrome_json(&Trace::new()).unwrap(), "[]");
    }
}
