//! Synthetic trace generation for testing the slow-rank analysis.
//!
//! Generates traces with the timing structure of a real training step:
//! compute interleaved with per-dimension collectives from the
//! innermost dimension outward (TP collectives fire many times per
//! step around compute, CP around attention, DP at step end). A
//! straggler's compute slowdown then propagates exactly the way Fig 8
//! describes: its collective peers inherit the delay and *look* slow in
//! other dimensions.

use crate::format::{Trace, TraceEvent};
use crate::slowrank::GroupStructure;

/// Specification of a synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSpec {
    /// Number of ranks (must cover every rank in `structure`).
    pub num_ranks: u32,
    /// Rounds of (compute + collectives) to simulate.
    pub rounds: u32,
    /// Nominal compute duration per phase, nanoseconds.
    pub base_compute_ns: u64,
    /// Optional `(rank, multiplier)` straggler: that rank's compute is
    /// scaled by the multiplier (> 1).
    pub straggler: Option<(u32, f64)>,
    /// Parallelism structure (outermost dimension first).
    pub structure: GroupStructure,
    /// Seed for the deterministic tie-breaking noise.
    pub seed: u64,
}

/// Deterministic per-(rank, phase) noise in `[0, 1)`.
fn noise(seed: u64, rank: u32, phase: u64) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((rank as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(phase.wrapping_mul(0x94D0_49BB_1331_11EB));
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Generates the synthetic trace.
///
/// Each round executes, for each dimension from innermost to outermost:
/// a compute phase on every rank (straggler scaled), then that
/// dimension's collectives. Collective events record the *observed*
/// duration on each rank — wait-for-peers plus transfer — so early
/// arrivers log long events and the last arriver logs the shortest.
///
/// # Panics
/// Panics if the structure references ranks ≥ `num_ranks`.
pub fn synth_trace(spec: &SynthSpec) -> Trace {
    for dim in &spec.structure.dims {
        for g in &dim.groups {
            for &r in g {
                assert!(r < spec.num_ranks, "structure references rank {r}");
            }
        }
    }
    let n = spec.num_ranks as usize;
    let mut clock = vec![0u64; n];
    let mut trace = Trace::new();
    let transfer = (spec.base_compute_ns / 20).max(1);
    let mut phase_counter = 0u64;

    for _round in 0..spec.rounds {
        // Innermost dimension first: dims are stored outermost-first.
        for dim in spec.structure.dims.iter().rev() {
            // Compute phase.
            phase_counter += 1;
            for r in 0..spec.num_ranks {
                let mut dur = spec.base_compute_ns as f64;
                if let Some((sr, mult)) = spec.straggler {
                    if sr == r {
                        dur *= mult;
                    }
                }
                // ±0.5% deterministic noise so durations are not tied.
                dur *= 1.0 + (noise(spec.seed, r, phase_counter) - 0.5) * 0.01;
                let dur = dur.round() as u64;
                trace.push(TraceEvent {
                    rank: r,
                    name: "compute".to_string(),
                    category: crate::format::EventCategory::Compute,
                    start_ns: clock[r as usize],
                    duration_ns: dur,
                });
                clock[r as usize] += dur;
            }
            // Collective phase for this dimension.
            for group in &dim.groups {
                let end = group
                    .iter()
                    .map(|&r| clock[r as usize])
                    .max()
                    .unwrap_or(0)
                    + transfer;
                for &r in group {
                    trace.push(TraceEvent {
                        rank: r,
                        name: format!("{}_collective", dim.name),
                        category: dim.category,
                        start_ns: clock[r as usize],
                        duration_ns: end - clock[r as usize],
                    });
                    clock[r as usize] = end;
                }
            }
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::EventCategory;
    use crate::slowrank::DimGroups;

    fn structure() -> GroupStructure {
        GroupStructure {
            dims: vec![DimGroups {
                name: "tp".to_string(),
                category: EventCategory::TpComm,
                groups: vec![vec![0, 1], vec![2, 3]],
            }],
        }
    }

    #[test]
    fn straggler_peers_wait() {
        let spec = SynthSpec {
            num_ranks: 4,
            rounds: 2,
            base_compute_ns: 1000,
            straggler: Some((1, 2.0)),
            structure: structure(),
            seed: 0,
        };
        let t = synth_trace(&spec);
        // Rank 0 waits for rank 1: its TP time exceeds rank 1's.
        assert!(
            t.rank_total(0, EventCategory::TpComm) > t.rank_total(1, EventCategory::TpComm)
        );
        // The unaffected group has near-minimal collective times.
        assert!(
            t.rank_total(2, EventCategory::TpComm) < t.rank_total(0, EventCategory::TpComm)
        );
    }

    #[test]
    fn deterministic() {
        let spec = SynthSpec {
            num_ranks: 4,
            rounds: 3,
            base_compute_ns: 1000,
            straggler: None,
            structure: structure(),
            seed: 5,
        };
        assert_eq!(synth_trace(&spec), synth_trace(&spec));
    }

    #[test]
    fn event_counts() {
        let spec = SynthSpec {
            num_ranks: 4,
            rounds: 2,
            base_compute_ns: 1000,
            straggler: None,
            structure: structure(),
            seed: 5,
        };
        let t = synth_trace(&spec);
        // Per round: 4 compute + 4 collective events (1 dim).
        assert_eq!(t.len(), 2 * (4 + 4));
    }

    #[test]
    #[should_panic(expected = "references rank")]
    fn oversized_structure_panics() {
        let spec = SynthSpec {
            num_ranks: 2,
            rounds: 1,
            base_compute_ns: 1000,
            straggler: None,
            structure: structure(),
            seed: 0,
        };
        synth_trace(&spec);
    }
}
