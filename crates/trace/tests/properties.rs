//! Property tests for the decimation algebra behind [`TieredTrace`]:
//! the window-aggregate monoid, tier monotonicity, and zoom-level lane
//! ordering. Each property runs a fixed battery of deterministic,
//! seed-derived cases with greedy shrinking (vendored proptest).

use proptest::prelude::*;
use trace_analysis::tiered::{
    category_index, TierConfig, TieredTrace, WindowStats, CATEGORIES, NUM_CATEGORIES,
};
use trace_analysis::TraceEvent;

/// Materializes `(rank, gap, duration, category)` draws as a
/// time-ordered event stream (starts are cumulative gaps, like a real
/// emitter's per-step lanes).
fn events_from(raw: &[(u32, u64, u64, usize)]) -> Vec<TraceEvent> {
    let mut clock = 0u64;
    raw.iter()
        .enumerate()
        .map(|(i, &(rank, gap, dur, cat))| {
            clock += gap;
            TraceEvent {
                rank,
                name: format!("e{i}"),
                category: CATEGORIES[cat % NUM_CATEGORIES],
                start_ns: clock,
                duration_ns: dur,
            }
        })
        .collect()
}

fn filled(events: &[TraceEvent], cfg: TierConfig) -> TieredTrace {
    let mut store = TieredTrace::new(cfg);
    for e in events {
        store.append(e.clone());
    }
    store
}

/// One draw of raw event material: enough to overflow tiny towers but
/// cheap enough for a 48-case battery.
fn raw_events() -> impl Strategy<Value = Vec<(u32, u64, u64, usize)>> {
    prop::collection::vec((0u32..6, 0u64..300, 1u64..1000, 0usize..6), 3..240)
}

proptest! {
    #[test]
    fn merge_is_associative_on_adjacent_splits(
        raw in raw_events(),
        a in any::<prop::sample::Index>(),
        b in any::<prop::sample::Index>(),
    ) {
        let events = events_from(&raw);
        let n = events.len();
        let (i, j) = (a.index(n).min(b.index(n)), a.index(n).max(b.index(n)));
        let w = |lo: usize, hi: usize| WindowStats::from_run(lo as u64, events[lo..hi].iter());
        let (wa, wb, wc) = (w(0, i), w(i, j), w(j, n));
        let left = wa.merge(&wb).merge(&wc);
        let right = wa.merge(&wb.merge(&wc));
        prop_assert_eq!(&left, &right);
        // And the fold equals folding the raw events directly — the
        // property that makes tower aggregates exact at every tier.
        prop_assert_eq!(&left, &w(0, n));
    }

    #[test]
    fn tier_merges_are_monotone_and_conserve_sums(
        raw in raw_events(),
        tier0_pow in 3u32..6,
        chunk in 1usize..6,
    ) {
        let events = events_from(&raw);
        let store = filled(&events, TierConfig::tiny(1 << tier0_pow, chunk));
        prop_assert_eq!(store.check_integrity(), Ok(()));

        // Resident windows in global (oldest → newest) order tile the
        // evicted raw-index region, so consecutive windows are adjacent.
        let mut windows: Vec<WindowStats> = Vec::new();
        store.for_each_window(|_, w| windows.push(w.clone()));
        for pair in windows.windows(2) {
            let (wa, wb) = (&pair[0], &pair[1]);
            prop_assert_eq!(wa.first_index + wa.events, wb.first_index);
            let merged = wa.merge(wb);
            // Child stats stay within the merged parent's bounds: sums
            // add exactly, extrema are contained.
            prop_assert_eq!(merged.events, wa.events + wb.events);
            prop_assert_eq!(merged.start_ns, wa.start_ns.min(wb.start_ns));
            prop_assert_eq!(merged.end_ns, wa.end_ns.max(wb.end_ns));
            prop_assert!(merged.max_duration_ns >= wa.max_duration_ns.max(wb.max_duration_ns));
            prop_assert_eq!(merged.busy_total_ns(), wa.busy_total_ns() + wb.busy_total_ns());
            for (rank, r) in &merged.per_rank {
                let child_gap = [wa, wb]
                    .iter()
                    .filter_map(|w| w.per_rank.get(rank).map(|c| c.max_gap_ns))
                    .max()
                    .unwrap_or(0);
                prop_assert!(r.max_gap_ns >= child_gap);
            }
        }

        // Busy time is conserved exactly across the whole tower, no
        // matter how deep the cascade went.
        let totals = store.rank_totals();
        let mut expect = std::collections::BTreeMap::new();
        for e in &events {
            expect.entry(e.rank).or_insert([0u64; NUM_CATEGORIES])
                [category_index(e.category)] += e.duration_ns;
        }
        prop_assert_eq!(totals, expect);
    }

    #[test]
    fn sampled_lanes_are_time_monotone_at_every_zoom(
        raw in raw_events(),
        zoom in 0u32..8,
        tier0_pow in 3u32..6,
        chunk in 1usize..6,
    ) {
        let events = events_from(&raw);
        let store = filled(&events, TierConfig::tiny(1 << tier0_pow, chunk));
        let t = store.sampled(zoom);
        prop_assert!(t.len() <= events.len());
        for rank in t.ranks() {
            let mut last = 0u64;
            for e in t.events_for_rank(rank) {
                prop_assert!(
                    e.start_ns >= last,
                    "rank {rank} lane goes back in time at zoom {zoom}: {} after {last}",
                    e.start_ns
                );
                last = e.start_ns;
            }
        }
        // Decimating further can only drop events, never add them.
        prop_assert!(store.sampled(zoom + 1).len() <= t.len());
    }
}
