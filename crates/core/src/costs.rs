//! The analytic step-cost model, generic over [`Scalar`].
//!
//! Two callers share this module:
//!
//! * The **exact path** — `step.rs`, `tp.rs`, `cp.rs` and
//!   `pp/schedule.rs` instantiate the primitive expressions (re-exported
//!   from [`numerics::costs`]) at the float type. The expressions use
//!   the exact operation order of the code they replaced, so the
//!   exhaustive search remains bit-identical to the pre-refactor
//!   arithmetic.
//! * The **guided path** — `search::guided` instantiates the
//!   [`surrogate_step`] model at [`numerics::Dual`] to descend the cost
//!   gradient over a continuous relaxation of `(tp, cp, pp, dp, nmb)`.
//!   The surrogate composes the same α–β/roofline/bubble expressions
//!   but replaces integer byte rounding (`div_ceil`) and per-rank graph
//!   replay with their continuous counterparts: the discrete configs it
//!   proposes are re-verified by the exact simulator, so surrogate
//!   error costs at most extra candidate evaluations, never wrong
//!   frontier points.
//!
//! Repo rule (enforced by `repo_lint`'s `scalar-costs` rule): no direct
//! float arithmetic in this module — every quantity is an `S` and every
//! constant enters through [`Scalar::lit`].

pub use numerics::costs::{
    attention_pair_flops, bubble_ratio, kernel_busy_s, linear_shard, ring_transfer_s,
    tflops_per_gpu, transfer_s,
};
use numerics::scalar::Scalar;

/// Everything the surrogate model needs about the cluster and the
/// model, lifted to `S` (constants — zero derivative under duals).
/// Built from a `SearchSpec` by `search::guided`; field meanings mirror
/// the exact model's sources (`GpuSpec`, `TopologySpec`,
/// `llm_model::flops`/`memory`, `PrecisionPolicy`).
#[derive(Debug, Clone, Copy)]
pub struct SurrogateConsts<S> {
    /// GPUs in the cluster.
    pub ngpu: S,
    /// GPUs per node (the NVLink domain size).
    pub gpus_per_node: S,
    /// Sequence length (tokens).
    pub seq: S,
    /// Transformer layer count.
    pub layers: S,
    /// Total model parameters.
    pub params_total: S,

    /// Effective GEMM throughput, FLOP/s (peak × efficiency ceiling).
    pub gemm_eff_flops: S,
    /// Effective attention-kernel throughput, FLOP/s.
    pub attn_eff_flops: S,
    /// HBM bandwidth, bytes/s.
    pub hbm_bw: S,
    /// Kernel launch overhead, seconds.
    pub kernel_launch_s: S,

    /// Effective NVLink bandwidth (× protocol efficiency), bytes/s.
    pub nv_bw: S,
    /// Effective NIC bandwidth (× protocol efficiency), bytes/s.
    pub nic_bw: S,
    /// NVLink hop latency, seconds.
    pub nv_lat_s: S,
    /// Network hop latency, seconds.
    pub net_lat_s: S,
    /// Collective launch overhead, seconds.
    pub coll_launch_s: S,

    /// Dense (projections + FFN + norms) flops per token per layer.
    pub dense_flops_per_token: S,
    /// Dense HBM bytes per token per layer (activation-proportional).
    pub dense_bytes_per_token: S,
    /// Dense HBM bytes per layer independent of tokens (weights).
    pub dense_bytes_fixed: S,
    /// Dense kernel launches per layer.
    pub dense_launches: S,
    /// Attention kernel flops per attended (query, key) pair.
    pub attn_flops_per_pair: S,
    /// Attention HBM bytes per local query token.
    pub attn_bytes_per_q_token: S,
    /// Attention HBM bytes per gathered key/value token.
    pub attn_bytes_per_kv_token: S,
    /// Attention kernel launches per layer.
    pub attn_launches: S,
    /// Attended pairs of the full (unsharded) sequence under the mask.
    pub pairs_total: S,

    /// Output-head (vocabulary projection) flops per token.
    pub head_flops_per_token: S,
    /// Output-head HBM bytes per token (logits traffic).
    pub head_bytes_per_token: S,
    /// Output-head HBM bytes independent of tokens (the weight read).
    pub head_bytes_fixed: S,
    /// Output-head kernel launches.
    pub head_launches: S,

    /// Bytes per token carried by one TP+SP collective (hidden × BF16).
    pub tp_coll_bytes_per_token: S,
    /// TP+SP collectives per layer (forward).
    pub tp_colls_per_layer: S,
    /// K/V all-gather bytes per local token (2 tensors × kv_dim × BF16).
    pub kv_ag_bytes_per_token: S,
    /// Boundary activation bytes per token (kept under recompute).
    pub boundary_bytes_per_token: S,
    /// Full activation bytes per token per layer (recompute off).
    pub act_bytes_per_token: S,
    /// §6.3 buffer-release factor applied when recompute is off.
    pub act_release: S,

    /// Resident parameter bytes per parameter.
    pub param_bytes: S,
    /// Resident gradient bytes per parameter.
    pub grad_bytes: S,
    /// Resident optimizer bytes per parameter.
    pub optim_bytes: S,
}

impl<S: Scalar> SurrogateConsts<S> {
    /// Re-expresses the constants at another scalar type — e.g. lifting
    /// the float constants into duals, where they carry zero derivative.
    pub fn lift<T: Scalar>(&self) -> SurrogateConsts<T> {
        SurrogateConsts {
            ngpu: T::lit(self.ngpu.value()),
            gpus_per_node: T::lit(self.gpus_per_node.value()),
            seq: T::lit(self.seq.value()),
            layers: T::lit(self.layers.value()),
            params_total: T::lit(self.params_total.value()),
            gemm_eff_flops: T::lit(self.gemm_eff_flops.value()),
            attn_eff_flops: T::lit(self.attn_eff_flops.value()),
            hbm_bw: T::lit(self.hbm_bw.value()),
            kernel_launch_s: T::lit(self.kernel_launch_s.value()),
            nv_bw: T::lit(self.nv_bw.value()),
            nic_bw: T::lit(self.nic_bw.value()),
            nv_lat_s: T::lit(self.nv_lat_s.value()),
            net_lat_s: T::lit(self.net_lat_s.value()),
            coll_launch_s: T::lit(self.coll_launch_s.value()),
            dense_flops_per_token: T::lit(self.dense_flops_per_token.value()),
            dense_bytes_per_token: T::lit(self.dense_bytes_per_token.value()),
            dense_bytes_fixed: T::lit(self.dense_bytes_fixed.value()),
            dense_launches: T::lit(self.dense_launches.value()),
            attn_flops_per_pair: T::lit(self.attn_flops_per_pair.value()),
            attn_bytes_per_q_token: T::lit(self.attn_bytes_per_q_token.value()),
            attn_bytes_per_kv_token: T::lit(self.attn_bytes_per_kv_token.value()),
            attn_launches: T::lit(self.attn_launches.value()),
            pairs_total: T::lit(self.pairs_total.value()),
            head_flops_per_token: T::lit(self.head_flops_per_token.value()),
            head_bytes_per_token: T::lit(self.head_bytes_per_token.value()),
            head_bytes_fixed: T::lit(self.head_bytes_fixed.value()),
            head_launches: T::lit(self.head_launches.value()),
            tp_coll_bytes_per_token: T::lit(self.tp_coll_bytes_per_token.value()),
            tp_colls_per_layer: T::lit(self.tp_colls_per_layer.value()),
            kv_ag_bytes_per_token: T::lit(self.kv_ag_bytes_per_token.value()),
            boundary_bytes_per_token: T::lit(self.boundary_bytes_per_token.value()),
            act_bytes_per_token: T::lit(self.act_bytes_per_token.value()),
            act_release: T::lit(self.act_release.value()),
            param_bytes: T::lit(self.param_bytes.value()),
            grad_bytes: T::lit(self.grad_bytes.value()),
            optim_bytes: T::lit(self.optim_bytes.value()),
        }
    }
}

/// A point of the continuous relaxation: the 4D mesh plus the
/// micro-batch count, all real-valued and ≥ 1.
#[derive(Debug, Clone, Copy)]
pub struct RelaxedMesh<S> {
    /// Tensor parallel degree.
    pub tp: S,
    /// Context parallel degree.
    pub cp: S,
    /// Pipeline parallel degree.
    pub pp: S,
    /// Data parallel degree.
    pub dp: S,
    /// Micro-batches per replica per step.
    pub nmb: S,
}

/// The per-mesh discrete choices, encoded as indicator constants so
/// one generic expression prices every variant.
#[derive(Debug, Clone, Copy)]
pub struct VariantKnobs<S> {
    /// 1 when activation recompute is on, else 0.
    pub recompute: S,
    /// 1 when gradients are sharded between uses (ZeRO-2/3), else 0.
    pub grad_sharded: S,
    /// 1 when parameters are sharded between uses (ZeRO-3), else 0.
    pub param_sharded: S,
    /// `true` for the all-forward-all-backward schedule (every
    /// micro-batch in flight); `false` for the flexible 1F1B family.
    pub afab: bool,
    /// Flexible-schedule chunk multiplier (`nc = nc_mult · pp`).
    pub nc_mult: S,
}

/// What the surrogate prices a relaxed configuration at.
#[derive(Debug, Clone, Copy)]
pub struct SurrogatePrice<S> {
    /// End-to-end step time, seconds.
    pub time_s: S,
    /// Worst per-rank peak HBM, bytes.
    pub mem_bytes: S,
}

/// Continuous hierarchical all-gather time (the α–β model of
/// `collectives::cost`): `n` ranks contributing `bytes_per_rank`,
/// `ranks_per_node` of them per NVLink domain. Degenerates to the
/// intra-node ring when the group fits one node and to zero as
/// `n → 1`.
pub fn all_gather_time_s<S: Scalar>(
    c: &SurrogateConsts<S>,
    n: S,
    ranks_per_node: S,
    bytes_per_rank: S,
) -> S {
    let one = S::lit(1.0);
    let zero = S::lit(0.0);
    // 0 when n ≤ 1 (no collective), 1 when n ≥ 2; linear in between so
    // the relaxation stays continuous.
    let gate = (n - one).max(zero).min(one);
    let m = (n / ranks_per_node).max(one);
    let k = n / m;
    let inter =
        ring_transfer_s(m - one, bytes_per_rank, c.nic_bw) + c.net_lat_s * (m - one) * S::lit(2.0);
    let intra = ring_transfer_s(k - one, bytes_per_rank * m, c.nv_bw) + c.nv_lat_s * (k - one);
    gate * (c.coll_launch_s + inter + intra)
}

/// One layer's dense (projections + FFN + norms) kernel time on a TP
/// shard, per micro-batch.
fn dense_time_s<S: Scalar>(c: &SurrogateConsts<S>, tokens: S, tp: S) -> S {
    let flops = linear_shard(c.dense_flops_per_token * tokens, tp);
    let bytes = linear_shard(c.dense_bytes_fixed + c.dense_bytes_per_token * tokens, tp);
    kernel_busy_s(flops, c.gemm_eff_flops, bytes, c.hbm_bw) + c.kernel_launch_s * c.dense_launches
}

/// One layer's attention kernel time on a TP shard per micro-batch:
/// pairs split evenly across CP (zig-zag balance) and heads across TP.
fn attn_time_s<S: Scalar>(c: &SurrogateConsts<S>, tokens: S, tp: S, cp: S) -> S {
    let pairs = c.pairs_total / cp;
    let flops = linear_shard(c.attn_flops_per_pair * pairs, tp);
    let bytes = linear_shard(
        c.attn_bytes_per_q_token * tokens + c.attn_bytes_per_kv_token * c.seq,
        tp,
    );
    kernel_busy_s(flops, c.attn_eff_flops, bytes, c.hbm_bw) + c.kernel_launch_s * c.attn_launches
}

/// The full surrogate: prices a relaxed `(mesh, variant)` the way
/// `StepModel::estimate` prices a discrete one — per-layer roofline
/// compute, exposed TP/CP collectives, the analytic pipeline bubble,
/// and the exposed FSDP all-gather/reduce-scatter — plus the peak-HBM
/// composition of `StepModel::memory_components`.
pub fn surrogate_step<S: Scalar>(
    c: &SurrogateConsts<S>,
    x: &RelaxedMesh<S>,
    k: &VariantKnobs<S>,
) -> SurrogatePrice<S> {
    let one = S::lit(1.0);
    let two = S::lit(2.0);

    let tokens = c.seq / x.cp;
    // Chunks per rank: one layer per virtual stage, as the enumerator
    // assigns them.
    let v = c.layers / x.pp;

    // --- per-micro-batch work on one rank ---------------------------
    let dense = dense_time_s(c, tokens, x.tp);
    let attn = attn_time_s(c, tokens, x.tp, x.cp);
    // TP group always fits the NVLink domain (§5.1 pins TP to a node).
    let tp_bytes = linear_shard(c.tp_coll_bytes_per_token * tokens, x.tp);
    let tp_comm = all_gather_time_s(c, x.tp, x.tp, tp_bytes) * c.tp_colls_per_layer;
    // CP peers sit stride-tp apart: gpn/tp of them share a node.
    let cp_rpn = (c.gpus_per_node / x.tp).max(one).min(x.cp);
    let cp_bytes = linear_shard(c.kv_ag_bytes_per_token * tokens, x.tp);
    let cp_comm = all_gather_time_s(c, x.cp, cp_rpn, cp_bytes);

    let fwd_layer = dense + attn + tp_comm + cp_comm;
    let bwd_layer = (dense + attn) * (two + k.recompute) + tp_comm + cp_comm;
    let per_mb = (fwd_layer + bwd_layer) * v;

    // --- terminal-stage imbalance ------------------------------------
    // The output head rides on top of the last rank's regular layer
    // stack (uniform stage assignment), so its per-micro-batch cost is
    // *not* divided by pp: the steady-state pipeline rate is gated by
    // that heavy rank and every other rank idles for the difference.
    // Without this term the surrogate prices deep pipelines as free
    // and sends the whole verification budget to pp = max.
    let head_flops = linear_shard(c.head_flops_per_token * tokens, x.tp);
    let head_bytes =
        linear_shard(c.head_bytes_fixed + c.head_bytes_per_token * tokens, x.tp);
    let head = kernel_busy_s(head_flops, c.gemm_eff_flops, head_bytes, c.hbm_bw)
        + c.kernel_launch_s * c.head_launches;
    // Forward (1×) + backward (2×) plus the head's own TP collectives.
    let head_mb = head * (one + two) + tp_comm * two;

    // --- pipeline + data parallel -----------------------------------
    let bubble = bubble_ratio(x.pp, x.nmb, v);
    // Exposed stage-boundary P2P: each warm-up hop ships one
    // micro-batch's boundary activations between stages (inter-node —
    // with TP pinned to the node, consecutive stages never share one).
    // Extra warm-up chunks overlap it away (§3.1: `nc = 2·pp` hides
    // P2P that `nc = pp` exposes), so the exposure ramps down linearly
    // in the chunk multiplier and vanishes at `nc_mult = 2`. Small
    // (~per-mille of the step), but it is what orders the flexible-`nc`
    // variants of one mesh the way the folded simulator does.
    let zero = S::lit(0.0);
    let hop_s = ring_transfer_s(one, c.boundary_bytes_per_token * tokens, c.nic_bw)
        + c.net_lat_s;
    let p2p_exposed =
        hop_s * (x.pp - one) * (two - k.nc_mult).max(zero).min(two);
    let fsdp_n = x.dp * x.cp;
    // An FSDP group touches every node of its PP slice.
    let fsdp_nodes = (c.ngpu / (x.pp * c.gpus_per_node)).max(one).min(fsdp_n);
    let fsdp_rpn = fsdp_n / fsdp_nodes;
    let params_rank = c.params_total / (x.pp * x.tp);
    // ZeRO-3 all-gathers parameters before forward and backward.
    let ag_bytes = params_rank * c.param_bytes * (one + k.param_sharded);
    let rs_bytes = params_rank * c.grad_bytes;
    let dp_comm = all_gather_time_s(c, fsdp_n, fsdp_rpn, linear_shard(ag_bytes, fsdp_n))
        + all_gather_time_s(c, fsdp_n, fsdp_rpn, linear_shard(rs_bytes, fsdp_n));

    let time_s = (per_mb + head_mb) * x.nmb * (one + bubble) + dp_comm + p2p_exposed;

    // --- peak memory -------------------------------------------------
    // Sharding denominators: fsdp_n when the component is sharded, 1
    // when it is not — continuous in the indicator knob.
    let p_den = one + k.param_sharded * (fsdp_n - one);
    let g_den = one + k.grad_sharded * (fsdp_n - one);
    let state = params_rank
        * (c.param_bytes / p_den + c.grad_bytes / g_den + c.optim_bytes / fsdp_n);
    // FP32 accumulators live unsharded at the backward peak (§6.2).
    let state = state.max(params_rank * (c.param_bytes + c.grad_bytes));
    let act_per_token =
        k.recompute * c.boundary_bytes_per_token + (one - k.recompute) * c.act_bytes_per_token * c.act_release;
    let per_stage_mb = linear_shard(act_per_token * tokens, x.tp);
    let peak_in_flight = if k.afab {
        v * x.nmb
    } else {
        // §3.1.1 warm-up depth of rank 0, capped by the total in
        // flight: (v−1)·nc + 2(pp−1) + 1.
        (v * x.nmb).min((v - one) * k.nc_mult * x.pp + two * (x.pp - one) + one)
    };
    let mem_bytes = state + per_stage_mb * peak_in_flight;

    SurrogatePrice { time_s, mem_bytes }
}

/// The scalarized descent objective: `ln(time) + λ·ln(mem)` (a
/// weighted-geometric sweep of λ traces the (time, memory) Pareto
/// frontier) plus a soft out-of-memory barrier that turns on as peak
/// memory approaches the HBM capacity.
pub fn guided_objective<S: Scalar>(p: &SurrogatePrice<S>, lambda: S, hbm_capacity: S) -> S {
    let x = (p.mem_bytes / hbm_capacity - S::lit(0.95)) * S::lit(24.0);
    // softplus(x) = smooth_max(x, 0; 1): ≈ 0 well under budget, linear
    // in the overshoot above it.
    let oom_barrier = x.smooth_max(S::lit(0.0), 1.0);
    p.time_s.ln() + lambda * p.mem_bytes.ln() + oom_barrier
}

#[cfg(test)]
mod tests {
    #![allow(clippy::excessive_precision)]
    use super::*;

    // Test-only: plain-float consts resembling the 405B/16K problem.
    // lint: allow(f64) — test fixtures may use literal floats freely.
    fn consts() -> SurrogateConsts<f64> {
        SurrogateConsts {
            ngpu: 16384.0,
            gpus_per_node: 8.0,
            seq: 8192.0,
            layers: 126.0,
            params_total: 405e9,
            gemm_eff_flops: 989e12 * 0.6,
            attn_eff_flops: 989e12 * 0.45,
            hbm_bw: 3.35e12,
            kernel_launch_s: 3e-6,
            nv_bw: 450e9 * 0.8,
            nic_bw: 50e9 * 0.8,
            nv_lat_s: 700e-9,
            net_lat_s: 4e-6,
            coll_launch_s: 8e-6,
            dense_flops_per_token: 6.0 * 3.2e9,
            dense_bytes_per_token: 2.0 * 16384.0 * 10.0,
            dense_bytes_fixed: 2.0 * 3.2e9,
            dense_launches: 10.0,
            attn_flops_per_pair: 4.0 * 128.0 * 128.0,
            attn_bytes_per_q_token: 2.0 * 16384.0,
            attn_bytes_per_kv_token: 2.0 * 2048.0,
            attn_launches: 2.0,
            pairs_total: 8192.0 * 8193.0 / 2.0,
            head_flops_per_token: 2.0 * 16384.0 * 128256.0,
            head_bytes_per_token: 2.0 * 128256.0,
            head_bytes_fixed: 2.0 * 16384.0 * 128256.0,
            head_launches: 1.0,
            tp_coll_bytes_per_token: 2.0 * 16384.0,
            tp_colls_per_layer: 4.0,
            kv_ag_bytes_per_token: 2.0 * 2.0 * 1024.0,
            boundary_bytes_per_token: 2.0 * 16384.0,
            act_bytes_per_token: 2.0 * 16384.0 * 17.0,
            act_release: 0.5,
            param_bytes: 2.0,
            grad_bytes: 4.0,
            optim_bytes: 12.0,
        }
    }

    fn mesh(tp: f64, cp: f64, pp: f64) -> RelaxedMesh<f64> {
        let c = consts();
        let dp = c.ngpu / (tp * cp * pp);
        let gbs = 2048.0;
        RelaxedMesh {
            tp,
            cp,
            pp,
            dp,
            nmb: gbs / dp,
        }
    }

    fn knobs() -> VariantKnobs<f64> {
        VariantKnobs {
            recompute: 0.0,
            grad_sharded: 0.0,
            param_sharded: 0.0,
            afab: false,
            nc_mult: 1.0,
        }
    }

    #[test]
    fn deeper_pipelines_shrink_memory_but_add_bubble() {
        let c = consts();
        let shallow = surrogate_step(&c, &mesh(8.0, 1.0, 4.0), &knobs());
        let deep = surrogate_step(&c, &mesh(8.0, 1.0, 16.0), &knobs());
        assert!(deep.mem_bytes < shallow.mem_bytes);
        // Fewer layers per rank but proportionally fewer micro-batches
        // per pipeline flush: bubble grows.
        let b_shallow = bubble_ratio(4.0, mesh(8.0, 1.0, 4.0).nmb, 126.0 / 4.0);
        let b_deep = bubble_ratio(16.0, mesh(8.0, 1.0, 16.0).nmb, 126.0 / 16.0);
        assert!(b_deep > b_shallow);
    }

    #[test]
    fn recompute_trades_memory_for_time() {
        let c = consts();
        let mut rc = knobs();
        rc.recompute = 1.0;
        let plain = surrogate_step(&c, &mesh(8.0, 1.0, 16.0), &knobs());
        let recomputed = surrogate_step(&c, &mesh(8.0, 1.0, 16.0), &rc);
        assert!(recomputed.mem_bytes < plain.mem_bytes);
        assert!(recomputed.time_s > plain.time_s);
    }

    #[test]
    fn zero3_shards_state_but_pays_all_gathers() {
        let c = consts();
        let mut z3 = knobs();
        z3.grad_sharded = 1.0;
        z3.param_sharded = 1.0;
        let z1 = surrogate_step(&c, &mesh(8.0, 1.0, 16.0), &knobs());
        let z3p = surrogate_step(&c, &mesh(8.0, 1.0, 16.0), &z3);
        assert!(z3p.mem_bytes <= z1.mem_bytes);
        assert!(z3p.time_s > z1.time_s);
    }

    #[test]
    fn afab_holds_every_microbatch_in_flight() {
        let c = consts();
        let mut afab = knobs();
        afab.afab = true;
        // Plenty of micro-batches so the flexible warm-up cap binds.
        let mut m = mesh(8.0, 1.0, 16.0);
        m.nmb = 64.0;
        let flex = surrogate_step(&c, &m, &knobs());
        let all = surrogate_step(&c, &m, &afab);
        assert!(all.mem_bytes > flex.mem_bytes);
    }

    #[test]
    fn all_gather_gates_off_for_singleton_groups() {
        let c = consts();
        assert_eq!(all_gather_time_s(&c, 1.0, 1.0, 1e6), 0.0);
        assert!(all_gather_time_s(&c, 8.0, 8.0, 1e6) > 0.0);
        // Crossing nodes costs more than staying inside one.
        let intra = all_gather_time_s(&c, 8.0, 8.0, 1e6);
        let inter = all_gather_time_s(&c, 8.0, 1.0, 1e6);
        assert!(inter > intra);
    }

    #[test]
    fn objective_barrier_activates_near_capacity() {
        let cap = 80.0 * (1u64 << 30) as f64;
        let lean = SurrogatePrice {
            time_s: 1.0,
            mem_bytes: 0.5 * cap,
        };
        let oom = SurrogatePrice {
            time_s: 1.0,
            mem_bytes: 1.2 * cap,
        };
        let d = guided_objective(&oom, 0.0, cap) - guided_objective(&lean, 0.0, cap);
        assert!(d > 1.0, "barrier too weak: {d}");
    }
}
