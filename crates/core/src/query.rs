//! The versioned query surface shared by the CLI and `llama3sim serve`.
//!
//! Every front end — the `llama3sim` subcommands and the HTTP daemon —
//! speaks the same API: build a [`Query`], dispatch it (the dispatcher
//! lives in the `serve` crate, above this one), and render the
//! [`Response`]. The wire encoding is a single line of text,
//!
//! ```text
//! llama3sim/1 <kind> key=value key=value ...
//! ```
//!
//! with the protocol version first (see [`QUERY_API_VERSION`]), so a
//! server can reject queries from a future client instead of
//! misreading them. Keys at their default value are omitted; the
//! encoder emits keys in one fixed order, which makes
//! [`Query::canonical_wire`] a canonical form: two queries are the
//! same computation iff their canonical lines are equal. The canonical
//! form also normalizes out pure *execution hints* (today: the scoring
//! `threads` knob), so a thundering herd that only disagrees about
//! thread counts coalesces onto one computation.
//!
//! This module defines only data — no I/O, no dispatch — so it can sit
//! in `parallelism_core` without dragging the analyzer, conformance or
//! bench crates into the dependency graph. A `repo_lint` rule keeps
//! these wire types out of the crates *below* core: the substrate
//! must not grow knowledge of the network protocol.

use crate::analyze;
use crate::fsdp::ZeroMode;
use crate::infer::{InferPlan, InferReport, InferSpec, InferenceModel};
use crate::search::{SearchReport, SearchSpec, SearchStrategy};
use crate::step::Workload;
use collectives::CacheStats;
use sim_engine::time::SimDuration;
use std::fmt;
use workload::traffic::{TrafficShape, TrafficSpec};

/// Query-schema version.
///
/// - **v1** — the original seven kinds (`analyze`, `fuzz`, `bench`,
///   `goodput`, `search`, `stats`, `trace`), implicitly all training.
/// - **v2** — workload-generic: adds the `infer` kind and the
///   `workload=` key on `search`. Purely additive, so the magic token
///   below stays at `llama3sim/1` and every v1 line (and its canonical
///   encoding) is byte-identical under v2.
pub const QUERY_API_VERSION: u32 = 2;

/// The magic token opening every wire line, `llama3sim/<wire-format>`.
/// This tracks the *line format*, which has not changed; see
/// [`QUERY_API_VERSION`] for the schema revision.
pub const WIRE_MAGIC: &str = "llama3sim/1";

/// A malformed or unanswerable query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryError {
    /// What went wrong, suitable for the wire error line.
    pub message: String,
}

impl QueryError {
    /// A new error with the given message.
    pub fn new(message: impl Into<String>) -> QueryError {
        QueryError {
            message: message.into(),
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for QueryError {}

/// What the `analyze` query should look at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeMode {
    /// Enumerate the named configurations.
    List,
    /// Analyze one named configuration.
    Config(String),
    /// Sweep the 64-config conformance grid.
    Grid,
    /// Analyze a single grid configuration by index (0-based). Used by
    /// the serve benchmark and the conformance oracle to replay the
    /// grid one query at a time.
    GridIndex(usize),
}

/// The `fuzz` query: a seeded conformance sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzQuery {
    /// Number of sampled cases.
    pub cases: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FuzzQuery {
    fn default() -> FuzzQuery {
        FuzzQuery { cases: 500, seed: 1 }
    }
}

/// The `search` query: the Pareto auto-parallelism sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchQuery {
    /// Model name: `405b`, `70b` or `8b`.
    pub model: String,
    /// Cluster size in GPUs.
    pub gpus: u32,
    /// Sequence length.
    pub seq: u64,
    /// Override the model's layer count (`0` = the model default).
    pub layers: u64,
    /// Override the token budget (`0` = the 16 M-token default).
    pub budget: u64,
    /// Goodput-refine the best `head` frontier points (0 = off).
    pub goodput_head: usize,
    /// Scoring threads (0 = all available). An execution hint, not a
    /// semantic input: the report is bit-identical for any value, so
    /// the canonical form normalizes it to 0.
    pub threads: usize,
    /// Largest CP degree to enumerate (0 = the spec default, 64).
    pub max_cp: u32,
    /// ZeRO modes to enumerate (empty = all three).
    pub zero: Vec<ZeroMode>,
    /// Report whether this `tp,cp,pp,dp` mesh is on the frontier.
    pub expect: Option<(u32, u32, u32, u32)>,
    /// Use the gradient-guided candidate strategy.
    pub guided: bool,
    /// Which workload to rank meshes for: training (step time, peak
    /// HBM) or inference (p99 TTFT, peak HBM).
    pub workload: Workload,
}

impl Default for SearchQuery {
    fn default() -> SearchQuery {
        SearchQuery {
            model: "405b".to_string(),
            gpus: 16_384,
            seq: 8_192,
            layers: 0,
            budget: 0,
            goodput_head: 0,
            threads: 0,
            max_cp: 0,
            zero: Vec::new(),
            expect: None,
            guided: false,
            workload: Workload::Training,
        }
    }
}

impl SearchQuery {
    /// Resolves the query to a [`SearchSpec`].
    ///
    /// # Errors
    /// [`QueryError`] on an unknown model name.
    pub fn to_spec(&self) -> Result<SearchSpec, QueryError> {
        let mut spec = match self.model.as_str() {
            "405b" => SearchSpec::llama3_405b(self.gpus, self.seq),
            "70b" => SearchSpec::llama3_70b(self.gpus, self.seq),
            "8b" => SearchSpec::llama3_8b(self.gpus, self.seq),
            other => {
                return Err(QueryError::new(format!(
                    "unknown model {other:?} (want 405b|70b|8b)"
                )))
            }
        };
        if self.layers > 0 {
            spec.input.model = spec.input.model.with_layers(self.layers);
        }
        if self.budget > 0 {
            spec.input.token_budget = self.budget;
        }
        if self.max_cp > 0 {
            spec = spec.max_cp(self.max_cp);
        }
        if !self.zero.is_empty() {
            spec.zero_modes = self.zero.clone();
        }
        if self.guided {
            spec.strategy = SearchStrategy::Guided;
        }
        spec.workload = self.workload;
        Ok(spec.threads(self.threads).goodput_head(self.goodput_head))
    }
}

/// What the `trace` query should return.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Chrome-trace JSON of the retained (or windowed) timeline.
    #[default]
    Chrome,
    /// JSON stats envelope: tier residency plus window aggregates.
    Stats,
    /// Self-checking smoke: stream the run into the tower, seek three
    /// windows, and diff each against a full-resolution replay.
    Smoke,
}

impl TraceMode {
    fn tag(self) -> &'static str {
        match self {
            TraceMode::Chrome => "chrome",
            TraceMode::Stats => "stats",
            TraceMode::Smoke => "smoke",
        }
    }
}

/// Default fault-timeline seed for `trace` runs — the same seed the
/// `goodput` experiment pins, so the two queries describe the same
/// simulated day.
pub const DEFAULT_TRACE_SEED: u64 = 0x0060_01D9;

/// The `trace` query: simulate a multi-day run, store its timeline in
/// the tiered (tower-sampling) trace store, and export a window of it.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceQuery {
    /// Model name: `405b`, `70b` or `8b`.
    pub model: String,
    /// Cluster size in GPUs.
    pub gpus: u32,
    /// Sequence length.
    pub seq: u64,
    /// Run horizon, seconds.
    pub horizon_s: u64,
    /// Fault-timeline seed.
    pub seed: u64,
    /// Tier-0 capacity of the store, events.
    pub tier0: u64,
    /// Optional seek window `[t0, t1)` in seconds. With a window the
    /// response covers only that range (rematerialized by replay when
    /// it needs finer resolution than storage kept).
    pub window: Option<(u64, u64)>,
    /// Zoom level: events decimated to global-index stride `2^zoom`.
    pub zoom: u32,
    /// Response flavour.
    pub mode: TraceMode,
}

impl Default for TraceQuery {
    fn default() -> TraceQuery {
        TraceQuery {
            model: "405b".to_string(),
            gpus: 16_384,
            seq: 8_192,
            horizon_s: 86_400,
            seed: DEFAULT_TRACE_SEED,
            tier0: 4_096,
            window: None,
            zoom: 0,
            mode: TraceMode::default(),
        }
    }
}

impl TraceQuery {
    /// Resolves the query to a [`crate::step::StepModel`] via the §5.1
    /// planner: the planner picks the mesh, then the candidate builder
    /// materializes the step. Deterministic in the query fields.
    ///
    /// # Errors
    /// [`QueryError`] on an unknown model name or an infeasible
    /// (model, gpus, seq) combination.
    pub fn to_step(&self) -> Result<crate::step::StepModel, QueryError> {
        use crate::planner::{candidate_step, plan, PlannerInput};
        use llm_model::TransformerConfig;
        let model = match self.model.as_str() {
            "405b" => TransformerConfig::llama3_405b(),
            "70b" => TransformerConfig::llama3_70b(),
            "8b" => TransformerConfig::llama3_8b(),
            other => {
                return Err(QueryError::new(format!(
                    "unknown model {other:?} (want 405b|70b|8b)"
                )))
            }
        };
        let mut input = PlannerInput::llama3_405b(self.gpus, self.seq);
        input.model = model;
        let p = plan(&input).map_err(|e| QueryError::new(format!("trace: {e}")))?;
        let (step, _bs) = candidate_step(&input, p.mesh.tp(), p.mesh.cp(), p.mesh.pp())
            .ok_or_else(|| QueryError::new("trace: planned mesh is not admissible"))?;
        Ok(step)
    }
}

/// The `infer` query: price a serving workload — seeded traffic over a
/// TP/PP/replica mesh with continuous batching and paged KV cache.
#[derive(Debug, Clone, PartialEq)]
pub struct InferQuery {
    /// Model name: `405b`, `70b` or `8b`.
    pub model: String,
    /// Fleet size in GPUs.
    pub gpus: u32,
    /// Tensor-parallel degree per replica (`0` = auto-plan).
    pub tp: u32,
    /// Pipeline stages per replica (`0` = auto-plan).
    pub pp: u32,
    /// Traffic intensity profile.
    pub traffic: TrafficShape,
    /// Offered load, requests per day (the rate holds even when the
    /// horizon is shorter than a day).
    pub requests_per_day: u64,
    /// Arrival-window length, seconds.
    pub horizon_s: u64,
    /// Traffic seed.
    pub seed: u64,
    /// KV-block size, tokens.
    pub block: u64,
    /// Max resident sequences per replica.
    pub max_batch: usize,
    /// TTFT SLO, milliseconds.
    pub slo_ttft_ms: u64,
    /// TPOT SLO, milliseconds.
    pub slo_tpot_ms: u64,
    /// Simulation threads (`0` = all available). An execution hint —
    /// results are bit-identical for any value, so the canonical form
    /// normalizes it to 0.
    pub threads: usize,
}

impl Default for InferQuery {
    fn default() -> InferQuery {
        InferQuery {
            model: "405b".to_string(),
            gpus: 16_384,
            tp: 0,
            pp: 0,
            traffic: TrafficShape::Diurnal,
            requests_per_day: 1_000_000,
            horizon_s: 86_400,
            seed: 1,
            block: 16,
            max_batch: 256,
            slo_ttft_ms: 2_000,
            slo_tpot_ms: 100,
            threads: 0,
        }
    }
}

impl InferQuery {
    fn config(&self) -> Result<llm_model::TransformerConfig, QueryError> {
        use llm_model::TransformerConfig;
        match self.model.as_str() {
            "405b" => Ok(TransformerConfig::llama3_405b()),
            "70b" => Ok(TransformerConfig::llama3_70b()),
            "8b" => Ok(TransformerConfig::llama3_8b()),
            other => Err(QueryError::new(format!(
                "unknown model {other:?} (want 405b|70b|8b)"
            ))),
        }
    }

    /// Resolves the query to an [`InferenceModel`]: explicit `tp`/`pp`
    /// when given, otherwise [`InferPlan::auto`], with replicas filling
    /// the fleet.
    ///
    /// # Errors
    /// [`QueryError`] on an unknown model, an infeasible mesh, or a
    /// fleet smaller than one replica.
    pub fn to_model(&self) -> Result<InferenceModel, QueryError> {
        let cfg = self.config()?;
        let gpu = cluster_model::gpu::GpuSpec::h100_sxm_hbm3();
        let gpus_per_node = 8;
        let plan = if self.tp > 0 || self.pp > 0 {
            let tp = self.tp.max(1);
            let pp = self.pp.max(1);
            if tp * pp > self.gpus {
                return Err(QueryError::new(format!(
                    "infer: tp {tp} × pp {pp} exceeds the {}-GPU fleet",
                    self.gpus
                )));
            }
            InferPlan::new(tp, pp, self.gpus / (tp * pp))
        } else {
            InferPlan::auto(&cfg, &gpu, self.gpus, gpus_per_node).ok_or_else(|| {
                QueryError::new(format!(
                    "infer: no tp×pp plan fits {} on {} GPUs",
                    self.model, self.gpus
                ))
            })?
        };
        let spec = InferSpec::new(cfg, gpu, gpus_per_node, plan)
            .block_tokens(self.block.max(1))
            .max_batch(self.max_batch)
            .threads(self.threads)
            .slo(
                SimDuration::from_millis(self.slo_ttft_ms),
                SimDuration::from_millis(self.slo_tpot_ms),
            );
        InferenceModel::new(spec).map_err(|e| QueryError::new(format!("infer: {e}")))
    }

    /// The seeded traffic this query offers.
    pub fn traffic_spec(&self) -> TrafficSpec {
        TrafficSpec::serving_day(self.traffic, self.requests_per_day, self.seed)
            .horizon_s(self.horizon_s as f64)
    }
}

/// One query: everything a client can ask of the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Pre-flight static analysis (no simulation).
    Analyze(AnalyzeMode),
    /// Seeded conformance fuzz sweep.
    Fuzz(FuzzQuery),
    /// Wall-clock performance snapshot of the simulator's hot paths.
    Bench,
    /// The seeded 24 h production goodput simulation.
    Goodput,
    /// The Pareto auto-parallelism search.
    Search(SearchQuery),
    /// Memo-layer and dispatcher statistics.
    Stats,
    /// Tiered-trace export of a simulated multi-day run.
    Trace(TraceQuery),
    /// Continuous-batching inference simulation over seeded traffic.
    Infer(InferQuery),
}

fn zero_tag(z: ZeroMode) -> &'static str {
    match z {
        ZeroMode::Zero1 => "zero1",
        ZeroMode::Zero2 => "zero2",
        ZeroMode::Zero3 => "zero3",
    }
}

fn parse_zero(s: &str) -> Result<Vec<ZeroMode>, QueryError> {
    s.split(',')
        .map(|m| match m.trim() {
            "zero1" | "1" => Ok(ZeroMode::Zero1),
            "zero2" | "2" => Ok(ZeroMode::Zero2),
            "zero3" | "3" => Ok(ZeroMode::Zero3),
            other => Err(QueryError::new(format!(
                "zero: unknown mode {other:?} (want zero1|zero2|zero3)"
            ))),
        })
        .collect()
}

fn parse_num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, QueryError> {
    v.parse()
        .map_err(|_| QueryError::new(format!("{key}: bad number {v:?}")))
}

impl Query {
    /// The query kind tag used on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            Query::Analyze(_) => "analyze",
            Query::Fuzz(_) => "fuzz",
            Query::Bench => "bench",
            Query::Goodput => "goodput",
            Query::Search(_) => "search",
            Query::Stats => "stats",
            Query::Trace(_) => "trace",
            Query::Infer(_) => "infer",
        }
    }

    /// Encodes the query as one wire line (no trailing newline). Keys
    /// at their default value are omitted; key order is fixed, so the
    /// encoding is injective over semantically distinct queries.
    pub fn to_wire(&self) -> String {
        let mut out = format!("{WIRE_MAGIC} {}", self.kind());
        let mut kv = |k: &str, v: String| {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            out.push_str(&v);
        };
        match self {
            Query::Analyze(mode) => match mode {
                AnalyzeMode::List => kv("mode", "list".into()),
                AnalyzeMode::Config(name) => {
                    kv("mode", "config".into());
                    kv("config", name.clone());
                }
                AnalyzeMode::Grid => kv("mode", "grid".into()),
                AnalyzeMode::GridIndex(i) => {
                    kv("mode", "grid_index".into());
                    kv("index", i.to_string());
                }
            },
            Query::Fuzz(f) => {
                let d = FuzzQuery::default();
                if f.cases != d.cases {
                    kv("cases", f.cases.to_string());
                }
                if f.seed != d.seed {
                    kv("seed", f.seed.to_string());
                }
            }
            Query::Bench | Query::Goodput | Query::Stats => {}
            Query::Search(s) => {
                let d = SearchQuery::default();
                if s.model != d.model {
                    kv("model", s.model.clone());
                }
                if s.gpus != d.gpus {
                    kv("gpus", s.gpus.to_string());
                }
                if s.seq != d.seq {
                    kv("seq", s.seq.to_string());
                }
                if s.layers != d.layers {
                    kv("layers", s.layers.to_string());
                }
                if s.budget != d.budget {
                    kv("budget", s.budget.to_string());
                }
                if s.goodput_head != d.goodput_head {
                    kv("head", s.goodput_head.to_string());
                }
                if s.threads != d.threads {
                    kv("threads", s.threads.to_string());
                }
                if s.max_cp != d.max_cp {
                    kv("max_cp", s.max_cp.to_string());
                }
                if !s.zero.is_empty() {
                    let list: Vec<&str> = s.zero.iter().map(|&z| zero_tag(z)).collect();
                    kv("zero", list.join(","));
                }
                if let Some((tp, cp, pp, dp)) = s.expect {
                    kv("expect", format!("{tp},{cp},{pp},{dp}"));
                }
                if s.guided {
                    kv("guided", "true".into());
                }
                if s.workload != d.workload {
                    kv("workload", s.workload.tag().into());
                }
            }
            Query::Trace(t) => {
                let d = TraceQuery::default();
                if t.model != d.model {
                    kv("model", t.model.clone());
                }
                if t.gpus != d.gpus {
                    kv("gpus", t.gpus.to_string());
                }
                if t.seq != d.seq {
                    kv("seq", t.seq.to_string());
                }
                if t.horizon_s != d.horizon_s {
                    kv("horizon", t.horizon_s.to_string());
                }
                if t.seed != d.seed {
                    kv("seed", t.seed.to_string());
                }
                if t.tier0 != d.tier0 {
                    kv("tier0", t.tier0.to_string());
                }
                if let Some((t0, t1)) = t.window {
                    kv("window", format!("{t0},{t1}"));
                }
                if t.zoom != d.zoom {
                    kv("zoom", t.zoom.to_string());
                }
                if t.mode != d.mode {
                    kv("mode", t.mode.tag().into());
                }
            }
            Query::Infer(i) => {
                let d = InferQuery::default();
                if i.model != d.model {
                    kv("model", i.model.clone());
                }
                if i.gpus != d.gpus {
                    kv("gpus", i.gpus.to_string());
                }
                if i.tp != d.tp {
                    kv("tp", i.tp.to_string());
                }
                if i.pp != d.pp {
                    kv("pp", i.pp.to_string());
                }
                if i.traffic != d.traffic {
                    kv("traffic", i.traffic.tag().into());
                }
                if i.requests_per_day != d.requests_per_day {
                    kv("rpd", i.requests_per_day.to_string());
                }
                if i.horizon_s != d.horizon_s {
                    kv("horizon", i.horizon_s.to_string());
                }
                if i.seed != d.seed {
                    kv("seed", i.seed.to_string());
                }
                if i.block != d.block {
                    kv("block", i.block.to_string());
                }
                if i.max_batch != d.max_batch {
                    kv("batch", i.max_batch.to_string());
                }
                if i.slo_ttft_ms != d.slo_ttft_ms {
                    kv("slo_ttft", i.slo_ttft_ms.to_string());
                }
                if i.slo_tpot_ms != d.slo_tpot_ms {
                    kv("slo_tpot", i.slo_tpot_ms.to_string());
                }
                if i.threads != d.threads {
                    kv("threads", i.threads.to_string());
                }
            }
        }
        out
    }

    /// The canonical wire form: [`Query::to_wire`] with execution
    /// hints (the `threads` knob) normalized out. Two queries describe
    /// the same computation iff their canonical lines are equal.
    pub fn canonical_wire(&self) -> String {
        match self {
            Query::Search(s) => {
                let mut c = s.clone();
                c.threads = 0;
                Query::Search(c).to_wire()
            }
            Query::Infer(i) => {
                let mut c = i.clone();
                c.threads = 0;
                Query::Infer(c).to_wire()
            }
            q => q.to_wire(),
        }
    }

    /// A stable 64-bit hash (FNV-1a) of the canonical wire form — the
    /// coalescing key of the serve dispatcher.
    pub fn canonical_hash(&self) -> u64 {
        fnv1a(self.canonical_wire().as_bytes())
    }

    /// Decodes one wire line.
    ///
    /// # Errors
    /// [`QueryError`] on a bad magic/version token, unknown kind,
    /// unknown/duplicate/malformed key, or a missing required key.
    pub fn parse_wire(line: &str) -> Result<Query, QueryError> {
        let mut tokens = line.split_whitespace();
        let magic = tokens
            .next()
            .ok_or_else(|| QueryError::new("empty query"))?;
        if magic != WIRE_MAGIC {
            return Err(QueryError::new(format!(
                "bad protocol token {magic:?} (this server speaks {WIRE_MAGIC})"
            )));
        }
        let kind = tokens
            .next()
            .ok_or_else(|| QueryError::new("missing query kind"))?;
        let mut pairs: Vec<(&str, &str)> = Vec::new();
        for t in tokens {
            let Some((k, v)) = t.split_once('=') else {
                return Err(QueryError::new(format!("bad token {t:?} (want key=value)")));
            };
            if pairs.iter().any(|&(seen, _)| seen == k) {
                return Err(QueryError::new(format!("duplicate key {k:?}")));
            }
            pairs.push((k, v));
        }
        let get = |key: &str| pairs.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v);
        let known = |allowed: &[&str]| -> Result<(), QueryError> {
            for &(k, _) in &pairs {
                if !allowed.contains(&k) {
                    return Err(QueryError::new(format!("{kind}: unknown key {k:?}")));
                }
            }
            Ok(())
        };
        match kind {
            "analyze" => {
                known(&["mode", "config", "index"])?;
                let mode = get("mode").unwrap_or("grid");
                let mode = match mode {
                    "list" => AnalyzeMode::List,
                    "grid" => AnalyzeMode::Grid,
                    "config" => AnalyzeMode::Config(
                        get("config")
                            .ok_or_else(|| QueryError::new("analyze: mode=config wants config=NAME"))?
                            .to_string(),
                    ),
                    "grid_index" => AnalyzeMode::GridIndex(parse_num(
                        "index",
                        get("index")
                            .ok_or_else(|| QueryError::new("analyze: mode=grid_index wants index=N"))?,
                    )?),
                    other => {
                        return Err(QueryError::new(format!(
                            "analyze: unknown mode {other:?} (want list|config|grid|grid_index)"
                        )))
                    }
                };
                Ok(Query::Analyze(mode))
            }
            "fuzz" => {
                known(&["cases", "seed"])?;
                let mut f = FuzzQuery::default();
                if let Some(v) = get("cases") {
                    f.cases = parse_num("cases", v)?;
                }
                if let Some(v) = get("seed") {
                    f.seed = parse_num("seed", v)?;
                }
                Ok(Query::Fuzz(f))
            }
            "bench" => {
                known(&[])?;
                Ok(Query::Bench)
            }
            "goodput" => {
                known(&[])?;
                Ok(Query::Goodput)
            }
            "stats" => {
                known(&[])?;
                Ok(Query::Stats)
            }
            "search" => {
                known(&[
                    "model", "gpus", "seq", "layers", "budget", "head", "threads", "max_cp",
                    "zero", "expect", "guided", "workload",
                ])?;
                let mut s = SearchQuery::default();
                if let Some(v) = get("model") {
                    s.model = v.to_string();
                }
                if let Some(v) = get("gpus") {
                    s.gpus = parse_num("gpus", v)?;
                }
                if let Some(v) = get("seq") {
                    s.seq = parse_num("seq", v)?;
                }
                if let Some(v) = get("layers") {
                    s.layers = parse_num("layers", v)?;
                }
                if let Some(v) = get("budget") {
                    s.budget = parse_num("budget", v)?;
                }
                if let Some(v) = get("head") {
                    s.goodput_head = parse_num("head", v)?;
                }
                if let Some(v) = get("threads") {
                    s.threads = parse_num("threads", v)?;
                }
                if let Some(v) = get("max_cp") {
                    s.max_cp = parse_num("max_cp", v)?;
                }
                if let Some(v) = get("zero") {
                    s.zero = parse_zero(v)?;
                }
                if let Some(v) = get("expect") {
                    let parts: Vec<u32> =
                        v.split(',').filter_map(|p| p.trim().parse().ok()).collect();
                    let [tp, cp, pp, dp] = parts[..] else {
                        return Err(QueryError::new(format!(
                            "expect: want tp,cp,pp,dp, got {v:?}"
                        )));
                    };
                    s.expect = Some((tp, cp, pp, dp));
                }
                if let Some(v) = get("guided") {
                    s.guided = match v {
                        "true" => true,
                        "false" => false,
                        other => {
                            return Err(QueryError::new(format!(
                                "guided: want true|false, got {other:?}"
                            )))
                        }
                    };
                }
                if let Some(v) = get("workload") {
                    s.workload = Workload::parse(v).ok_or_else(|| {
                        QueryError::new(format!(
                            "workload: unknown tag {v:?} (want train|infer)"
                        ))
                    })?;
                }
                Ok(Query::Search(s))
            }
            "trace" => {
                known(&[
                    "model", "gpus", "seq", "horizon", "seed", "tier0", "window", "zoom", "mode",
                ])?;
                let mut t = TraceQuery::default();
                if let Some(v) = get("model") {
                    t.model = v.to_string();
                }
                if let Some(v) = get("gpus") {
                    t.gpus = parse_num("gpus", v)?;
                }
                if let Some(v) = get("seq") {
                    t.seq = parse_num("seq", v)?;
                }
                if let Some(v) = get("horizon") {
                    t.horizon_s = parse_num("horizon", v)?;
                }
                if let Some(v) = get("seed") {
                    t.seed = parse_num("seed", v)?;
                }
                if let Some(v) = get("tier0") {
                    t.tier0 = parse_num("tier0", v)?;
                }
                if let Some(v) = get("window") {
                    let parts: Vec<u64> =
                        v.split(',').filter_map(|p| p.trim().parse().ok()).collect();
                    let [t0, t1] = parts[..] else {
                        return Err(QueryError::new(format!("window: want t0,t1, got {v:?}")));
                    };
                    if t0 >= t1 {
                        return Err(QueryError::new(format!(
                            "window: t0 must be before t1, got {v:?}"
                        )));
                    }
                    t.window = Some((t0, t1));
                }
                if let Some(v) = get("zoom") {
                    t.zoom = parse_num("zoom", v)?;
                }
                if let Some(v) = get("mode") {
                    t.mode = match v {
                        "chrome" => TraceMode::Chrome,
                        "stats" => TraceMode::Stats,
                        "smoke" => TraceMode::Smoke,
                        other => {
                            return Err(QueryError::new(format!(
                                "trace: unknown mode {other:?} (want chrome|stats|smoke)"
                            )))
                        }
                    };
                }
                Ok(Query::Trace(t))
            }
            "infer" => {
                known(&[
                    "model", "gpus", "tp", "pp", "traffic", "rpd", "horizon", "seed", "block",
                    "batch", "slo_ttft", "slo_tpot", "threads",
                ])?;
                let mut i = InferQuery::default();
                if let Some(v) = get("model") {
                    i.model = v.to_string();
                }
                if let Some(v) = get("gpus") {
                    i.gpus = parse_num("gpus", v)?;
                }
                if let Some(v) = get("tp") {
                    i.tp = parse_num("tp", v)?;
                }
                if let Some(v) = get("pp") {
                    i.pp = parse_num("pp", v)?;
                }
                if let Some(v) = get("traffic") {
                    i.traffic = TrafficShape::parse(v).ok_or_else(|| {
                        QueryError::new(format!(
                            "traffic: unknown shape {v:?} (want steady|diurnal|bursty)"
                        ))
                    })?;
                }
                if let Some(v) = get("rpd") {
                    i.requests_per_day = parse_num("rpd", v)?;
                }
                if let Some(v) = get("horizon") {
                    i.horizon_s = parse_num("horizon", v)?;
                }
                if let Some(v) = get("seed") {
                    i.seed = parse_num("seed", v)?;
                }
                if let Some(v) = get("block") {
                    i.block = parse_num("block", v)?;
                }
                if let Some(v) = get("batch") {
                    i.max_batch = parse_num("batch", v)?;
                }
                if let Some(v) = get("slo_ttft") {
                    i.slo_ttft_ms = parse_num("slo_ttft", v)?;
                }
                if let Some(v) = get("slo_tpot") {
                    i.slo_tpot_ms = parse_num("slo_tpot", v)?;
                }
                if let Some(v) = get("threads") {
                    i.threads = parse_num("threads", v)?;
                }
                Ok(Query::Infer(i))
            }
            other => Err(QueryError::new(format!(
                "unknown query kind {other:?} (want analyze|fuzz|bench|goodput|search|stats|trace|infer)"
            ))),
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The `analyze` response payload.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalyzeResponse {
    /// The named-configuration catalog: `(name, description)` pairs.
    List(Vec<(String, String)>),
    /// One analyzed configuration (a named config or one grid index).
    Config {
        /// The config's name (or grid spec display).
        name: String,
        /// The analyzer's findings.
        report: analyze::Report,
    },
    /// The full grid sweep: `(spec display, report)` per config.
    Grid(Vec<(String, analyze::Report)>),
}

impl AnalyzeResponse {
    /// `true` if any analyzed config has error-severity findings.
    pub fn has_errors(&self) -> bool {
        match self {
            AnalyzeResponse::List(_) => false,
            AnalyzeResponse::Config { report, .. } => report.has_errors(),
            AnalyzeResponse::Grid(results) => results.iter().any(|(_, r)| r.has_errors()),
        }
    }

    /// The legacy `--json` rendering: one JSON object per diagnostic
    /// (empty for a clean sweep or a list query).
    pub fn render_jsonl(&self) -> String {
        match self {
            AnalyzeResponse::List(_) => String::new(),
            AnalyzeResponse::Config { report, .. } => report.render_jsonl(),
            AnalyzeResponse::Grid(results) => results
                .iter()
                .map(|(_, r)| r.render_jsonl())
                .filter(|s| !s.is_empty())
                .collect::<Vec<_>>()
                .join("\n"),
        }
    }

    fn render_human(&self) -> String {
        match self {
            AnalyzeResponse::List(names) => names
                .iter()
                .map(|(name, desc)| format!("{name:<22} {desc}"))
                .collect::<Vec<_>>()
                .join("\n"),
            AnalyzeResponse::Config { name, report } => {
                format!("{name}: {}", report.render_human())
            }
            AnalyzeResponse::Grid(results) => {
                let mut out = String::new();
                let mut failed = 0usize;
                for (spec, report) in results {
                    if !report.is_clean() {
                        out.push_str(&format!("[{spec}]\n{}\n", report.render_human()));
                    }
                    if report.has_errors() {
                        failed += 1;
                    }
                }
                out.push_str(&format!(
                    "analyzed {} grid configs: {} with errors",
                    results.len(),
                    failed
                ));
                out
            }
        }
    }
}

/// A shrunk fuzz counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Index of the failing case in the sweep.
    pub case: u64,
    /// The original violation message.
    pub message: String,
    /// Display form of the minimized spec.
    pub min_display: String,
    /// The minimized spec's violation message.
    pub min_message: String,
    /// Accepted shrink steps.
    pub shrink_steps: u32,
    /// Ready-to-paste `#[test]` reproducing the failure.
    pub snippet: String,
}

/// The `fuzz` response payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzResponse {
    /// Cases swept.
    pub cases: u64,
    /// The sweep seed.
    pub seed: u64,
    /// The first (shrunk) violation, `None` on a clean sweep.
    pub counterexample: Option<Counterexample>,
}

impl FuzzResponse {
    fn render_human(&self) -> String {
        match &self.counterexample {
            None => format!(
                "conformance fuzz: {} cases, seed {:#x}: no counterexamples",
                self.cases, self.seed
            ),
            Some(ce) => ce.snippet.clone(),
        }
    }

    /// The diagnostic lines the CLI prints to stderr on a violation.
    pub fn render_diagnostics(&self) -> Option<String> {
        self.counterexample.as_ref().map(|ce| {
            format!(
                "counterexample at case {}/{} (seed {:#x}):\n  {}\nshrunk in {} steps to: {}\n  {}\n\npaste this test to pin the regression:\n",
                ce.case, self.cases, self.seed, ce.message, ce.shrink_steps, ce.min_display,
                ce.min_message
            )
        })
    }
}

/// The `bench` response payload: wall-clock timings of the simulator's
/// hot paths. Inherently nondeterministic — the only response kind
/// whose payload is wall-clock, which is why the serve dispatcher
/// never caches it.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResponse {
    /// Median §5.1 planning sweep at 405B@16K, milliseconds.
    pub plan_ms: f64,
    /// The planner's chosen mesh, display form.
    pub plan_mesh: String,
    /// Median folded 8K-GPU step simulation, milliseconds.
    pub folded_ms: f64,
    /// Median full-fidelity step simulation, milliseconds.
    pub full_ms: f64,
    /// Whether folded and full reports were bit-identical.
    pub identical: bool,
    /// Median fluid solve of 1 024 transfers, milliseconds.
    pub fluid_ms: f64,
    /// Outcome count of the fluid solve.
    pub fluid_outcomes: usize,
}

impl BenchResponse {
    /// Full-over-folded speedup.
    pub fn speedup(&self) -> f64 {
        self.full_ms / self.folded_ms
    }

    fn render_human(&self) -> String {
        format!(
            "plan 405B @ 16K GPUs        {:9.2} ms   ({})\n\
             folded 8K-GPU 405B step     {:9.2} ms\n\
             full   8K-GPU 405B step     {:9.2} ms   ({:.1}x, identical: {})\n\
             fluid solve 1K transfers    {:9.2} ms   ({} outcomes)",
            self.plan_ms,
            self.plan_mesh,
            self.folded_ms,
            self.full_ms,
            self.speedup(),
            self.identical,
            self.fluid_ms,
            self.fluid_outcomes
        )
    }
}

/// The `goodput` response payload: the seeded 24 h production run.
#[derive(Debug, Clone, PartialEq)]
pub struct GoodputResponse {
    /// Wall-clock of the simulation itself, milliseconds.
    pub sim_wall_ms: f64,
    /// The fault-timeline seed.
    pub seed: u64,
    /// Simulated wall time, seconds.
    pub wall_time_s: f64,
    /// Goodput (effective-training-time ratio).
    pub goodput: f64,
    /// Steps whose work survived to the end of the run.
    pub steps_completed: u64,
    /// Job restarts.
    pub restarts: u32,
    /// Healthy step time, seconds.
    pub healthy_step_s: f64,
    /// Checkpoint write stalls, seconds.
    pub loss_checkpoint_s: f64,
    /// Failure-detection lag, seconds.
    pub loss_detect_s: f64,
    /// Reschedule plus restore, seconds.
    pub loss_restart_s: f64,
    /// Re-executed steps, seconds.
    pub loss_rework_s: f64,
    /// Degraded-mode overhead, seconds.
    pub loss_degraded_s: f64,
    /// Checkpoint shard size per rank, bytes.
    pub checkpoint_bytes_per_rank: u64,
    /// One checkpoint write stall, seconds.
    pub checkpoint_write_s: f64,
    /// Configured checkpoint interval, seconds.
    pub checkpoint_interval_s: f64,
    /// Young/Daly optimal interval, seconds.
    pub young_daly_interval_s: f64,
    /// Mean time between fatal faults, seconds.
    pub mtbf_s: f64,
}

impl GoodputResponse {
    fn render_human(&self) -> String {
        format!(
            "24 h, 16K GPUs, 405B, seed {:#x}\n\
             simulated in                {:9.2} ms\n\
             goodput                     {:9.4}\n\
             effective training time     {:9.4}\n\
             steps completed             {:9}\n\
             restarts                    {:9}\n\
             lost to checkpoints         {:9.0} s\n\
             lost to rework              {:9.0} s\n\
             lost to detect+restart      {:9.0} s\n\
             lost to degradation         {:9.0} s\n\
             Young/Daly interval         {:9.0} s (simulated: {:.0} s)",
            self.seed,
            self.sim_wall_ms,
            self.goodput,
            self.goodput,
            self.steps_completed,
            self.restarts,
            self.loss_checkpoint_s,
            self.loss_rework_s,
            self.loss_detect_s + self.loss_restart_s,
            self.loss_degraded_s,
            self.young_daly_interval_s,
            self.checkpoint_interval_s
        )
    }
}

/// The `search` response payload. Carries no wall-clock — timings are
/// measured by the caller around the dispatch, so two dispatches of
/// one query are byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResponse {
    /// The deterministic search report.
    pub report: SearchReport,
    /// The `expect` mesh of the query, if any.
    pub expect: Option<(u32, u32, u32, u32)>,
    /// Whether the expected mesh is on the frontier (`None` when no
    /// expectation was asked).
    pub expect_hit: Option<bool>,
}

/// One memo layer's stats line.
fn stats_line(label: &str, s: &CacheStats) -> String {
    format!(
        "{label:<16} hits {:>8}  misses {:>8}  entries {:>7}  ({:5.1}% hits)",
        s.hits,
        s.misses,
        s.entries,
        s.hit_rate() * 100.0
    )
}

/// The `stats` response payload: dispatcher counters plus every shared
/// memo layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsResponse {
    /// Queries dispatched (all kinds).
    pub queries: u64,
    /// Queries that joined an identical in-flight computation.
    pub coalesced: u64,
    /// Queries answered from the bounded response cache.
    pub response_hits: u64,
    /// Search computations actually run.
    pub searches_computed: u64,
    /// Searches derived from a cached wider-`max_cp` outcome set
    /// instead of re-running the funnel.
    pub frontier_reuses: u64,
    /// The shared collective-cost memo.
    pub cost: CacheStats,
    /// The shared schedule-shape (deadlock/race) verdict memo.
    pub sched: CacheStats,
    /// The shared TP/CP collective verdict memo.
    pub tp_cp: CacheStats,
    /// The shared FSDP collective verdict memo.
    pub fsdp: CacheStats,
}

impl StatsResponse {
    fn render_human(&self) -> String {
        format!(
            "queries dispatched    {:>8}\n\
             coalesced in-flight   {:>8}\n\
             response-cache hits   {:>8}\n\
             searches computed     {:>8}\n\
             frontier reuses       {:>8}\n\
             {}\n{}\n{}\n{}",
            self.queries,
            self.coalesced,
            self.response_hits,
            self.searches_computed,
            self.frontier_reuses,
            stats_line("cost cache", &self.cost),
            stats_line("sched verdicts", &self.sched),
            stats_line("tp/cp verdicts", &self.tp_cp),
            stats_line("fsdp verdicts", &self.fsdp),
        )
    }
}

/// The `trace` response payload. The body is fully deterministic (no
/// wall-clock), so the serve dispatcher caches and coalesces trace
/// queries like any other pure computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceResponse {
    /// The response flavour (echoes the query).
    pub mode: TraceMode,
    /// Full-resolution events the simulated run emitted.
    pub appended: u64,
    /// Events resident in the tiered store (the memory actually used).
    pub resident: u64,
    /// Tiers in the tower (including tier 0).
    pub tiers: u32,
    /// `false` if a smoke self-check found a mismatch.
    pub ok: bool,
    /// The rendered payload: chrome-trace JSON, the stats JSON
    /// envelope, or the smoke report.
    pub body: String,
}

impl TraceResponse {
    fn render_human(&self) -> String {
        self.body.clone()
    }
}

/// The `infer` response payload. Fully deterministic (no wall-clock),
/// so the serve dispatcher caches and coalesces inference queries like
/// any other pure computation.
#[derive(Debug, Clone, PartialEq)]
pub struct InferResponse {
    /// Model name (echoes the query).
    pub model: String,
    /// The resolved serving mesh.
    pub plan: InferPlan,
    /// Traffic shape (echoes the query).
    pub traffic: TrafficShape,
    /// Requests the trace offered.
    pub offered: u64,
    /// The serving metrics.
    pub report: InferReport,
}

impl InferResponse {
    fn render_human(&self) -> String {
        format!(
            "{} × {} GPUs  tp{} pp{} × {} replicas  traffic {}\n{}",
            self.model,
            self.plan.gpus(),
            self.plan.tp,
            self.plan.pp,
            self.plan.replicas,
            self.traffic.tag(),
            self.report.render_human()
        )
    }
}

/// One response: the result of dispatching a [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Query::Analyze`].
    Analyze(AnalyzeResponse),
    /// Answer to [`Query::Fuzz`].
    Fuzz(FuzzResponse),
    /// Answer to [`Query::Bench`].
    Bench(BenchResponse),
    /// Answer to [`Query::Goodput`].
    Goodput(GoodputResponse),
    /// Answer to [`Query::Search`].
    Search(Box<SearchResponse>),
    /// Answer to [`Query::Stats`].
    Stats(StatsResponse),
    /// Answer to [`Query::Trace`].
    Trace(TraceResponse),
    /// Answer to [`Query::Infer`].
    Infer(Box<InferResponse>),
}

impl Response {
    /// The response kind tag used on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            Response::Analyze(_) => "analyze",
            Response::Fuzz(_) => "fuzz",
            Response::Bench(_) => "bench",
            Response::Goodput(_) => "goodput",
            Response::Search(_) => "search",
            Response::Stats(_) => "stats",
            Response::Trace(_) => "trace",
            Response::Infer(_) => "infer",
        }
    }

    /// The human rendering — for the deterministic kinds, byte-for-byte
    /// what the pre-query CLI printed (minus wall-clock and envelope
    /// lines, which stay with the caller). No trailing newline.
    pub fn render_human(&self) -> String {
        match self {
            Response::Analyze(r) => r.render_human(),
            Response::Fuzz(r) => r.render_human(),
            Response::Bench(r) => r.render_human(),
            Response::Goodput(r) => r.render_human(),
            Response::Search(r) => r.report.render_human(),
            Response::Stats(r) => r.render_human(),
            Response::Trace(r) => r.render_human(),
            Response::Infer(r) => r.render_human(),
        }
    }

    /// The wire encoding: a status line, then the human rendering.
    /// Both the server and direct dispatch serialize through here, so
    /// the conformance oracle can compare the two byte-for-byte.
    pub fn render_wire(&self) -> String {
        format!("{WIRE_MAGIC} ok {}\n{}\n", self.kind(), self.render_human())
    }

    /// The wire encoding of an error.
    pub fn render_wire_error(err: &QueryError) -> String {
        format!("{WIRE_MAGIC} err {}\n", err.message)
    }

    /// The process exit code the CLI maps this response to.
    pub fn exit_code(&self) -> i32 {
        match self {
            Response::Analyze(r) => i32::from(r.has_errors()),
            Response::Fuzz(r) => i32::from(r.counterexample.is_some()),
            Response::Search(r) => i32::from(r.expect_hit == Some(false)),
            Response::Trace(r) => i32::from(!r.ok),
            Response::Infer(r) => i32::from(r.report.completed == 0),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trips_every_kind() {
        let queries = [
            Query::Analyze(AnalyzeMode::List),
            Query::Analyze(AnalyzeMode::Grid),
            Query::Analyze(AnalyzeMode::Config("scaled_405b".into())),
            Query::Analyze(AnalyzeMode::GridIndex(17)),
            Query::Fuzz(FuzzQuery { cases: 40, seed: 7 }),
            Query::Fuzz(FuzzQuery::default()),
            Query::Bench,
            Query::Goodput,
            Query::Stats,
            Query::Search(SearchQuery::default()),
            Query::Search(SearchQuery {
                model: "8b".into(),
                gpus: 8,
                seq: 8192,
                layers: 4,
                budget: 131_072,
                goodput_head: 2,
                threads: 3,
                max_cp: 2,
                zero: vec![ZeroMode::Zero1, ZeroMode::Zero3],
                expect: Some((2, 1, 2, 2)),
                guided: true,
                workload: Workload::Training,
            }),
            Query::Trace(TraceQuery::default()),
            Query::Trace(TraceQuery {
                model: "8b".into(),
                gpus: 8,
                seq: 8192,
                horizon_s: 3600,
                seed: 9,
                tier0: 128,
                window: Some((100, 160)),
                zoom: 2,
                mode: TraceMode::Stats,
            }),
            Query::Trace(TraceQuery {
                mode: TraceMode::Smoke,
                ..TraceQuery::default()
            }),
            Query::Infer(InferQuery::default()),
            Query::Infer(InferQuery {
                model: "8b".into(),
                gpus: 16,
                tp: 2,
                pp: 2,
                traffic: TrafficShape::Bursty,
                requests_per_day: 50_000,
                horizon_s: 3_600,
                seed: 9,
                block: 32,
                max_batch: 64,
                slo_ttft_ms: 500,
                slo_tpot_ms: 50,
                threads: 2,
            }),
            Query::Search(SearchQuery {
                workload: Workload::Inference,
                ..SearchQuery::default()
            }),
        ];
        for q in queries {
            let wire = q.to_wire();
            let back = Query::parse_wire(&wire).unwrap_or_else(|e| panic!("{wire}: {e}"));
            assert_eq!(back, q, "{wire}");
        }
    }

    #[test]
    fn canonical_hash_ignores_execution_hints() {
        let a = Query::Search(SearchQuery {
            threads: 1,
            ..SearchQuery::default()
        });
        let b = Query::Search(SearchQuery {
            threads: 16,
            ..SearchQuery::default()
        });
        assert_eq!(a.canonical_wire(), b.canonical_wire());
        assert_eq!(a.canonical_hash(), b.canonical_hash());
        let c = Query::Search(SearchQuery {
            max_cp: 2,
            ..SearchQuery::default()
        });
        assert_ne!(a.canonical_hash(), c.canonical_hash());

        let i1 = Query::Infer(InferQuery {
            threads: 1,
            ..InferQuery::default()
        });
        let i16 = Query::Infer(InferQuery {
            threads: 16,
            ..InferQuery::default()
        });
        assert_eq!(i1.canonical_hash(), i16.canonical_hash());
        let ib = Query::Infer(InferQuery {
            traffic: TrafficShape::Bursty,
            ..InferQuery::default()
        });
        assert_ne!(i1.canonical_hash(), ib.canonical_hash());
    }

    #[test]
    fn defaults_are_omitted_from_the_wire() {
        assert_eq!(Query::Search(SearchQuery::default()).to_wire(), "llama3sim/1 search");
        assert_eq!(Query::Fuzz(FuzzQuery::default()).to_wire(), "llama3sim/1 fuzz");
        assert_eq!(Query::Infer(InferQuery::default()).to_wire(), "llama3sim/1 infer");
        assert_eq!(
            Query::parse_wire("llama3sim/1 search").unwrap(),
            Query::Search(SearchQuery::default())
        );
        assert_eq!(
            Query::parse_wire("llama3sim/1 infer").unwrap(),
            Query::Infer(InferQuery::default())
        );
    }

    #[test]
    fn v1_training_lines_are_byte_identical_under_v2() {
        // The schema bump to v2 is additive: every v1 training line
        // must re-encode to exactly itself.
        for line in [
            "llama3sim/1 search",
            "llama3sim/1 search model=8b gpus=8 max_cp=2",
            "llama3sim/1 search gpus=8192 zero=zero1,zero3 expect=8,1,16,128 guided=true",
            "llama3sim/1 trace model=8b gpus=8 seq=4096 horizon=3600 seed=9",
            "llama3sim/1 analyze mode=grid",
            "llama3sim/1 fuzz cases=40 seed=7",
            "llama3sim/1 goodput",
        ] {
            let q = Query::parse_wire(line).unwrap();
            assert_eq!(q.to_wire(), line, "v1 line must survive v2 re-encoding");
        }
        // The workload key is emitted only when non-default.
        let infer_search = Query::Search(SearchQuery {
            workload: Workload::Inference,
            ..SearchQuery::default()
        });
        assert_eq!(infer_search.to_wire(), "llama3sim/1 search workload=infer");
    }

    #[test]
    fn malformed_wire_is_rejected() {
        for bad in [
            "",
            "llama3sim/2 stats",
            "llama3sim/1",
            "llama3sim/1 frobnicate",
            "llama3sim/1 search bogus=1",
            "llama3sim/1 search gpus=x",
            "llama3sim/1 search gpus=8 gpus=8",
            "llama3sim/1 search expect=1,2",
            "llama3sim/1 search zero=zero9",
            "llama3sim/1 search guided=maybe",
            "llama3sim/1 analyze mode=config",
            "llama3sim/1 analyze mode=what",
            "llama3sim/1 fuzz cases",
            "llama3sim/1 bench cases=1",
            "llama3sim/1 trace mode=zoomy",
            "llama3sim/1 trace window=5",
            "llama3sim/1 trace window=9,3",
            "llama3sim/1 trace zoom=x",
            "llama3sim/1 trace bogus=1",
            "llama3sim/1 search workload=serving",
            "llama3sim/1 infer traffic=nope",
            "llama3sim/1 infer gpus=x",
            "llama3sim/1 infer bogus=1",
            "llama3sim/1 infer rpd=1 rpd=1",
        ] {
            assert!(Query::parse_wire(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn search_query_resolves_to_the_spec() {
        let q = SearchQuery {
            model: "8b".into(),
            gpus: 8,
            seq: 8192,
            layers: 4,
            budget: 16 * 8192,
            max_cp: 2,
            zero: vec![ZeroMode::Zero1],
            threads: 2,
            goodput_head: 1,
            ..SearchQuery::default()
        };
        let spec = q.to_spec().unwrap();
        assert_eq!(spec.input.ngpu, 8);
        assert_eq!(spec.input.model.num_layers, 4);
        assert_eq!(spec.input.token_budget, 16 * 8192);
        assert_eq!(spec.max_cp, 2);
        assert_eq!(spec.zero_modes, vec![ZeroMode::Zero1]);
        assert_eq!(spec.threads, 2);
        assert_eq!(spec.goodput_head, 1);
        assert!(SearchQuery {
            model: "1t".into(),
            ..SearchQuery::default()
        }
        .to_spec()
        .is_err());
    }

    #[test]
    fn responses_render_and_map_exit_codes() {
        let clean = Response::Fuzz(FuzzResponse {
            cases: 3,
            seed: 0xC0FFEE,
            counterexample: None,
        });
        assert_eq!(clean.exit_code(), 0);
        assert_eq!(
            clean.render_human(),
            "conformance fuzz: 3 cases, seed 0xc0ffee: no counterexamples"
        );
        assert!(clean.render_wire().starts_with("llama3sim/1 ok fuzz\n"));
        let err = Response::render_wire_error(&QueryError::new("nope"));
        assert_eq!(err, "llama3sim/1 err nope\n");

        let list = Response::Analyze(AnalyzeResponse::List(vec![(
            "a".into(),
            "first config".into(),
        )]));
        assert_eq!(list.render_human(), format!("{:<22} first config", "a"));
        assert_eq!(list.exit_code(), 0);

        let stats = Response::Stats(StatsResponse::default());
        assert!(stats.render_human().contains("cost cache"));
    }
}
