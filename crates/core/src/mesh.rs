//! The 4D parallelism mesh.
//!
//! Llama 3 orders its parallelism dimensions `[TP, CP, PP, DP]` from the
//! innermost (highest communication demand, placed on NVLink) to the
//! outermost (hideable, placed across the slow fabric) — §5.2. A
//! [`Mesh4D`] fixes the four sizes and provides the rank⇄coordinate
//! mapping and the process groups of every dimension.

use cluster_model::topology::GlobalRank;
use collectives::ProcessGroup;
use sim_engine::error::SimError;
use std::fmt;
use trace_analysis::{DimGroups, EventCategory, GroupStructure};

/// A rank's coordinates in the 4D mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord4 {
    /// Tensor-parallel index, `0..tp`.
    pub tp: u32,
    /// Context-parallel index, `0..cp`.
    pub cp: u32,
    /// Pipeline-parallel index, `0..pp`.
    pub pp: u32,
    /// Data-parallel index, `0..dp`.
    pub dp: u32,
}

/// One of the four parallelism dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    /// Tensor parallelism (innermost).
    Tp,
    /// Context parallelism.
    Cp,
    /// Pipeline parallelism.
    Pp,
    /// Data parallelism (outermost).
    Dp,
}

impl Dim {
    /// All dimensions from innermost to outermost — the §5.2 order.
    pub const INNER_TO_OUTER: [Dim; 4] = [Dim::Tp, Dim::Cp, Dim::Pp, Dim::Dp];

    /// The trace category of this dimension's collectives.
    pub fn category(self) -> EventCategory {
        match self {
            Dim::Tp => EventCategory::TpComm,
            Dim::Cp => EventCategory::CpComm,
            Dim::Pp => EventCategory::PpComm,
            Dim::Dp => EventCategory::DpComm,
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Tp => write!(f, "tp"),
            Dim::Cp => write!(f, "cp"),
            Dim::Pp => write!(f, "pp"),
            Dim::Dp => write!(f, "dp"),
        }
    }
}

/// The 4D mesh: sizes of each parallelism dimension.
///
/// Global rank layout (inner→outer = `[TP, CP, PP, DP]`):
/// `rank = ((dp · pp_size + pp) · cp_size + cp) · tp_size + tp`, so TP
/// peers are adjacent ranks (same node via NVLink when `tp ≤ 8`).
///
/// ```
/// use parallelism_core::mesh::Mesh4D;
/// // Table 2, long-context row: 16K GPUs.
/// let mesh = Mesh4D::new(8, 16, 16, 8);
/// assert_eq!(mesh.num_gpus(), 16384);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mesh4D {
    tp: u32,
    cp: u32,
    pp: u32,
    dp: u32,
}

impl Mesh4D {
    /// Creates a mesh with the given dimension sizes.
    ///
    /// # Panics
    /// Panics if any size is zero.
    pub fn new(tp: u32, cp: u32, pp: u32, dp: u32) -> Mesh4D {
        // lint: allow(unwrap) — the panic is this constructor's documented contract
        Mesh4D::try_new(tp, cp, pp, dp).expect("mesh sizes must be positive")
    }

    /// Fallible form of [`Mesh4D::new`]: returns an error instead of
    /// panicking on a zero-sized dimension.
    pub fn try_new(tp: u32, cp: u32, pp: u32, dp: u32) -> Result<Mesh4D, SimError> {
        if tp == 0 || cp == 0 || pp == 0 || dp == 0 {
            return Err(SimError::InvalidShape(format!(
                "mesh sizes must be positive, got [{tp}, {cp}, {pp}, {dp}]"
            )));
        }
        Ok(Mesh4D { tp, cp, pp, dp })
    }

    /// Tensor-parallel size.
    pub fn tp(&self) -> u32 {
        self.tp
    }

    /// Context-parallel size.
    pub fn cp(&self) -> u32 {
        self.cp
    }

    /// Pipeline-parallel size.
    pub fn pp(&self) -> u32 {
        self.pp
    }

    /// Data-parallel size (`ndp` in the paper's notation).
    pub fn dp(&self) -> u32 {
        self.dp
    }

    /// Size of one dimension.
    pub fn size(&self, dim: Dim) -> u32 {
        match dim {
            Dim::Tp => self.tp,
            Dim::Cp => self.cp,
            Dim::Pp => self.pp,
            Dim::Dp => self.dp,
        }
    }

    /// Total GPU count.
    pub fn num_gpus(&self) -> u32 {
        self.tp * self.cp * self.pp * self.dp
    }

    /// Model-parallel degree (`tp × pp`).
    pub fn model_parallel(&self) -> u32 {
        self.tp * self.pp
    }

    /// The stride (in global ranks) between consecutive indices of a
    /// dimension.
    pub fn stride(&self, dim: Dim) -> u32 {
        match dim {
            Dim::Tp => 1,
            Dim::Cp => self.tp,
            Dim::Pp => self.tp * self.cp,
            Dim::Dp => self.tp * self.cp * self.pp,
        }
    }

    /// Global rank of a coordinate.
    ///
    /// # Panics
    /// Panics if the coordinate is out of range.
    pub fn rank_of(&self, c: Coord4) -> GlobalRank {
        assert!(
            c.tp < self.tp && c.cp < self.cp && c.pp < self.pp && c.dp < self.dp,
            "coordinate out of range"
        );
        GlobalRank(((c.dp * self.pp + c.pp) * self.cp + c.cp) * self.tp + c.tp)
    }

    /// Coordinates of a global rank.
    ///
    /// # Panics
    /// Panics if the rank is out of range.
    pub fn coords_of(&self, r: GlobalRank) -> Coord4 {
        assert!(r.0 < self.num_gpus(), "{r} out of range");
        let tp = r.0 % self.tp;
        let rest = r.0 / self.tp;
        let cp = rest % self.cp;
        let rest = rest / self.cp;
        let pp = rest % self.pp;
        let dp = rest / self.pp;
        Coord4 { tp, cp, pp, dp }
    }

    /// The process group of `dim` containing `rank`.
    pub fn group_of(&self, rank: GlobalRank, dim: Dim) -> ProcessGroup {
        let c = self.coords_of(rank);
        let idx = match dim {
            Dim::Tp => c.tp,
            Dim::Cp => c.cp,
            Dim::Pp => c.pp,
            Dim::Dp => c.dp,
        };
        let base = rank.0 - idx * self.stride(dim);
        ProcessGroup::strided(base, self.size(dim), self.stride(dim))
    }

    /// All process groups of one dimension, in base-rank order.
    pub fn groups(&self, dim: Dim) -> Vec<ProcessGroup> {
        let n = self.size(dim);
        let stride = self.stride(dim);
        let mut out = Vec::new();
        for r in 0..self.num_gpus() {
            let c = self.coords_of(GlobalRank(r));
            let idx = match dim {
                Dim::Tp => c.tp,
                Dim::Cp => c.cp,
                Dim::Pp => c.pp,
                Dim::Dp => c.dp,
            };
            if idx == 0 {
                out.push(ProcessGroup::strided(r, n, stride));
            }
        }
        out
    }

    /// The combined DP×CP group containing `rank` — the set that shares
    /// model parameters and therefore participates in FSDP collectives
    /// ("CP can be seen as an extension of DP when communicating model
    /// parameters", §4).
    pub fn fsdp_group_of(&self, rank: GlobalRank) -> ProcessGroup {
        let c = self.coords_of(rank);
        let mut ranks = Vec::with_capacity((self.dp * self.cp) as usize);
        for dp in 0..self.dp {
            for cp in 0..self.cp {
                ranks.push(self.rank_of(Coord4 { dp, cp, ..c }));
            }
        }
        ProcessGroup::new(ranks)
    }

    /// The group structure for top-down slow-rank analysis, ordered
    /// outermost dimension first as §6.1 requires.
    pub fn group_structure(&self) -> GroupStructure {
        let dims = Dim::INNER_TO_OUTER
            .iter()
            .rev()
            .filter(|d| self.size(**d) > 1)
            .map(|&d| DimGroups {
                name: d.to_string(),
                category: d.category(),
                groups: self
                    .groups(d)
                    .iter()
                    .map(|g| g.ranks().iter().map(|r| r.0).collect())
                    .collect(),
            })
            .collect();
        GroupStructure { dims }
    }
}

impl fmt::Display for Mesh4D {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tp{}·cp{}·pp{}·dp{} ({} GPUs)",
            self.tp,
            self.cp,
            self.pp,
            self.dp,
            self.num_gpus()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_meshes() {
        let short = Mesh4D::new(8, 1, 16, 128);
        let long = Mesh4D::new(8, 16, 16, 8);
        assert_eq!(short.num_gpus(), 16384);
        assert_eq!(long.num_gpus(), 16384);
    }

    #[test]
    fn rank_coord_roundtrip() {
        let mesh = Mesh4D::new(2, 3, 4, 5);
        for r in 0..mesh.num_gpus() {
            let c = mesh.coords_of(GlobalRank(r));
            assert_eq!(mesh.rank_of(c), GlobalRank(r));
        }
    }

    #[test]
    fn tp_peers_are_adjacent() {
        // §5.2: TP innermost so TP groups sit inside one node's NVLink.
        let mesh = Mesh4D::new(8, 2, 2, 2);
        let g = mesh.group_of(GlobalRank(3), Dim::Tp);
        assert_eq!(
            g.ranks().iter().map(|r| r.0).collect::<Vec<_>>(),
            (0..8).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dp_is_outermost_stride() {
        let mesh = Mesh4D::new(8, 2, 4, 3);
        assert_eq!(mesh.stride(Dim::Dp), 8 * 2 * 4);
        assert!(mesh.stride(Dim::Tp) < mesh.stride(Dim::Cp));
        assert!(mesh.stride(Dim::Cp) < mesh.stride(Dim::Pp));
        assert!(mesh.stride(Dim::Pp) < mesh.stride(Dim::Dp));
    }

    #[test]
    fn groups_partition_the_mesh() {
        let mesh = Mesh4D::new(2, 2, 2, 2);
        for dim in Dim::INNER_TO_OUTER {
            let groups = mesh.groups(dim);
            assert_eq!(groups.len() as u32, mesh.num_gpus() / mesh.size(dim));
            let mut seen: Vec<u32> = groups
                .iter()
                .flat_map(|g| g.ranks().iter().map(|r| r.0))
                .collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..mesh.num_gpus()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn group_of_contains_rank() {
        let mesh = Mesh4D::new(4, 2, 3, 2);
        for r in 0..mesh.num_gpus() {
            for dim in Dim::INNER_TO_OUTER {
                let g = mesh.group_of(GlobalRank(r), dim);
                assert!(g.position(GlobalRank(r)).is_some(), "rank {r} dim {dim}");
                assert_eq!(g.len() as u32, mesh.size(dim));
            }
        }
    }

    #[test]
    fn fsdp_group_spans_dp_and_cp() {
        // §4: CP extends DP for parameter communication.
        let mesh = Mesh4D::new(2, 2, 2, 3);
        let g = mesh.fsdp_group_of(GlobalRank(0));
        assert_eq!(g.len(), (2 * 3) as usize);
        // Every member shares the same tp and pp coordinates.
        for &r in g.ranks() {
            let c = mesh.coords_of(r);
            assert_eq!(c.tp, 0);
            assert_eq!(c.pp, 0);
        }
    }

    #[test]
    fn group_structure_is_outermost_first_and_skips_trivial_dims() {
        let mesh = Mesh4D::new(4, 2, 1, 2);
        let gs = mesh.group_structure();
        let names: Vec<&str> = gs.dims.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["dp", "cp", "tp"]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_panics() {
        Mesh4D::new(0, 1, 1, 1);
    }
}
