//! Fully sharded data parallelism (FSDP) — ZeRO-1/2/3 sharding modes.
//!
//! The paper's in-house FSDP supports the three DeepSpeed ZeRO sharding
//! levels (§2.1):
//!
//! * **ZeRO-1** shards optimizer state only; parameters and gradients
//!   stay unsharded. One parameter all-gather and one gradient
//!   reduce-scatter per step, both overlappable (§5.2).
//! * **ZeRO-2** additionally shards gradients: the gradient buffer is
//!   reduce-scattered after the *last consecutive micro-batch* of each
//!   virtual stage, trading extra communication for lower gradient
//!   residency (Fig 4).
//! * **ZeRO-3** additionally shards parameters: every pipeline stage
//!   forward/backward must all-gather its parameters first — the extra
//!   per-stage communication that rules it out for 3D parallelism
//!   (§5.1).
//!
//! §3.1.3's production rule: ZeRO-1 + 1F1B when `bs ≥ 2·pp`, ZeRO-2 +
//! all-forward-all-backward when `bs < 2·pp` —
//! [`recommended_zero_mode`].

use llm_model::memory::PrecisionPolicy;

/// FSDP sharding level, following the ZeRO definitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZeroMode {
    /// Shard optimizer state only.
    Zero1,
    /// Shard optimizer state and gradients.
    Zero2,
    /// Shard optimizer state, gradients and parameters.
    Zero3,
}

impl ZeroMode {
    /// `true` if gradients are stored sharded between uses.
    pub fn shards_grads(self) -> bool {
        !matches!(self, ZeroMode::Zero1)
    }

    /// `true` if parameters are stored sharded between uses.
    pub fn shards_params(self) -> bool {
        matches!(self, ZeroMode::Zero3)
    }
}

/// Per-rank persistent training-state memory under a ZeRO mode.
///
/// `params` is the parameter count owned by this rank's model-parallel
/// shard (i.e. already divided by TP and restricted to this PP stage);
/// `fsdp_n` is the FSDP group size (dp × cp, §4).
///
/// Gradient residency under ZeRO-2 varies over the step (Fig 4); this
/// returns the *persistent floor* (sharded size). The step simulator
/// adds the transient unsharded buffers on top.
pub fn state_bytes_per_rank(
    params: u64,
    policy: PrecisionPolicy,
    mode: ZeroMode,
    fsdp_n: u64,
) -> u64 {
    state_breakdown_per_rank(params, policy, mode, fsdp_n).total()
}

/// Per-component view of [`state_bytes_per_rank`], used by the static
/// memory analyzer to attribute an over-subscribed rank's bytes to
/// parameters, gradients and optimizer state separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateBreakdown {
    /// Resident parameter bytes (sharded under ZeRO-3).
    pub param_bytes: u64,
    /// Resident gradient bytes (sharded under ZeRO-2/3).
    pub grad_bytes: u64,
    /// Resident optimizer-state bytes (always sharded).
    pub optim_bytes: u64,
}

impl StateBreakdown {
    /// Sum of the components — equal to [`state_bytes_per_rank`].
    pub fn total(&self) -> u64 {
        self.param_bytes + self.grad_bytes + self.optim_bytes
    }
}

/// The component breakdown behind [`state_bytes_per_rank`]; the sum of
/// the returned fields is exactly that function's value.
pub fn state_breakdown_per_rank(
    params: u64,
    policy: PrecisionPolicy,
    mode: ZeroMode,
    fsdp_n: u64,
) -> StateBreakdown {
    assert!(fsdp_n > 0, "FSDP group cannot be empty");
    let shard = |b: u64| b.div_ceil(fsdp_n);
    let param_bytes = params * policy.param_bytes;
    let grad_bytes = params * policy.grad_bytes;
    let optim_bytes = params * policy.optim_bytes;
    match mode {
        ZeroMode::Zero1 => StateBreakdown {
            param_bytes,
            grad_bytes,
            optim_bytes: shard(optim_bytes),
        },
        ZeroMode::Zero2 => StateBreakdown {
            param_bytes,
            grad_bytes: shard(grad_bytes),
            optim_bytes: shard(optim_bytes),
        },
        ZeroMode::Zero3 => StateBreakdown {
            param_bytes: shard(param_bytes),
            grad_bytes: shard(grad_bytes),
            optim_bytes: shard(optim_bytes),
        },
    }
}

/// Communication bytes per rank per step attributable to FSDP, split
/// into `(all_gather_bytes, reduce_scatter_bytes)`.
///
/// * ZeRO-1/2: one parameter all-gather + one gradient reduce-scatter
///   per step. (ZeRO-2 splits the reduce-scatter into one call per
///   virtual stage, same total bytes, more launches — the launch count
///   is handled by the step simulator.)
/// * ZeRO-3: parameters all-gathered before every forward *and* every
///   backward traversal of the stage (`2 × stage_visits`), plus the
///   gradient reduce-scatter.
///
/// `stage_visits` is the number of forward passes over this rank's
/// parameters per step (micro-batch count × virtual stages for PP).
pub fn comm_bytes_per_step(
    params: u64,
    policy: PrecisionPolicy,
    mode: ZeroMode,
    stage_visits: u64,
) -> (u64, u64) {
    let param_bytes = params * policy.param_bytes;
    // Gradients are reduce-scattered in the accumulation dtype (§6.2:
    // FP32 for the DP reduce-scatter).
    let grad_bytes = params * policy.grad_bytes;
    match mode {
        ZeroMode::Zero1 | ZeroMode::Zero2 => (param_bytes, grad_bytes),
        ZeroMode::Zero3 => (param_bytes * 2 * stage_visits.max(1), grad_bytes),
    }
}

/// Checkpoint shard bytes each rank persists: its `1/fsdp_n` share of
/// parameters and optimizer state (gradients are not checkpointed —
/// they are recomputed from data after a restore). Every ZeRO mode
/// checkpoints the same sharded layout: ranks dump the shards they own
/// under ZeRO-3, and ZeRO-1/2 distributed checkpointing partitions the
/// write identically to avoid `fsdp_n` redundant copies.
pub fn checkpoint_bytes_per_rank(params: u64, policy: PrecisionPolicy, fsdp_n: u64) -> u64 {
    assert!(fsdp_n > 0, "FSDP group cannot be empty");
    (params * (policy.param_bytes + policy.optim_bytes)).div_ceil(fsdp_n)
}

/// The §3.1.3 production rule for combining FSDP with pipeline
/// parallelism: ZeRO-1 with the 1F1B schedule when `bs ≥ 2·pp` (enough
/// micro-batches to keep gradients resident cheaply), ZeRO-2 with
/// all-forward-all-backward when `bs < 2·pp`.
pub fn recommended_zero_mode(bs: u64, pp: u64) -> ZeroMode {
    if bs >= 2 * pp {
        ZeroMode::Zero1
    } else {
        ZeroMode::Zero2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn zero_levels_strictly_shrink_state() {
        let p = PrecisionPolicy::llama3();
        let params = 100 * MB;
        let z1 = state_bytes_per_rank(params, p, ZeroMode::Zero1, 64);
        let z2 = state_bytes_per_rank(params, p, ZeroMode::Zero2, 64);
        let z3 = state_bytes_per_rank(params, p, ZeroMode::Zero3, 64);
        assert!(z1 > z2);
        assert!(z2 > z3);
    }

    #[test]
    fn zero1_keeps_full_params_and_grads() {
        let p = PrecisionPolicy::llama3();
        let params = 10 * MB;
        let z1 = state_bytes_per_rank(params, p, ZeroMode::Zero1, 8);
        assert_eq!(
            z1,
            params * 2 + params * 4 + (params * 12).div_ceil(8)
        );
    }

    #[test]
    fn fsdp_group_of_one_changes_nothing() {
        let p = PrecisionPolicy::llama3();
        let params = MB;
        for mode in [ZeroMode::Zero1, ZeroMode::Zero2, ZeroMode::Zero3] {
            assert_eq!(
                state_bytes_per_rank(params, p, mode, 1),
                params * p.state_bytes_per_param()
            );
        }
    }

    #[test]
    fn zero3_pays_per_stage_all_gathers() {
        let p = PrecisionPolicy::llama3();
        let params = 10 * MB;
        let (ag1, rs1) = comm_bytes_per_step(params, p, ZeroMode::Zero1, 32);
        let (ag3, rs3) = comm_bytes_per_step(params, p, ZeroMode::Zero3, 32);
        assert_eq!(ag1, params * 2);
        assert_eq!(ag3, params * 2 * 2 * 32);
        assert_eq!(rs1, rs3);
    }

    #[test]
    fn breakdown_recomposes_state_bytes() {
        let p = PrecisionPolicy::llama3();
        for params in [1, 1_000_003, 10 * MB] {
            for mode in [ZeroMode::Zero1, ZeroMode::Zero2, ZeroMode::Zero3] {
                for n in [1, 2, 64] {
                    let b = state_breakdown_per_rank(params, p, mode, n);
                    assert_eq!(b.total(), state_bytes_per_rank(params, p, mode, n));
                }
            }
        }
        // ZeRO-2 shards grads but not params.
        let b = state_breakdown_per_rank(8 * MB, p, ZeroMode::Zero2, 8);
        assert_eq!(b.param_bytes, 8 * MB * 2);
        assert_eq!(b.grad_bytes, MB * 4);
    }

    #[test]
    fn production_rule_matches_section_3_1_3() {
        assert_eq!(recommended_zero_mode(32, 16), ZeroMode::Zero1);
        assert_eq!(recommended_zero_mode(33, 16), ZeroMode::Zero1);
        assert_eq!(recommended_zero_mode(31, 16), ZeroMode::Zero2);
        assert_eq!(recommended_zero_mode(12, 16), ZeroMode::Zero2);
    }

    #[test]
    fn grad_reduce_scatter_uses_fp32_bytes() {
        // §6.2: FP32 accumulation for the DP reduce-scatter of grads.
        let p = PrecisionPolicy::llama3();
        let (_, rs) = comm_bytes_per_step(MB, p, ZeroMode::Zero1, 1);
        assert_eq!(rs, MB * 4);
    }

    #[test]
    fn sharding_predicates() {
        assert!(!ZeroMode::Zero1.shards_grads());
        assert!(ZeroMode::Zero2.shards_grads());
        assert!(!ZeroMode::Zero2.shards_params());
        assert!(ZeroMode::Zero3.shards_params());
    }
}
