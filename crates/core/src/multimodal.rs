//! Multimodal pipeline parallelism — the §3.2 case study.
//!
//! Llama 3's multimodal model couples a trainable ViT image encoder to
//! the frozen text model through trainable cross-attention layers. Two
//! scaling problems arise: where to *shard the encoder* (three options,
//! Fig 6) and how to *wrap heterogeneous layers into virtual stages*
//! (§3.2.2). This module prices all of it on the simulator so the
//! production story — Option 2's encoder growing to 33 % of step
//! latency after the 448² → 672² resolution bump, recovered to ~8 % by
//! Option 3 — can be regenerated.

use crate::mesh::Mesh4D;
use crate::pp::balance::{BalancePolicy, StageAssignment};
use crate::pp::schedule::ScheduleKind;
use crate::pp::sim::{simulate_pp, TableCosts};
use crate::step::StepModel;
use cluster_model::gpu::Dtype;
use cluster_model::topology::{Cluster, GlobalRank};
use collectives::CommCostModel;
use llm_model::masks::MaskSpec;
use llm_model::multimodal::VitConfig;
use llm_model::{ModelLayout, TransformerConfig};
use sim_engine::time::SimDuration;

/// How the image encoder is sharded relative to the text pipeline
/// (Fig 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncoderSharding {
    /// Option 1: the encoder runs on the first PP rank inside the text
    /// pipeline, per micro-batch; outputs ride the P2P chain.
    WithFirstStage,
    /// Option 2: the encoder pre-processes the whole batch on the
    /// first PP rank, broadcasts image tokens, then the text pipeline
    /// runs; encoder backward follows after an all-reduce.
    PreprocessOnFirstRank,
    /// Option 3: the encoder is replicated on every PP rank, each
    /// processing `bs/pp` of the images in parallel; outputs are
    /// all-gathered before the text pipeline.
    ReplicatedAcrossRanks,
}

/// Multimodal training-step description.
#[derive(Debug, Clone)]
pub struct MultimodalStep {
    /// Hardware.
    pub cluster: Cluster,
    /// Mesh for the text model (the encoder uses 2D FSDP+TP, §2.2).
    pub mesh: Mesh4D,
    /// The (frozen) text model.
    pub text: TransformerConfig,
    /// The image encoder.
    pub vit: VitConfig,
    /// Self-attention layers per cross-attention layer (4:1 in
    /// production, §3.2.2).
    pub self_per_cross: u64,
    /// Text tokens per sequence (< 200 in pre-training).
    pub text_tokens: u64,
    /// Images per sequence.
    pub images_per_seq: u64,
    /// Sequences per DP group per step.
    pub bs: u32,
    /// Encoder sharding choice.
    pub sharding: EncoderSharding,
}

/// Multimodal step report.
#[derive(Debug, Clone, PartialEq)]
pub struct MultimodalReport {
    /// End-to-end step time.
    pub step_time: SimDuration,
    /// Wall-clock share of the step attributable to the image encoder
    /// (compute + its broadcast/all-gather), on the critical path.
    pub encoder_share: f64,
    /// Model TFLOPs per GPU.
    pub tflops_per_gpu: f64,
}

impl MultimodalStep {
    fn image_tokens(&self) -> u64 {
        self.vit.tokens_per_image() * self.images_per_seq
    }

    /// The text-model step (cross-attention layers included, encoder
    /// excluded).
    fn text_step(&self) -> StepModel {
        let layout = ModelLayout::multimodal_text(
            self.text.clone(),
            self.self_per_cross,
            self.image_tokens(),
        );
        // §3.2.2 Option 1 wrapping: group n self + 1 cross per virtual
        // stage — one group per stage keeps stages balanced.
        let groups = layout
            .layers
            .len()
            .saturating_sub(2)
            .div_ceil(self.self_per_cross as usize + 1) as u32;
        let v = groups.div_ceil(self.mesh.pp()).max(1);
        let assignment = StageAssignment::build(&layout, self.mesh.pp(), v, BalancePolicy::Uniform);
        StepModel {
            cluster: self.cluster.clone(),
            mesh: self.mesh,
            layout,
            assignment,
            schedule: ScheduleKind::AllFwdAllBwd,
            zero: crate::fsdp::ZeroMode::Zero2,
            bs: self.bs,
            seq: self.text_tokens,
            mask: MaskSpec::Causal,
            recompute: false,
        }
    }

    /// Encoder forward time for `images` images on one rank (encoder
    /// is TP-sharded within the node like the text model).
    fn encoder_fwd(&self, images: u64) -> SimDuration {
        if images == 0 {
            return SimDuration::ZERO;
        }
        let cost = self.vit.encode_fwd(images);
        let sharded = cluster_model::gpu::KernelCost {
            flops: cost.flops / self.mesh.tp() as f64,
            bytes: cost.bytes / self.mesh.tp() as f64,
            launches: cost.launches,
        };
        self.cluster.gpu.gemm_time(sharded, Dtype::Bf16)
    }

    /// Bytes of the encoder output for `images` images (BF16 image
    /// tokens in the encoder's hidden width).
    fn encoder_output_bytes(&self, images: u64) -> u64 {
        images * self.vit.tokens_per_image() * self.vit.hidden_dim * 2
    }

    /// Simulates the step under the configured sharding.
    pub fn simulate(&self) -> MultimodalReport {
        let step = self.text_step();
        let (mut fwd, mut bwd) = step.stage_costs();
        let sched = step.build_schedule();
        let comm = CommCostModel::new(self.cluster.topology.clone());
        let pp_group = self.mesh.group_of(GlobalRank(0), crate::mesh::Dim::Pp);
        let nmb = self.bs as u64;
        let images_total = nmb * self.images_per_seq;

        let mut pre = SimDuration::ZERO;
        let mut post = SimDuration::ZERO;
        let encoder_critical;

        match self.sharding {
            EncoderSharding::WithFirstStage => {
                // Per micro-batch, the first stage runs the encoder
                // inline (forward and backward).
                let ef = self.encoder_fwd(self.images_per_seq);
                let eb = ef * 2;
                fwd[0] += ef;
                bwd[0] += eb;
                // Everything the first stage does for the encoder is on
                // the pipeline critical path for warm-up micro-batches;
                // count the serial share conservatively as the per-mb
                // cost times micro-batches (stage 0 is the bottleneck
                // rank in this option).
                encoder_critical = (ef + eb) * nmb;
            }
            EncoderSharding::PreprocessOnFirstRank => {
                // Whole-batch encode on rank 0, broadcast tokens, text
                // pipeline, all-reduce image-token grads, encoder
                // backward.
                let ef = self.encoder_fwd(images_total);
                let eb = ef * 2;
                let bytes = self.encoder_output_bytes(images_total);
                let bcast = comm.broadcast(&pp_group, bytes);
                let ar = comm.all_reduce(&pp_group, bytes);
                pre = ef + bcast;
                post = ar + eb;
                encoder_critical = pre + post;
            }
            EncoderSharding::ReplicatedAcrossRanks => {
                // Each PP rank encodes bs/pp of the images in parallel;
                // outputs all-gathered.
                let per_rank = images_total.div_ceil(self.mesh.pp() as u64);
                let ef = self.encoder_fwd(per_rank);
                let eb = ef * 2;
                let ag =
                    comm.all_gather(&pp_group, self.encoder_output_bytes(per_rank));
                pre = ef + ag;
                post = eb;
                encoder_critical = pre + post;
            }
        }

        let costs = TableCosts {
            fwd,
            bwd,
            p2p: step.stage_p2p_time(),
        };
        // lint: allow(unwrap) — the schedule was built by PpSchedule::build above
        let sim = simulate_pp(&sched, &costs).expect("valid schedule");
        let step_time = pre + sim.makespan + post;

        // FLOPs: text model (frozen-aware, via the step model) plus
        // encoder forward+backward on every image of every DP replica.
        let text_flops = step.model_flops_per_step();
        let enc_flops =
            self.vit.encode_fwd(images_total * self.mesh.dp() as u64).flops * 3.0;
        let tflops_per_gpu = (text_flops + enc_flops)
            / step_time.as_secs_f64().max(1e-12)
            / self.cluster.num_gpus() as f64
            / 1e12;

        MultimodalReport {
            step_time,
            encoder_share: encoder_critical.as_secs_f64() / step_time.as_secs_f64().max(1e-12),
            tflops_per_gpu,
        }
    }
}

/// How heterogeneous text-model layers wrap into PP virtual stages
/// (§3.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageWrapping {
    /// Option 1: `n` self-attention layers + 1 cross-attention layer
    /// per virtual stage — balanced stages, fewer of them (larger
    /// bubble ratio). The production choice.
    GroupedSelfPlusCross,
    /// Option 2: homogeneous stages (either self-attention layers or
    /// one cross-attention layer) — more virtual stages (smaller
    /// bubble) but imbalanced stage times.
    Homogeneous,
}

/// Per-virtual-stage forward times under a wrapping choice, plus the
/// resulting stage count — the §3.2.2 trade-off in numbers.
///
/// # Panics
/// Panics if `step.self_per_cross` is zero.
pub fn wrapping_stage_profile(
    step: &MultimodalStep,
    wrapping: StageWrapping,
) -> (usize, Vec<SimDuration>) {
    let cfg = &step.text;
    let gpu = &step.cluster.gpu;
    let tp = step.mesh.tp() as f64;
    let tokens = step.text_tokens;
    let image_tokens = step.image_tokens();
    let self_fwd = {
        let pairs = MaskSpec::Causal.attended_pairs(tokens);
        let cost = llm_model::flops::self_attention_layer_fwd(cfg, tokens, tokens, pairs);
        gpu.gemm_time(
            cluster_model::gpu::KernelCost {
                flops: cost.flops / tp,
                bytes: cost.bytes / tp,
                launches: cost.launches,
            },
            Dtype::Bf16,
        )
    };
    let cross_fwd = {
        let cost = llm_model::CrossAttentionSpec { image_tokens }.layer_fwd(cfg, tokens);
        gpu.gemm_time(
            cluster_model::gpu::KernelCost {
                flops: cost.flops / tp,
                bytes: cost.bytes / tp,
                launches: cost.launches,
            },
            Dtype::Bf16,
        )
    };
    let n = step.self_per_cross as usize;
    let groups = (cfg.num_layers as usize).div_ceil(n);
    match wrapping {
        StageWrapping::GroupedSelfPlusCross => {
            // One (n self + 1 cross) group per stage.
            (groups, vec![self_fwd * n as u64 + cross_fwd; groups])
        }
        StageWrapping::Homogeneous => {
            // Alternating [n-self] and [cross] stages: twice the stage
            // count, alternating heavy/light times.
            let mut times = Vec::with_capacity(groups * 2);
            for _ in 0..groups {
                times.push(self_fwd * n as u64);
                times.push(cross_fwd);
            }
            (groups * 2, times)
        }
    }
}

/// Summary of a wrapping option: stage count, bubble-ratio estimate,
/// and stage-time imbalance (max/mean).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WrappingReport {
    /// Virtual stages produced.
    pub stages: usize,
    /// Analytic bubble ratio `(pp − 1)/nmb/v`.
    pub bubble_ratio: f64,
    /// Stage-time imbalance: slowest stage over mean stage time (the
    /// pipeline runs at the pace of its slowest stage).
    pub imbalance: f64,
}

/// Evaluates a §3.2.2 wrapping option for `step`.
pub fn evaluate_wrapping(step: &MultimodalStep, wrapping: StageWrapping) -> WrappingReport {
    let (stages, times) = wrapping_stage_profile(step, wrapping);
    let v = (stages as u32).div_ceil(step.mesh.pp()).max(1);
    let bubble = (step.mesh.pp() as f64 - 1.0) / step.bs as f64 / v as f64;
    let mean =
        times.iter().map(|t| t.as_secs_f64()).sum::<f64>() / times.len().max(1) as f64;
    let max = times.iter().map(|t| t.as_secs_f64()).fold(0.0, f64::max);
    WrappingReport {
        stages,
        bubble_ratio: bubble,
        imbalance: if mean > 0.0 { max / mean } else { 1.0 },
    }
}

/// The production multimodal configuration scaffold: frozen 70B-class
/// text model, 4:1 self:cross ratio, ~200 text tokens per sequence.
pub fn production_multimodal(
    vit: VitConfig,
    sharding: EncoderSharding,
) -> MultimodalStep {
    let mesh = Mesh4D::new(8, 1, 8, 4);
    MultimodalStep {
        cluster: Cluster::llama3(mesh.num_gpus()),
        mesh,
        text: TransformerConfig::llama3_70b(),
        vit,
        self_per_cross: 4,
        text_tokens: 192,
        images_per_seq: 1,
        bs: 16,
        sharding,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_growth_inflates_option2_share() {
        // §3.2.1: after the 448² → 672² + deeper-encoder change, the
        // Option 2 encoder consumed up to 33 % of step latency.
        let small = production_multimodal(
            VitConfig::vit_448(),
            EncoderSharding::PreprocessOnFirstRank,
        )
        .simulate();
        let big = production_multimodal(
            VitConfig::vit_672_deep(),
            EncoderSharding::PreprocessOnFirstRank,
        )
        .simulate();
        assert!(big.encoder_share > small.encoder_share * 1.8);
        assert!(
            big.encoder_share > 0.20 && big.encoder_share < 0.55,
            "expected ≈ 33 %, got {:.1} %",
            big.encoder_share * 100.0
        );
    }

    #[test]
    fn option3_recovers_throughput() {
        // §3.2.1: replicating the encoder across PP ranks cut the
        // encoder share from 33 % to ~8 % and recovered TFLOPs.
        let opt2 = production_multimodal(
            VitConfig::vit_672_deep(),
            EncoderSharding::PreprocessOnFirstRank,
        )
        .simulate();
        let opt3 = production_multimodal(
            VitConfig::vit_672_deep(),
            EncoderSharding::ReplicatedAcrossRanks,
        )
        .simulate();
        assert!(
            opt3.encoder_share < 0.15,
            "option 3 share {:.1} %",
            opt3.encoder_share * 100.0
        );
        assert!(opt3.encoder_share < opt2.encoder_share / 2.5);
        assert!(opt3.tflops_per_gpu > opt2.tflops_per_gpu);
        assert!(opt3.step_time < opt2.step_time);
    }

    #[test]
    fn option1_overloads_the_first_rank() {
        // Option 1 piles the encoder onto stage 0, creating pipeline
        // imbalance: slower than option 3.
        let opt1 = production_multimodal(
            VitConfig::vit_672_deep(),
            EncoderSharding::WithFirstStage,
        )
        .simulate();
        let opt3 = production_multimodal(
            VitConfig::vit_672_deep(),
            EncoderSharding::ReplicatedAcrossRanks,
        )
        .simulate();
        assert!(opt1.step_time > opt3.step_time);
    }

    #[test]
    fn frozen_text_layers_cut_text_flops() {
        // Frozen self-attention computes input grads only — the §3.2.2
        // imbalance driver.
        let step = production_multimodal(
            VitConfig::vit_448(),
            EncoderSharding::ReplicatedAcrossRanks,
        );
        let frozen_layout =
            ModelLayout::multimodal_text(step.text.clone(), 4, step.image_tokens());
        let live_layout = ModelLayout::text(step.text.clone());
        let (sa_frozen, ca) = frozen_layout.attention_layer_counts();
        assert_eq!(sa_frozen, 80);
        assert_eq!(ca, 20);
        let (sa_live, _) = live_layout.attention_layer_counts();
        assert_eq!(sa_live, 80);
    }

    #[test]
    fn wrapping_tradeoff_matches_section_3_2_2() {
        // Option 1 (grouped): fewer stages, larger bubble, balanced.
        // Option 2 (homogeneous): more stages, smaller bubble,
        // imbalanced.
        let step = production_multimodal(
            VitConfig::vit_672_deep(),
            EncoderSharding::ReplicatedAcrossRanks,
        );
        let grouped = evaluate_wrapping(&step, StageWrapping::GroupedSelfPlusCross);
        let homo = evaluate_wrapping(&step, StageWrapping::Homogeneous);
        assert!(homo.stages > grouped.stages);
        assert!(homo.bubble_ratio <= grouped.bubble_ratio);
        assert!(
            homo.imbalance > grouped.imbalance * 1.2,
            "homogeneous {} vs grouped {}",
            homo.imbalance,
            grouped.imbalance
        );
        // Grouped stages are near-perfectly balanced.
        assert!(grouped.imbalance < 1.01);
    }

    #[test]
    fn one_cross_layer_outweighs_one_self_layer() {
        // §3.2.2: a cross-attention layer costs more forward FLOPs
        // than a self-attention layer (image KV projections over 2.3K
        // tokens plus 192×2304 attended pairs vs 192 causal tokens) —
        // the heterogeneity that makes homogeneous wrapping imbalanced.
        let step = production_multimodal(
            VitConfig::vit_672_deep(),
            EncoderSharding::ReplicatedAcrossRanks,
        );
        let (_, times) = wrapping_stage_profile(&step, StageWrapping::Homogeneous);
        let per_self_layer = times[0] / step.self_per_cross;
        // At 192 text tokens both layers are weight-read bound on the
        // roofline, compressing the gap; the cross layer is still
        // strictly more expensive.
        assert!(
            times[1] > per_self_layer,
            "cross {} vs self {}",
            times[1],
            per_self_layer
        );
    }

    #[test]
    fn reports_are_consistent() {
        let r = production_multimodal(
            VitConfig::vit_448(),
            EncoderSharding::ReplicatedAcrossRanks,
        )
        .simulate();
        assert!(r.step_time > SimDuration::ZERO);
        assert!(r.tflops_per_gpu > 0.0);
        assert!((0.0..=1.0).contains(&r.encoder_share));
    }
}
