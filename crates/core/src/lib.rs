//! # parallelism-core
//!
//! The paper's primary contribution: 4D parallelism for Llama 3
//! pre-training. This crate combines the substrate crates into the
//! training-system model — the `[TP, CP, PP, DP]` mesh, FSDP ZeRO
//! modes, tensor parallelism, the flexible pipeline schedules of §3,
//! the all-gather context parallelism of §4, the §5.1 configuration
//! planner, and the full-step simulator that reproduces the paper's
//! end-to-end numbers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod costs;
pub mod cp;
pub mod infer;
pub mod multimodal;
pub mod planner;
pub mod query;
pub mod run;
pub mod search;
pub mod step;
pub mod fsdp;
pub mod memory_opt;
pub mod mesh;
pub mod pp;
pub mod tp;

pub use analyze::{analyze_step, Diagnostic, Report, RuleId, Severity};
pub use cp::{AllGatherCp, CpSharding, RingCp};
pub use infer::{
    simulate_replica, InferCosts, InferPlan, InferReport, InferSpec, InferenceModel,
    ReplicaResult, RequestOutcome,
};
pub use fsdp::ZeroMode;
pub use memory_opt::{policy_tradeoff, ActivationPolicy};
pub use mesh::{Coord4, Dim, Mesh4D};
pub use pp::{BalancePolicy, PpSchedule, ScheduleKind, StageAssignment};
pub use multimodal::{EncoderSharding, MultimodalReport, MultimodalStep};
pub use planner::{plan, Plan, PlanError, PlannerInput};
pub use query::{
    AnalyzeMode, InferQuery, InferResponse, Query, QueryError, Response, SearchQuery,
    StatsResponse, TraceMode, TraceQuery, TraceResponse, QUERY_API_VERSION,
};
pub use run::{
    CheckpointPolicy, GoodputLoss, GoodputReport, RunAnchor, RunReplay, RunSimulator, RunTrace,
};
pub use search::{
    finish_search, restrict_max_cp, search, search_outcomes, verdict_cache_stats, ConfigPoint,
    FunnelCounts, GuidedStats, SearchOutcomes, SearchPoint, SearchReport, SearchSpec,
    SearchStrategy,
};
pub use sim_engine::error::SimError;
pub use workload::traffic::{Request, TrafficShape, TrafficSpec};
pub use step::{
    ExposedComm, SimFidelity, SimOptions, StepModel, StepOutcome, StepReport, Workload,
};
pub use tp::TpPlan;
