//! Pipeline-parallel schedules: interleaved 1F1B, all-forward-all-
//! backward, and the paper's **flexible** schedule (§3.1.1).
//!
//! A schedule assigns every pipeline rank an ordered list of
//! forward/backward executions of `(virtual stage chunk, micro-batch)`
//! pairs. Model layers are distributed across `pp × v` stages in an
//! interleaved fashion: stage `s` lives on rank `s mod pp` as that
//! rank's chunk `s / pp` (Fig 2).
//!
//! The flexible schedule generalizes interleaved 1F1B by decoupling the
//! number of *consecutive micro-batches per virtual stage round* (`nc`)
//! from the pipeline size:
//!
//! * `nc = pp` recovers the original interleaved 1F1B;
//! * `nc > pp` inserts `nc − pp` extra warm-up micro-batches per
//!   virtual stage, hiding exposed P2P at the cost of
//!   `(nc − pp) × (v − 1)` extra in-flight activations (Fig 3);
//! * `nc ≥ nmb` degenerates into all-forward-all-backward (Fig 4b);
//! * any `nmb` is legal — no "batch size divisible by pp" constraint.

use std::fmt;

/// One pipeline operation on a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PpOp {
    /// Forward pass of `chunk` (virtual-stage index on this rank) for
    /// micro-batch `mb`.
    Forward {
        /// Virtual-stage chunk index, `0..v`.
        chunk: u32,
        /// Micro-batch index, `0..nmb`.
        mb: u32,
    },
    /// Backward pass of `chunk` for micro-batch `mb`.
    Backward {
        /// Virtual-stage chunk index, `0..v`.
        chunk: u32,
        /// Micro-batch index, `0..nmb`.
        mb: u32,
    },
}

impl PpOp {
    /// `true` for forward ops.
    pub fn is_forward(self) -> bool {
        matches!(self, PpOp::Forward { .. })
    }

    /// The op's chunk.
    pub fn chunk(self) -> u32 {
        match self {
            PpOp::Forward { chunk, .. } | PpOp::Backward { chunk, .. } => chunk,
        }
    }

    /// The op's micro-batch.
    pub fn mb(self) -> u32 {
        match self {
            PpOp::Forward { mb, .. } | PpOp::Backward { mb, .. } => mb,
        }
    }
}

impl fmt::Display for PpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PpOp::Forward { chunk, mb } => write!(f, "F{chunk}.{mb}"),
            PpOp::Backward { chunk, mb } => write!(f, "B{chunk}.{mb}"),
        }
    }
}

/// Which schedule family to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// All forwards, then all backwards (GPipe-style, Fig 4b).
    AllFwdAllBwd,
    /// The original interleaved 1F1B (`nc = pp`; requires
    /// `nmb % pp == 0`, the constraint §3.1.1 removes).
    Interleaved1F1B,
    /// The paper's flexible schedule with an explicit `nc ∈ [1, nmb]`.
    Flexible {
        /// Consecutive micro-batches per virtual-stage round.
        nc: u32,
    },
}

/// A complete pipeline schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PpSchedule {
    /// Pipeline size.
    pub pp: u32,
    /// Virtual stages per rank.
    pub v: u32,
    /// Number of micro-batches in the batch.
    pub nmb: u32,
    /// Effective `nc` used.
    pub nc: u32,
    /// The kind this schedule was built as.
    pub kind: ScheduleKind,
    /// Per-rank ordered op lists.
    pub ranks: Vec<Vec<PpOp>>,
}

/// Errors from schedule construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A size parameter was zero.
    ZeroParameter(&'static str),
    /// The classic interleaved 1F1B needs `nmb % pp == 0` (§3.1.1).
    BatchNotDivisible {
        /// Micro-batch count requested.
        nmb: u32,
        /// Pipeline size.
        pp: u32,
    },
    /// `nc` outside `[1, nmb]`.
    BadNc {
        /// Requested nc.
        nc: u32,
        /// Micro-batch count.
        nmb: u32,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::ZeroParameter(p) => write!(f, "{p} must be positive"),
            ScheduleError::BatchNotDivisible { nmb, pp } => write!(
                f,
                "interleaved 1F1B requires nmb ({nmb}) divisible by pp ({pp}); use the flexible schedule"
            ),
            ScheduleError::BadNc { nc, nmb } => {
                write!(f, "nc ({nc}) must be within [1, nmb] = [1, {nmb}]")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<ScheduleError> for sim_engine::error::SimError {
    fn from(e: ScheduleError) -> Self {
        sim_engine::error::SimError::InvalidSchedule(e.to_string())
    }
}

impl PpSchedule {
    /// Builds a schedule.
    ///
    /// # Errors
    /// Returns an error for zero parameters, a classic-1F1B batch-size
    /// violation, or an out-of-range `nc`.
    pub fn build(kind: ScheduleKind, pp: u32, v: u32, nmb: u32) -> Result<PpSchedule, ScheduleError> {
        if pp == 0 {
            return Err(ScheduleError::ZeroParameter("pp"));
        }
        if v == 0 {
            return Err(ScheduleError::ZeroParameter("v"));
        }
        if nmb == 0 {
            return Err(ScheduleError::ZeroParameter("nmb"));
        }
        let nc = match kind {
            ScheduleKind::AllFwdAllBwd => nmb,
            ScheduleKind::Interleaved1F1B => {
                if !nmb.is_multiple_of(pp) {
                    return Err(ScheduleError::BatchNotDivisible { nmb, pp });
                }
                pp.min(nmb)
            }
            ScheduleKind::Flexible { nc } => {
                if nc == 0 || nc > nmb {
                    return Err(ScheduleError::BadNc { nc, nmb });
                }
                nc
            }
        };

        // 1F1B interleaving needs every round to supply at least pp
        // micro-batches in flight. The schedule therefore splits into a
        // *main* region of complete nc-rounds run 1F1B (empty when
        // nc < pp — the §3.1.1 degeneration into all-forward-all-
        // backward) and a *tail* region run round-AFAB (GPipe-style per
        // round), which accepts any remaining micro-batch count.
        let nc_eff = nc.min(nmb);
        let main_mbs = if matches!(kind, ScheduleKind::AllFwdAllBwd) || nc_eff < pp {
            0
        } else {
            (nmb / nc_eff) * nc_eff
        };

        let order_round = |mb0: u32, hi: u32| -> (Vec<PpOp>, Vec<PpOp>) {
            let mut f = Vec::new();
            let mut b = Vec::new();
            for chunk in 0..v {
                for mb in mb0..hi {
                    f.push(PpOp::Forward { chunk, mb });
                }
            }
            for chunk in (0..v).rev() {
                for mb in mb0..hi {
                    b.push(PpOp::Backward { chunk, mb });
                }
            }
            (f, b)
        };

        // Main-region global orders (complete nc-rounds).
        let mut fwd_order = Vec::new();
        let mut bwd_order = Vec::new();
        let mut mb0 = 0u32;
        while mb0 < main_mbs {
            let (f, b) = order_round(mb0, mb0 + nc_eff);
            fwd_order.extend(f);
            bwd_order.extend(b);
            mb0 += nc_eff;
        }
        // Tail rounds (round-AFAB), each at most nc micro-batches.
        let mut tail_rounds: Vec<(Vec<PpOp>, Vec<PpOp>)> = Vec::new();
        let mut mb0 = main_mbs;
        while mb0 < nmb {
            let hi = (mb0 + nc_eff).min(nmb);
            tail_rounds.push(order_round(mb0, hi));
            mb0 = hi;
        }

        let total = v * nmb;
        let main_total = v * main_mbs;
        let ranks = (0..pp)
            .map(|ppr| {
                let mut ops = Vec::with_capacity(2 * total as usize);
                let warmup = warmup_microbatches(pp, ppr, v, nc_eff).min(main_total);
                let mut fi = 0usize;
                let mut bi = 0usize;
                while fi < warmup as usize {
                    ops.push(fwd_order[fi]);
                    fi += 1;
                }
                // 1F1B steady state, then backward cool-down.
                while fi < fwd_order.len() {
                    ops.push(fwd_order[fi]);
                    fi += 1;
                    ops.push(bwd_order[bi]);
                    bi += 1;
                }
                while bi < bwd_order.len() {
                    ops.push(bwd_order[bi]);
                    bi += 1;
                }
                for (f, b) in &tail_rounds {
                    ops.extend_from_slice(f);
                    ops.extend_from_slice(b);
                }
                ops
            })
            .collect();

        Ok(PpSchedule {
            pp,
            v,
            nmb,
            nc,
            kind,
            ranks,
        })
    }

    /// Total stages (`pp × v`).
    pub fn num_stages(&self) -> u32 {
        self.pp * self.v
    }

    /// The rank hosting global stage `s` (interleaved placement).
    pub fn rank_of_stage(&self, s: u32) -> u32 {
        s % self.pp
    }

    /// The chunk index of global stage `s` on its rank.
    pub fn chunk_of_stage(&self, s: u32) -> u32 {
        s / self.pp
    }

    /// The global stage of `(rank, chunk)`.
    pub fn stage_of(&self, rank: u32, chunk: u32) -> u32 {
        chunk * self.pp + rank
    }

    /// Number of forwards rank `ppr` runs before its first backward.
    /// For 1F1B-family schedules this is the §3.1.1 warm-up count plus
    /// one (the steady state starts with a forward).
    pub fn warmup_of(&self, ppr: u32) -> u32 {
        self.ranks[ppr as usize]
            .iter()
            .take_while(|op| op.is_forward())
            .count() as u32
    }

    /// Peak in-flight forward activations on rank `ppr`: the maximum
    /// over time of (forwards executed − backwards executed).
    pub fn peak_in_flight(&self, ppr: u32) -> u32 {
        let mut cur = 0i64;
        let mut peak = 0i64;
        for op in &self.ranks[ppr as usize] {
            cur += if op.is_forward() { 1 } else { -1 };
            peak = peak.max(cur);
        }
        peak as u32
    }

    /// The in-flight activation profile of rank `ppr`: after each op,
    /// the running count of forwards executed minus backwards executed.
    /// This is the buffer-lifetime series the memory model integrates
    /// over; its maximum equals [`PpSchedule::peak_in_flight`] and a
    /// well-formed schedule ends at zero. Entries are `i64` so that a
    /// malformed schedule (a backward without a prior forward) shows up
    /// as a negative value instead of an underflow.
    pub fn in_flight_profile(&self, ppr: u32) -> Vec<i64> {
        let mut cur = 0i64;
        self.ranks[ppr as usize]
            .iter()
            .map(|op| {
                cur += if op.is_forward() { 1 } else { -1 };
                cur
            })
            .collect()
    }

    /// Warm-up / steady / cool-down phase counts of rank `ppr`'s op
    /// list: `(leading forwards, interior F/B pairs, trailing
    /// backwards)`. For full-main-region 1F1B-family schedules the
    /// leading count is `warmup_microbatches(..) + 1` and equals the
    /// trailing count; the conformance checkers verify that law.
    pub fn phase_counts(&self, ppr: u32) -> (u32, u32, u32) {
        let ops = &self.ranks[ppr as usize];
        let lead = ops.iter().take_while(|op| op.is_forward()).count();
        let trail = ops
            .iter()
            .rev()
            .take_while(|op| !op.is_forward())
            .count()
            .min(ops.len() - lead);
        let steady = ops.len() - lead - trail;
        (lead as u32, (steady / 2) as u32, trail as u32)
    }

    /// Validates structural invariants: every `(chunk, mb)` appears
    /// exactly once as forward and once as backward on each rank, and
    /// no backward precedes its own forward locally.
    ///
    /// # Panics
    /// Panics on violation (schedules are built, not parsed, so a
    /// violation is an internal bug).
    pub fn assert_well_formed(&self) {
        for (ppr, ops) in self.ranks.iter().enumerate() {
            let total = (self.v * self.nmb) as usize;
            assert_eq!(ops.len(), 2 * total, "rank {ppr} op count");
            let mut fwd_seen = vec![false; total];
            let mut bwd_seen = vec![false; total];
            for op in ops {
                let idx = (op.chunk() * self.nmb + op.mb()) as usize;
                match op {
                    PpOp::Forward { .. } => {
                        assert!(!fwd_seen[idx], "rank {ppr} duplicate {op}");
                        fwd_seen[idx] = true;
                    }
                    PpOp::Backward { .. } => {
                        assert!(!bwd_seen[idx], "rank {ppr} duplicate {op}");
                        assert!(fwd_seen[idx], "rank {ppr} has {op} before its forward");
                        bwd_seen[idx] = true;
                    }
                }
            }
            assert!(fwd_seen.iter().all(|&b| b), "rank {ppr} missing forwards");
            assert!(bwd_seen.iter().all(|&b| b), "rank {ppr} missing backwards");
        }
    }

    /// The paper's closed-form PP bubble-ratio estimate,
    /// `(pp − 1) / nmb / v` (§3.1.1). The simulator measures the real
    /// value; this is the analytical reference.
    pub fn analytic_bubble_ratio(&self) -> f64 {
        crate::costs::bubble_ratio(self.pp as f64, self.nmb as f64, self.v as f64)
    }
}

/// Warm-up micro-batch count for one rank (§3.1.1):
/// `(v − 1)·nc + 2·(pp − ppr − 1)` for interleaved schedules, or the
/// classic `pp − ppr − 1` when there is a single chunk per rank.
pub fn warmup_microbatches(pp: u32, ppr: u32, v: u32, nc: u32) -> u32 {
    assert!(ppr < pp, "rank out of range");
    if v == 1 {
        pp - ppr - 1
    } else {
        (v - 1) * nc + 2 * (pp - ppr - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_2_configuration() {
        // 6-layer model on 3 ranks, v = 2, 6 micro-batches, nc = 3.
        let s = PpSchedule::build(ScheduleKind::Flexible { nc: 3 }, 3, 2, 6).unwrap();
        s.assert_well_formed();
        // Rank 0 warm-up: (2−1)·3 + 2·(3−0−1) = 7 (+1 steady-state F
        // before the first backward).
        assert_eq!(warmup_microbatches(3, 0, 2, 3), 7);
        assert_eq!(warmup_microbatches(3, 2, 2, 3), 3);
        assert_eq!(s.warmup_of(0), 8);
        assert_eq!(s.warmup_of(2), 4);
        // Interleaved placement: layer/stage 0 and 3 on rank 0.
        assert_eq!(s.rank_of_stage(0), 0);
        assert_eq!(s.rank_of_stage(3), 0);
        assert_eq!(s.chunk_of_stage(3), 1);
    }

    #[test]
    fn classic_1f1b_requires_divisible_batch() {
        assert!(matches!(
            PpSchedule::build(ScheduleKind::Interleaved1F1B, 4, 2, 10),
            Err(ScheduleError::BatchNotDivisible { .. })
        ));
        // The flexible schedule removes the constraint (§3.1.1).
        let s = PpSchedule::build(ScheduleKind::Flexible { nc: 4 }, 4, 2, 10).unwrap();
        s.assert_well_formed();
    }

    #[test]
    fn afab_runs_all_forwards_first() {
        let s = PpSchedule::build(ScheduleKind::AllFwdAllBwd, 4, 2, 8).unwrap();
        s.assert_well_formed();
        for ppr in 0..4 {
            assert_eq!(s.warmup_of(ppr), 16);
            assert_eq!(s.peak_in_flight(ppr), 16);
        }
    }

    #[test]
    fn flexible_nc_below_pp_degenerates_toward_afab() {
        // §3.1.1: nc < pp degenerates into all-forward-all-backward
        // within each round.
        let s = PpSchedule::build(ScheduleKind::Flexible { nc: 2 }, 4, 2, 8).unwrap();
        s.assert_well_formed();
        // nc < pp executes each round GPipe-style: every rank's ops are
        // identical and each round's forwards all precede its backwards.
        assert!(s.ranks.iter().all(|r| *r == s.ranks[0]));
        let first_round: Vec<_> = s.ranks[0][..8].to_vec();
        assert!(first_round[..4].iter().all(|o| o.is_forward()));
        assert!(first_round[4..].iter().all(|o| !o.is_forward()));
        // In-flight memory ordering: AFAB ≥ flexible(nc=nmb) ≥ nc<pp.
        let s_full = PpSchedule::build(ScheduleKind::Flexible { nc: 8 }, 4, 2, 8).unwrap();
        let afab = PpSchedule::build(ScheduleKind::AllFwdAllBwd, 4, 2, 8).unwrap();
        assert!(afab.peak_in_flight(0) >= s_full.peak_in_flight(0));
        assert!(s_full.peak_in_flight(0) >= s.peak_in_flight(0));
    }

    #[test]
    fn extra_warmup_microbatches_increase_in_flight_memory() {
        // §3.1.1: nc > pp costs (nc − pp)·(v − 1) extra in-flight
        // warm-up micro-batches.
        let base = PpSchedule::build(ScheduleKind::Flexible { nc: 4 }, 4, 2, 12).unwrap();
        let extra = PpSchedule::build(ScheduleKind::Flexible { nc: 6 }, 4, 2, 12).unwrap();
        base.assert_well_formed();
        extra.assert_well_formed();
        let diff = extra.peak_in_flight(0) as i64 - base.peak_in_flight(0) as i64;
        assert_eq!(diff, 6 - 4);
    }

    #[test]
    fn warmup_formula_matches_megatron_at_nc_eq_pp() {
        // (pp − ppr − 1)·2 + (v − 1)·pp is Megatron-LM's interleaved
        // warm-up count.
        for pp in [2u32, 4, 8] {
            for v in [2u32, 4] {
                for ppr in 0..pp {
                    assert_eq!(
                        warmup_microbatches(pp, ppr, v, pp),
                        (pp - ppr - 1) * 2 + (v - 1) * pp
                    );
                }
            }
        }
    }

    #[test]
    fn earlier_ranks_hold_more_in_flight() {
        // The §3.1.2 imbalance: rank 0 has the largest warm-up, so the
        // highest activation residency.
        let s = PpSchedule::build(ScheduleKind::Interleaved1F1B, 4, 2, 16).unwrap();
        let flights: Vec<u32> = (0..4).map(|r| s.peak_in_flight(r)).collect();
        assert!(flights.windows(2).all(|w| w[0] >= w[1]), "{flights:?}");
        assert!(flights[0] > flights[3]);
    }

    #[test]
    fn single_chunk_uses_classic_warmup() {
        let s = PpSchedule::build(ScheduleKind::Interleaved1F1B, 4, 1, 8).unwrap();
        s.assert_well_formed();
        assert_eq!(warmup_microbatches(4, 0, 1, 4), 3);
        assert_eq!(warmup_microbatches(4, 3, 1, 4), 0);
        assert_eq!(s.warmup_of(0), 4);
        // The last rank alternates 1F1B from the start.
        assert_eq!(s.warmup_of(3), 1);
    }

    #[test]
    fn arbitrary_batch_sizes_are_accepted() {
        // Flexible PP supports evolving global batch sizes (§3.1.1).
        for nmb in 1..20u32 {
            let nc = nmb.min(4);
            let s = PpSchedule::build(ScheduleKind::Flexible { nc }, 4, 2, nmb).unwrap();
            s.assert_well_formed();
        }
    }

    #[test]
    fn analytic_bubble_ratio() {
        let s = PpSchedule::build(ScheduleKind::Interleaved1F1B, 4, 2, 8).unwrap();
        assert!((s.analytic_bubble_ratio() - 3.0 / 8.0 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_params_rejected() {
        assert!(PpSchedule::build(ScheduleKind::AllFwdAllBwd, 0, 1, 1).is_err());
        assert!(PpSchedule::build(ScheduleKind::AllFwdAllBwd, 1, 0, 1).is_err());
        assert!(PpSchedule::build(ScheduleKind::AllFwdAllBwd, 1, 1, 0).is_err());
        assert!(matches!(
            PpSchedule::build(ScheduleKind::Flexible { nc: 9 }, 2, 2, 8),
            Err(ScheduleError::BadNc { .. })
        ));
    }
}
