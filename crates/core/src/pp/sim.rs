//! Lowering pipeline schedules onto the timing-graph engine.
//!
//! Each pipeline rank gets a compute stream; every cross-stage
//! activation (or gradient) transfer becomes a point-to-point op on its
//! own link stream, so transfers overlap with compute and with each
//! other — exposing P2P only where the schedule actually has to wait
//! for data (Fig 3). A schedule whose op order cannot execute (e.g. a
//! hand-built broken warm-up) is caught by the engine's deadlock
//! detection.

use super::schedule::{PpOp, PpSchedule};
use sim_engine::graph::{GraphError, OpId, StreamId, TaskGraph};
use sim_engine::time::SimDuration;

/// Metadata attached to each op in the lowered graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PpSimOp {
    /// Forward compute of `(stage, mb)` on `rank`.
    Forward {
        /// Pipeline rank.
        rank: u32,
        /// Global stage index.
        stage: u32,
        /// Micro-batch.
        mb: u32,
    },
    /// Backward compute of `(stage, mb)` on `rank`.
    Backward {
        /// Pipeline rank.
        rank: u32,
        /// Global stage index.
        stage: u32,
        /// Micro-batch.
        mb: u32,
    },
    /// P2P transfer between adjacent ranks.
    Transfer,
}

/// Per-op costs for the lowering.
pub trait PpCostModel {
    /// Forward compute time of global stage `stage` for micro-batch `mb`.
    fn fwd(&self, stage: u32, mb: u32) -> SimDuration;
    /// Backward compute time of global stage `stage` for micro-batch `mb`.
    fn bwd(&self, stage: u32, mb: u32) -> SimDuration;
    /// P2P time for the activation/gradient between stage `s` and `s+1`
    /// (zero-cost models are allowed).
    fn p2p(&self, from_stage: u32) -> SimDuration;
}

/// A uniform cost model: every stage costs the same.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformCosts {
    /// Forward time per stage per micro-batch.
    pub fwd: SimDuration,
    /// Backward time per stage per micro-batch.
    pub bwd: SimDuration,
    /// P2P time between adjacent stages.
    pub p2p: SimDuration,
}

impl PpCostModel for UniformCosts {
    fn fwd(&self, _stage: u32, _mb: u32) -> SimDuration {
        self.fwd
    }
    fn bwd(&self, _stage: u32, _mb: u32) -> SimDuration {
        self.bwd
    }
    fn p2p(&self, _from_stage: u32) -> SimDuration {
        self.p2p
    }
}

/// Per-stage table-driven cost model (used for imbalanced stages:
/// embedding/output-head heavy first/last stages, §3.1.2).
#[derive(Debug, Clone, PartialEq)]
pub struct TableCosts {
    /// Forward time per stage.
    pub fwd: Vec<SimDuration>,
    /// Backward time per stage.
    pub bwd: Vec<SimDuration>,
    /// P2P time between adjacent stages.
    pub p2p: SimDuration,
}

impl PpCostModel for TableCosts {
    fn fwd(&self, stage: u32, _mb: u32) -> SimDuration {
        self.fwd[stage as usize]
    }
    fn bwd(&self, stage: u32, _mb: u32) -> SimDuration {
        self.bwd[stage as usize]
    }
    fn p2p(&self, _from_stage: u32) -> SimDuration {
        self.p2p
    }
}

/// Result of simulating a pipeline schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct PpSimResult {
    /// End-to-end time of the pipelined batch.
    pub makespan: SimDuration,
    /// Per-rank total compute (forward + backward) time.
    pub compute: Vec<SimDuration>,
    /// Per-rank idle time within the makespan.
    pub idle: Vec<SimDuration>,
    /// Per-rank completion times of each op, in schedule order
    /// (`(start_ns, end_ns)` pairs) — used for memory replay.
    pub op_times: Vec<Vec<(u64, u64)>>,
}

impl PpSimResult {
    /// Per-rank bubble ratio: idle time over compute time (§3.1.1's
    /// definition of bubble ratio as idle over fwd+bwd compute).
    pub fn bubble_ratio(&self, rank: u32) -> f64 {
        let c = self.compute[rank as usize];
        if c.is_zero() {
            return 0.0;
        }
        self.idle[rank as usize].as_secs_f64() / c.as_secs_f64()
    }

    /// Worst bubble ratio across ranks.
    pub fn max_bubble_ratio(&self) -> f64 {
        (0..self.compute.len() as u32)
            .map(|r| self.bubble_ratio(r))
            .fold(0.0, f64::max)
    }
}

/// Simulates `schedule` under `costs`.
///
/// # Errors
/// Returns the engine's [`GraphError::Deadlock`] if the schedule's
/// per-rank op orders cannot execute — the validation §3.1.1's flexible
/// schedule generator is tested against.
pub fn simulate_pp(
    schedule: &PpSchedule,
    costs: &dyn PpCostModel,
) -> Result<PpSimResult, GraphError> {
    let pp = schedule.pp;
    let (ops, streams) = lowering_capacity(schedule);
    let mut g: TaskGraph<PpSimOp> = TaskGraph::with_capacity(ops, streams);
    lower_pp(&mut g, schedule, costs, &[], |op| op);

    let run = g.execute()?;
    let makespan = run.makespan();
    let mut compute = vec![SimDuration::ZERO; pp as usize];
    let mut op_times: Vec<Vec<(u64, u64)>> = vec![Vec::new(); pp as usize];
    for rec in run.records() {
        match rec.meta {
            PpSimOp::Forward { rank, .. } | PpSimOp::Backward { rank, .. } => {
                compute[rank as usize] += rec.duration();
                op_times[rank as usize].push((rec.start.as_nanos(), rec.end.as_nanos()));
            }
            PpSimOp::Transfer => {}
        }
    }
    let idle = compute
        .iter()
        .map(|&c| makespan.saturating_sub(c))
        .collect();
    Ok(PpSimResult {
        makespan,
        compute,
        idle,
        op_times,
    })
}

/// Graph capacity (ops, streams) needed to lower one copy of `schedule`:
/// 2 compute ops per (stage, micro-batch) plus up to 2 transfers each;
/// one compute stream per rank plus one link stream per transfer.
pub fn lowering_capacity(schedule: &PpSchedule) -> (usize, usize) {
    let ops = schedule.num_stages() as usize * schedule.nmb as usize * 4;
    (ops, schedule.pp as usize + ops / 2)
}

/// Handle to one pipeline instance lowered into a task graph by
/// [`lower_pp`].
#[derive(Debug, Clone)]
pub struct PpLowering {
    /// One compute stream per pipeline rank, in rank order.
    pub compute_streams: Vec<StreamId>,
}

fn scaled(d: SimDuration, scale: f64) -> SimDuration {
    // Exact when unscaled: the DP-folding identity relies on a 1.0
    // multiplier reproducing the duration bit-for-bit.
    if scale == 1.0 {
        d
    } else {
        d.scale(scale)
    }
}

/// Lowers one instance of `schedule` under `costs` into `g`, which may
/// already hold other instances (the full-fidelity step simulation adds
/// one per DP replica plus cross-replica collectives).
///
/// `rank_scale[r]` multiplies rank `r`'s *compute* durations (per-rank
/// jitter/straggler injection); an empty slice means no scaling, and
/// transfers are never scaled. `meta` wraps each op's [`PpSimOp`] into
/// the graph's metadata type, letting callers tag ops with a replica
/// index.
pub fn lower_pp<M>(
    g: &mut TaskGraph<M>,
    schedule: &PpSchedule,
    costs: &dyn PpCostModel,
    rank_scale: &[f64],
    mut meta: impl FnMut(PpSimOp) -> M,
) -> PpLowering {
    let pp = schedule.pp;
    let last_stage = schedule.num_stages() - 1;
    let compute_streams = g.add_streams(pp as usize);

    // First pass: create compute ops in per-rank program order.
    let mut fwd_ids: Vec<Vec<Option<OpId>>> =
        vec![vec![None; schedule.nmb as usize]; schedule.num_stages() as usize];
    let mut bwd_ids: Vec<Vec<Option<OpId>>> =
        vec![vec![None; schedule.nmb as usize]; schedule.num_stages() as usize];
    for (ppr, ops) in schedule.ranks.iter().enumerate() {
        let stream = compute_streams[ppr];
        let scale = rank_scale.get(ppr).copied().unwrap_or(1.0);
        for op in ops {
            let stage = schedule.stage_of(ppr as u32, op.chunk());
            match op {
                PpOp::Forward { mb, .. } => {
                    let id = g.add_op(
                        meta(PpSimOp::Forward {
                            rank: ppr as u32,
                            stage,
                            mb: *mb,
                        }),
                        scaled(costs.fwd(stage, *mb), scale),
                        [stream],
                        [],
                    );
                    fwd_ids[stage as usize][*mb as usize] = Some(id);
                }
                PpOp::Backward { mb, .. } => {
                    let id = g.add_op(
                        meta(PpSimOp::Backward {
                            rank: ppr as u32,
                            stage,
                            mb: *mb,
                        }),
                        scaled(costs.bwd(stage, *mb), scale),
                        [stream],
                        [],
                    );
                    bwd_ids[stage as usize][*mb as usize] = Some(id);
                }
            }
        }
    }

    // Second pass: wire data dependencies through P2P transfer ops.
    for stage in 0..schedule.num_stages() {
        for mb in 0..schedule.nmb {
            // lint: allow(unwrap) — assert_well_formed guarantees every (stage, mb) op exists
            let f = fwd_ids[stage as usize][mb as usize].expect("forward scheduled");
            // lint: allow(unwrap)
            let b = bwd_ids[stage as usize][mb as usize].expect("backward scheduled");
            if stage > 0 {
                // Activation from stage−1: transfer on its own link
                // stream (async send), consumer waits for it.
                let producer =
                    // lint: allow(unwrap) — assert_well_formed guarantees the producer exists
                    fwd_ids[(stage - 1) as usize][mb as usize].expect("forward scheduled");
                let dur = costs.p2p(stage - 1);
                if dur.is_zero() {
                    g.add_dep(f, producer);
                } else {
                    let link = g.add_stream();
                    let t = g.add_op(meta(PpSimOp::Transfer), dur, [link], []);
                    g.add_dep(t, producer);
                    g.add_dep(f, t);
                }
            }
            if stage == last_stage {
                g.add_dep(b, f);
            } else {
                let producer =
                    // lint: allow(unwrap) — assert_well_formed guarantees the producer exists
                    bwd_ids[(stage + 1) as usize][mb as usize].expect("backward scheduled");
                let dur = costs.p2p(stage);
                if dur.is_zero() {
                    g.add_dep(b, producer);
                } else {
                    let link = g.add_stream();
                    let t = g.add_op(meta(PpSimOp::Transfer), dur, [link], []);
                    g.add_dep(t, producer);
                    g.add_dep(b, t);
                }
            }
        }
    }

    PpLowering { compute_streams }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pp::schedule::ScheduleKind;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    fn uniform(p2p_us: u64) -> UniformCosts {
        UniformCosts {
            fwd: us(100),
            bwd: us(200),
            p2p: us(p2p_us),
        }
    }

    /// Every schedule family must execute without deadlock across a
    /// sweep of shapes — the core §3.1.1 guarantee.
    #[test]
    fn schedules_are_deadlock_free_across_shapes() {
        for pp in [2u32, 3, 4] {
            for v in [1u32, 2, 3] {
                for nmb in [1u32, 2, 5, 8, 12] {
                    for nc in 1..=nmb {
                        let s =
                            PpSchedule::build(ScheduleKind::Flexible { nc }, pp, v, nmb).unwrap();
                        s.assert_well_formed();
                        let r = simulate_pp(&s, &uniform(5));
                        assert!(
                            r.is_ok(),
                            "deadlock at pp={pp} v={v} nmb={nmb} nc={nc}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn perfect_pipeline_bound() {
        // Makespan is at least (fwd+bwd)·nmb·v (one rank's work) and
        // approaches it as nmb grows.
        let s = PpSchedule::build(ScheduleKind::Interleaved1F1B, 4, 2, 32).unwrap();
        let r = simulate_pp(&s, &uniform(0)).unwrap();
        let work = us(300) * (32 * 2) as u64;
        assert!(r.makespan >= work);
        assert!(r.makespan.as_secs_f64() < work.as_secs_f64() * 1.25);
    }

    #[test]
    fn measured_bubble_tracks_analytic_formula() {
        // Bubble ratio ≈ (pp−1)/nmb/v for the interleaved schedule
        // with zero-cost P2P.
        for (pp, v, nmb) in [(4u32, 2u32, 16u32), (4, 2, 32), (8, 2, 32)] {
            let s = PpSchedule::build(ScheduleKind::Interleaved1F1B, pp, v, nmb).unwrap();
            let r = simulate_pp(&s, &uniform(0)).unwrap();
            let analytic = s.analytic_bubble_ratio();
            let measured = r.bubble_ratio(0);
            assert!(
                (measured - analytic).abs() < analytic * 0.8 + 0.02,
                "pp={pp} v={v} nmb={nmb}: measured {measured}, analytic {analytic}"
            );
        }
    }

    #[test]
    fn more_microbatches_shrink_bubble() {
        let cost = uniform(0);
        let small = simulate_pp(
            &PpSchedule::build(ScheduleKind::Interleaved1F1B, 4, 2, 8).unwrap(),
            &cost,
        )
        .unwrap();
        let large = simulate_pp(
            &PpSchedule::build(ScheduleKind::Interleaved1F1B, 4, 2, 32).unwrap(),
            &cost,
        )
        .unwrap();
        assert!(large.max_bubble_ratio() < small.max_bubble_ratio());
    }

    #[test]
    fn exposed_p2p_slows_1f1b_and_extra_warmup_hides_it() {
        // Fig 3: with significant P2P cost, nc > pp (extra warm-up
        // micro-batches) reduces the makespan versus nc = pp.
        let cost = uniform(60); // P2P comparable to compute
        let nmb = 12;
        let classic = simulate_pp(
            &PpSchedule::build(ScheduleKind::Flexible { nc: 4 }, 4, 2, nmb).unwrap(),
            &cost,
        )
        .unwrap();
        let extra = simulate_pp(
            &PpSchedule::build(ScheduleKind::Flexible { nc: 6 }, 4, 2, nmb).unwrap(),
            &cost,
        )
        .unwrap();
        assert!(
            extra.makespan < classic.makespan,
            "extra-warmup {} should beat classic {}",
            extra.makespan,
            classic.makespan
        );
    }

    #[test]
    fn afab_fastest_but_memory_heaviest_with_exposed_p2p() {
        // Fig 9's ordering: AFAB ≥ flexible ≥ 1F1B in throughput;
        // reverse in memory.
        let cost = uniform(60);
        let nmb = 12;
        let s_1f1b = PpSchedule::build(ScheduleKind::Flexible { nc: 4 }, 4, 2, nmb).unwrap();
        let s_flex = PpSchedule::build(ScheduleKind::Flexible { nc: 6 }, 4, 2, nmb).unwrap();
        let s_afab = PpSchedule::build(ScheduleKind::AllFwdAllBwd, 4, 2, nmb).unwrap();
        let t_1f1b = simulate_pp(&s_1f1b, &cost).unwrap().makespan;
        let t_flex = simulate_pp(&s_flex, &cost).unwrap().makespan;
        let t_afab = simulate_pp(&s_afab, &cost).unwrap().makespan;
        assert!(t_afab <= t_flex, "afab {t_afab} vs flex {t_flex}");
        assert!(t_flex < t_1f1b, "flex {t_flex} vs 1f1b {t_1f1b}");
        assert!(s_1f1b.peak_in_flight(0) < s_flex.peak_in_flight(0));
        assert!(s_flex.peak_in_flight(0) < s_afab.peak_in_flight(0));
    }

    #[test]
    fn heavy_last_stage_creates_bubbles_on_others() {
        // §3.1.2: an unbalanced heavy last stage (output head) slows
        // the whole pipeline.
        let pp = 4u32;
        let v = 1u32;
        let nmb = 16;
        let s = PpSchedule::build(ScheduleKind::Interleaved1F1B, pp, v, nmb).unwrap();
        let stages = (pp * v) as usize;
        let mut fwd = vec![us(100); stages];
        let mut bwd = vec![us(200); stages];
        fwd[stages - 1] = us(180);
        bwd[stages - 1] = us(360);
        let heavy = TableCosts {
            fwd,
            bwd,
            p2p: SimDuration::ZERO,
        };
        let balanced = uniform(0);
        let r_heavy = simulate_pp(&s, &heavy).unwrap();
        let r_bal = simulate_pp(&s, &balanced).unwrap();
        assert!(r_heavy.makespan > r_bal.makespan);
        // Rank 0 idles waiting on the heavy tail.
        assert!(r_heavy.bubble_ratio(0) > r_bal.bubble_ratio(0));
    }

    #[test]
    fn single_microbatch_serializes() {
        let s = PpSchedule::build(ScheduleKind::Flexible { nc: 1 }, 4, 1, 1).unwrap();
        let r = simulate_pp(&s, &uniform(0)).unwrap();
        // 4 forwards then 4 backwards in sequence.
        assert_eq!(r.makespan, us(100) * 4 + us(200) * 4);
    }
}
