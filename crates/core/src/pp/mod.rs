//! Pipeline parallelism: schedules, timing simulation, and balanced
//! layer assignment (§3.1).

pub mod balance;
pub mod schedule;
pub mod sim;

pub use balance::{BalancePolicy, StageAssignment};
pub use schedule::{PpOp, PpSchedule, ScheduleError, ScheduleKind};
pub use sim::{simulate_pp, PpCostModel, PpSimResult, TableCosts, UniformCosts};
