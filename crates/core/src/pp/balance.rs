//! Layer-to-stage assignment and the §3.1.2 balanced-pipeline
//! co-design.
//!
//! Uniform sharding of model layers leaves the first pipeline rank with
//! the input embedding plus the largest warm-up activation residency,
//! and the last rank with the 128 K-vocabulary output head — causing
//! OOM on the first rank and compute stragglers on the last. The
//! paper's fix is *model co-design*: remove one transformer layer from
//! the first and last pipeline rank (405B ships with 126 layers instead
//! of 128).

use llm_model::layers::{LayerKind, ModelLayout};

/// How transformer layers are spread over pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BalancePolicy {
    /// Spread `num_layers` as evenly as possible, earlier stages taking
    /// the remainder (plus embedding on the first stage and the output
    /// head on the last).
    Uniform,
    /// The §3.1.2 co-design: drop one layer from the first and last
    /// *rank* (the model itself shrinks by two layers).
    DropFirstAndLast,
}

/// Assignment of whole layers to the `pp × v` interleaved stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageAssignment {
    /// Pipeline size.
    pub pp: u32,
    /// Virtual stages per rank.
    pub v: u32,
    /// Layers of each global stage, in stage order. Stage 0 starts with
    /// [`LayerKind::Embedding`]; the last stage ends with
    /// [`LayerKind::OutputHead`].
    pub stages: Vec<Vec<LayerKind>>,
}

impl StageAssignment {
    /// Builds the assignment for `layout` under `policy`.
    ///
    /// With [`BalancePolicy::DropFirstAndLast`], the first layer of the
    /// first stage and the last layer of the last stage quota are
    /// removed — modelling the 128 → 126 co-design.
    ///
    /// # Panics
    /// Panics if the layout has fewer body layers than stages would
    /// need (each stage must receive at least one layer, except that
    /// the embedding/head stages may hold only those modules when the
    /// model is tiny).
    pub fn build(layout: &ModelLayout, pp: u32, v: u32, policy: BalancePolicy) -> StageAssignment {
        assert!(pp > 0 && v > 0, "pp and v must be positive");
        let num_stages = (pp * v) as usize;
        let body: Vec<LayerKind> = layout
            .layers
            .iter()
            .copied()
            .filter(|l| !matches!(l, LayerKind::Embedding | LayerKind::OutputHead))
            .collect();
        let mut quotas = even_quotas(body.len(), num_stages);
        if policy == BalancePolicy::DropFirstAndLast {
            assert!(
                quotas[0] > 0 && quotas[num_stages - 1] > 0,
                "cannot drop layers from empty stages"
            );
            quotas[0] -= 1;
            quotas[num_stages - 1] -= 1;
        }
        let mut stages: Vec<Vec<LayerKind>> = Vec::with_capacity(num_stages);
        let mut it = body.into_iter();
        for (si, &q) in quotas.iter().enumerate() {
            let mut stage: Vec<LayerKind> = Vec::with_capacity(q + 1);
            if si == 0 {
                stage.push(LayerKind::Embedding);
            }
            for _ in 0..q {
                if let Some(l) = it.next() {
                    stage.push(l);
                }
            }
            if si == num_stages - 1 {
                stage.push(LayerKind::OutputHead);
            }
            stages.push(stage);
        }
        StageAssignment { pp, v, stages }
    }

    /// Total transformer (body) layers in the assignment.
    pub fn body_layers(&self) -> usize {
        self.stages
            .iter()
            .flatten()
            .filter(|l| !matches!(l, LayerKind::Embedding | LayerKind::OutputHead))
            .count()
    }

    /// Layers of the stage at `(rank, chunk)` with interleaved
    /// placement (stage `chunk·pp + rank`).
    pub fn stage(&self, rank: u32, chunk: u32) -> &[LayerKind] {
        &self.stages[(chunk * self.pp + rank) as usize]
    }

    /// All layers hosted by one rank across its chunks.
    pub fn rank_layers(&self, rank: u32) -> Vec<LayerKind> {
        (0..self.v)
            .flat_map(|c| self.stage(rank, c).iter().copied())
            .collect()
    }
}

/// Splits `n` items into `k` quotas as evenly as possible, remainder to
/// the earliest quotas.
fn even_quotas(n: usize, k: usize) -> Vec<usize> {
    let base = n / k;
    let rem = n % k;
    (0..k).map(|i| base + usize::from(i < rem)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_model::TransformerConfig;

    #[test]
    fn production_405b_assignment() {
        // 128-layer model, pp=16, v=8 ⇒ 1 layer/stage uniform; the
        // co-design drops to 126 with first and last stage empty of
        // body layers... use v=1 (16 stages of 8) for the headline
        // shape: balanced = [7, 8 × 14, 7].
        let layout = ModelLayout::text(TransformerConfig::llama3_405b().with_layers(128));
        let a = StageAssignment::build(&layout, 16, 1, BalancePolicy::DropFirstAndLast);
        assert_eq!(a.body_layers(), 126);
        let counts: Vec<usize> = a
            .stages
            .iter()
            .map(|s| {
                s.iter()
                    .filter(|l| matches!(l, LayerKind::SelfAttention { .. }))
                    .count()
            })
            .collect();
        assert_eq!(counts[0], 7);
        assert_eq!(counts[15], 7);
        assert!(counts[1..15].iter().all(|&c| c == 8));
    }

    #[test]
    fn uniform_keeps_all_layers() {
        let layout = ModelLayout::text(TransformerConfig::llama3_405b_scaled(28));
        let a = StageAssignment::build(&layout, 4, 1, BalancePolicy::Uniform);
        assert_eq!(a.body_layers(), 28);
        // Embedding on stage 0, head on last.
        assert_eq!(a.stages[0][0], LayerKind::Embedding);
        assert_eq!(*a.stages[3].last().unwrap(), LayerKind::OutputHead);
    }

    #[test]
    fn remainder_goes_to_early_stages() {
        let layout = ModelLayout::text(TransformerConfig::llama3_405b_scaled(10));
        let a = StageAssignment::build(&layout, 4, 1, BalancePolicy::Uniform);
        let counts: Vec<usize> = a
            .stages
            .iter()
            .map(|s| {
                s.iter()
                    .filter(|l| matches!(l, LayerKind::SelfAttention { .. }))
                    .count()
            })
            .collect();
        assert_eq!(counts, vec![3, 3, 2, 2]);
    }

    #[test]
    fn interleaved_stage_lookup() {
        let layout = ModelLayout::text(TransformerConfig::llama3_405b_scaled(16));
        let a = StageAssignment::build(&layout, 4, 2, BalancePolicy::Uniform);
        // 8 stages of 2 layers each; rank 1 hosts stages 1 and 5.
        assert_eq!(a.stage(1, 0).len(), 2);
        assert_eq!(a.rank_layers(1).len(), 4);
        // Rank 0 additionally hosts the embedding.
        assert_eq!(a.rank_layers(0).len(), 5);
    }

    #[test]
    fn drop_policy_reduces_exactly_two() {
        let layout = ModelLayout::text(TransformerConfig::llama3_405b_scaled(28));
        let u = StageAssignment::build(&layout, 4, 1, BalancePolicy::Uniform);
        let b = StageAssignment::build(&layout, 4, 1, BalancePolicy::DropFirstAndLast);
        assert_eq!(u.body_layers() - b.body_layers(), 2);
    }
}
