//! The §5.1 parallelism-configuration planner.
//!
//! Given a cluster, a model and a phase's token budget / sequence
//! length, the planner reproduces the paper's reasoning:
//!
//! 1. **TP** never leaves the node (inter-host TP puts fully exposed
//!    collectives on the slow fabric, §5.1).
//! 2. **PP** must be large enough to fit memory, but every extra rank
//!    inflates the bubble `(pp − 1)/nmb/v`.
//! 3. **CP** replaces DP when long sequences shrink the global batch
//!    below `bs ≥ pp` — and no further, since its all-gather is
//!    exposed (`cp = 16` at 131 K).
//! 4. **ZeRO mode and schedule** follow the §3.1.3 rule.
//!
//! Rather than hard-coding the conclusion, the planner enumerates every
//! feasible `(tp, cp, pp)` and scores it with the closed-form step
//! estimator ([`crate::step::StepModel::estimate`]), which prices the
//! bubble, exposed TP/CP communication and DP exposure. Table 2 falls
//! out of the scoring; the memory model follows the paper's precision
//! policy (BF16 params, unsharded FP32 gradient accumulators during the
//! step, sharded optimizer state, §6.2/§6.3).

use crate::fsdp::{self, ZeroMode};
use crate::mesh::Mesh4D;
use crate::pp::balance::{BalancePolicy, StageAssignment};
use crate::pp::schedule::ScheduleKind;
use crate::step::StepModel;
use cluster_model::gpu::GpuSpec;
use cluster_model::topology::{Cluster, TopologySpec};
use llm_model::masks::MaskSpec;
use llm_model::{ModelLayout, TransformerConfig};
use std::fmt;

/// Fraction of HBM usable for model state + activations (the rest is
/// fragmentation, NCCL buffers, CUDA context).
pub const HBM_BUDGET_FRACTION: f64 = 0.85;

/// Fraction of naïve saved-activation bytes that remain after the §6.3
/// memory optimizations (early release of PP boundary tensors, custom
/// autograd checkpoints).
pub const ACT_RELEASE_FACTOR: f64 = 0.5;

/// Planner input.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerInput {
    /// Total GPUs.
    pub ngpu: u32,
    /// GPUs per node (NVLink island size).
    pub gpus_per_node: u32,
    /// Tokens per global batch (16 M for Llama 3 text phases).
    pub token_budget: u64,
    /// Sequence length.
    pub seq: u64,
    /// The model.
    pub model: TransformerConfig,
    /// The accelerator (for HBM capacity).
    pub gpu: GpuSpec,
}

impl PlannerInput {
    /// The Llama 3 405B production planning problem for a given phase.
    pub fn llama3_405b(ngpu: u32, seq: u64) -> PlannerInput {
        PlannerInput {
            ngpu,
            gpus_per_node: 8,
            token_budget: 16 * 1024 * 1024,
            seq,
            model: TransformerConfig::llama3_405b(),
            gpu: GpuSpec::h100_sxm_hbm3(),
        }
    }
}

/// A planned configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The 4D mesh.
    pub mesh: Mesh4D,
    /// Batch size per DP group.
    pub bs: u64,
    /// Chosen FSDP mode (§3.1.3 rule).
    pub zero: ZeroMode,
    /// Chosen schedule family (§3.1.3 rule).
    pub schedule: ScheduleKind,
    /// Estimated per-rank peak memory in bytes.
    pub est_memory: u64,
    /// Estimated TFLOPs per GPU.
    pub est_tflops: f64,
    /// Step-by-step reasoning, for humans.
    pub reasoning: Vec<String>,
}

/// Planner failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// No (tp, pp, cp) combination fits memory and batch constraints.
    Infeasible(String),
    /// Input was malformed.
    BadInput(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Infeasible(m) => write!(f, "no feasible configuration: {m}"),
            PlanError::BadInput(m) => write!(f, "bad input: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<PlanError> for sim_engine::error::SimError {
    fn from(e: PlanError) -> Self {
        match e {
            PlanError::Infeasible(m) => sim_engine::error::SimError::Infeasible(m),
            PlanError::BadInput(m) => sim_engine::error::SimError::InvalidValue(m),
        }
    }
}

fn powers_of_two_up_to(max: u32) -> impl Iterator<Item = u32> {
    (0..31u32).map(|s| 1u32 << s).take_while(move |&p| p <= max)
}

/// Builds a [`StepModel`] for a candidate configuration. One layer per
/// virtual stage (the production text-model placement).
///
/// Returns `None` if the shape is inadmissible.
pub fn candidate_step(
    input: &PlannerInput,
    tp: u32,
    cp: u32,
    pp: u32,
) -> Option<(StepModel, u64)> {
    let model_parallel = tp as u64 * cp as u64 * pp as u64;
    if model_parallel > input.ngpu as u64 || !(input.ngpu as u64).is_multiple_of(model_parallel) {
        return None;
    }
    if pp as u64 > input.model.num_layers {
        return None;
    }
    let dp = (input.ngpu as u64 / model_parallel) as u32;
    let gbs = input.token_budget / input.seq;
    if gbs == 0 || !gbs.is_multiple_of(dp as u64) {
        return None;
    }
    let bs = gbs / dp as u64;
    if bs == 0 || !input.seq.is_multiple_of(2 * cp as u64) {
        return None;
    }
    let zero = fsdp::recommended_zero_mode(bs, pp as u64);
    let schedule = if bs >= 2 * pp as u64 {
        ScheduleKind::Flexible { nc: pp }
    } else {
        ScheduleKind::AllFwdAllBwd
    };
    let layout = ModelLayout::text(input.model.clone());
    let v = u32::try_from(input.model.num_layers.div_ceil(pp as u64)).ok()?;
    let assignment = StageAssignment::build(&layout, pp, v, BalancePolicy::Uniform);
    let mesh = Mesh4D::new(tp, cp, pp, dp);
    let cluster = Cluster {
        gpu: input.gpu.clone(),
        topology: TopologySpec::llama3_production(input.ngpu.div_ceil(input.gpus_per_node)),
    };
    let step = StepModel {
        cluster,
        mesh,
        layout,
        assignment,
        schedule,
        zero,
        bs: u32::try_from(bs).ok()?,
        seq: input.seq,
        mask: MaskSpec::Causal,
        recompute: false,
    };
    Some((step, bs))
}

/// The §5.1 "2D or 3D parallelism" analysis: with FSDP ZeRO-3 every
/// parameter is all-gathered (2 BF16 bytes) per forward traversal while
/// contributing `2 × tokens` FLOPs, so the achievable arithmetic
/// intensity is `2 × tokens_per_rank / 2 = tokens_per_rank` FLOPs per
/// byte. If that falls below the hardware's compute/bandwidth ratio,
/// ZeRO-3 communication cannot be hidden and 3D parallelism (PP instead
/// of parameter resharding) wins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZeRO3Analysis {
    /// FLOPs available per communicated byte (`tokens per rank`).
    pub arithmetic_intensity: f64,
    /// Hardware peak FLOPs over network bandwidth, the break-even line
    /// (≈ 19.8 K for an H100 on a 50 GB/s NIC, §5.1).
    pub hardware_ratio: f64,
}

impl ZeRO3Analysis {
    /// Evaluates the trade-off for `tokens_per_rank` tokens of compute
    /// per parameter traversal on `gpu` with `nic_bandwidth` bytes/s.
    pub fn evaluate(tokens_per_rank: u64, gpu: &GpuSpec, nic_bandwidth: f64) -> ZeRO3Analysis {
        ZeRO3Analysis {
            // 2 FLOPs per token per parameter over 2 bytes per param.
            arithmetic_intensity: tokens_per_rank as f64,
            hardware_ratio: gpu.peak_bf16_flops / nic_bandwidth,
        }
    }

    /// `true` when ZeRO-3's all-gathers can hide behind compute —
    /// i.e. 2D parallelism is viable.
    pub fn zero3_hideable(&self) -> bool {
        self.arithmetic_intensity >= self.hardware_ratio
    }
}

/// A scored planner candidate: `(step, bs, peak memory, est TFLOPs)`.
type Candidate = (StepModel, u64, u64, f64);

/// Scores one TP degree: the smallest PP (and, if unlocked, smallest
/// CP restoring `bs ≥ pp`) that fits memory, together with its
/// estimated TFLOPs/GPU and the number of memory-rejected candidates.
fn score_tp(
    input: &PlannerInput,
    tp: u32,
    cp_unlocked: bool,
    budget: u64,
    require_bs_ge_pp: bool,
) -> (Option<Candidate>, u32) {
    let mut rejected_memory = 0u32;
    let mut chosen: Option<(StepModel, u64, u64)> = None;
    'pp: for pp in powers_of_two_up_to(input.ngpu / tp) {
        let max_cp = if cp_unlocked { 64.min(input.ngpu / tp / pp) } else { 1 };
        for cp in powers_of_two_up_to(max_cp) {
            let Some((step, bs)) = candidate_step(input, tp, cp, pp) else {
                continue;
            };
            if require_bs_ge_pp && bs < pp as u64 {
                continue; // raise cp (or give up on this pp)
            }
            let mem = step.peak_memory().into_iter().max().unwrap_or(u64::MAX);
            if mem > budget {
                rejected_memory += 1;
                continue 'pp; // larger pp, not larger cp (§5.1)
            }
            chosen = Some((step, bs, mem));
            break 'pp; // smallest pp (and cp) for this tp
        }
    }
    let candidate = chosen.map(|(step, bs, mem)| {
        let tflops = step.estimate().tflops_per_gpu;
        (step, bs, mem, tflops)
    });
    (candidate, rejected_memory)
}

/// Runs the §5.1 planning procedure.
///
/// TP candidates are scored concurrently on scoped threads; the fold
/// over results is sequential in TP order, so the outcome is
/// deterministic.
///
/// # Errors
/// Returns [`PlanError`] if the input is malformed or no configuration
/// satisfies memory and batch-size constraints.
pub fn plan(input: &PlannerInput) -> Result<Plan, PlanError> {
    if input.seq == 0 || !input.token_budget.is_multiple_of(input.seq) {
        return Err(PlanError::BadInput(format!(
            "sequence length {} must divide the token budget {}",
            input.seq, input.token_budget
        )));
    }
    let gbs = input.token_budget / input.seq;
    let budget = (input.gpu.hbm_capacity as f64 * HBM_BUDGET_FRACTION) as u64;

    // CP is admitted only when the batch dimension is exhausted even at
    // tp = node size: bs ≥ pp at (tp = node, cp = 1) ⟺ gbs·node ≥ ngpu
    // (§5.1: "we can only replace DP with CP" — and only once the long
    // context forces it).
    let cp_unlocked = gbs * u64::from(input.gpus_per_node) < u64::from(input.ngpu);

    // For each TP degree: the smallest PP whose configuration fits
    // memory, with CP set to exactly the smallest power of two that
    // restores bs ≥ pp (never raised further — CP communication is
    // exposed). The step estimator then arbitrates among the per-TP
    // candidates. TP degrees are independent, so each is scored on its
    // own scoped thread (memory replay + estimation dominate planning
    // time); results are folded back in ascending-TP order, keeping the
    // selection deterministic and identical to the sequential sweep.
    let mut best: Option<Candidate> = None;
    let mut rejected_memory = 0u32;
    let consider = |best: &mut Option<Candidate>,
                        rejected_memory: &mut u32,
                        require_bs_ge_pp: bool| {
        let tps: Vec<u32> = powers_of_two_up_to(input.gpus_per_node).collect();
        let scored: Vec<(Option<Candidate>, u32)> =
            std::thread::scope(|s| {
                let handles: Vec<_> = tps
                    .iter()
                    .map(|&tp| {
                        s.spawn(move || {
                            score_tp(input, tp, cp_unlocked, budget, require_bs_ge_pp)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // lint: allow(unwrap) — propagating a worker panic is the intended behaviour
                    .map(|h| h.join().expect("planner scoring thread panicked"))
                    .collect()
            });
        for (candidate, rejected) in scored {
            *rejected_memory += rejected;
            if let Some((step, bs, mem, tflops)) = candidate {
                let better = match &*best {
                    None => true,
                    Some((_, _, _, t)) => tflops > *t * 1.001,
                };
                if better {
                    *best = Some((step, bs, mem, tflops));
                }
            }
        }
    };
    consider(&mut best, &mut rejected_memory, true);
    if best.is_none() {
        // No configuration achieves bs ≥ pp; relax to bs ≥ 1.
        consider(&mut best, &mut rejected_memory, false);
    }

    let Some((step, bs, mem, tflops)) = best else {
        return Err(PlanError::Infeasible(format!(
            "model {} does not fit {} GPUs with ≤ {:.0} GiB usable HBM each \
             ({rejected_memory} candidates exceeded memory)",
            input.model.name,
            input.ngpu,
            budget as f64 / (1u64 << 30) as f64
        )));
    };
    let mesh = step.mesh;
    let reasoning = vec![
        format!(
            "token budget {} at seq {} gives gbs = {gbs} sequences",
            input.token_budget, input.seq
        ),
        format!(
            "tp = {}: TP stays on NVLink (node size {}); larger TP exposes collectives, smaller TP starves bs ≥ pp or memory",
            mesh.tp(),
            input.gpus_per_node
        ),
        format!(
            "pp = {}: smallest pipeline fitting {:.1} GiB within the {:.1} GiB budget without inflating the bubble",
            mesh.pp(),
            mem as f64 / (1u64 << 30) as f64,
            budget as f64 / (1u64 << 30) as f64
        ),
        if mesh.cp() > 1 {
            format!(
                "cp = {}: restores bs = {bs} ≥ pp at seq {} while keeping exposed CP all-gathers minimal",
                mesh.cp(),
                input.seq
            )
        } else {
            format!("cp = 1: bs = {bs} ≥ pp without sharding the sequence")
        },
        format!("dp = {}: the remaining GPUs", mesh.dp()),
        format!(
            "§3.1.3 rule at bs = {bs}, pp = {}: {} with {:?}",
            mesh.pp(),
            match step.zero {
                ZeroMode::Zero1 => "ZeRO-1 + 1F1B (bs ≥ 2·pp)",
                ZeroMode::Zero2 => "ZeRO-2 + all-forward-all-backward (bs < 2·pp)",
                ZeroMode::Zero3 => "ZeRO-3",
            },
            step.schedule
        ),
        format!("estimated {tflops:.0} TFLOPs/GPU"),
    ];

    Ok(Plan {
        mesh,
        bs,
        zero: step.zero,
        schedule: step.schedule,
        est_memory: mem,
        est_tflops: tflops,
        reasoning,
    })
}

/// Re-materializes the planned step and runs the static pre-flight
/// analysis over it. The §5.1 admission loop already bounds memory, so
/// a planner-produced plan reports no errors — this surfaces warnings
/// (e.g. budget-fraction proximity) and is the hook plans from
/// external sources go through before simulation.
///
/// Returns `None` if the plan's mesh is inadmissible for `input`
/// (i.e. the plan did not come from [`plan`] on the same input).
pub fn preflight(input: &PlannerInput, p: &Plan) -> Option<crate::analyze::Report> {
    let (step, _bs) = candidate_step(input, p.mesh.tp(), p.mesh.cp(), p.mesh.pp())?;
    Some(crate::analyze::analyze_step(&step))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_2_short_context_row() {
        // 405B, 16K GPUs, 16M tokens, seq 8192 ⇒ tp 8, cp 1, pp 16,
        // dp 128.
        let plan = plan(&PlannerInput::llama3_405b(16_384, 8_192)).unwrap();
        assert_eq!(plan.mesh.tp(), 8, "{:#?}", plan.reasoning);
        assert_eq!(plan.mesh.cp(), 1, "{:#?}", plan.reasoning);
        assert_eq!(plan.mesh.pp(), 16, "{:#?}", plan.reasoning);
        assert_eq!(plan.mesh.dp(), 128, "{:#?}", plan.reasoning);
        assert_eq!(plan.bs, 16);
    }

    #[test]
    fn table_2_long_context_row() {
        // seq 131072 ⇒ tp 8, cp 16, pp 16, dp 8.
        let plan = plan(&PlannerInput::llama3_405b(16_384, 131_072)).unwrap();
        assert_eq!(plan.mesh.tp(), 8, "{:#?}", plan.reasoning);
        assert_eq!(plan.mesh.cp(), 16, "{:#?}", plan.reasoning);
        assert_eq!(plan.mesh.pp(), 16, "{:#?}", plan.reasoning);
        assert_eq!(plan.mesh.dp(), 8, "{:#?}", plan.reasoning);
        assert_eq!(plan.bs, 16);
    }

    #[test]
    fn planned_configurations_pass_preflight() {
        let input = PlannerInput::llama3_405b(16_384, 8_192);
        let p = plan(&input).unwrap();
        let report = preflight(&input, &p).expect("planned mesh is admissible");
        assert!(!report.has_errors(), "{}", report.render_human());
        // A plan whose mesh cannot come from this input is rejected.
        let mut bogus = p.clone();
        bogus.mesh = crate::mesh::Mesh4D::new(3, 1, 1, 1);
        assert!(preflight(&input, &bogus).is_none());
    }

    #[test]
    fn zero_mode_follows_bs_rule() {
        let p = plan(&PlannerInput::llama3_405b(16_384, 8_192)).unwrap();
        // bs = 16 = pp < 2·pp ⇒ ZeRO-2 + AFAB.
        assert_eq!(p.zero, ZeroMode::Zero2);
        assert_eq!(p.schedule, ScheduleKind::AllFwdAllBwd);
    }

    #[test]
    fn smaller_model_needs_less_model_parallelism() {
        let mut input = PlannerInput::llama3_405b(1_024, 8_192);
        input.model = TransformerConfig::llama3_8b();
        let p = plan(&input).unwrap();
        assert!(p.mesh.model_parallel() <= 16, "{:#?}", p.reasoning);
    }

    #[test]
    fn higher_hbm_capacity_allows_smaller_tp() {
        // §8.1: more HBM widens the hyper-parameter space (tp 8 → 4
        // gave ~10 % on 2K GPUs).
        let base = PlannerInput::llama3_405b(2_048, 8_192);
        let p8 = plan(&base).unwrap();
        let mut roomy = base.clone();
        roomy.gpu = roomy.gpu.with_hbm_capacity(4 * 80 * (1 << 30));
        let p4 = plan(&roomy).unwrap();
        assert!(
            p4.mesh.tp() <= p8.mesh.tp(),
            "roomy {} vs base {}",
            p4.mesh,
            p8.mesh
        );
        assert!(p4.est_tflops >= p8.est_tflops);
    }

    #[test]
    fn infeasible_when_memory_too_small() {
        let mut input = PlannerInput::llama3_405b(64, 8_192);
        input.gpu = input.gpu.with_hbm_capacity(8 << 30);
        assert!(matches!(plan(&input), Err(PlanError::Infeasible(_))));
    }

    #[test]
    fn bad_input_rejected() {
        let mut input = PlannerInput::llama3_405b(16_384, 8_192);
        input.seq = 1_000_000; // does not divide the budget
        assert!(matches!(plan(&input), Err(PlanError::BadInput(_))));
    }

    #[test]
    fn zero3_analysis_matches_section_5_1() {
        // §5.1: with bs = 1 and seq = 8192, arithmetic intensity is
        // (2 × 8K)/2 = 8K FLOPs/byte — far below the H100's
        // 989 TFLOPs / 50 GB/s ≈ 19.8K, so ZeRO-3 2D is rejected.
        let gpu = GpuSpec::h100_sxm_hbm3();
        let a = ZeRO3Analysis::evaluate(8_192, &gpu, 50e9);
        assert!((a.hardware_ratio - 19_780.0).abs() < 100.0, "{a:?}");
        assert!(!a.zero3_hideable());
        // A hypothetical 10× faster fabric would flip the verdict.
        let fast = ZeRO3Analysis::evaluate(8_192, &gpu, 500e9);
        assert!(fast.zero3_hideable() || fast.hardware_ratio > 8_192.0 * 0.99);
        // And enough tokens per rank always hides it.
        assert!(ZeRO3Analysis::evaluate(1 << 20, &gpu, 50e9).zero3_hideable());
    }

    #[test]
    fn reasoning_is_populated() {
        let p = plan(&PlannerInput::llama3_405b(16_384, 8_192)).unwrap();
        assert!(p.reasoning.len() >= 5);
        assert!(p.reasoning.iter().any(|r| r.contains("tp = 8")));
    }
}
