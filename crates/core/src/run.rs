//! Multi-day run composition: many training steps under a fault
//! timeline with a checkpoint/restart policy, yielding goodput — the
//! fraction of wall time converted into training progress.
//!
//! The paper's production context (and the Llama 3 report's 466
//! interruptions over 54 days on 16K GPUs) makes delivered throughput a
//! function of three policies, all modelled here:
//!
//! * **Checkpointing** — periodic state writes whose cost follows the
//!   FSDP shard layout: every rank writes its own `1/fsdp_n` shard of
//!   the heaviest pipeline stage's parameter + optimizer state, so the
//!   write time is `shard_bytes / write_bandwidth` regardless of
//!   cluster size.
//! * **Restart** — a fatal fault (GPU fail-stop, node loss) costs
//!   detection, rescheduling onto spares, a checkpoint read, and the
//!   *rework* of every step since the last checkpoint.
//! * **Degraded running** — transient faults (thermal throttles,
//!   degraded links) do not abort the job but stretch each step: a
//!   throttled rank gates the whole synchronized step (§8.1), and a
//!   degraded link stretches the exposed DP communication by the
//!   inverse of its capacity scale (§8.2).
//!
//! [`RunSimulator::simulate`] walks the timeline step by step
//! (analytically pricing each step from the healthy baseline — no
//! per-step task-graph lowering, so a 24-hour 16K-GPU run simulates in
//! well under a second) and reports the [`GoodputReport`] breakdown,
//! including the Young/Daly optimal checkpoint interval
//! `sqrt(2 · write_time · MTBF)` next to the configured one.
//!
//! [`RunSimulator::simulate_traced`] runs the *same* walk while
//! streaming per-step timeline events (one compute event per pipeline
//! rank per step, DP-stretch events under degraded links, checkpoint /
//! detect / restart markers) into a bounded [`TieredTrace`] tower
//! instead of an unbounded event list, recording a [`RunAnchor`] at
//! every point where the walk's state collapses to four words (after
//! each checkpoint commit and restart). Because the walk is a pure
//! function of that state, [`RunReplay`] can rematerialize any time
//! window at full resolution by re-walking from the nearest anchor —
//! bounded work (≲ one checkpoint interval), exact by construction.

use crate::fsdp;
use crate::step::{SimOptions, StepModel};
use cluster_model::faults::FaultTimeline;
use llm_model::PrecisionPolicy;
use sim_engine::error::SimError;
use trace_analysis::tiered::{ReplaySource, ReplayedWindow, TierConfig, TieredTrace};
use trace_analysis::{EventCategory, TraceEvent};

/// Checkpoint/restart policy for a long-running job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointPolicy {
    /// Target seconds of training between checkpoints (the simulator
    /// rounds to a whole number of steps, at least one).
    pub interval_s: f64,
    /// Per-rank storage write bandwidth (bytes/s) for checkpoint
    /// shards.
    pub write_bandwidth: f64,
    /// Per-rank storage read bandwidth (bytes/s) on restore.
    pub read_bandwidth: f64,
    /// Time from a fatal fault to its detection (health-check +
    /// NCCL-timeout lag).
    pub detect_s: f64,
    /// Time to swap in spares and relaunch the job.
    pub reschedule_s: f64,
}

impl CheckpointPolicy {
    /// Production-flavoured defaults: 15-minute checkpoints, 1 GB/s
    /// per-rank distributed checkpoint I/O, two-minute detection,
    /// five-minute reschedule.
    pub fn llama3_production() -> CheckpointPolicy {
        CheckpointPolicy {
            interval_s: 900.0,
            write_bandwidth: 1e9,
            read_bandwidth: 1e9,
            detect_s: 120.0,
            reschedule_s: 300.0,
        }
    }

    /// Same policy with a different checkpoint interval.
    pub fn with_interval(mut self, interval_s: f64) -> CheckpointPolicy {
        self.interval_s = interval_s;
        self
    }

    fn validate(&self) -> Result<(), SimError> {
        if !(self.interval_s > 0.0 && self.interval_s.is_finite()) {
            return Err(SimError::InvalidValue(
                "checkpoint interval must be positive".into(),
            ));
        }
        if self.write_bandwidth <= 0.0 || self.read_bandwidth <= 0.0 {
            return Err(SimError::InvalidValue(
                "checkpoint bandwidths must be positive".into(),
            ));
        }
        if self.detect_s < 0.0 || self.reschedule_s < 0.0 {
            return Err(SimError::InvalidValue(
                "detect/reschedule times must be >= 0".into(),
            ));
        }
        Ok(())
    }
}

/// Wall time lost to each cause, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GoodputLoss {
    /// Checkpoint write stalls.
    pub checkpoint_s: f64,
    /// Failure-detection lag.
    pub detect_s: f64,
    /// Reschedule plus checkpoint restore.
    pub restart_s: f64,
    /// Re-executing steps lost since the last checkpoint (includes the
    /// partially executed step the fault interrupted).
    pub rework_s: f64,
    /// Extra step time from running degraded (throttles, slow links)
    /// on steps that ultimately counted.
    pub degraded_s: f64,
}

impl GoodputLoss {
    /// Total lost wall time.
    pub fn total_s(&self) -> f64 {
        self.checkpoint_s + self.detect_s + self.restart_s + self.rework_s + self.degraded_s
    }
}

/// The outcome of a [`RunSimulator::simulate`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct GoodputReport {
    /// Total simulated wall time (may exceed the horizon by the tail of
    /// the last step or outage).
    pub wall_time_s: f64,
    /// Healthy-equivalent training time delivered: completed steps ×
    /// healthy step time.
    pub productive_s: f64,
    /// Effective-training-time ratio: `productive_s / wall_time_s`.
    pub goodput: f64,
    /// Steps whose work survived to the end of the run.
    pub steps_completed: u64,
    /// Number of job restarts (fatal faults).
    pub restarts: u32,
    /// Per-cause lost-time breakdown.
    pub loss: GoodputLoss,
    /// The healthy (fault-free) step time, seconds.
    pub healthy_step_s: f64,
    /// Checkpoint shard size per rank, bytes (FSDP shard of the
    /// heaviest pipeline stage).
    pub checkpoint_bytes_per_rank: u64,
    /// One checkpoint write stall, seconds.
    pub checkpoint_write_s: f64,
    /// The configured checkpoint interval rounded to whole steps,
    /// seconds.
    pub checkpoint_interval_s: f64,
    /// Young/Daly optimal interval `sqrt(2 · write · MTBF)`, seconds
    /// (`INFINITY` for a fault-free timeline).
    pub young_daly_interval_s: f64,
    /// Mean time between fatal faults for this cluster size, seconds.
    pub mtbf_s: f64,
}

impl GoodputReport {
    /// The paper-style effective-training-time ratio (alias for
    /// [`GoodputReport::goodput`]).
    pub fn effective_training_time_ratio(&self) -> f64 {
        self.goodput
    }
}

/// Composes a [`StepModel`], a [`FaultTimeline`] and a
/// [`CheckpointPolicy`] into a multi-day run simulation.
pub struct RunSimulator {
    /// The training step being repeated.
    pub step: StepModel,
    /// The fault schedule.
    pub timeline: FaultTimeline,
    /// Checkpoint/restart policy.
    pub policy: CheckpointPolicy,
}

impl RunSimulator {
    /// Creates a run simulator.
    ///
    /// # Errors
    /// Rejects invalid policies and a timeline generated for a
    /// different cluster size than the step model's.
    pub fn new(
        step: StepModel,
        timeline: FaultTimeline,
        policy: CheckpointPolicy,
    ) -> Result<RunSimulator, SimError> {
        policy.validate()?;
        if timeline.num_gpus() != step.cluster.num_gpus() {
            return Err(SimError::InvalidShape(format!(
                "fault timeline generated for {} GPUs but the step model runs on {}",
                timeline.num_gpus(),
                step.cluster.num_gpus()
            )));
        }
        Ok(RunSimulator {
            step,
            timeline,
            policy,
        })
    }

    /// Checkpoint shard bytes each rank writes: the heaviest pipeline
    /// stage's parameter + optimizer state, divided across TP and the
    /// FSDP group. Gradients are not checkpointed.
    pub fn checkpoint_bytes_per_rank(&self) -> u64 {
        let cfg = &self.step.layout.cfg;
        let policy = PrecisionPolicy::llama3();
        let heaviest: u64 = (0..self.step.mesh.pp())
            .map(|rank| {
                self.step
                    .assignment
                    .rank_layers(rank)
                    .iter()
                    .map(|l| l.params(cfg))
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0)
            / self.step.mesh.tp() as u64;
        let fsdp_n = (self.step.mesh.dp() * self.step.mesh.cp()) as u64;
        fsdp::checkpoint_bytes_per_rank(heaviest, policy, fsdp_n)
    }

    /// Prices the step model once — the only expensive part of a run
    /// simulation. Replays reuse the result, which is what makes a
    /// [`RunReplay`] seek bounded.
    fn pricing(&self) -> Result<RunPricing, SimError> {
        let base = self.step.run(&SimOptions::default())?.report;
        let healthy_step_s = base.step_time.as_secs_f64();
        if healthy_step_s <= 0.0 {
            return Err(SimError::InvalidValue(
                "healthy step time must be positive".into(),
            ));
        }
        let ckpt_bytes = self.checkpoint_bytes_per_rank();
        Ok(RunPricing {
            healthy_step_s,
            dp_exposed_s: base.exposed.dp.as_secs_f64(),
            ckpt_bytes,
            write_s: ckpt_bytes as f64 / self.policy.write_bandwidth,
            read_s: ckpt_bytes as f64 / self.policy.read_bandwidth,
            ckpt_every: (self.policy.interval_s / healthy_step_s).round().max(1.0) as u64,
        })
    }

    /// The shared timeline walk. One code path serves plain goodput
    /// simulation, traced simulation, and window replay — so the
    /// events a replay regenerates are byte-identical to the events the
    /// original traced walk streamed out, and [`RunSimulator::simulate`]
    /// and [`RunSimulator::simulate_traced`] agree bit for bit on the
    /// [`GoodputReport`].
    ///
    /// Walks from `start` (whose pending-work counters are zero by
    /// construction — anchors sit just after a checkpoint commit or
    /// restart) until the horizon, or until the walk clock passes
    /// `stop_after_ns` (every event emitted in an iteration starts at
    /// or after the iteration's clock, so stopping there loses nothing
    /// before the stop time).
    fn walk(
        &self,
        p: &RunPricing,
        fatal_times: &[f64],
        start: RunAnchor,
        stop_after_ns: Option<u64>,
        sink: &mut dyn FnMut(u64, TraceEvent),
        mut anchors: Option<&mut Vec<RunAnchor>>,
    ) -> WalkAccounting {
        let horizon = self.timeline.horizon_s();
        let pp = self.step.mesh.pp();

        // The priced step time under a health snapshot: the worst
        // throttle gates the synchronized step (§8.1); degraded links
        // stretch the exposed DP communication (§8.2).
        let mut t = start.t_s;
        let mut fi = start.fault_index;
        let mut step_idx = start.step_index;
        let mut ev_idx = start.event_index;
        let mut steps_committed = 0u64;
        let mut restarts = 0u32;
        let mut loss = GoodputLoss::default();
        // Work since the last checkpoint — lost wholesale on a fault.
        let mut pending_steps = 0u64;
        let mut pending_wall = 0.0f64;
        let mut pending_degraded = 0.0f64;

        if let Some(a) = anchors.as_deref_mut() {
            a.push(RunAnchor {
                t_s: t,
                fault_index: fi,
                step_index: step_idx,
                event_index: ev_idx,
            });
        }

        while t < horizon {
            if let Some(stop) = stop_after_ns {
                if ns(t) >= stop {
                    break;
                }
            }
            let health = self.timeline.health_at(t);
            let compute_s = p.healthy_step_s * health.worst_compute_multiplier();
            let dp_extra_s = p.dp_exposed_s * (1.0 / health.worst_link_scale() - 1.0);
            let step_s = compute_s + dp_extra_s;
            if fi < fatal_times.len() && fatal_times[fi] <= t + step_s {
                // A fatal fault lands during this step (or landed during
                // the preceding checkpoint write): everything since the
                // last checkpoint is rework.
                let f = fatal_times[fi];
                fi += 1;
                loss.rework_s += pending_wall + (f - t).max(0.0);
                pending_steps = 0;
                pending_wall = 0.0;
                pending_degraded = 0.0;
                loss.detect_s += self.policy.detect_s;
                loss.restart_s += self.policy.reschedule_s + p.read_s;
                let down_at = t.max(f);
                sink(
                    ev_idx,
                    other_event(0, "detect", ns(down_at), ns_dur(self.policy.detect_s)),
                );
                ev_idx += 1;
                sink(
                    ev_idx,
                    other_event(
                        0,
                        "restart",
                        ns(down_at + self.policy.detect_s),
                        ns_dur(self.policy.reschedule_s + p.read_s),
                    ),
                );
                ev_idx += 1;
                t = down_at + self.policy.detect_s + self.policy.reschedule_s + p.read_s;
                restarts += 1;
                // Faults striking while the job is already down fold
                // into the same outage.
                while fi < fatal_times.len() && fatal_times[fi] <= t {
                    fi += 1;
                }
                if let Some(a) = anchors.as_deref_mut() {
                    a.push(RunAnchor {
                        t_s: t,
                        fault_index: fi,
                        step_index: step_idx,
                        event_index: ev_idx,
                    });
                }
                continue;
            }
            // One synchronized training step: a compute event on every
            // pipeline rank (replica-0 lanes, matching the step-level
            // trace's rank convention) plus a DP-stretch event when a
            // degraded link exposes extra DP communication.
            let name = format!("step{step_idx}");
            for rank in 0..pp {
                sink(
                    ev_idx,
                    TraceEvent {
                        rank,
                        name: name.clone(),
                        category: EventCategory::Compute,
                        start_ns: ns(t),
                        duration_ns: ns_dur(compute_s),
                    },
                );
                ev_idx += 1;
            }
            if dp_extra_s > 0.0 {
                for rank in 0..pp {
                    sink(
                        ev_idx,
                        TraceEvent {
                            rank,
                            name: "dp_wait".to_string(),
                            category: EventCategory::DpComm,
                            start_ns: ns(t + compute_s),
                            duration_ns: ns_dur(dp_extra_s),
                        },
                    );
                    ev_idx += 1;
                }
            }
            step_idx += 1;
            t += step_s;
            pending_steps += 1;
            pending_wall += step_s;
            pending_degraded += step_s - p.healthy_step_s;
            if pending_steps >= p.ckpt_every {
                sink(
                    ev_idx,
                    other_event(0, "checkpoint", ns(t), ns_dur(p.write_s)),
                );
                ev_idx += 1;
                t += p.write_s;
                loss.checkpoint_s += p.write_s;
                steps_committed += pending_steps;
                loss.degraded_s += pending_degraded;
                pending_steps = 0;
                pending_wall = 0.0;
                pending_degraded = 0.0;
                if let Some(a) = anchors.as_deref_mut() {
                    a.push(RunAnchor {
                        t_s: t,
                        fault_index: fi,
                        step_index: step_idx,
                        event_index: ev_idx,
                    });
                }
            }
        }
        // Steps computed but not yet checkpointed still count at the
        // horizon — the run ends, it does not crash.
        steps_committed += pending_steps;
        loss.degraded_s += pending_degraded;
        WalkAccounting {
            wall_time_s: t,
            steps_committed,
            restarts,
            loss,
        }
    }

    fn report_from(&self, p: &RunPricing, acc: WalkAccounting) -> GoodputReport {
        let productive_s = acc.steps_committed as f64 * p.healthy_step_s;
        let mtbf_s = self.timeline.mtbf_s();
        let young_daly = if mtbf_s.is_finite() {
            (2.0 * p.write_s * mtbf_s).sqrt()
        } else {
            f64::INFINITY
        };
        GoodputReport {
            wall_time_s: acc.wall_time_s,
            productive_s,
            goodput: productive_s / acc.wall_time_s.max(f64::MIN_POSITIVE),
            steps_completed: acc.steps_committed,
            restarts: acc.restarts,
            loss: acc.loss,
            healthy_step_s: p.healthy_step_s,
            checkpoint_bytes_per_rank: p.ckpt_bytes,
            checkpoint_write_s: p.write_s,
            checkpoint_interval_s: p.ckpt_every as f64 * p.healthy_step_s,
            young_daly_interval_s: young_daly,
            mtbf_s,
        }
    }

    fn fatal_times(&self) -> Vec<f64> {
        self.timeline.fatal_events().map(|e| e.start_s).collect()
    }

    /// Simulates the timeline's whole horizon and reports goodput.
    ///
    /// # Errors
    /// Propagates step-model errors (invalid schedule, deadlock).
    pub fn simulate(&self) -> Result<GoodputReport, SimError> {
        let p = self.pricing()?;
        let fatal = self.fatal_times();
        let acc = self.walk(&p, &fatal, RunAnchor::start(), None, &mut |_, _| {}, None);
        Ok(self.report_from(&p, acc))
    }

    /// Simulates the whole horizon while streaming the run timeline into
    /// a bounded [`TieredTrace`] tower, recording replay anchors. The
    /// returned [`GoodputReport`] is bit-identical to
    /// [`RunSimulator::simulate`]'s (same walk, same arithmetic).
    ///
    /// # Errors
    /// Propagates step-model errors (invalid schedule, deadlock).
    pub fn simulate_traced(&self, cfg: TierConfig) -> Result<RunTrace, SimError> {
        let p = self.pricing()?;
        let fatal = self.fatal_times();
        let mut store = TieredTrace::new(cfg);
        let mut anchors = Vec::new();
        let acc = self.walk(
            &p,
            &fatal,
            RunAnchor::start(),
            None,
            &mut |_, ev| store.append(ev),
            Some(&mut anchors),
        );
        let report = self.report_from(&p, acc);
        Ok(RunTrace {
            store,
            anchors,
            report,
            pricing: p,
            fatal_times: fatal,
        })
    }

    /// Captures the complete full-resolution event stream with global
    /// indices — `O(N)` memory, for conformance oracles and smoke
    /// diffs, not production storage.
    ///
    /// # Errors
    /// Propagates step-model errors (invalid schedule, deadlock).
    // lint: allow(trace-vec) — the documented O(N) reference capture
    pub fn trace_events(&self) -> Result<(Vec<(u64, TraceEvent)>, GoodputReport), SimError> {
        let p = self.pricing()?;
        let fatal = self.fatal_times();
        let mut events = Vec::new();
        let acc = self.walk(
            &p,
            &fatal,
            RunAnchor::start(),
            None,
            &mut |idx, ev| events.push((idx, ev)),
            None,
        );
        Ok((events, self.report_from(&p, acc)))
    }
}

/// Seconds → integer nanoseconds (timestamps).
fn ns(t_s: f64) -> u64 {
    (t_s * 1e9).round().max(0.0) as u64
}

/// Seconds → integer nanoseconds (durations).
fn ns_dur(d_s: f64) -> u64 {
    (d_s * 1e9).round().max(0.0) as u64
}

fn other_event(rank: u32, name: &str, start_ns: u64, duration_ns: u64) -> TraceEvent {
    TraceEvent {
        rank,
        name: name.to_string(),
        category: EventCategory::Other,
        start_ns,
        duration_ns,
    }
}

/// Pre-priced quantities of one run: the healthy step time, exposed DP
/// communication, and checkpoint I/O costs. Derived once from the step
/// model; replays reuse it instead of re-lowering the step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunPricing {
    healthy_step_s: f64,
    dp_exposed_s: f64,
    ckpt_bytes: u64,
    write_s: f64,
    read_s: f64,
    ckpt_every: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct WalkAccounting {
    wall_time_s: f64,
    steps_committed: u64,
    restarts: u32,
    loss: GoodputLoss,
}

/// A point where the walk's entire state collapses to four words: wall
/// clock, next-fatal-fault cursor, step counter, event counter — and
/// the pending-work counters are all zero. Recorded at the start of the
/// run, after every checkpoint commit, and after every restart.
/// Replaying from an anchor regenerates the exact event stream the
/// original walk produced from that point on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunAnchor {
    /// Wall time at the anchor, seconds.
    pub t_s: f64,
    /// Index of the next unconsumed fatal fault.
    pub fault_index: usize,
    /// Steps walked so far (including ones later lost to rework).
    pub step_index: u64,
    /// Events emitted so far (the next event's global index).
    pub event_index: u64,
}

impl RunAnchor {
    fn start() -> RunAnchor {
        RunAnchor {
            t_s: 0.0,
            fault_index: 0,
            step_index: 0,
            event_index: 0,
        }
    }
}

/// The outcome of [`RunSimulator::simulate_traced`]: the bounded tiered
/// store, the replay anchors, and the goodput report.
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// The tiered timeline store (`O(B · log N)` resident events).
    pub store: TieredTrace,
    /// Replay anchors, in time order (first is the run start).
    pub anchors: Vec<RunAnchor>,
    /// The goodput report — bit-identical to
    /// [`RunSimulator::simulate`]'s.
    pub report: GoodputReport,
    pricing: RunPricing,
    fatal_times: Vec<f64>,
}

impl RunTrace {
    /// A [`ReplaySource`] that rematerializes any window of this run by
    /// re-walking from the nearest anchor at or before the window —
    /// bounded work: at most one checkpoint interval of steps before
    /// the window plus the window itself, never the whole run.
    ///
    /// `sim` must be the simulator that produced this trace.
    pub fn replayer<'a>(&'a self, sim: &'a RunSimulator) -> RunReplay<'a> {
        RunReplay {
            sim,
            pricing: self.pricing,
            fatal_times: &self.fatal_times,
            anchors: &self.anchors,
        }
    }
}

/// Deterministic window rematerializer for a traced run. See
/// [`RunTrace::replayer`].
pub struct RunReplay<'a> {
    sim: &'a RunSimulator,
    pricing: RunPricing,
    fatal_times: &'a [f64],
    anchors: &'a [RunAnchor],
}

impl ReplaySource for RunReplay<'_> {
    fn replay(&self, t0_ns: u64, t1_ns: u64) -> ReplayedWindow {
        let start = self
            .anchors
            .iter()
            .rev()
            .find(|a| ns(a.t_s) <= t0_ns)
            .copied()
            .unwrap_or(RunAnchor::start());
        let mut events = Vec::new();
        self.sim.walk(
            &self.pricing,
            self.fatal_times,
            start,
            Some(t1_ns),
            &mut |idx, ev| {
                if ev.start_ns >= t0_ns && ev.start_ns < t1_ns {
                    events.push((idx, ev));
                }
            },
            None,
        );
        ReplayedWindow { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::Mesh4D;
    use crate::pp::balance::{BalancePolicy, StageAssignment};
    use crate::pp::schedule::ScheduleKind;
    use crate::ZeroMode;
    use cluster_model::faults::FaultRates;
    use cluster_model::topology::Cluster;
    use llm_model::masks::MaskSpec;
    use llm_model::{ModelLayout, TransformerConfig};

    const DAY_S: f64 = 24.0 * 3600.0;

    fn small_step() -> StepModel {
        let cfg = TransformerConfig::llama3_405b_scaled(28);
        let layout = ModelLayout::text(cfg);
        let mesh = Mesh4D::new(8, 1, 4, 2);
        let assignment = StageAssignment::build(&layout, 4, 7, BalancePolicy::Uniform);
        StepModel {
            cluster: Cluster::llama3(mesh.num_gpus()),
            mesh,
            layout,
            assignment,
            schedule: ScheduleKind::Flexible { nc: 4 },
            zero: ZeroMode::Zero1,
            bs: 12,
            seq: 8192,
            mask: MaskSpec::Causal,
            recompute: false,
        }
    }

    fn sim_with(rates: FaultRates, seed: u64) -> GoodputReport {
        let step = small_step();
        let tl = FaultTimeline::generate(rates, step.cluster.num_gpus(), 8, DAY_S, seed).unwrap();
        RunSimulator::new(step, tl, CheckpointPolicy::llama3_production())
            .unwrap()
            .simulate()
            .unwrap()
    }

    #[test]
    fn fault_free_run_loses_only_checkpoint_time() {
        let r = sim_with(FaultRates::none(), 1);
        assert_eq!(r.restarts, 0);
        assert_eq!(r.loss.detect_s, 0.0);
        assert_eq!(r.loss.restart_s, 0.0);
        assert_eq!(r.loss.rework_s, 0.0);
        assert_eq!(r.loss.degraded_s, 0.0);
        assert!(r.goodput > 0.95, "goodput {}", r.goodput);
        assert!(r.goodput <= 1.0);
        assert_eq!(r.young_daly_interval_s, f64::INFINITY);
        // Wall ≈ productive + losses.
        let accounted = r.productive_s + r.loss.total_s();
        assert!(
            (r.wall_time_s - accounted).abs() < r.healthy_step_s + 1e-6,
            "wall {} vs accounted {accounted}",
            r.wall_time_s
        );
    }

    #[test]
    fn faults_reduce_goodput_and_are_attributed() {
        // The test cluster is only 64 GPUs, so production per-GPU-hour
        // rates would give ≈0 events/day; scale them up so a single day
        // sees many events.
        let mut rates = FaultRates::llama3_production();
        rates.gpu_fail_per_gpu_hour = 2e-2;
        rates.thermal_per_gpu_hour = 4e-2;
        let faulty = sim_with(rates, 7);
        let clean = sim_with(FaultRates::none(), 7);
        assert!(faulty.restarts > 0);
        assert!(faulty.goodput < clean.goodput);
        assert!(faulty.loss.rework_s > 0.0);
        assert!(faulty.loss.detect_s > 0.0);
        assert!(faulty.loss.degraded_s > 0.0);
        assert!(faulty.young_daly_interval_s.is_finite());
        let accounted = faulty.productive_s + faulty.loss.total_s();
        assert!(
            (faulty.wall_time_s - accounted).abs() < faulty.healthy_step_s + 1e-6,
            "wall {} vs accounted {accounted}",
            faulty.wall_time_s
        );
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let a = sim_with(FaultRates::llama3_production(), 5);
        let b = sim_with(FaultRates::llama3_production(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn longer_checkpoint_interval_trades_overhead_for_rework() {
        let step = small_step();
        let rates = FaultRates {
            gpu_fail_per_gpu_hour: 2e-2, // ≈30 failures/day on 64 GPUs
            ..FaultRates::none()
        };
        let tl = FaultTimeline::generate(rates, step.cluster.num_gpus(), 8, DAY_S, 3).unwrap();
        let run = |interval| {
            RunSimulator::new(
                step.clone(),
                tl.clone(),
                CheckpointPolicy::llama3_production().with_interval(interval),
            )
            .unwrap()
            .simulate()
            .unwrap()
        };
        let short = run(60.0);
        let long = run(7200.0);
        assert!(short.loss.checkpoint_s > long.loss.checkpoint_s);
        assert!(short.loss.rework_s < long.loss.rework_s);
    }

    #[test]
    fn mismatched_cluster_size_is_rejected() {
        let step = small_step();
        let tl =
            FaultTimeline::generate(FaultRates::none(), 8, 8, DAY_S, 0).unwrap();
        assert!(matches!(
            RunSimulator::new(step, tl, CheckpointPolicy::llama3_production()),
            Err(SimError::InvalidShape(_))
        ));
    }

    #[test]
    fn bad_policy_is_rejected() {
        let step = small_step();
        let tl = FaultTimeline::generate(
            FaultRates::none(),
            step.cluster.num_gpus(),
            8,
            DAY_S,
            0,
        )
        .unwrap();
        let mut p = CheckpointPolicy::llama3_production();
        p.interval_s = 0.0;
        assert!(RunSimulator::new(step, tl, p).is_err());
    }

    #[test]
    fn traced_run_matches_plain_simulation_and_replays_exactly() {
        let mut rates = FaultRates::llama3_production();
        rates.gpu_fail_per_gpu_hour = 2e-2;
        rates.thermal_per_gpu_hour = 4e-2;
        rates.link_degrade_per_gpu_hour = 4e-2;
        let step = small_step();
        let tl = FaultTimeline::generate(rates, step.cluster.num_gpus(), 8, DAY_S / 4.0, 11).unwrap();
        let sim = RunSimulator::new(step, tl, CheckpointPolicy::llama3_production()).unwrap();

        let plain = sim.simulate().unwrap();
        let traced = sim
            .simulate_traced(trace_analysis::TierConfig::tiny(256, 16))
            .unwrap();
        // Same walk → bit-identical goodput report.
        assert_eq!(plain, traced.report);

        let (reference, ref_report) = sim.trace_events().unwrap();
        assert_eq!(plain, ref_report);
        assert_eq!(traced.store.appended(), reference.len() as u64);
        assert!(traced.store.resident_events() < reference.len());
        assert!(traced.anchors.len() > 2);

        // Every rematerialized window is byte-identical to the
        // corresponding slice of the full-resolution reference.
        let replay = traced.replayer(&sim);
        let span = traced.store.span_ns();
        for (t0, t1) in [
            (0, span / 7),
            (span / 3, span / 3 + span / 10),
            (span - span / 9, span),
        ] {
            let view = traced.store.window_with_replay(t0, t1, 0, &replay);
            let expect: Vec<(u64, TraceEvent)> = reference
                .iter()
                .filter(|(_, e)| e.start_ns >= t0 && e.start_ns < t1)
                .cloned()
                .collect();
            assert_eq!(view.events, expect, "window [{t0}, {t1})");
            assert!(!view.events.is_empty());
        }
        traced.store.check_integrity().unwrap();
    }

    #[test]
    fn checkpoint_bytes_follow_fsdp_shards() {
        let step = small_step();
        let tl = FaultTimeline::generate(
            FaultRates::none(),
            step.cluster.num_gpus(),
            8,
            DAY_S,
            0,
        )
        .unwrap();
        let sim = RunSimulator::new(step, tl, CheckpointPolicy::llama3_production()).unwrap();
        let bytes = sim.checkpoint_bytes_per_rank();
        assert!(bytes > 0);
        // Doubling the FSDP group halves the shard (indirectly: a mesh
        // with dp=4 writes half of what dp=2 writes per rank).
        let mut bigger = small_step();
        bigger.mesh = Mesh4D::new(8, 1, 4, 4);
        bigger.cluster = Cluster::llama3(bigger.mesh.num_gpus());
        let tl2 = FaultTimeline::generate(
            FaultRates::none(),
            bigger.cluster.num_gpus(),
            8,
            DAY_S,
            0,
        )
        .unwrap();
        let sim2 =
            RunSimulator::new(bigger, tl2, CheckpointPolicy::llama3_production()).unwrap();
        assert_eq!(sim2.checkpoint_bytes_per_rank(), bytes / 2);
    }
}
